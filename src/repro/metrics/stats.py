"""Small statistics helpers (no numpy dependency in the core library)."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence


def mean(xs: Sequence[float]) -> float:
    return sum(xs) / len(xs) if xs else 0.0


def stddev(xs: Sequence[float]) -> float:
    if len(xs) < 2:
        return 0.0
    m = mean(xs)
    return math.sqrt(sum((x - m) ** 2 for x in xs) / (len(xs) - 1))


def percentile(xs: Sequence[float], p: float) -> float:
    """Linear-interpolated percentile, ``p`` in [0, 100]."""
    if not xs:
        raise ValueError("percentile of empty sequence")
    if not 0.0 <= p <= 100.0:
        raise ValueError(f"percentile out of range: {p}")
    data = sorted(xs)
    if len(data) == 1:
        return data[0]
    k = (len(data) - 1) * (p / 100.0)
    lo = math.floor(k)
    hi = math.ceil(k)
    if lo == hi or data[lo] == data[hi]:
        # Short-circuit equal neighbours: the interpolation formula can
        # wobble by one ulp and break percentile monotonicity.
        return data[int(k)]
    return data[lo] * (hi - k) + data[hi] * (k - lo)


@dataclass
class Summary:
    """Five-number-ish summary of a sample set."""

    count: int
    mean: float
    stddev: float
    minimum: float
    p50: float
    p90: float
    p99: float
    maximum: float

    @classmethod
    def of(cls, xs: Sequence[float]) -> "Summary":
        if not xs:
            return cls(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
        data: List[float] = sorted(xs)
        # The arithmetic mean lies in [min, max] mathematically, but
        # float rounding can push it one ulp outside (e.g. (3x)/3 < x);
        # clamp so Summary orderings hold exactly.
        return cls(
            count=len(data),
            mean=min(max(mean(data), data[0]), data[-1]),
            stddev=stddev(data),
            minimum=data[0],
            p50=percentile(data, 50),
            p90=percentile(data, 90),
            p99=percentile(data, 99),
            maximum=data[-1],
        )

    def __str__(self) -> str:
        return (f"n={self.count} mean={self.mean:.6g} p50={self.p50:.6g} "
                f"p90={self.p90:.6g} p99={self.p99:.6g} max={self.maximum:.6g}")
