"""Virtual-time metric primitives: time series, counters, gauges.

All experiment output in this reproduction (goodput curves, proclet
counts, utilization) is recorded through these types so the harnesses in
:mod:`repro.experiments` can bucketize and print them uniformly.
"""

from __future__ import annotations

import bisect
from typing import Iterator, List, Optional, Sequence, Tuple


class TimeSeries:
    """An append-only series of ``(time, value)`` samples."""

    __slots__ = ("name", "times", "values")

    def __init__(self, name: str = ""):
        self.name = name
        self.times: List[float] = []
        self.values: List[float] = []

    def record(self, t: float, value: float) -> None:
        """Append a sample; times must be non-decreasing."""
        if self.times and t < self.times[-1]:
            raise ValueError(
                f"non-monotonic sample in {self.name!r}: {t} < {self.times[-1]}"
            )
        self.times.append(t)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.times)

    def __iter__(self) -> Iterator[Tuple[float, float]]:
        return iter(zip(self.times, self.values))

    @property
    def last(self) -> Optional[float]:
        return self.values[-1] if self.values else None

    def window(self, t0: float, t1: float) -> "TimeSeries":
        """Samples with ``t0 <= t < t1``."""
        lo = bisect.bisect_left(self.times, t0)
        hi = bisect.bisect_left(self.times, t1)
        out = TimeSeries(self.name)
        out.times = self.times[lo:hi]
        out.values = self.values[lo:hi]
        return out

    def value_at(self, t: float, default: float = 0.0) -> float:
        """Step-function interpolation: the last sample at or before *t*."""
        idx = bisect.bisect_right(self.times, t) - 1
        if idx < 0:
            return default
        return self.values[idx]

    def bucket_sums(self, t0: float, t1: float,
                    width: float) -> List[Tuple[float, float]]:
        """Sum of sample values per bucket of *width* seconds.

        Useful for event-count series (e.g. work units completed) where
        each sample's value is an increment.
        """
        if width <= 0:
            raise ValueError("bucket width must be positive")
        nbuckets = max(1, int(round((t1 - t0) / width)))
        sums = [0.0] * nbuckets
        lo = bisect.bisect_left(self.times, t0)
        for i in range(lo, len(self.times)):
            t = self.times[i]
            if t >= t1:
                break
            b = min(nbuckets - 1, int((t - t0) / width))
            sums[b] += self.values[i]
        return [(t0 + (i + 0.5) * width, sums[i]) for i in range(nbuckets)]

    def bucket_means(self, t0: float, t1: float,
                     width: float) -> List[Tuple[float, float]]:
        """Time-weighted mean of a step-function series per bucket."""
        if width <= 0:
            raise ValueError("bucket width must be positive")
        out = []
        t = t0
        while t < t1 - 1e-12:
            end = min(t1, t + width)
            out.append(((t + end) / 2.0, self.mean_over(t, end)))
            t = end
        return out

    def mean_over(self, t0: float, t1: float) -> float:
        """Time-weighted mean treating the series as a step function."""
        if t1 <= t0:
            return 0.0
        total = 0.0
        cur_t = t0
        cur_v = self.value_at(t0)
        lo = bisect.bisect_right(self.times, t0)
        for i in range(lo, len(self.times)):
            t = self.times[i]
            if t >= t1:
                break
            total += cur_v * (t - cur_t)
            cur_t, cur_v = t, self.values[i]
        total += cur_v * (t1 - cur_t)
        return total / (t1 - t0)


class Counter:
    """A monotonically increasing event counter with optional history."""

    __slots__ = ("name", "total", "series")

    def __init__(self, name: str = "", keep_history: bool = True):
        self.name = name
        self.total = 0.0
        self.series: Optional[TimeSeries] = (
            TimeSeries(name) if keep_history else None
        )

    def add(self, t: float, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only increase")
        self.total += amount
        if self.series is not None:
            self.series.record(t, amount)

    def rate_over(self, t0: float, t1: float) -> float:
        """Events per second in [t0, t1) (requires history)."""
        if self.series is None:
            raise ValueError(f"counter {self.name!r} keeps no history")
        if t1 <= t0:
            return 0.0
        w = self.series.window(t0, t1)
        return sum(w.values) / (t1 - t0)


class Gauge:
    """A piecewise-constant quantity with a time integral.

    ``set`` changes the level; :meth:`integral_over` gives the exact
    time-weighted integral, used for utilization accounting.
    """

    __slots__ = ("name", "series", "_level")

    def __init__(self, name: str = "", initial: float = 0.0, t0: float = 0.0):
        self.name = name
        self.series = TimeSeries(name)
        self.series.record(t0, initial)
        self._level = initial

    @property
    def level(self) -> float:
        return self._level

    def set(self, t: float, value: float) -> None:
        if value != self._level:
            self.series.record(t, value)
            self._level = value

    def adjust(self, t: float, delta: float) -> None:
        self.set(t, self._level + delta)

    def integral_over(self, t0: float, t1: float) -> float:
        return self.series.mean_over(t0, t1) * (t1 - t0)

    def mean_over(self, t0: float, t1: float) -> float:
        return self.series.mean_over(t0, t1)


def merge_series(series: Sequence[TimeSeries], name: str = "") -> TimeSeries:
    """Merge several series into one, sorted by time."""
    merged = sorted(
        ((t, v) for s in series for t, v in s),
        key=lambda tv: tv[0],
    )
    out = TimeSeries(name)
    for t, v in merged:
        out.record(t, v)
    return out
