"""Cluster state snapshots for humans.

``snapshot(qs)`` renders a utilization table — per-machine cores, DRAM,
proclet census — plus control-plane totals.  Examples and interactive
debugging use it; nothing in the control path depends on it.
"""

from __future__ import annotations

from typing import Dict, List

from ..units import fmt_bytes


def machine_rows(qs) -> List[Dict]:
    """Structured per-machine stats (the data behind :func:`snapshot`)."""
    rows = []
    for m in qs.cluster.machines:
        proclets = qs.runtime.proclets_on(m)
        kinds: Dict[str, int] = {}
        for p in proclets:
            kind = getattr(getattr(p, "kind", None), "value", "other")
            kinds[kind] = kinds.get(kind, 0) + 1
        rows.append({
            "machine": m.name,
            "cores": m.cpu.cores,
            "cpu_load": m.cpu.load,
            "dram_used": m.memory.used,
            "dram_capacity": m.memory.capacity,
            "proclets": len(proclets),
            "kinds": kinds,
            "gpus": m.gpus.count if m.gpus else 0,
            "storage_used": m.storage.used if m.storage else None,
        })
    return rows


def snapshot(qs) -> str:
    """Human-readable cluster state at the current virtual time."""
    from ..experiments.common import fmt_table

    rows = []
    for r in machine_rows(qs):
        kinds = ",".join(f"{k}:{n}" for k, n in sorted(r["kinds"].items()))
        rows.append((
            r["machine"],
            f"{r['cpu_load']:.1f}/{r['cores']:g}",
            f"{fmt_bytes(r['dram_used'])}/"
            f"{fmt_bytes(r['dram_capacity'])}",
            r["proclets"],
            kinds or "-",
        ))
    table = fmt_table(
        ["machine", "cpu (used/total)", "dram", "proclets", "kinds"],
        rows,
    )
    rt = qs.runtime
    totals = (
        f"t={qs.sim.now:.4f}s  proclets={rt.proclet_count}  "
        f"migrations={rt.migration.migrations_completed}  "
        f"splits={qs.splits}  merges={qs.merges}  "
        f"calls local/remote={rt.local_calls}/{rt.remote_calls}  "
        f"forwarded={rt.locator.forwarding_hops}"
    )
    return table + "\n" + totals
