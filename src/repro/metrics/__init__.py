"""Virtual-time metrics: series, counters, gauges, summaries."""

from .dashboard import machine_rows, snapshot
from .recorder import MetricsRecorder
from .stats import Summary, mean, percentile, stddev
from .timeseries import Counter, Gauge, TimeSeries, merge_series

__all__ = [
    "Counter",
    "Gauge",
    "MetricsRecorder",
    "Summary",
    "TimeSeries",
    "machine_rows",
    "mean",
    "merge_series",
    "percentile",
    "snapshot",
    "stddev",
]
