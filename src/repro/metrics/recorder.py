"""Central registry of metrics for one simulation run."""

from __future__ import annotations

from typing import Dict, List

from .timeseries import Counter, Gauge, TimeSeries


class MetricsRecorder:
    """Owns every named metric produced during a run.

    Components look up (and lazily create) metrics by hierarchical name,
    e.g. ``machine.0.cpu.util`` or ``proclet.migrations.latency``.
    """

    def __init__(self, sim):
        self.sim = sim
        self._series: Dict[str, TimeSeries] = {}
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._samples: Dict[str, List[float]] = {}

    # -- factories ----------------------------------------------------------
    def series(self, name: str) -> TimeSeries:
        ts = self._series.get(name)
        if ts is None:
            ts = self._series[name] = TimeSeries(name)
        return ts

    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter(name)
        return c

    def gauge(self, name: str, initial: float = 0.0) -> Gauge:
        g = self._gauges.get(name)
        if g is None:
            g = self._gauges[name] = Gauge(name, initial, t0=self.sim.now)
        return g

    def samples(self, name: str) -> List[float]:
        """An unordered bag of scalar observations (e.g. latencies)."""
        s = self._samples.get(name)
        if s is None:
            s = self._samples[name] = []
        return s

    # -- convenience recording ------------------------------------------------
    def record(self, name: str, value: float) -> None:
        self.series(name).record(self.sim.now, value)

    def count(self, name: str, amount: float = 1.0) -> None:
        self.counter(name).add(self.sim.now, amount)

    def observe(self, name: str, value: float) -> None:
        self.samples(name).append(value)

    # -- inspection -------------------------------------------------------------
    def names(self) -> List[str]:
        out = set(self._series) | set(self._counters)
        out |= set(self._gauges) | set(self._samples)
        return sorted(out)

    def has(self, name: str) -> bool:
        return (name in self._series or name in self._counters
                or name in self._gauges or name in self._samples)

    # -- kernel diagnostics -------------------------------------------------
    def record_heap_stats(self, sim=None, prefix: str = "sim.heap") -> Dict:
        """Snapshot the simulator's event-heap diagnostics into gauges.

        Records ``{prefix}.queued``, ``{prefix}.dead_entries`` and
        ``{prefix}.compactions`` at the current virtual time and returns
        the raw stats dict.  Call it from experiment loops (or once at
        the end of a run) to track event-heap hygiene over time.
        """
        sim = sim or self.sim
        stats = sim.heap_stats()
        for key, value in stats.items():
            self.gauge(f"{prefix}.{key}").set(sim.now, value)
        return stats

    def record_exec_stats(self, report, prefix: str = "exec") -> Dict:
        """Fold a :class:`repro.exec.ExecReport` into this recorder.

        Per-worker kernel counters are merged **deterministically**: the
        per-run deltas are summed in spec order (never last-writer-wins,
        which would depend on completion order), then recorded as
        ``{prefix}.kernel.<counter>`` gauges alongside
        ``{prefix}.runs`` / ``hits`` / ``misses`` / ``jobs`` /
        ``wall_s``.  Returns the recorded stats dict.
        """
        now = self.sim.now
        stats = {
            "runs": len(report.results),
            "hits": report.hits,
            "misses": report.misses,
            "jobs": report.jobs,
            "wall_s": report.wall_s,
        }
        for key in sorted(stats):
            self.gauge(f"{prefix}.{key}").set(now, stats[key])
        merged = report.kernel_totals()
        for key in sorted(merged):
            self.gauge(f"{prefix}.kernel.{key}").set(now, merged[key])
            stats[f"kernel.{key}"] = merged[key]
        return stats

    def record_recovery_stats(self, manager, prefix: str = "ft") -> Dict:
        """Snapshot a :class:`repro.ft.RecoveryManager`'s outcome
        counters into gauges at the current virtual time.

        Records detector totals (``{prefix}.suspects`` / ``confirms`` /
        ``machines_back``), recovery outcomes (``recoveries`` overall
        and per policy, ``failed_recoveries``, ``sheds``) and the live
        checkpoint/standby footprint, then returns the stats dict —
        the fault-tolerance analogue of :meth:`record_exec_stats`.
        """
        now = self.sim.now
        stats = {
            "suspects": manager.detector.suspects,
            "confirms": manager.detector.confirms,
            "machines_back": manager.detector.recoveries,
            "recoveries": sum(manager.recoveries.values()),
            "failed_recoveries": manager.failed_recoveries,
            "sheds": manager.sheds,
            "checkpoint_bytes_held": manager.checkpoint_bytes_held,
            "standbys": len(manager._standbys),
        }
        for policy, n in manager.recoveries.items():
            stats[f"recoveries.{policy}"] = n
        for key in sorted(stats):
            self.gauge(f"{prefix}.{key}").set(now, stats[key])
        return stats

    def record_autoscale_stats(self, autoscaler,
                               prefix: str = "autoscale") -> Dict:
        """Snapshot a :class:`repro.autoscale.ShardAutoscaler`'s outcome
        counters — decisions issued, reshard-ledger commit/abort totals,
        freeze/shed skips, current state — into gauges at the current
        virtual time; returns the stats dict."""
        now = self.sim.now
        ledger = autoscaler.qs.runtime.reshard_ledger
        stats = {
            "decisions": len(autoscaler.decisions),
            "splits_issued": autoscaler.splits_issued,
            "merges_issued": autoscaler.merges_issued,
            "frozen_skips": autoscaler.frozen_skips,
            "shed_skips": autoscaler.shed_skips,
            "sheds": autoscaler.sheds,
            "op_failures": autoscaler.op_failures,
            "active_ops": ledger.active_count(),
        }
        stats.update(ledger.counters)
        for key in sorted(stats):
            self.gauge(f"{prefix}.{key}").set(now, stats[key])
        # The state gauge is numeric: 0 active, 1 frozen, 2 degraded.
        state_code = {"active": 0, "frozen": 1, "degraded": 2}
        self.gauge(f"{prefix}.state").set(
            now, state_code[autoscaler.state])
        stats["state"] = autoscaler.state
        return stats

    def record_clone_stats(self, runtime, prefix: str = "hedge") -> Dict:
        """Snapshot a :class:`repro.runtime.NuRuntime`'s cloning/hedging
        counters (``runtime.clone_stats``) into gauges at the current
        virtual time, plus the number of still-unsettled cloned calls;
        returns the stats dict."""
        now = self.sim.now
        stats = dict(runtime.clone_stats)
        stats["unsettled_calls"] = len(runtime._clone_calls)
        for key in sorted(stats):
            self.gauge(f"{prefix}.{key}").set(now, stats[key])
        return stats

    def record_trace_stats(self, tracer=None,
                           prefix: str = "obs.trace") -> Dict:
        """Snapshot a :class:`repro.obs.SpanTracer`'s counters into gauges.

        Records ``{prefix}.spans``, ``{prefix}.open``, ``{prefix}.dropped``
        and a ``{prefix}.category.<cat>`` gauge per span category at the
        current virtual time.  *tracer* defaults to the one attached to
        this recorder's simulator; returns the raw stats dict ({} when
        tracing is off).
        """
        if tracer is None:
            tracer = getattr(self.sim, "tracer", None)
        if tracer is None:
            return {}
        now = tracer.sim.now
        stats = {
            "spans": len(tracer.spans),
            "open": tracer.open_count,
            "dropped": tracer.dropped,
        }
        for key, value in stats.items():
            self.gauge(f"{prefix}.{key}").set(now, value)
        for cat, count in tracer.categories().items():
            self.gauge(f"{prefix}.category.{cat}").set(now, count)
            stats[f"category.{cat}"] = count
        return stats
