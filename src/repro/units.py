"""Unit constants and helpers used across the reproduction.

All times are seconds, all sizes bytes, all rates per-second, so these
helpers exist to keep call sites legible (``10 * MiB``, ``5 * US``).
"""

from __future__ import annotations

# -- sizes (bytes) ----------------------------------------------------------
KiB = 1024
MiB = 1024 * KiB
GiB = 1024 * MiB

# -- times (seconds) --------------------------------------------------------
NS = 1e-9
US = 1e-6
MS = 1e-3
SEC = 1.0

# -- rates --------------------------------------------------------------------


def gbps(value: float) -> float:
    """Gigabits/second -> bytes/second."""
    return value * 1e9 / 8.0


def fmt_bytes(n: float) -> str:
    """Human-readable byte count."""
    for unit, width in ((GiB, "GiB"), (MiB, "MiB"), (KiB, "KiB")):
        if abs(n) >= unit:
            return f"{n / unit:.2f} {width}"
    return f"{n:.0f} B"


def fmt_time(t: float) -> str:
    """Human-readable duration."""
    if abs(t) >= 1.0:
        return f"{t:.3f} s"
    if abs(t) >= MS:
        return f"{t / MS:.3f} ms"
    if abs(t) >= US:
        return f"{t / US:.3f} us"
    return f"{t / NS:.1f} ns"
