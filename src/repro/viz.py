"""Terminal plots for experiment reports.

The experiments print their series as ASCII step-plots so the
reproduction's figures are legible straight from
``python -m repro <experiment>`` without any plotting dependency.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

_BARS = " ▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], lo: Optional[float] = None,
              hi: Optional[float] = None) -> str:
    """One-line bar chart of *values*."""
    if not values:
        return ""
    lo = min(values) if lo is None else lo
    hi = max(values) if hi is None else hi
    span = hi - lo
    if span <= 0:
        return _BARS[-1] * len(values)
    out = []
    for v in values:
        idx = int((v - lo) / span * (len(_BARS) - 1) + 0.5)
        out.append(_BARS[max(0, min(len(_BARS) - 1, idx))])
    return "".join(out)


def step_plot(series: List[Tuple[float, float]], width: int = 72,
              height: int = 10, t_unit: str = "ms",
              t_scale: float = 1e3, label: str = "") -> str:
    """Multi-line step plot of a (time, value) series.

    The series is resampled onto *width* columns (step interpolation)
    and rendered as *height* rows of asterisks, with axis annotations.
    """
    if not series:
        return "(empty series)"
    t0, t1 = series[0][0], series[-1][0]
    if t1 <= t0:
        return f"(degenerate series at t={t0})"
    values = []
    idx = 0
    for col in range(width):
        t = t0 + (t1 - t0) * col / (width - 1)
        while idx + 1 < len(series) and series[idx + 1][0] <= t:
            idx += 1
        values.append(series[idx][1])
    lo = min(values)
    hi = max(values)
    span = hi - lo if hi > lo else 1.0
    rows = []
    for r in range(height, 0, -1):
        threshold = lo + span * (r - 0.5) / height
        line = "".join("*" if v >= threshold else " " for v in values)
        ylabel = f"{lo + span * r / height:8.2f} |"
        rows.append(ylabel + line)
    axis = " " * 9 + "+" + "-" * width
    t_lo = f"{t0 * t_scale:.1f}{t_unit}"
    t_hi = f"{t1 * t_scale:.1f}{t_unit}"
    footer = " " * 10 + t_lo + " " * max(1, width - len(t_lo) -
                                         len(t_hi)) + t_hi
    header = [label] if label else []
    return "\n".join(header + rows + [axis, footer])


def histogram(values: Sequence[float], bins: int = 10,
              width: int = 40, fmt: str = "{:.3g}") -> str:
    """Horizontal ASCII histogram."""
    if not values:
        return "(no samples)"
    lo, hi = min(values), max(values)
    if hi <= lo:
        return f"all {len(values)} samples = {fmt.format(lo)}"
    counts = [0] * bins
    for v in values:
        b = min(bins - 1, int((v - lo) / (hi - lo) * bins))
        counts[b] += 1
    peak = max(counts)
    out = []
    for i, count in enumerate(counts):
        edge = lo + (hi - lo) * i / bins
        bar = "#" * int(count / peak * width) if peak else ""
        out.append(f"  {fmt.format(edge):>10} | {bar} {count}")
    return "\n".join(out)
