"""The run-execution engine: cached, parallel fan-out of RunSpecs.

``run_specs`` executes a list of independent :class:`RunSpec`\\ s and
returns their results **in spec order**, regardless of which worker
finished first — so ``--jobs 1`` and ``--jobs N`` produce identical
result lists (and identical :func:`results_digest` values; CI diffs
them).  Each run is deterministic given its kwargs, executes in its own
interpreter when parallel (no shared simulator state), and per-run
seeds come from named streams (:func:`repro.exec.spec.derive_seed`),
never from execution order.

When a :class:`~repro.exec.cache.ResultCache` is supplied, already
computed points are served from disk and only the misses are submitted
to the pool — a warm cache on an unchanged grid re-runs nothing.

Workers also ship back a delta of the process-wide kernel counters
(:func:`repro.sim.kernel_totals`), so the parent can report how much
simulation happened per run and merge the gauges deterministically via
:meth:`repro.metrics.MetricsRecorder.record_exec_stats` — summed in
spec order, not last-writer-wins.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Union

from .cache import ResultCache
from .spec import RunSpec, canonical

#: Kernel counter names shipped from workers (stable order for merging).
KERNEL_KEYS = ("events", "cancellations", "tombstones_popped",
               "compactions", "wheel_inserts", "wheel_cancels",
               "overflow_to_heap", "cascades")


def results_digest(values: Iterable[Any]) -> str:
    """sha256 over the canonical serialization of a result list.

    The serial-vs-parallel acceptance check: two executions of the same
    grid must produce the same digest bit-for-bit.
    """
    h = hashlib.sha256()
    for value in values:
        h.update(canonical(value).encode())
        h.update(b"\n")
    return h.hexdigest()


@dataclass
class RunResult:
    """Outcome of one spec: its value plus execution metadata.

    ``kernel`` is the delta of the executing process's kernel counters
    across the run (all zeros for cache hits — no simulation ran)."""

    index: int
    spec: RunSpec
    value: Any
    cached: bool
    wall_s: float
    kernel: Dict[str, int] = field(default_factory=dict)


@dataclass
class ExecReport:
    """Everything ``run_specs`` learned about one grid execution."""

    results: List[RunResult]
    jobs: int
    wall_s: float
    hits: int
    misses: int

    def values(self) -> List[Any]:
        return [r.value for r in self.results]

    def digest(self) -> str:
        return results_digest(self.values())

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def kernel_totals(self) -> Dict[str, int]:
        """Per-run kernel counters summed in spec order (deterministic
        regardless of completion order)."""
        totals = {k: 0 for k in KERNEL_KEYS}
        for r in self.results:
            for k in KERNEL_KEYS:
                totals[k] += int(r.kernel.get(k, 0))
        return totals

    def summary(self) -> str:
        k = self.kernel_totals()
        return (f"exec: {len(self.results)} runs, jobs={self.jobs}, "
                f"wall={self.wall_s:.2f}s, cache {self.hits} hit / "
                f"{self.misses} miss, kernel events={k['events']}")


def _invoke(spec: RunSpec):
    """Run one spec, measuring wall time and kernel counter deltas.

    Module-level so it pickles by reference into worker processes."""
    from ..sim import kernel_totals

    before = kernel_totals()
    t0 = time.perf_counter()
    value = spec.call()
    wall = time.perf_counter() - t0
    after = kernel_totals()
    delta = {k: after.get(k, 0) - before.get(k, 0) for k in KERNEL_KEYS}
    return value, delta, wall


def _pool_task(item):
    index, spec = item
    value, delta, wall = _invoke(spec)
    return index, value, delta, wall


def _mp_context():
    """Prefer fork (cheap, works with __main__-defined grids); fall back
    to the platform default where fork is unavailable."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX
        return multiprocessing.get_context()


def run_specs(specs: List[RunSpec], jobs: int = 1,
              cache: Optional[Union[ResultCache, str]] = None) -> ExecReport:
    """Execute *specs*, fanning misses out over *jobs* worker processes.

    Returns an :class:`ExecReport` whose ``results`` are ordered exactly
    like *specs*.  ``cache`` may be a :class:`ResultCache` or a
    directory path (constructed on the fly); ``None`` disables caching.
    Exceptions raised by a run propagate (identically for serial and
    parallel execution) — a grid is not allowed to half-fail silently.
    """
    specs = list(specs)
    if isinstance(cache, str):
        cache = ResultCache(cache)
    jobs = max(1, int(jobs))
    t_start = time.perf_counter()

    results: List[Optional[RunResult]] = [None] * len(specs)
    pending: List[int] = []
    keys: List[Optional[str]] = [None] * len(specs)
    hits = 0
    for i, spec in enumerate(specs):
        if cache is not None:
            key = keys[i] = spec.digest(cache.version)
            hit, value = cache.lookup(key)
            if hit:
                hits += 1
                results[i] = RunResult(index=i, spec=spec, value=value,
                                       cached=True, wall_s=0.0,
                                       kernel={k: 0 for k in KERNEL_KEYS})
                continue
        pending.append(i)

    if pending:
        if jobs == 1 or len(pending) == 1:
            for i in pending:
                value, delta, wall = _invoke(specs[i])
                results[i] = RunResult(index=i, spec=specs[i], value=value,
                                       cached=False, wall_s=wall,
                                       kernel=delta)
        else:
            with ProcessPoolExecutor(
                    max_workers=min(jobs, len(pending)),
                    mp_context=_mp_context()) as pool:
                futures = [pool.submit(_pool_task, (i, specs[i]))
                           for i in pending]
                for fut in futures:
                    i, value, delta, wall = fut.result()
                    results[i] = RunResult(index=i, spec=specs[i],
                                           value=value, cached=False,
                                           wall_s=wall, kernel=delta)
        if cache is not None:
            for i in pending:
                cache.put(keys[i], results[i].value)

    return ExecReport(results=results, jobs=jobs,
                      wall_s=time.perf_counter() - t_start,
                      hits=hits, misses=len(pending))
