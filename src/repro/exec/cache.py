"""Content-addressed on-disk result cache.

Layout: ``<root>/<key[:2]>/<key>.pkl`` where *key* is a
:meth:`RunSpec.digest` — a sha256 over the callable's import path, the
canonicalized kwargs, and the repro package version.  Entries are
self-describing pickles (``{"key", "version", "result"}``) written
atomically (temp file + ``os.replace``), so a crashed run never leaves
a half-written entry that later poisons a sweep.

A warm cache turns an unchanged sweep grid into pure reads: repeated
experiment campaigns and CI re-runs skip every already-computed point
(the acceptance bar is ≥ 90% skipped work; an unchanged grid hits 100%).
"""

from __future__ import annotations

import os
import pickle
import tempfile
from typing import Any, Optional, Tuple

_MISS = object()


class ResultCache:
    """Pickle-per-entry cache rooted at *root* (created on demand)."""

    def __init__(self, root: str, version: Optional[str] = None):
        if version is None:
            from . import CACHE_VERSION

            version = CACHE_VERSION
        self.root = str(root)
        self.version = version
        self.hits = 0
        self.misses = 0

    # -- addressing ---------------------------------------------------------
    def path_for(self, key: str) -> str:
        return os.path.join(self.root, key[:2], key + ".pkl")

    # -- read ---------------------------------------------------------------
    def lookup(self, key: str) -> Tuple[bool, Any]:
        """``(True, result)`` on a hit, ``(False, None)`` on a miss.

        A corrupt, unreadable, or version-mismatched entry counts as a
        miss (and is left in place for post-mortem; a fresh ``put`` will
        overwrite it).
        """
        try:
            with open(self.path_for(key), "rb") as fh:
                payload = pickle.load(fh)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError):
            self.misses += 1
            return False, None
        if (not isinstance(payload, dict) or payload.get("key") != key
                or payload.get("version") != self.version
                or "result" not in payload):
            self.misses += 1
            return False, None
        self.hits += 1
        return True, payload["result"]

    def get(self, key: str, default: Any = None) -> Any:
        hit, value = self.lookup(key)
        return value if hit else default

    def __contains__(self, key: str) -> bool:
        return os.path.exists(self.path_for(key))

    # -- write --------------------------------------------------------------
    def put(self, key: str, result: Any) -> str:
        """Store *result* under *key* atomically; returns the path."""
        path = self.path_for(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        payload = {"key": key, "version": self.version, "result": result}
        fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path),
                                   prefix=".tmp-" + key[:8])
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    # -- maintenance --------------------------------------------------------
    def invalidate(self, key: str) -> bool:
        """Drop one entry; True if it existed."""
        try:
            os.unlink(self.path_for(key))
            return True
        except OSError:
            return False

    def clear(self) -> int:
        """Remove every entry under the root; returns the count."""
        removed = 0
        if not os.path.isdir(self.root):
            return 0
        for dirpath, _dirnames, filenames in os.walk(self.root):
            for fname in filenames:
                if fname.endswith(".pkl"):
                    try:
                        os.unlink(os.path.join(dirpath, fname))
                        removed += 1
                    except OSError:
                        pass
        return removed

    def __len__(self) -> int:
        count = 0
        if not os.path.isdir(self.root):
            return 0
        for _dirpath, _dirnames, filenames in os.walk(self.root):
            count += sum(1 for f in filenames if f.endswith(".pkl"))
        return count

    def stats(self) -> dict:
        return {"hits": self.hits, "misses": self.misses,
                "entries": len(self)}

    def __repr__(self) -> str:
        return (f"<ResultCache {self.root!r} v={self.version} "
                f"hits={self.hits} misses={self.misses}>")
