"""Run specifications: hashable descriptions of one deterministic run.

A :class:`RunSpec` names a module-level callable plus keyword arguments.
Because every simulation in this repository is a pure function of its
arguments (PR 1–3 made runs bit-deterministic per seed), a spec fully
determines its result — which makes results content-addressable: the
spec's :meth:`~RunSpec.digest` keys the on-disk cache
(:mod:`repro.exec.cache`) and lets serial and parallel execution be
compared byte-for-byte (:func:`repro.exec.engine.results_digest`).

Seed derivation follows the :class:`repro.sim.RandomStreams` idiom:
per-run seeds come from a *named stream* off the master seed, so a
run's seed depends only on its name — never on how many runs came
before it or on which worker executes it.
"""

from __future__ import annotations

import dataclasses
import hashlib
import zlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict


def derive_seed(master_seed: int, stream: str) -> int:
    """Deterministic per-run seed for the named *stream*.

    Same mixing as :class:`repro.sim.RandomStreams`: the derived seed is
    a pure function of (master seed, stream name), so a grid of runs
    gets stable seeds regardless of grid order or execution order.
    """
    return (int(master_seed) * 0x9E3779B1 + zlib.crc32(stream.encode())) \
        & 0xFFFFFFFFFFFFFFFF


def canonical(obj: Any) -> str:
    """Stable, bit-faithful serialization of *obj* for hashing.

    Floats render with ``repr`` (round-trip exact), dict keys sort, and
    dataclass instances serialize field-by-field — so two runs produce
    the same string iff their results are value-identical.  Types
    without a stable form raise ``TypeError`` rather than silently
    hashing a memory address.
    """
    if obj is None or obj is True or obj is False:
        return repr(obj)
    if isinstance(obj, (int, str, bytes)):
        return repr(obj)
    if isinstance(obj, float):
        return repr(obj)
    if isinstance(obj, (list, tuple)):
        inner = ",".join(canonical(x) for x in obj)
        return f"[{inner}]" if isinstance(obj, list) else f"({inner})"
    if isinstance(obj, (set, frozenset)):
        return "{" + ",".join(sorted(canonical(x) for x in obj)) + "}"
    if isinstance(obj, dict):
        items = ",".join(
            f"{canonical(k)}:{canonical(v)}"
            for k, v in sorted(obj.items(), key=lambda kv: canonical(kv[0]))
        )
        return "{" + items + "}"
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        fields = ",".join(
            f"{f.name}={canonical(getattr(obj, f.name))}"
            for f in dataclasses.fields(obj)
        )
        return f"{type(obj).__name__}({fields})"
    raise TypeError(
        f"no canonical form for {type(obj).__name__!r} "
        f"({obj!r}); use plain data or a dataclass"
    )


def _fn_path(fn: Callable) -> str:
    module = getattr(fn, "__module__", None)
    qualname = getattr(fn, "__qualname__", None)
    if not module or not qualname or "<locals>" in qualname:
        raise TypeError(
            f"RunSpec needs a module-level callable (got {fn!r}); "
            "closures and lambdas cannot be executed in worker processes"
        )
    return f"{module}:{qualname}"


@dataclass(frozen=True)
class RunSpec:
    """One independent, cacheable unit of work.

    ``fn`` must be a module-level callable (importable by name, so
    worker processes can unpickle it); ``kwargs`` must be canonicalizable
    (see :func:`canonical`) and picklable.  ``name`` labels the run in
    reports and is part of the identity: two specs with the same fn and
    kwargs but different names hash differently, which is what lets a
    grid contain repeated points (e.g. determinism replays).
    """

    fn: Callable
    kwargs: Dict[str, Any] = field(default_factory=dict)
    name: str = ""

    def __post_init__(self):
        _fn_path(self.fn)  # validate eagerly, not in the worker

    @property
    def fn_path(self) -> str:
        return _fn_path(self.fn)

    def call(self) -> Any:
        return self.fn(**self.kwargs)

    def digest(self, version: str = None) -> str:
        """Content hash of the spec: fn identity + canonical kwargs +
        the repro package version (results are invalidated wholesale on
        release bumps — the cheap, safe approximation of "the code
        changed")."""
        if version is None:
            from . import CACHE_VERSION

            version = CACHE_VERSION
        h = hashlib.sha256()
        h.update(self.fn_path.encode())
        h.update(b"|")
        h.update(canonical(self.kwargs).encode())
        h.update(b"|")
        h.update(self.name.encode())
        h.update(b"|")
        h.update(version.encode())
        return h.hexdigest()

    def __repr__(self) -> str:
        label = self.name or self.fn_path
        return f"<RunSpec {label} {canonical(self.kwargs)[:60]}>"
