"""Run-execution engine: parallel fan-out with a deterministic cache.

Every experiment in this repository is a deterministic function of its
arguments, which makes independent runs embarrassingly parallel *and*
perfectly cacheable.  This package provides the scaling substrate the
sweep/ablation/chaos campaigns run on:

* :class:`RunSpec` — one unit of work: a module-level callable plus
  canonicalizable kwargs, content-hashed via :meth:`RunSpec.digest`;
* :func:`derive_seed` — named-stream seed derivation, so per-run seeds
  are independent of grid order and worker assignment;
* :class:`ResultCache` — content-addressed on-disk results keyed by
  spec hash + repro package version;
* :func:`run_specs` — serial or ``ProcessPoolExecutor`` execution with
  results returned in spec order (serial and parallel runs are
  byte-identical; see :func:`results_digest`).

See ``docs/parallel.md`` for the hashing scheme, cache layout, and
determinism guarantees.
"""

from .cache import ResultCache
from .engine import (
    KERNEL_KEYS,
    ExecReport,
    RunResult,
    results_digest,
    run_specs,
)
from .spec import RunSpec, canonical, derive_seed

#: Version string folded into every spec digest.  Tracks the package
#: version: a release bump invalidates every cached result wholesale.
from .. import __version__ as CACHE_VERSION

__all__ = [
    "CACHE_VERSION",
    "ExecReport",
    "KERNEL_KEYS",
    "ResultCache",
    "RunResult",
    "RunSpec",
    "canonical",
    "derive_seed",
    "results_digest",
    "run_specs",
]
