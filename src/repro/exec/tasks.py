"""Small module-level tasks for exercising the execution engine.

These exist so tests and kernel benchmarks can fan out *cheap* runs
without dragging a full experiment behind every grid point.  They are
importable by name (worker processes unpickle them by reference) and,
like every run in this repository, bit-deterministic per seed.
"""

from __future__ import annotations

from typing import Dict

from ..sim import FluidScheduler, RandomStreams, Simulator


def rng_walk_task(seed: int = 0, steps: int = 64) -> Dict[str, float]:
    """Pure-Python deterministic walk (no simulator): fast enough for
    property tests that compare hundreds of serial/parallel grids."""
    rng = RandomStreams(seed).stream("exec.walk")
    total = 0.0
    peak = 0.0
    for _ in range(int(steps)):
        total += rng.uniform(-1.0, 1.0)
        peak = max(peak, abs(total))
    return {"seed": int(seed), "steps": int(steps),
            "total": total, "peak": peak}


def kernel_churn_task(seed: int = 0, rounds: int = 30,
                      batch: int = 16) -> Dict[str, float]:
    """A miniature fluid-scheduler churn run (the bench_kernel access
    pattern at small scale): submit/cancel bursts against a standing
    population, returning enough state to digest the trajectory."""
    sim = Simulator(seed=seed)
    sched = FluidScheduler(sim, 16.0, name="exec-churn")
    rng = sim.random.stream("exec.churn")

    def driver():
        live = []
        for i in range(64):
            sched.hold(demand=0.5, priority=1, name=f"bg{i}")
        for _ in range(int(rounds)):
            for i in range(int(batch)):
                live.append(sched.submit(work=1.0 + rng.random(),
                                         demand=1.0, priority=0,
                                         name="burst"))
            while len(live) > batch // 2:
                item = live.pop(0)
                if item.active:
                    sched.cancel(item)
            yield sim.timeout(0.001)

    sim.process(driver())
    sim.run(until=0.2)
    return {
        "seed": int(seed),
        "events": sim.processed_events,
        "cancellations": sim.cancellations,
        "load": sched.load,
        "now": sim.now,
    }
