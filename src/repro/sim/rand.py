"""Named, seeded random streams.

Every stochastic component draws from its own named stream derived from the
master seed, so adding randomness to one component never perturbs another —
a standard trick for keeping large simulations reproducible and comparable
across configurations.
"""

from __future__ import annotations

import random
import zlib
from typing import Dict


class RandomStreams:
    """A factory of independent :class:`random.Random` streams."""

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for *name*, creating it deterministically."""
        rng = self._streams.get(name)
        if rng is None:
            derived = (self.seed * 0x9E3779B1 + zlib.crc32(name.encode())) \
                & 0xFFFFFFFFFFFFFFFF
            rng = random.Random(derived)
            self._streams[name] = rng
        return rng

    def __getitem__(self, name: str) -> random.Random:
        return self.stream(name)
