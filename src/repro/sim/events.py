"""Event primitives for the discrete-event simulation kernel.

The design follows the classic callback-event model (as popularized by
simpy): an :class:`Event` is a one-shot box that is *triggered* with either
a value (``succeed``) or an exception (``fail``).  Triggering schedules the
event on the simulator's queue; when the simulator pops it, the event's
callbacks run and the event becomes *processed*.

Processes (see :mod:`repro.sim.process`) suspend by yielding events and are
resumed from an event callback.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

from .errors import EventAlreadyTriggered

#: Sentinel for "not yet triggered".
PENDING = object()

#: Event queue priorities: URGENT events at the same timestamp are
#: processed before NORMAL ones (used for rate re-settlement before
#: user-visible callbacks).
URGENT = 0
NORMAL = 1


class Event:
    """A one-shot occurrence at a point in simulated time.

    Callbacks are invoked exactly once, in registration order, when the
    simulator processes the event.  After processing, newly added
    callbacks are invoked immediately (so late subscribers never miss the
    event).
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_processed",
                 "_cancelled", "_wheel")

    def __init__(self, sim: "Simulator"):  # noqa: F821 (forward ref)
        self.sim = sim
        # Lazily allocated: most events (timeouts on the poller hot path)
        # collect exactly one subscriber, many collect none.  ``None``
        # means "no subscribers yet" *or* "already processed" — check
        # ``_processed`` to distinguish.
        self.callbacks: Optional[List[Callable[["Event"], None]]] = None
        self._value: Any = PENDING
        self._ok: bool = True
        self._processed = False
        self._cancelled = False
        # True while the queue entry lives in the timer wheel rather than
        # the heap; cancel() uses it to credit the right structure.
        self._wheel = False

    # -- inspection -------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once :meth:`succeed` or :meth:`fail` has been called."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self._processed

    @property
    def cancelled(self) -> bool:
        """True if :meth:`Simulator.cancel` tombstoned this event."""
        return self._cancelled

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The success value or failure exception of the event."""
        if self._value is PENDING:
            raise AttributeError("value not yet available")
        return self._value

    # -- triggering -------------------------------------------------------
    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Trigger the event successfully, scheduling callback delivery."""
        if self._value is not PENDING:
            raise EventAlreadyTriggered(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.sim._schedule(self, delay)
        return self

    def fail(self, exc: BaseException, delay: float = 0.0) -> "Event":
        """Trigger the event with an exception."""
        if not isinstance(exc, BaseException):
            raise TypeError(f"fail() needs an exception, got {exc!r}")
        if self._value is not PENDING:
            raise EventAlreadyTriggered(f"{self!r} already triggered")
        self._ok = False
        self._value = exc
        self.sim._schedule(self, delay)
        return self

    def trigger(self, event: "Event") -> None:
        """Mirror another (processed) event's outcome onto this one."""
        if event._ok:
            self.succeed(event._value)
        else:
            self.fail(event._value)

    # -- subscription -----------------------------------------------------
    def subscribe(self, callback: Callable[["Event"], None]) -> None:
        """Register *callback*; runs immediately if already processed."""
        if self._processed:
            callback(self)
        else:
            cbs = self.callbacks
            if cbs is None:
                self.callbacks = [callback]
            else:
                cbs.append(callback)

    def unsubscribe(self, callback: Callable[["Event"], None]) -> None:
        """Remove a previously registered callback (no-op if absent)."""
        if self.callbacks is not None:
            try:
                self.callbacks.remove(callback)
            except ValueError:
                pass

    # -- kernel hook ------------------------------------------------------
    def _process(self) -> None:
        """Run callbacks.  Called by the simulator only.

        ``Simulator.run`` inlines this body in its dispatch loop (no
        Event subclass overrides it); keep the two in sync.
        """
        callbacks, self.callbacks = self.callbacks, None
        self._processed = True
        if callbacks:
            for cb in callbacks:
                cb(self)

    def __repr__(self) -> str:
        state = (
            "pending"
            if self._value is PENDING
            else ("ok" if self._ok else "failed")
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that triggers automatically after a virtual-time delay."""

    __slots__ = ("delay",)

    def __init__(self, sim, delay: float, value: Any = None):
        # Timeouts are the single most-constructed object in poller-heavy
        # workloads; the base __init__ is inlined (and the PENDING dance
        # skipped — a timeout is born triggered) to keep construction to
        # plain slot stores.
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        self.sim = sim
        self.callbacks = None
        self._ok = True
        self._value = value
        self._processed = False
        self._cancelled = False
        self._wheel = False
        self.delay = delay
        sim._schedule(self, delay)


class ConditionBase(Event):
    """Shared machinery for :class:`AllOf` / :class:`AnyOf`."""

    __slots__ = ("events", "_remaining")

    def __init__(self, sim, events):
        super().__init__(sim)
        self.events = tuple(events)
        self._remaining = len(self.events)
        if not self.events:
            self.succeed({})
            return
        for ev in self.events:
            if ev.sim is not sim:
                raise ValueError("all events must belong to one simulator")
            ev.subscribe(self._on_child)

    def _collect(self) -> dict:
        return {
            ev: ev._value
            for ev in self.events
            if ev._processed and ev._ok
        }

    def _on_child(self, event: Event) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class AllOf(ConditionBase):
    """Succeeds when every child event has succeeded.

    Fails as soon as any child fails (with that child's exception).
    """

    __slots__ = ()

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed(self._collect())


class AnyOf(ConditionBase):
    """Succeeds when the first child event succeeds."""

    __slots__ = ()

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self.succeed(self._collect())
