"""Fluid-flow scheduler: the core trick enabling ms-granularity simulation.

Real Quicksand relies on Caladan-style core reallocation at microsecond
granularity.  Simulating every scheduling quantum would be prohibitively
slow in Python, so instead we model continuous *work* served at
*rates*: the scheduler assigns each active item a service rate (strict
priority across classes, max-min fair water-filling within a class, each
item capped by its ``demand``) and only emits events when the rate vector
changes or an item completes.  Preemption at any time granularity falls
out for free: when a high-priority item arrives, lower classes' rates drop
(possibly to zero) instantly.

The same abstraction serves three substrates:

* CPU: capacity = cores, demand = threads an item can use;
* NIC: capacity = bytes/s, items are transfers;
* storage: capacity = IOPS, items are I/O batches.

Incremental engine
------------------

Rate recomputation is *coalesced*: mutations (submit / detach / attach /
set_demand / set_capacity / …) only mark the scheduler dirty; one
water-fill runs per flush point instead of one per mutation.  A flush
happens

* from the simulator's pending-flush drain, which runs before virtual
  time next advances, so deferral is observationally invisible; and
* lazily, before any read of rates, aggregates or completion ETAs; and
* immediately, when mutating outside the event loop (keeps direct
  driving code and tests exactly as responsive as the eager engine).

Because no virtual time can pass between a mutation and its flush, the
deferred water-fill sees exactly the state an eager one would have, and
simulated timelines are unchanged.  The flush itself is *per-class
incremental*: mutations record which priority classes they touched, and
the reassignment recomputes only classes that are dirty or whose
entering capacity is not bit-identical to the cached value from their
last fill — an untouched class reuses its cached rates and per-class
sum outright, which is exact because a fill is a pure function of the
member list and the entering capacity.  Aggregates (``load``,
per-priority rate sums, ``demand_total``) are maintained as caches so
placement policies and metrics observers read them in O(#priorities) or
O(1) rather than O(#items), and completion timers are re-armed from
per-class candidate lists instead of a full item scan.  Superseded
completion timers are truly cancelled on the simulator queue (see
:meth:`Simulator.cancel`) instead of being left to fire as no-ops.
See ``docs/kernel.md`` for the exactness argument.

Water-fill formulation
----------------------

A class fill sorts its members by demand (ascending, stable on bucket
order) and finds the split index ``k``: the first member whose demand
cannot be met if every later member received at least as much.  Members
before ``k`` are *constrained* (rate = demand); members from ``k`` on
split the leftover capacity evenly (rate = one identical ``share``
float).  The test is a prefix-sum: member ``i`` is constrained iff
``d[i] * (n - i) <= capacity - csum[i]`` where ``csum[i]`` is the sum of
demands before ``i``.  This closed form is chosen over the classic
sequential ``cap -= rate`` loop because every float operation in it maps
one-to-one onto a numpy kernel (stable argsort, sequential cumsum,
elementwise multiply/divide), which is what lets the optional vector
core (below) produce bit-identical trajectories.

Vector core
-----------

``REPRO_VECTOR_FLUID=1`` (or ``FluidScheduler(..., vector=True)``)
selects :class:`repro.sim.vecfluid.VectorFluidScheduler`, a
struct-of-arrays numpy engine behind this exact API: per-item
remaining/rate/demand live in flat arrays indexed by stable slots,
fills and completion scans run as array kernels, and
:class:`FluidItem` becomes a thin handle.  Trajectories are
bit-identical with the toggle on or off (enforced like the timer
wheel's gate, by chaos digest replay); when numpy is not installed the
toggle silently keeps this pure-python engine, so the core library
retains its no-numpy invariant (see ``metrics/stats.py``).
"""

from __future__ import annotations

import math
import os
from typing import Callable, Dict, Iterable, List, Optional

from .errors import UnboundResource
from .events import Event, Timeout
from .simulator import Simulator

_EPS = 1e-12
#: Work remaining below this is considered complete (guards float drift).
_DONE_TOL = 1e-9


def _vector_default() -> bool:
    return os.environ.get("REPRO_VECTOR_FLUID", "0").strip().lower() \
        in ("1", "true", "on", "yes")


#: Lazily resolved VectorFluidScheduler class, or False once resolution
#: failed (numpy absent) so the import is attempted at most once.
_VEC_CLS = None


def _vector_cls():
    global _VEC_CLS
    if _VEC_CLS is None:
        try:
            from .vecfluid import VectorFluidScheduler
            _VEC_CLS = VectorFluidScheduler
        except ImportError:
            _VEC_CLS = False
    return _VEC_CLS or None


def vector_supported() -> bool:
    """True when the optional numpy vector core is importable."""
    return _vector_cls() is not None


class FluidItem:
    """One unit of continuous work being served by a :class:`FluidScheduler`.

    Attributes
    ----------
    remaining:
        Work left, in capacity-seconds (e.g. core-seconds, bytes).
        ``math.inf`` denotes a *hold* that only ends when cancelled.
    demand:
        Maximum rate this item can absorb (e.g. number of runnable
        threads for CPU, link rate for NIC).
    priority:
        Lower value = served first.  Strict across classes.
    rate:
        Current assigned service rate (managed by the scheduler; reading
        it flushes any pending reassignment first).
    done:
        Event that succeeds (with the item) when work reaches zero.
    """

    __slots__ = ("name", "demand", "priority", "remaining", "_rate", "done",
                 "submitted_at", "started_at", "finished_at", "_sched",
                 "owner")

    def __init__(self, sched: "FluidScheduler", name: str, work: float,
                 demand: float, priority: int, owner=None):
        self.name = name
        self.demand = float(demand)
        self.priority = int(priority)
        self.remaining = float(work)
        self._rate = 0.0
        self.done: Event = sched.sim.event()
        self.submitted_at = sched.sim.now
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self._sched: Optional[FluidScheduler] = sched
        self.owner = owner

    @property
    def rate(self) -> float:
        """Current assigned service rate (flushes pending reassignment)."""
        sched = self._sched
        if sched is not None and sched._dirty:
            sched._flush()
        return self._rate

    @property
    def active(self) -> bool:
        """True while the item is attached to a scheduler."""
        return self._sched is not None

    @property
    def starved(self) -> bool:
        """True if attached but currently receiving no service."""
        return self._sched is not None and self.rate <= _EPS

    def queueing_delay(self, now: float) -> float:
        """Time since submission without any service (the §5 signal).

        ``detach`` resets service-start tracking and ``attach`` restarts
        the submission clock, so after a migration this measures
        post-migration queueing rather than sticking at zero.
        """
        sched = self._sched
        if sched is not None and sched._dirty:
            sched._flush()
        if self.started_at is not None:
            return 0.0
        return now - self.submitted_at

    def __repr__(self) -> str:
        return (f"<FluidItem {self.name!r} prio={self.priority} "
                f"rate={self._rate:.3g} remaining={self.remaining:.3g}>")


class FluidScheduler:
    """Strict-priority, max-min-fair rate scheduler over one capacity.

    Constructing ``FluidScheduler(...)`` may actually build a
    :class:`repro.sim.vecfluid.VectorFluidScheduler` — the numpy
    struct-of-arrays engine — when ``vector=True`` is passed or the
    ``REPRO_VECTOR_FLUID`` environment variable enables it (and numpy is
    importable; otherwise this pure-python engine is used silently).
    The two produce bit-identical trajectories.
    """

    #: True on the numpy vector engine subclass.
    vectorized = False
    #: Item class the engine hands out (the vector engine substitutes a
    #: slot-backed handle subclass).
    _item_cls = FluidItem

    def __new__(cls, sim: Simulator, capacity: float = 0.0,
                name: str = "fluid", vector: Optional[bool] = None):
        if cls is FluidScheduler:
            want = _vector_default() if vector is None else vector
            if want:
                vec = _vector_cls()
                if vec is not None:
                    return object.__new__(vec)
        return object.__new__(cls)

    def __init__(self, sim: Simulator, capacity: float, name: str = "fluid",
                 vector: Optional[bool] = None):
        # ``vector`` is consumed by __new__; accepted here so the
        # signature matches the constructor call.
        if capacity < 0:
            raise ValueError(f"negative capacity: {capacity}")
        self.sim = sim
        self.name = name
        self._capacity = float(capacity)
        # Insertion-ordered dicts used as ordered sets: iteration is
        # submission order (what the fairness and settle accounting
        # depend on) while detach of an arbitrary item — the proclet
        # churn hot path — is O(1) instead of a list scan.
        self._items: Dict[FluidItem, None] = {}
        # Persistent priority buckets; each bucket preserves _items order.
        self._buckets: Dict[int, Dict[FluidItem, None]] = {}
        self._prio_order: List[int] = []
        self._last_update = sim.now
        # Cached aggregates, valid whenever the scheduler is clean.
        self._load = 0.0
        self._demand_total = 0.0
        self._rate_sum: Dict[int, float] = {}
        # Incremental water-fill state: classes whose demand/membership
        # changed since the last flush, the capacity that entered each
        # class at its last recompute, and each class's completion-ETA
        # candidates (items that had service and finite work then).  A
        # class whose inputs are bit-identical to its cached fill is
        # skipped wholesale by _reassign.
        self._dirty_classes: set = set()
        self._cap_in: Dict[int, float] = {}
        self._eta_candidates: Dict[int, List[FluidItem]] = {}
        # Per-class count of finite-work items: a holds-only class (all
        # ``math.inf``) skips ETA candidate builds and settle advances.
        self._finite: Dict[int, int] = {}
        # Items that may need a service-start stamp at the next rate
        # change, per class — so _reassign stamps O(new items) instead
        # of rescanning whole buckets.
        self._pending_start: Dict[int, List[FluidItem]] = {}
        # free_capacity(priority) memo, invalidated by every reassign.
        self._free_cache: Optional[Dict[int, float]] = None
        # Coalesced-reassignment state.
        self._dirty = False
        self._structure_changed = False
        self._flush_scheduled = False
        self._in_flush = False
        self._timer: Optional[Event] = None
        self._on_timer_cb = self._on_timer
        # Integral of served rate over time, total and per priority class.
        self.served_integral = 0.0
        self.served_by_priority: Dict[int, float] = {}
        self._observers: List[Callable[["FluidScheduler"], None]] = []

    # -- configuration ------------------------------------------------------
    @property
    def capacity(self) -> float:
        return self._capacity

    def set_capacity(self, capacity: float) -> None:
        """Change total capacity (e.g. cores taken offline)."""
        if capacity < 0:
            raise ValueError(f"negative capacity: {capacity}")
        self._capacity = float(capacity)
        self._mark_dirty()

    def add_observer(self, fn: Callable[["FluidScheduler"], None]) -> None:
        """Call *fn(self)* after every rate reassignment that changed
        something (rates or the attached-item set)."""
        self._observers.append(fn)

    # -- submission ----------------------------------------------------------
    def submit(self, work: float, demand: float = 1.0, priority: int = 1,
               name: str = "", owner=None) -> FluidItem:
        """Submit *work* capacity-seconds; returns the tracking item."""
        if work < 0:
            raise ValueError(f"negative work: {work}")
        if demand <= 0:
            raise ValueError(f"demand must be positive: {demand}")
        item = self._item_cls(self, name or f"{self.name}-item", work, demand,
                              priority, owner=owner)
        if work <= _DONE_TOL:
            item._sched = None
            item.remaining = 0.0
            item.finished_at = self.sim.now
            item.done.succeed(item)
            return item
        self._insert(item)
        return item

    def hold(self, demand: float, priority: int = 1, name: str = "",
             owner=None) -> FluidItem:
        """Submit an unbounded item that runs until cancelled."""
        item = self._item_cls(self, name or f"{self.name}-hold", math.inf,
                              demand, priority, owner=owner)
        self._insert(item)
        return item

    # -- removal --------------------------------------------------------------
    def cancel(self, item: FluidItem) -> float:
        """Remove *item* without completing it; returns remaining work."""
        return self.detach(item)

    def detach(self, item: FluidItem) -> float:
        """Remove *item* preserving its remaining work (for migration).

        The ``done`` event is left untriggered so the item can be
        re-submitted elsewhere via :meth:`attach`.  Service-start
        tracking is reset so queueing delay is measured afresh wherever
        the item lands next.
        """
        if item._sched is not self:
            raise UnboundResource(f"{item!r} is not attached to {self.name}")
        self._settle()
        self._remove(item)
        item._sched = None
        item._rate = 0.0
        item.started_at = None
        self._mark_dirty()
        return item.remaining

    def attach(self, item: FluidItem) -> None:
        """Re-attach a detached item (its remaining work resumes here).

        The submission clock restarts so ``queueing_delay`` measures
        time queued *here*, not time since the original submission.
        """
        if item._sched is not None:
            raise UnboundResource(f"{item!r} is already attached")
        if item.done.triggered:
            raise UnboundResource(f"{item!r} already completed")
        item._sched = self
        item.submitted_at = self.sim.now
        self._insert(item)

    def fail_all(self, exc: BaseException) -> None:
        """Fail every attached item with *exc* (machine failure).

        Each item's ``done`` event fails, so processes blocked on the
        work observe the failure immediately.  A no-op when nothing is
        attached (no spurious reassignment or observer churn).
        """
        if not self._items:
            return
        self._settle()
        items, self._items = list(self._items), {}
        self._buckets.clear()
        self._prio_order = []
        self._demand_total = 0.0
        self._dirty_classes.clear()
        self._cap_in.clear()
        self._rate_sum.clear()
        self._eta_candidates.clear()
        self._finite.clear()
        self._pending_start.clear()
        self._structure_changed = True
        for item in items:
            self._discard(item)
            item._sched = None
            item._rate = 0.0
            item.done.fail(exc)
        self._mark_dirty()

    def _discard(self, item: FluidItem) -> None:
        """Engine hook: per-item teardown during :meth:`fail_all` (the
        vector engine releases the item's array slot here)."""

    # -- tuning ---------------------------------------------------------------
    def set_demand(self, item: FluidItem, demand: float) -> None:
        if item._sched is not self:
            raise UnboundResource(f"{item!r} is not attached to {self.name}")
        if demand <= 0:
            raise ValueError(f"demand must be positive: {demand}")
        self._demand_total += float(demand) - item.demand
        item.demand = float(demand)
        self._set_demand_hook(item)
        self._dirty_classes.add(item.priority)
        self._mark_dirty()

    def _set_demand_hook(self, item: FluidItem) -> None:
        """Engine hook: mirror a demand change into engine state before
        the flush (the vector engine updates its demand array)."""

    def set_priority(self, item: FluidItem, priority: int) -> None:
        if item._sched is not self:
            raise UnboundResource(f"{item!r} is not attached to {self.name}")
        # Served work so far must be booked under the old class.
        self._settle()
        old = item.priority
        item.priority = int(priority)
        if item.priority != old:
            new = item.priority
            finite = item.remaining != math.inf
            del self._buckets[old][item]
            if not self._buckets[old]:
                del self._buckets[old]
                self._rate_sum.pop(old, None)
                self._cap_in.pop(old, None)
                self._eta_candidates.pop(old, None)
                self._finite.pop(old, None)
                self._pending_start.pop(old, None)
            else:
                self._dirty_classes.add(old)
                if finite:
                    self._finite[old] -= 1
            # Rebuild the destination bucket from _items so the bucket
            # keeps submission order (identical to the eager engine's
            # rebuild-from-scratch behaviour).
            self._buckets[new] = {
                it: None for it in self._items
                if it.priority == new
            }
            self._prio_order = sorted(self._buckets)
            self._dirty_classes.add(new)
            if finite:
                self._finite[new] = self._finite.get(new, 0) + 1
            if item.started_at is None:
                self._pending_start.setdefault(new, []).append(item)
            self._structure_changed = True
        self._mark_dirty()

    # -- inspection -------------------------------------------------------------
    @property
    def items(self) -> List[FluidItem]:
        return list(self._items)

    def __len__(self) -> int:
        return len(self._items)

    @property
    def load(self) -> float:
        """Sum of current service rates (<= capacity).  Cached: O(1)."""
        if self._dirty:
            self._flush()
        return self._load

    @property
    def demand_total(self) -> float:
        """Sum of attached demands.  Cached: O(1)."""
        return self._demand_total

    def free_capacity(self, priority: int = 10**9) -> float:
        """Capacity a new item at *priority* could obtain without
        squeezing anyone: total capacity minus the rates of items at this
        priority or more urgent.  This is the signal placement policies
        use ("how many idle cores does this machine have for me?").
        O(#priority classes) thanks to cached per-class rate sums, and
        memoized per priority between reassignments — pollers that probe
        the same class every tick pay a dict hit."""
        if self._dirty:
            self._flush()
        cache = self._free_cache
        if cache is None:
            cache = self._free_cache = {}
        else:
            hit = cache.get(priority)
            if hit is not None:
                return hit
        used = 0.0
        rate_sum = self._rate_sum
        for prio in self._prio_order:
            if prio <= priority:
                used += rate_sum[prio]
        free = max(0.0, self._capacity - used)
        cache[priority] = free
        return free

    def utilization_since(self, t0: float, integral0: float) -> float:
        """Mean utilization in [t0, now] given a prior integral snapshot."""
        self.sync()
        dt = self.sim.now - t0
        if dt <= 0 or self._capacity <= 0:
            return 0.0
        return (self.served_integral - integral0) / (dt * self._capacity)

    def sync(self) -> None:
        """Bring rates and served-work accounting up to the current
        instant (flushing any pending reassignment first)."""
        if self._dirty:
            self._flush()
        else:
            self._settle()

    # -- engine ------------------------------------------------------------------
    def _insert(self, item: FluidItem) -> None:
        prio = item.priority
        self._items[item] = None
        bucket = self._buckets.get(prio)
        if bucket is None:
            self._buckets[prio] = {item: None}
            self._prio_order = sorted(self._buckets)
        else:
            bucket[item] = None
        self._demand_total += item.demand
        self._dirty_classes.add(prio)
        if item.remaining != math.inf:
            self._finite[prio] = self._finite.get(prio, 0) + 1
        self._pending_start.setdefault(prio, []).append(item)
        self._structure_changed = True
        self._mark_dirty()

    def _remove(self, item: FluidItem) -> None:
        prio = item.priority
        del self._items[item]
        bucket = self._buckets[prio]
        del bucket[item]
        if not bucket:
            del self._buckets[prio]
            self._prio_order = sorted(self._buckets)
            self._rate_sum.pop(prio, None)
            self._cap_in.pop(prio, None)
            self._eta_candidates.pop(prio, None)
            self._finite.pop(prio, None)
            self._pending_start.pop(prio, None)
        else:
            self._dirty_classes.add(prio)
            if item.remaining != math.inf:
                self._finite[prio] -= 1
        self._demand_total -= item.demand
        if not self._items:
            self._demand_total = 0.0  # clamp accumulated float drift
        self._structure_changed = True

    def _mark_dirty(self) -> None:
        """Note a pending reassignment and arrange for it to flush.

        Inside the event loop the scheduler joins the simulator's
        pending-flush list, drained before virtual time next advances
        (so a burst of k mutations at one instant costs one water-fill);
        outside the loop it flushes immediately, preserving the eager
        engine's read-after-write behaviour for driver code and tests.
        """
        self._dirty = True
        sim = self.sim
        if not sim._running and not self._in_flush:
            self._flush()
        elif not self._flush_scheduled:
            self._flush_scheduled = True
            sim._pending_flushes.append(self)

    def _run_pending_flush(self) -> None:
        self._flush_scheduled = False
        if self._dirty:
            self._flush()

    def _flush(self) -> None:
        """Settle served work, then run the coalesced reassignment."""
        if not self._dirty or self._in_flush:
            return
        self._in_flush = True
        try:
            self._settle()
            self._dirty = False
            self._reassign()
        finally:
            self._in_flush = False

    def _settle(self) -> None:
        """Advance served-work accounting and remaining work to now.

        Accounting is O(#priority classes): the per-class rate sums are
        exact caches, so the served integrals come from them rather than
        an item scan.  Only classes that actually hold finite-work items
        pay the per-item ``remaining`` advance.
        """
        now = self.sim.now
        elapsed = now - self._last_update
        if elapsed <= 0:
            return
        self._last_update = now
        if self._load == 0.0 or not self._items:
            return  # provably no service since the last update
        served = self.served_by_priority
        rate_sum = self._rate_sum
        total = 0.0
        for prio in self._prio_order:
            rs = rate_sum.get(prio, 0.0)
            if rs > 0.0:
                served[prio] = served.get(prio, 0.0) + rs * elapsed
                total += rs
        self.served_integral += total * elapsed
        self._advance_remaining(elapsed)

    def _advance_remaining(self, elapsed: float) -> None:
        """Engine hook: decrement every served item's remaining work by
        ``rate * elapsed`` (clamped at zero; holds stay infinite)."""
        finite = self._finite
        buckets = self._buckets
        for prio in self._prio_order:
            if finite.get(prio, 0):
                for it in buckets[prio]:
                    rate = it._rate
                    if rate > 0.0 and it.remaining != math.inf:
                        it.remaining = max(0.0, it.remaining - rate * elapsed)

    def _reassign(self) -> None:
        """Recompute rates for classes whose inputs changed; reschedule
        completion and notify observers only when something actually
        changed.

        Incremental per-class water-filling: a class is recomputed only
        when it is in the dirty set (membership or demand changed) or
        when the capacity entering it is not bit-identical to the value
        cached at its last recompute.  Because a class's fill is a pure
        function of its member list (order and demands) and the entering
        capacity, reusing the cached fill produces exactly the floats a
        recompute would — aggregates are re-accumulated in priority
        order from the cached per-class sums, so ``load`` and
        ``free_capacity`` are bit-identical to the eager engine's.
        """
        self._free_cache = None
        remaining_cap = self._capacity
        changed = self._structure_changed
        self._structure_changed = False
        dirty = self._dirty_classes
        if dirty:
            self._dirty_classes = set()
        load = 0.0
        rate_sum = self._rate_sum
        cap_in = self._cap_in
        finite = self._finite
        recomputed: List[int] = []
        for prio in self._prio_order:
            if prio not in dirty and cap_in.get(prio) == remaining_cap:
                # Untouched class with bit-identical entering capacity:
                # the cached fill is exactly what a recompute would give.
                used = rate_sum[prio]
                load += used
                remaining_cap -= used
                continue
            cap_in[prio] = remaining_cap
            recomputed.append(prio)
            group = self._buckets[prio]
            if remaining_cap <= _EPS:
                for it in group:
                    if it._rate != 0.0:
                        it._rate = 0.0
                        changed = True
                rate_sum[prio] = 0.0
                self._eta_candidates[prio] = []
                continue
            used, group_changed = self._water_fill(group, remaining_cap)
            changed |= group_changed
            rate_sum[prio] = used
            if finite.get(prio, 0):
                self._eta_candidates[prio] = [
                    it for it in group
                    if it._rate > _EPS and it.remaining != math.inf
                ]
            else:
                # Holds-only class: nothing in it can ever complete.
                self._eta_candidates[prio] = []
            load += used
            remaining_cap -= used
        self._load = load

        if not changed:
            # Rates are bit-identical and the item set is unchanged: the
            # pending completion timer still targets the right instant
            # and observers would see nothing new.
            return

        now = self.sim.now
        # Only a recomputed class can contain an item that just went
        # from idle to served — reused classes' rates are untouched, and
        # every earlier rate change already stamped its items.
        pending = self._pending_start
        if pending:
            for prio in recomputed:
                if prio in pending:
                    self._stamp_started(prio, now)

        tracer = self.sim.tracer
        if tracer is not None:
            tracer.instant("waterfill", self.name,
                           track=f"sched:{self.name}",
                           items=len(self._items), load=round(load, 6))

        self._schedule_next_completion()
        for obs in self._observers:
            obs(self)

    def _stamp_started(self, prio: int, now: float) -> None:
        """Stamp ``started_at`` on newly served items of one class.

        The pending list holds every item inserted (or re-prioritized)
        into the class since it last got service; entries that detached
        or moved classes are dropped lazily.
        """
        keep: List[FluidItem] = []
        for it in self._pending_start[prio]:
            if (it._sched is not self or it.priority != prio
                    or it.started_at is not None):
                continue
            if it._rate > _EPS:
                it.started_at = now
            else:
                keep.append(it)
        if keep:
            self._pending_start[prio] = keep
        else:
            del self._pending_start[prio]

    @staticmethod
    def _water_fill(group: Iterable[FluidItem], capacity: float):
        """Max-min fair allocation with per-item demand caps.

        Prefix-sum split (see the module docstring): members sorted by
        demand, ``k`` = first index whose demand exceeds an equal split
        of what would remain, everyone from ``k`` on gets one identical
        ``share``.  Float-op for float-op the same computation as the
        vector engine's array kernel.

        Returns ``(used, changed)``: the capacity actually consumed and
        whether any item's rate moved.
        """
        pending = sorted(group, key=_by_demand)
        n = len(pending)
        csum = 0.0
        k = n
        for i, it in enumerate(pending):
            d = it.demand
            if d * (n - i) > capacity - csum:
                k = i
                break
            csum += d
        changed = False
        if k < n:
            share = (capacity - csum) / (n - k)
            used = csum + share * (n - k)
            for i in range(k):
                it = pending[i]
                d = it.demand
                if it._rate != d:
                    it._rate = d
                    changed = True
            for i in range(k, n):
                it = pending[i]
                if it._rate != share:
                    it._rate = share
                    changed = True
        else:
            used = csum
            for it in pending:
                d = it.demand
                if it._rate != d:
                    it._rate = d
                    changed = True
        return used, changed

    def _schedule_next_completion(self) -> None:
        """Arm the completion timer from the per-class candidate lists.

        Candidates are the items that had service and finite work at
        their class's last recompute; rates cannot change without a
        recompute and settling only shrinks ``remaining``, so the lists
        stay exact for reused classes.  The ETA itself is always derived
        from the items' *live* remaining/rate (a cached absolute
        deadline would not be bit-identical in floating point).
        """
        if self._timer is not None:
            self.sim.cancel(self._timer)
            self._timer = None
        eta = math.inf
        candidates = self._eta_candidates
        for prio in self._prio_order:
            for it in candidates.get(prio, ()):
                rate = it._rate
                if rate > _EPS and it.remaining != math.inf:
                    eta = min(eta, it.remaining / rate)
        if eta is math.inf:
            return
        self._arm_timer(eta)

    def _arm_timer(self, eta: float) -> None:
        """Arm the completion timer ``eta`` seconds out.

        Builds the Timeout and attaches the (cached) bound callback
        directly — the ``call_in`` convenience path would add a lambda
        allocation and a subscribe call per re-arm, and re-arms happen
        on every flush that changed anything.
        """
        ev = Timeout(self.sim, eta if eta > 0.0 else 0.0)
        ev.callbacks = [self._on_timer_cb]
        self._timer = ev

    def _find_finished(self) -> List[FluidItem]:
        """Engine hook: items whose work is (float-tolerantly) done, in
        submission order.  An item is done when under a nanosecond of
        service remains: the absolute tolerance alone is not enough
        because work values can be huge (bytes), making float error
        exceed any fixed epsilon."""
        return [
            it for it in self._items
            if it.remaining <= max(_DONE_TOL, it._rate * 1e-9)
        ]

    def _on_timer(self, _ev: Optional[Event] = None) -> None:
        self._timer = None
        self._settle()
        finished = self._find_finished()
        for it in finished:
            self._remove(it)
            it._sched = None
            it._rate = 0.0
            it.remaining = 0.0
            it.finished_at = self.sim.now
        # Even when floating-point guards left nothing finished, the
        # timer must be re-armed from the settled state.
        self._dirty = False
        self._structure_changed = True
        self._reassign()
        for it in finished:
            it.done.succeed(it)

    def __repr__(self) -> str:
        return (f"<FluidScheduler {self.name!r} cap={self._capacity:g} "
                f"items={len(self._items)} load={self._load:g}"
                f"{' dirty' if self._dirty else ''}>")


def _by_demand(item: FluidItem) -> float:
    return item.demand
