"""Fluid-flow scheduler: the core trick enabling ms-granularity simulation.

Real Quicksand relies on Caladan-style core reallocation at microsecond
granularity.  Simulating every scheduling quantum would be prohibitively
slow in Python, so instead we model continuous *work* served at
*rates*: the scheduler assigns each active item a service rate (strict
priority across classes, max-min fair water-filling within a class, each
item capped by its ``demand``) and only emits events when the rate vector
changes or an item completes.  Preemption at any time granularity falls
out for free: when a high-priority item arrives, lower classes' rates drop
(possibly to zero) instantly.

The same abstraction serves three substrates:

* CPU: capacity = cores, demand = threads an item can use;
* NIC: capacity = bytes/s, items are transfers;
* storage: capacity = IOPS, items are I/O batches.

Incremental engine
------------------

Rate recomputation is *coalesced*: mutations (submit / detach / attach /
set_demand / set_capacity / …) only mark the scheduler dirty; one
water-fill runs per flush point instead of one per mutation.  A flush
happens

* from the simulator's pending-flush drain, which runs before virtual
  time next advances, so deferral is observationally invisible; and
* lazily, before any read of rates, aggregates or completion ETAs; and
* immediately, when mutating outside the event loop (keeps direct
  driving code and tests exactly as responsive as the eager engine).

Because no virtual time can pass between a mutation and its flush, the
deferred water-fill sees exactly the state an eager one would have, and
simulated timelines are unchanged.  Aggregates (``load``, per-priority
rate sums, ``demand_total``) are maintained as caches so placement
policies and metrics observers read them in O(#priorities) or O(1)
rather than O(#items).  Superseded completion timers are truly cancelled
on the simulator heap (see :meth:`Simulator.cancel`) instead of being
left to fire as no-ops.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional

from .errors import UnboundResource
from .events import Event
from .simulator import Simulator

_EPS = 1e-12
#: Work remaining below this is considered complete (guards float drift).
_DONE_TOL = 1e-9


class FluidItem:
    """One unit of continuous work being served by a :class:`FluidScheduler`.

    Attributes
    ----------
    remaining:
        Work left, in capacity-seconds (e.g. core-seconds, bytes).
        ``math.inf`` denotes a *hold* that only ends when cancelled.
    demand:
        Maximum rate this item can absorb (e.g. number of runnable
        threads for CPU, link rate for NIC).
    priority:
        Lower value = served first.  Strict across classes.
    rate:
        Current assigned service rate (managed by the scheduler; reading
        it flushes any pending reassignment first).
    done:
        Event that succeeds (with the item) when work reaches zero.
    """

    __slots__ = ("name", "demand", "priority", "remaining", "_rate", "done",
                 "submitted_at", "started_at", "finished_at", "_sched",
                 "owner")

    def __init__(self, sched: "FluidScheduler", name: str, work: float,
                 demand: float, priority: int, owner=None):
        self.name = name
        self.demand = float(demand)
        self.priority = int(priority)
        self.remaining = float(work)
        self._rate = 0.0
        self.done: Event = sched.sim.event()
        self.submitted_at = sched.sim.now
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self._sched: Optional[FluidScheduler] = sched
        self.owner = owner

    @property
    def rate(self) -> float:
        """Current assigned service rate (flushes pending reassignment)."""
        sched = self._sched
        if sched is not None and sched._dirty:
            sched._flush()
        return self._rate

    @property
    def active(self) -> bool:
        """True while the item is attached to a scheduler."""
        return self._sched is not None

    @property
    def starved(self) -> bool:
        """True if attached but currently receiving no service."""
        return self._sched is not None and self.rate <= _EPS

    def queueing_delay(self, now: float) -> float:
        """Time since submission without any service (the §5 signal).

        ``detach`` resets service-start tracking and ``attach`` restarts
        the submission clock, so after a migration this measures
        post-migration queueing rather than sticking at zero.
        """
        sched = self._sched
        if sched is not None and sched._dirty:
            sched._flush()
        if self.started_at is not None:
            return 0.0
        return now - self.submitted_at

    def __repr__(self) -> str:
        return (f"<FluidItem {self.name!r} prio={self.priority} "
                f"rate={self._rate:.3g} remaining={self.remaining:.3g}>")


class FluidScheduler:
    """Strict-priority, max-min-fair rate scheduler over one capacity."""

    def __init__(self, sim: Simulator, capacity: float, name: str = "fluid"):
        if capacity < 0:
            raise ValueError(f"negative capacity: {capacity}")
        self.sim = sim
        self.name = name
        self._capacity = float(capacity)
        self._items: List[FluidItem] = []
        # Persistent priority buckets; each bucket preserves _items order.
        self._buckets: Dict[int, List[FluidItem]] = {}
        self._prio_order: List[int] = []
        self._last_update = sim.now
        # Cached aggregates, valid whenever the scheduler is clean.
        self._load = 0.0
        self._demand_total = 0.0
        self._rate_sum: Dict[int, float] = {}
        # Coalesced-reassignment state.
        self._dirty = False
        self._structure_changed = False
        self._flush_scheduled = False
        self._in_flush = False
        self._timer: Optional[Event] = None
        # Integral of served rate over time, total and per priority class.
        self.served_integral = 0.0
        self.served_by_priority: Dict[int, float] = {}
        self._observers: List[Callable[["FluidScheduler"], None]] = []

    # -- configuration ------------------------------------------------------
    @property
    def capacity(self) -> float:
        return self._capacity

    def set_capacity(self, capacity: float) -> None:
        """Change total capacity (e.g. cores taken offline)."""
        if capacity < 0:
            raise ValueError(f"negative capacity: {capacity}")
        self._capacity = float(capacity)
        self._mark_dirty()

    def add_observer(self, fn: Callable[["FluidScheduler"], None]) -> None:
        """Call *fn(self)* after every rate reassignment that changed
        something (rates or the attached-item set)."""
        self._observers.append(fn)

    # -- submission ----------------------------------------------------------
    def submit(self, work: float, demand: float = 1.0, priority: int = 1,
               name: str = "", owner=None) -> FluidItem:
        """Submit *work* capacity-seconds; returns the tracking item."""
        if work < 0:
            raise ValueError(f"negative work: {work}")
        if demand <= 0:
            raise ValueError(f"demand must be positive: {demand}")
        item = FluidItem(self, name or f"{self.name}-item", work, demand,
                         priority, owner=owner)
        if work <= _DONE_TOL:
            item._sched = None
            item.remaining = 0.0
            item.finished_at = self.sim.now
            item.done.succeed(item)
            return item
        self._insert(item)
        return item

    def hold(self, demand: float, priority: int = 1, name: str = "",
             owner=None) -> FluidItem:
        """Submit an unbounded item that runs until cancelled."""
        item = FluidItem(self, name or f"{self.name}-hold", math.inf, demand,
                         priority, owner=owner)
        self._insert(item)
        return item

    # -- removal --------------------------------------------------------------
    def cancel(self, item: FluidItem) -> float:
        """Remove *item* without completing it; returns remaining work."""
        return self.detach(item)

    def detach(self, item: FluidItem) -> float:
        """Remove *item* preserving its remaining work (for migration).

        The ``done`` event is left untriggered so the item can be
        re-submitted elsewhere via :meth:`attach`.  Service-start
        tracking is reset so queueing delay is measured afresh wherever
        the item lands next.
        """
        if item._sched is not self:
            raise UnboundResource(f"{item!r} is not attached to {self.name}")
        self._settle()
        self._remove(item)
        item._sched = None
        item._rate = 0.0
        item.started_at = None
        self._mark_dirty()
        return item.remaining

    def attach(self, item: FluidItem) -> None:
        """Re-attach a detached item (its remaining work resumes here).

        The submission clock restarts so ``queueing_delay`` measures
        time queued *here*, not time since the original submission.
        """
        if item._sched is not None:
            raise UnboundResource(f"{item!r} is already attached")
        if item.done.triggered:
            raise UnboundResource(f"{item!r} already completed")
        item._sched = self
        item.submitted_at = self.sim.now
        self._insert(item)

    def fail_all(self, exc: BaseException) -> None:
        """Fail every attached item with *exc* (machine failure).

        Each item's ``done`` event fails, so processes blocked on the
        work observe the failure immediately.  A no-op when nothing is
        attached (no spurious reassignment or observer churn).
        """
        if not self._items:
            return
        self._settle()
        items, self._items = self._items, []
        self._buckets.clear()
        self._prio_order = []
        self._demand_total = 0.0
        self._structure_changed = True
        for item in items:
            item._sched = None
            item._rate = 0.0
            item.done.fail(exc)
        self._mark_dirty()

    # -- tuning ---------------------------------------------------------------
    def set_demand(self, item: FluidItem, demand: float) -> None:
        if item._sched is not self:
            raise UnboundResource(f"{item!r} is not attached to {self.name}")
        if demand <= 0:
            raise ValueError(f"demand must be positive: {demand}")
        self._demand_total += float(demand) - item.demand
        item.demand = float(demand)
        self._mark_dirty()

    def set_priority(self, item: FluidItem, priority: int) -> None:
        if item._sched is not self:
            raise UnboundResource(f"{item!r} is not attached to {self.name}")
        # Served work so far must be booked under the old class.
        self._settle()
        old = item.priority
        item.priority = int(priority)
        if item.priority != old:
            self._buckets[old].remove(item)
            if not self._buckets[old]:
                del self._buckets[old]
            # Rebuild the destination bucket from _items so the bucket
            # keeps submission order (identical to the eager engine's
            # rebuild-from-scratch behaviour).
            self._buckets[item.priority] = [
                it for it in self._items if it.priority == item.priority
            ]
            self._prio_order = sorted(self._buckets)
            self._structure_changed = True
        self._mark_dirty()

    # -- inspection -------------------------------------------------------------
    @property
    def items(self) -> List[FluidItem]:
        return list(self._items)

    def __len__(self) -> int:
        return len(self._items)

    @property
    def load(self) -> float:
        """Sum of current service rates (<= capacity).  Cached: O(1)."""
        if self._dirty:
            self._flush()
        return self._load

    @property
    def demand_total(self) -> float:
        """Sum of attached demands.  Cached: O(1)."""
        return self._demand_total

    def free_capacity(self, priority: int = 10**9) -> float:
        """Capacity a new item at *priority* could obtain without
        squeezing anyone: total capacity minus the rates of items at this
        priority or more urgent.  This is the signal placement policies
        use ("how many idle cores does this machine have for me?").
        O(#priority classes) thanks to cached per-class rate sums."""
        if self._dirty:
            self._flush()
        used = 0.0
        rate_sum = self._rate_sum
        for prio in self._prio_order:
            if prio <= priority:
                used += rate_sum[prio]
        return max(0.0, self._capacity - used)

    def utilization_since(self, t0: float, integral0: float) -> float:
        """Mean utilization in [t0, now] given a prior integral snapshot."""
        self.sync()
        dt = self.sim.now - t0
        if dt <= 0 or self._capacity <= 0:
            return 0.0
        return (self.served_integral - integral0) / (dt * self._capacity)

    def sync(self) -> None:
        """Bring rates and served-work accounting up to the current
        instant (flushing any pending reassignment first)."""
        if self._dirty:
            self._flush()
        else:
            self._settle()

    # -- engine ------------------------------------------------------------------
    def _insert(self, item: FluidItem) -> None:
        self._items.append(item)
        bucket = self._buckets.get(item.priority)
        if bucket is None:
            self._buckets[item.priority] = [item]
            self._prio_order = sorted(self._buckets)
        else:
            bucket.append(item)
        self._demand_total += item.demand
        self._structure_changed = True
        self._mark_dirty()

    def _remove(self, item: FluidItem) -> None:
        self._items.remove(item)
        bucket = self._buckets[item.priority]
        bucket.remove(item)
        if not bucket:
            del self._buckets[item.priority]
            self._prio_order = sorted(self._buckets)
        self._demand_total -= item.demand
        if not self._items:
            self._demand_total = 0.0  # clamp accumulated float drift
        self._structure_changed = True

    def _mark_dirty(self) -> None:
        """Note a pending reassignment and arrange for it to flush.

        Inside the event loop the scheduler joins the simulator's
        pending-flush list, drained before virtual time next advances
        (so a burst of k mutations at one instant costs one water-fill);
        outside the loop it flushes immediately, preserving the eager
        engine's read-after-write behaviour for driver code and tests.
        """
        self._dirty = True
        sim = self.sim
        if not sim._running and not self._in_flush:
            self._flush()
        elif not self._flush_scheduled:
            self._flush_scheduled = True
            sim._pending_flushes.append(self)

    def _run_pending_flush(self) -> None:
        self._flush_scheduled = False
        if self._dirty:
            self._flush()

    def _flush(self) -> None:
        """Settle served work, then run the coalesced reassignment."""
        if not self._dirty or self._in_flush:
            return
        self._in_flush = True
        try:
            self._settle()
            self._dirty = False
            self._reassign()
        finally:
            self._in_flush = False

    def _settle(self) -> None:
        """Advance every item's remaining work to the current time."""
        now = self.sim.now
        elapsed = now - self._last_update
        if elapsed <= 0:
            return
        self._last_update = now
        if self._load == 0.0 or not self._items:
            return  # provably no service since the last update
        served = self.served_by_priority
        total_rate = 0.0
        for it in self._items:
            rate = it._rate
            if rate > 0:
                if it.remaining is not math.inf:
                    it.remaining = max(0.0, it.remaining - rate * elapsed)
                served[it.priority] = served.get(it.priority, 0.0) \
                    + rate * elapsed
                total_rate += rate
        self.served_integral += total_rate * elapsed

    def _reassign(self) -> None:
        """Recompute rates; reschedule completion and notify observers
        only when something actually changed."""
        remaining_cap = self._capacity
        changed = self._structure_changed
        self._structure_changed = False
        load = 0.0
        rate_sum = self._rate_sum
        rate_sum.clear()
        for prio in self._prio_order:
            group = self._buckets[prio]
            if remaining_cap <= _EPS:
                for it in group:
                    if it._rate != 0.0:
                        it._rate = 0.0
                        changed = True
                rate_sum[prio] = 0.0
                continue
            used, group_changed = self._water_fill(group, remaining_cap)
            changed |= group_changed
            rate_sum[prio] = used
            load += used
            remaining_cap -= used
        self._load = load

        if not changed:
            # Rates are bit-identical and the item set is unchanged: the
            # pending completion timer still targets the right instant
            # and observers would see nothing new.
            return

        now = self.sim.now
        for it in self._items:
            if it._rate > _EPS and it.started_at is None:
                it.started_at = now

        tracer = self.sim.tracer
        if tracer is not None:
            tracer.instant("waterfill", self.name,
                           track=f"sched:{self.name}",
                           items=len(self._items), load=round(load, 6))

        self._schedule_next_completion()
        for obs in self._observers:
            obs(self)

    @staticmethod
    def _water_fill(group: List[FluidItem], capacity: float):
        """Max-min fair allocation with per-item demand caps.

        Returns ``(used, changed)``: the capacity actually consumed and
        whether any item's rate moved.
        """
        pending = sorted(group, key=_by_demand)
        cap = capacity
        used = 0.0
        changed = False
        n = len(pending)
        for i, it in enumerate(pending):
            share = cap / (n - i)
            rate = min(it.demand, share)
            if rate != it._rate:
                it._rate = rate
                changed = True
            cap -= rate
            used += rate
        return used, changed

    def _schedule_next_completion(self) -> None:
        if self._timer is not None:
            self.sim.cancel(self._timer)
            self._timer = None
        eta = math.inf
        for it in self._items:
            rate = it._rate
            if rate > _EPS and it.remaining is not math.inf:
                eta = min(eta, it.remaining / rate)
        if eta is math.inf:
            return
        self._timer = self.sim.call_in(max(0.0, eta), self._on_timer)

    def _on_timer(self) -> None:
        self._timer = None
        self._settle()
        # An item is done when under a nanosecond of service remains: the
        # absolute tolerance alone is not enough because work values can
        # be huge (bytes), making float error exceed any fixed epsilon.
        finished = [
            it for it in self._items
            if it.remaining <= max(_DONE_TOL, it._rate * 1e-9)
        ]
        for it in finished:
            self._remove(it)
            it._sched = None
            it._rate = 0.0
            it.remaining = 0.0
            it.finished_at = self.sim.now
        # Even when floating-point guards left nothing finished, the
        # timer must be re-armed from the settled state.
        self._dirty = False
        self._structure_changed = True
        self._reassign()
        for it in finished:
            it.done.succeed(it)

    def __repr__(self) -> str:
        return (f"<FluidScheduler {self.name!r} cap={self._capacity:g} "
                f"items={len(self._items)} load={self._load:g}"
                f"{' dirty' if self._dirty else ''}>")


def _by_demand(item: FluidItem) -> float:
    return item.demand
