"""Fluid-flow scheduler: the core trick enabling ms-granularity simulation.

Real Quicksand relies on Caladan-style core reallocation at microsecond
granularity.  Simulating every scheduling quantum would be prohibitively
slow in Python, so instead we model continuous *work* served at
*rates*: the scheduler assigns each active item a service rate (strict
priority across classes, max-min fair water-filling within a class, each
item capped by its ``demand``) and only emits events when the rate vector
changes or an item completes.  Preemption at any time granularity falls
out for free: when a high-priority item arrives, lower classes' rates drop
(possibly to zero) instantly.

The same abstraction serves three substrates:

* CPU: capacity = cores, demand = threads an item can use;
* NIC: capacity = bytes/s, items are transfers;
* storage: capacity = IOPS, items are I/O batches.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional

from .errors import UnboundResource
from .events import Event
from .simulator import Simulator

_EPS = 1e-12
#: Work remaining below this is considered complete (guards float drift).
_DONE_TOL = 1e-9


class FluidItem:
    """One unit of continuous work being served by a :class:`FluidScheduler`.

    Attributes
    ----------
    remaining:
        Work left, in capacity-seconds (e.g. core-seconds, bytes).
        ``math.inf`` denotes a *hold* that only ends when cancelled.
    demand:
        Maximum rate this item can absorb (e.g. number of runnable
        threads for CPU, link rate for NIC).
    priority:
        Lower value = served first.  Strict across classes.
    rate:
        Current assigned service rate (managed by the scheduler).
    done:
        Event that succeeds (with the item) when work reaches zero.
    """

    __slots__ = ("name", "demand", "priority", "remaining", "rate", "done",
                 "submitted_at", "started_at", "finished_at", "_sched",
                 "owner")

    def __init__(self, sched: "FluidScheduler", name: str, work: float,
                 demand: float, priority: int, owner=None):
        self.name = name
        self.demand = float(demand)
        self.priority = int(priority)
        self.remaining = float(work)
        self.rate = 0.0
        self.done: Event = sched.sim.event()
        self.submitted_at = sched.sim.now
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self._sched: Optional[FluidScheduler] = sched
        self.owner = owner

    @property
    def active(self) -> bool:
        """True while the item is attached to a scheduler."""
        return self._sched is not None

    @property
    def starved(self) -> bool:
        """True if attached but currently receiving no service."""
        return self._sched is not None and self.rate <= _EPS

    def queueing_delay(self, now: float) -> float:
        """Time since submission without any service (the §5 signal)."""
        if self.started_at is not None:
            return 0.0
        return now - self.submitted_at

    def __repr__(self) -> str:
        return (f"<FluidItem {self.name!r} prio={self.priority} "
                f"rate={self.rate:.3g} remaining={self.remaining:.3g}>")


class FluidScheduler:
    """Strict-priority, max-min-fair rate scheduler over one capacity."""

    def __init__(self, sim: Simulator, capacity: float, name: str = "fluid"):
        if capacity < 0:
            raise ValueError(f"negative capacity: {capacity}")
        self.sim = sim
        self.name = name
        self._capacity = float(capacity)
        self._items: List[FluidItem] = []
        self._last_update = sim.now
        self._epoch = 0
        # Integral of served rate over time, total and per priority class.
        self.served_integral = 0.0
        self.served_by_priority: Dict[int, float] = {}
        self._observers: List[Callable[["FluidScheduler"], None]] = []

    # -- configuration ------------------------------------------------------
    @property
    def capacity(self) -> float:
        return self._capacity

    def set_capacity(self, capacity: float) -> None:
        """Change total capacity (e.g. cores taken offline)."""
        if capacity < 0:
            raise ValueError(f"negative capacity: {capacity}")
        self._settle()
        self._capacity = float(capacity)
        self._reassign()

    def add_observer(self, fn: Callable[["FluidScheduler"], None]) -> None:
        """Call *fn(self)* after every rate reassignment."""
        self._observers.append(fn)

    # -- submission ----------------------------------------------------------
    def submit(self, work: float, demand: float = 1.0, priority: int = 1,
               name: str = "", owner=None) -> FluidItem:
        """Submit *work* capacity-seconds; returns the tracking item."""
        if work < 0:
            raise ValueError(f"negative work: {work}")
        if demand <= 0:
            raise ValueError(f"demand must be positive: {demand}")
        item = FluidItem(self, name or f"{self.name}-item", work, demand,
                         priority, owner=owner)
        if work <= _DONE_TOL:
            item._sched = None
            item.remaining = 0.0
            item.finished_at = self.sim.now
            item.done.succeed(item)
            return item
        self._settle()
        self._items.append(item)
        self._reassign()
        return item

    def hold(self, demand: float, priority: int = 1, name: str = "",
             owner=None) -> FluidItem:
        """Submit an unbounded item that runs until cancelled."""
        item = FluidItem(self, name or f"{self.name}-hold", math.inf, demand,
                         priority, owner=owner)
        self._settle()
        self._items.append(item)
        self._reassign()
        return item

    # -- removal --------------------------------------------------------------
    def cancel(self, item: FluidItem) -> float:
        """Remove *item* without completing it; returns remaining work."""
        return self.detach(item)

    def detach(self, item: FluidItem) -> float:
        """Remove *item* preserving its remaining work (for migration).

        The ``done`` event is left untriggered so the item can be
        re-submitted elsewhere via :meth:`attach`.
        """
        if item._sched is not self:
            raise UnboundResource(f"{item!r} is not attached to {self.name}")
        self._settle()
        self._items.remove(item)
        item._sched = None
        item.rate = 0.0
        self._reassign()
        return item.remaining

    def attach(self, item: FluidItem) -> None:
        """Re-attach a detached item (its remaining work resumes here)."""
        if item._sched is not None:
            raise UnboundResource(f"{item!r} is already attached")
        if item.done.triggered:
            raise UnboundResource(f"{item!r} already completed")
        item._sched = self
        self._settle()
        self._items.append(item)
        self._reassign()

    def fail_all(self, exc: BaseException) -> None:
        """Fail every attached item with *exc* (machine failure).

        Each item's ``done`` event fails, so processes blocked on the
        work observe the failure immediately.
        """
        self._settle()
        items, self._items = self._items, []
        for item in items:
            item._sched = None
            item.rate = 0.0
            item.done.fail(exc)
        self._reassign()

    # -- tuning ---------------------------------------------------------------
    def set_demand(self, item: FluidItem, demand: float) -> None:
        if item._sched is not self:
            raise UnboundResource(f"{item!r} is not attached to {self.name}")
        if demand <= 0:
            raise ValueError(f"demand must be positive: {demand}")
        self._settle()
        item.demand = float(demand)
        self._reassign()

    def set_priority(self, item: FluidItem, priority: int) -> None:
        if item._sched is not self:
            raise UnboundResource(f"{item!r} is not attached to {self.name}")
        self._settle()
        item.priority = int(priority)
        self._reassign()

    # -- inspection -------------------------------------------------------------
    @property
    def items(self) -> List[FluidItem]:
        return list(self._items)

    @property
    def load(self) -> float:
        """Sum of current service rates (<= capacity)."""
        return sum(it.rate for it in self._items)

    @property
    def demand_total(self) -> float:
        return sum(it.demand for it in self._items)

    def free_capacity(self, priority: int = 10**9) -> float:
        """Capacity a new item at *priority* could obtain without
        squeezing anyone: total capacity minus the rates of items at this
        priority or more urgent.  This is the signal placement policies
        use ("how many idle cores does this machine have for me?")."""
        used = sum(it.rate for it in self._items if it.priority <= priority)
        return max(0.0, self._capacity - used)

    def utilization_since(self, t0: float, integral0: float) -> float:
        """Mean utilization in [t0, now] given a prior integral snapshot."""
        self._settle()
        dt = self.sim.now - t0
        if dt <= 0 or self._capacity <= 0:
            return 0.0
        return (self.served_integral - integral0) / (dt * self._capacity)

    # -- engine ------------------------------------------------------------------
    def _settle(self) -> None:
        """Advance every item's remaining work to the current time."""
        now = self.sim.now
        elapsed = now - self._last_update
        if elapsed <= 0:
            return
        total_rate = 0.0
        for it in self._items:
            if it.rate > 0 and it.remaining is not math.inf:
                it.remaining = max(0.0, it.remaining - it.rate * elapsed)
            total_rate += it.rate
            if it.rate > 0:
                per = self.served_by_priority
                per[it.priority] = per.get(it.priority, 0.0) \
                    + it.rate * elapsed
        self.served_integral += total_rate * elapsed
        self._last_update = now

    def _reassign(self) -> None:
        """Recompute rates and reschedule the next completion."""
        remaining_cap = self._capacity
        by_prio: Dict[int, List[FluidItem]] = {}
        for it in self._items:
            by_prio.setdefault(it.priority, []).append(it)

        for prio in sorted(by_prio):
            group = by_prio[prio]
            if remaining_cap <= _EPS:
                for it in group:
                    it.rate = 0.0
                continue
            remaining_cap -= self._water_fill(group, remaining_cap)

        now = self.sim.now
        for it in self._items:
            if it.rate > _EPS and it.started_at is None:
                it.started_at = now

        self._schedule_next_completion()
        for obs in self._observers:
            obs(self)

    @staticmethod
    def _water_fill(group: List[FluidItem], capacity: float) -> float:
        """Max-min fair allocation with per-item demand caps.

        Returns the capacity actually consumed.
        """
        pending = sorted(group, key=lambda it: it.demand)
        cap = capacity
        used = 0.0
        n = len(pending)
        for i, it in enumerate(pending):
            share = cap / (n - i)
            rate = min(it.demand, share)
            it.rate = rate
            cap -= rate
            used += rate
        return used

    def _schedule_next_completion(self) -> None:
        self._epoch += 1
        epoch = self._epoch
        eta = math.inf
        for it in self._items:
            if it.rate > _EPS and it.remaining is not math.inf:
                eta = min(eta, it.remaining / it.rate)
        if eta is math.inf:
            return
        self.sim.call_in(max(0.0, eta), self._on_timer, epoch)

    def _on_timer(self, epoch: int) -> None:
        if epoch != self._epoch:
            return  # a reassignment superseded this timer
        self._settle()
        # An item is done when under a nanosecond of service remains: the
        # absolute tolerance alone is not enough because work values can
        # be huge (bytes), making float error exceed any fixed epsilon.
        finished = [
            it for it in self._items
            if it.remaining <= max(_DONE_TOL, it.rate * 1e-9)
        ]
        for it in finished:
            self._items.remove(it)
            it._sched = None
            it.rate = 0.0
            it.remaining = 0.0
            it.finished_at = self.sim.now
        self._reassign()
        for it in finished:
            it.done.succeed(it)

    def __repr__(self) -> str:
        return (f"<FluidScheduler {self.name!r} cap={self._capacity:g} "
                f"items={len(self._items)} load={self.load:g}>")
