"""Generator-based simulation processes.

A process is a Python generator that *yields events* to suspend.  When a
yielded event is processed, the process resumes with the event's value (or
has the event's exception thrown into it).  The :class:`Process` object is
itself an event that triggers when the generator returns, so processes
compose: one process can ``yield`` another.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from .errors import Interrupt
from .events import Event


class Process(Event):
    """Drives a generator as a cooperative simulation process."""

    __slots__ = ("generator", "name", "_target", "_started", "_resume_cb")

    def __init__(self, sim, generator: Generator, name: str = ""):
        if not hasattr(generator, "send"):
            raise TypeError(
                f"Process needs a generator, got {type(generator).__name__}; "
                "did you forget to call the generator function?"
            )
        super().__init__(sim)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "proc")
        self._target: Optional[Event] = None
        self._started = False
        # One bound method for the process's whole lifetime: every yield
        # re-subscribes this callback, and binding it per-yield is pure
        # allocator churn on the dispatch hot path.
        self._resume_cb = self._resume
        # Kick off on the next queue pop at the current time.
        init = Event(sim)
        init._ok = True
        init._value = None
        sim._schedule(init)
        init.callbacks = [self._resume_cb]

    # -- inspection -------------------------------------------------------
    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.triggered

    @property
    def target(self) -> Optional[Event]:
        """The event this process is currently waiting on (if any)."""
        return self._target

    # -- control ----------------------------------------------------------
    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process as soon as possible.

        The process is detached from whatever event it was waiting on; that
        event remains valid but will no longer resume this process.
        Interrupting a finished process is a no-op.
        """
        if self.triggered:
            return
        if self._target is not None:
            self._target.unsubscribe(self._resume_cb)
            self._target = None
        wakeup = Event(self.sim)
        wakeup._ok = False
        wakeup._value = Interrupt(cause)
        # Mark so _resume throws instead of failing the whole process
        # when the generator does not catch it?  No: an uncaught Interrupt
        # fails the process like any exception, which is the semantics we
        # want for preemption-kill.
        self.sim._schedule(wakeup)
        wakeup.subscribe(self._resume_cb)

    # -- engine -----------------------------------------------------------
    def _resume(self, event: Event) -> None:
        if self.triggered:
            # A late wakeup (e.g. a second interrupt scheduled before the
            # first one finished the process) — nothing left to resume.
            return
        self._started = True
        self._target = None
        while True:
            try:
                if event._ok:
                    next_ev = self.generator.send(event._value)
                else:
                    next_ev = self.generator.throw(event._value)
            except StopIteration as stop:
                if not self.triggered:
                    self.succeed(stop.value)
                return
            except BaseException as exc:
                if not self.triggered:
                    self.fail(exc)
                    return
                raise

            if not isinstance(next_ev, Event):
                err = TypeError(
                    f"process {self.name!r} yielded {next_ev!r}; "
                    "processes may only yield Event instances"
                )
                try:
                    self.generator.throw(err)
                except StopIteration:
                    self.succeed(None)
                except BaseException as exc:
                    self.fail(exc)
                return

            if next_ev._processed:
                # Already-processed event: continue synchronously.
                event = next_ev
                continue
            self._target = next_ev
            # Inlined subscribe (next_ev is known unprocessed here).
            cbs = next_ev.callbacks
            if cbs is None:
                next_ev.callbacks = [self._resume_cb]
            else:
                cbs.append(self._resume_cb)
            return

    def __repr__(self) -> str:
        state = "alive" if self.is_alive else "done"
        return f"<Process {self.name!r} {state}>"
