"""Numpy struct-of-arrays fluid engine (``REPRO_VECTOR_FLUID=1``).

:class:`VectorFluidScheduler` is the :class:`~repro.sim.fluid.FluidScheduler`
with its per-item hot state — remaining work, assigned rate, demand —
moved out of Python objects into flat numpy arrays indexed by *slots*.
A :class:`VecFluidItem` is a thin handle: its ``remaining``/``_rate``
attributes are properties reading and writing the arrays while the item
is attached (and a two-float list after detach, so handles stay readable
after migration or completion).  Slots are recycled through a free list
and the arrays double on demand.

What this buys:

* water-fills run as array kernels (stable argsort + sequential cumsum
  + elementwise compare) instead of per-item Python loops, with a
  per-class cache keyed by a membership version and memoized per
  entering capacity — an alternating-capacity workload (the timerstorm
  shape) replays whole fills from a dict hit;
* settle advances every ``remaining`` with two vector ops;
* completion scans (the ETA minimum and the finished filter) are masked
  reductions instead of candidate-list walks.

Bit-identity
------------

Trajectories must be bit-identical with the toggle on or off (the chaos
sha256 digest gate enforces it, exactly like the timer wheel's).  The
argument, per observable float:

* *fills*: both engines compute the prefix-sum formulation in
  ``docs/kernel.md`` with the same per-element operations.  numpy's
  ``cumsum`` accumulates sequentially (unlike ``sum``'s pairwise
  reduction), stable ``argsort`` reproduces Python's stable sort on the
  same bucket order, and scalar float64 math follows the same IEEE
  rules as Python floats.  Cache reuse only skips recomputation of a
  pure function of (sorted demands, entering capacity).
* *settle*: ``rem -= rate * elapsed`` then a zero clamp is per-element
  exactly ``max(0.0, r - rate*elapsed)``; unattached slots carry rate
  0.0 and ``x - 0.0 == x`` bitwise for the non-negative ``x`` stored
  here, so they pass through unchanged.
* *ETAs*: ``min`` over ``remaining/rate`` is an exact reduction over
  the same candidate set (rates only change inside a recompute, so the
  live mask equals the scalar engine's per-class candidate lists).
* *completion order*: finished slots are reordered by an insertion
  sequence number, reproducing the scalar engine's submission-order
  scan.

This module imports numpy at module scope; the core library only
imports it lazily (see ``fluid._vector_cls``), keeping the no-numpy
invariant when the toggle is off or numpy is absent.
"""

from __future__ import annotations

import math
from typing import List, Optional

import numpy as np

from .fluid import FluidItem, FluidScheduler, _DONE_TOL, _EPS, _by_demand

_INF = math.inf

#: Classes at or under this size water-fill through the plain-Python
#: path (same formulation, identical floats) — below it the numpy
#: kernel's fixed overhead outweighs the loop.  The threshold is pure
#: performance tuning: both paths produce the same bits at any size.
_SMALL_CLASS = 32

#: Item counts at or under this settle through the scalar per-item
#: advance instead of two whole-array ops.
_SMALL_SETTLE = 8

#: Item counts at or under this run the completion scans (ETA minimum,
#: finished filter) as plain loops — a cluster full of 2-item machine
#: schedulers must not pay a masked-reduction's fixed cost per flush.
_SMALL_SCAN = 24

#: Per-class fill memo entries kept before the dict is reset.
_MEMO_LIMIT = 16


class VecFluidItem(FluidItem):
    """Slot-backed handle onto the scheduler's struct-of-arrays state.

    While attached (``_slot >= 0``) the hot fields live in the
    scheduler's arrays; after detach they are materialized into
    ``_rem0``/``_rate0`` so the handle keeps answering
    ``remaining``/``rate`` reads, exactly like a plain
    :class:`FluidItem` would.
    """

    __slots__ = ("_slot", "_rem0", "_rate0")

    def __init__(self, sched, name, work, demand, priority, owner=None):
        # Set before super().__init__, whose remaining/_rate stores go
        # through the properties below.
        self._slot = -1
        self._rem0 = 0.0
        self._rate0 = 0.0
        super().__init__(sched, name, work, demand, priority, owner=owner)

    @property
    def remaining(self):
        slot = self._slot
        if slot < 0:
            return self._rem0
        v = self._sched._rem[slot]
        # Preserve the math.inf singleton: hold items are compared with
        # ``is math.inf`` in places, and a fresh float('inf') is not it.
        return _INF if v == _INF else float(v)

    @remaining.setter
    def remaining(self, value):
        slot = self._slot
        if slot < 0:
            self._rem0 = value
        else:
            self._sched._rem[slot] = value

    @property
    def _rate(self):
        slot = self._slot
        if slot < 0:
            return self._rate0
        return float(self._sched._ratev[slot])

    @_rate.setter
    def _rate(self, value):
        slot = self._slot
        if slot < 0:
            self._rate0 = value
        else:
            self._sched._ratev[slot] = value


class _ClassFill:
    """Cached sorted view of one priority class, valid for one
    membership/demand version, plus a fill memo keyed by entering
    capacity."""

    __slots__ = ("version", "n", "slots_sorted", "d_sorted", "csum_prev",
                 "coef", "total", "d_list", "sl_list", "memo")

    def __init__(self, version, n, slots_sorted, d_sorted, csum_prev,
                 coef, total, d_list, sl_list):
        self.version = version
        self.n = n
        self.slots_sorted = slots_sorted
        self.d_sorted = d_sorted
        self.csum_prev = csum_prev
        self.coef = coef
        self.total = total
        self.d_list = d_list
        self.sl_list = sl_list
        self.memo = {}


class VectorFluidScheduler(FluidScheduler):
    """Struct-of-arrays fluid engine; same API, bit-identical output."""

    vectorized = True
    _item_cls = VecFluidItem

    def __init__(self, sim, capacity, name="fluid",
                 vector: Optional[bool] = None):
        n = 64
        self._dem = np.zeros(n)
        # Free slots hold the inf sentinel: rate 0.0 keeps them out of
        # the settle/ETA math and remaining inf keeps them out of the
        # finished mask, so no occupancy array is needed.
        self._rem = np.full(n, _INF)
        self._ratev = np.zeros(n)
        self._seqv = np.zeros(n, dtype=np.int64)
        self._slot_items: List[Optional[VecFluidItem]] = [None] * n
        # Descending so pop() hands out low slots first (determinism is
        # not at stake — nothing observable depends on slot numbers —
        # but dense low slots keep the arrays cache-friendly).
        self._free: List[int] = list(range(n - 1, -1, -1))
        self._next_seq = 0
        self._fills = {}
        self._version = {}
        super().__init__(sim, capacity, name)

    # -- slot management ----------------------------------------------------
    def _grow(self) -> None:
        old = self._dem.shape[0]
        new = old * 2
        for attr, empty in (("_dem", 0.0), ("_rem", _INF), ("_ratev", 0.0)):
            arr = np.full(new, empty)
            arr[:old] = getattr(self, attr)
            setattr(self, attr, arr)
        seqv = np.zeros(new, dtype=np.int64)
        seqv[:old] = self._seqv
        self._seqv = seqv
        self._slot_items.extend([None] * old)
        self._free.extend(range(new - 1, old - 1, -1))

    def _alloc_slot(self, item: VecFluidItem) -> None:
        free = self._free
        if not free:
            self._grow()
        slot = free.pop()
        item._slot = slot
        self._dem[slot] = item.demand
        self._rem[slot] = item._rem0
        self._ratev[slot] = item._rate0
        self._seqv[slot] = self._next_seq
        self._next_seq += 1
        self._slot_items[slot] = item

    def _release_slot(self, item: VecFluidItem) -> None:
        slot = item._slot
        if slot < 0:
            return
        rem = self._rem[slot]
        item._rem0 = _INF if rem == _INF else float(rem)
        item._rate0 = float(self._ratev[slot])
        item._slot = -1
        self._slot_items[slot] = None
        # Back to the free-slot sentinel: rate 0.0 passes through the
        # settle/ETA math untouched, remaining inf never looks finished.
        self._ratev[slot] = 0.0
        self._rem[slot] = _INF
        self._free.append(slot)

    # -- engine hook overrides ----------------------------------------------
    def _insert(self, item: VecFluidItem) -> None:
        if item._slot < 0:
            self._alloc_slot(item)
        super()._insert(item)

    def _remove(self, item: VecFluidItem) -> None:
        super()._remove(item)
        self._release_slot(item)

    def _discard(self, item: VecFluidItem) -> None:
        self._release_slot(item)

    def _set_demand_hook(self, item: VecFluidItem) -> None:
        slot = item._slot
        if slot >= 0:
            self._dem[slot] = item.demand

    def fail_all(self, exc: BaseException) -> None:
        self._fills.clear()
        self._version.clear()
        super().fail_all(exc)

    # -- settle --------------------------------------------------------------
    def _advance_remaining(self, elapsed: float) -> None:
        if len(self._items) <= _SMALL_SETTLE:
            # Per-item advance straight on the arrays: the same
            # ``max(0.0, r - rate*elapsed)`` floats, no array
            # temporaries for a handful of items.
            finite = self._finite
            buckets = self._buckets
            rem = self._rem
            ratev = self._ratev
            for prio in self._prio_order:
                if finite.get(prio, 0):
                    for it in buckets[prio]:
                        s = it._slot
                        rate = ratev[s]
                        if rate > 0.0 and rem[s] != _INF:
                            nr = rem[s] - rate * elapsed
                            rem[s] = nr if nr > 0.0 else 0.0
            return
        # Per element this is exactly max(0.0, r - rate*elapsed); slots
        # with rate 0.0 (idle or freed) pass through bit-unchanged and
        # holds stay inf, so no mask is needed.
        rem = self._rem
        rem -= self._ratev * elapsed
        np.maximum(rem, 0.0, out=rem)

    # -- water-fill ----------------------------------------------------------
    def _class_fill(self, prio: int) -> _ClassFill:
        v = self._version.get(prio, 0)
        f = self._fills.get(prio)
        if f is not None and f.version == v:
            return f
        bucket = self._buckets[prio]
        n = len(bucket)
        if n <= _SMALL_CLASS:
            # Small class: build the sorted view without touching numpy
            # at all (timsort is stable on bucket order, like argsort).
            members = sorted(bucket, key=_by_demand)
            f = _ClassFill(v, n, None, None, None, None, 0.0,
                           [it.demand for it in members],
                           [it._slot for it in members])
            self._fills[prio] = f
            return f
        slots = np.fromiter((it._slot for it in bucket), dtype=np.intp,
                            count=n)
        d = self._dem[slots]
        # Stable argsort on bucket (= submission) order: identical tie
        # handling to the scalar engine's sorted(group, key=demand).
        order = np.argsort(d, kind="stable")
        d_sorted = d[order]
        slots_sorted = slots[order]
        csum = np.cumsum(d_sorted)  # sequential: Python's running sum
        csum_prev = np.empty(n)
        csum_prev[0] = 0.0
        csum_prev[1:] = csum[:-1]
        coef = d_sorted * np.arange(n, 0, -1, dtype=np.float64)
        f = _ClassFill(v, n, slots_sorted, d_sorted, csum_prev, coef,
                       float(csum[-1]), d_sorted.tolist(),
                       slots_sorted.tolist())
        self._fills[prio] = f
        return f

    def _fill_class(self, prio: int, cap: float):
        """Water-fill one class at entering capacity *cap*.

        Returns ``(used, changed)`` like the scalar ``_water_fill``.
        """
        f = self._class_fill(prio)
        n = f.n
        ratev = self._ratev
        if n <= _SMALL_CLASS:
            # Same prefix-sum formulation in plain Python — identical
            # floats, none of the numpy fixed costs.
            d_list = f.d_list
            sl = f.sl_list
            csum = 0.0
            k = n
            for i in range(n):
                d = d_list[i]
                if d * (n - i) > cap - csum:
                    k = i
                    break
                csum += d
            changed = False
            if k < n:
                share = (cap - csum) / (n - k)
                used = csum + share * (n - k)
                for i in range(k):
                    s = sl[i]
                    d = d_list[i]
                    if ratev[s] != d:
                        ratev[s] = d
                        changed = True
                for i in range(k, n):
                    s = sl[i]
                    if ratev[s] != share:
                        ratev[s] = share
                        changed = True
            else:
                used = csum
                for i in range(n):
                    s = sl[i]
                    d = d_list[i]
                    if ratev[s] != d:
                        ratev[s] = d
                        changed = True
            return used, changed

        memo = f.memo
        hit = memo.get(cap)
        if hit is None:
            # Constrained prefix: item i is capped at its demand iff
            # d[i]*(n-i) <= cap - csum_prev[i] — elementwise the same
            # compare the scalar loop makes before each break.
            bad = np.nonzero(f.coef > cap - f.csum_prev)[0]
            k = int(bad[0]) if bad.size else n
            if k < n:
                csum_k = float(f.csum_prev[k])
                share = (cap - csum_k) / (n - k)
                used = csum_k + share * (n - k)
                rates = f.d_sorted.copy()
                rates[k:] = share
            else:
                used = f.total
                rates = f.d_sorted
            if len(memo) >= _MEMO_LIMIT:
                memo.clear()
            memo[cap] = hit = (rates, used)
        rates, used = hit
        sl = f.slots_sorted
        if np.array_equal(ratev[sl], rates):
            return used, False
        ratev[sl] = rates
        return used, True

    # -- reassignment ---------------------------------------------------------
    def _reassign(self) -> None:
        """Vector twin of the scalar ``_reassign``: same per-class
        incremental skip logic and the same priority-order float
        accumulation, with fills running through the array kernel."""
        self._free_cache = None
        remaining_cap = self._capacity
        changed = self._structure_changed
        self._structure_changed = False
        dirty = self._dirty_classes
        if dirty:
            self._dirty_classes = set()
            version = self._version
            for prio in dirty:
                version[prio] = version.get(prio, 0) + 1
        load = 0.0
        rate_sum = self._rate_sum
        cap_in = self._cap_in
        ratev = self._ratev
        recomputed: List[int] = []
        for prio in self._prio_order:
            if prio not in dirty and cap_in.get(prio) == remaining_cap:
                used = rate_sum[prio]
                load += used
                remaining_cap -= used
                continue
            cap_in[prio] = remaining_cap
            recomputed.append(prio)
            if remaining_cap <= _EPS:
                f = self._class_fill(prio)
                if f.slots_sorted is None:  # small class: no arrays
                    for s in f.sl_list:
                        if ratev[s] != 0.0:
                            ratev[s] = 0.0
                            changed = True
                else:
                    sl = f.slots_sorted
                    if ratev[sl].any():
                        ratev[sl] = 0.0
                        changed = True
                rate_sum[prio] = 0.0
                continue
            used, group_changed = self._fill_class(prio, remaining_cap)
            changed |= group_changed
            rate_sum[prio] = used
            load += used
            remaining_cap -= used
        self._load = load

        if not changed:
            return

        now = self.sim.now
        pending = self._pending_start
        if pending:
            for prio in recomputed:
                if prio in pending:
                    self._stamp_started(prio, now)

        tracer = self.sim.tracer
        if tracer is not None:
            tracer.instant("waterfill", self.name,
                           track=f"sched:{self.name}",
                           items=len(self._items), load=round(load, 6))

        self._schedule_next_completion()
        for obs in self._observers:
            obs(self)

    # -- completion -----------------------------------------------------------
    def _schedule_next_completion(self) -> None:
        """Masked-reduction ETA: min over remaining/rate of every slot
        with service and finite work.  Rates only change inside a
        recompute, so this live mask equals the scalar engine's
        per-class candidate lists, and ``min`` over identical divisions
        is exact."""
        if self._timer is not None:
            self.sim.cancel(self._timer)
            self._timer = None
        if len(self._items) <= _SMALL_SCAN:
            # Plain loop over the handful of attached items — the same
            # divisions, min over the same set.
            rem = self._rem
            ratev = self._ratev
            eta = _INF
            for it in self._items:
                s = it._slot
                rate = ratev[s]
                if rate > _EPS and rem[s] != _INF:
                    e = rem[s] / rate
                    if e < eta:
                        eta = e
            if eta != _INF:
                self._arm_timer(float(eta))
            return
        mask = (self._ratev > _EPS) & (self._rem != np.inf)
        if not mask.any():
            return
        eta = float(np.min(self._rem[mask] / self._ratev[mask]))
        self._arm_timer(eta)

    def _find_finished(self) -> List[VecFluidItem]:
        if len(self._items) <= _SMALL_SCAN:
            rem = self._rem
            ratev = self._ratev
            out = []
            for it in self._items:  # submission order, like the scalar
                s = it._slot
                tol = ratev[s] * 1e-9
                if rem[s] <= (tol if tol > _DONE_TOL else _DONE_TOL):
                    out.append(it)
            return out
        # Free slots hold remaining=inf, so no occupancy mask is needed.
        mask = self._rem <= np.maximum(_DONE_TOL, self._ratev * 1e-9)
        idx = np.nonzero(mask)[0]
        if idx.size == 0:
            return []
        items = self._slot_items
        if idx.size == 1:
            return [items[idx[0]]]
        # Submission order, like the scalar engine's _items scan.
        order = np.argsort(self._seqv[idx], kind="stable")
        return [items[i] for i in idx[order]]
