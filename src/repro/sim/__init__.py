"""Discrete-event simulation kernel (virtual time, fluid resources)."""

from .errors import (
    EventAlreadyTriggered,
    Interrupt,
    SimulationError,
    StopSimulation,
    UnboundResource,
)
from .events import AllOf, AnyOf, Event, Timeout
from .fluid import FluidItem, FluidScheduler
from .process import Process
from .rand import RandomStreams
from .simulator import Simulator, kernel_totals

__all__ = [
    "AllOf",
    "AnyOf",
    "Event",
    "EventAlreadyTriggered",
    "FluidItem",
    "FluidScheduler",
    "Interrupt",
    "Process",
    "RandomStreams",
    "SimulationError",
    "Simulator",
    "StopSimulation",
    "Timeout",
    "UnboundResource",
    "kernel_totals",
]
