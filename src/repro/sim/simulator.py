"""The virtual-time event loop at the heart of the reproduction.

Everything in this repository — CPU scheduling, network transfers, proclet
migration, the Quicksand controllers — executes on this single-threaded
deterministic simulator.  Time is a ``float`` in *seconds* of virtual time;
no wall-clock API is consulted anywhere, so runs are exactly reproducible
given a seed.
"""

from __future__ import annotations

import heapq
from typing import Any, Generator, Iterable, Optional

from .errors import StopSimulation
from .events import NORMAL, Event, Timeout
from .process import Process
from .rand import RandomStreams


class Simulator:
    """Deterministic discrete-event simulator.

    Parameters
    ----------
    start:
        Initial virtual time (seconds).
    seed:
        Master seed for the simulator's named RNG streams.
    """

    def __init__(self, start: float = 0.0, seed: int = 0):
        self._now = float(start)
        self._queue: list = []  # (time, priority, seq, event)
        self._seq = 0
        self._processed_events = 0
        self.random = RandomStreams(seed)

    # -- time -------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Number of events processed so far (for diagnostics)."""
        return self._processed_events

    # -- event construction -------------------------------------------------
    def event(self) -> Event:
        """Create an untriggered event bound to this simulator."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event that fires after *delay* seconds of virtual time."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str = "") -> Process:
        """Spawn *generator* as a simulation process."""
        return Process(self, generator, name=name)

    # alias that reads better at call sites spawning background work
    spawn = process

    def all_of(self, events: Iterable[Event]) -> Event:
        from .events import AllOf

        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> Event:
        from .events import AnyOf

        return AnyOf(self, events)

    # -- scheduling ---------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0,
                  priority: int = NORMAL) -> None:
        """Enqueue *event* for processing at ``now + delay``."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past: delay={delay}")
        self._seq += 1
        heapq.heappush(self._queue, (self._now + delay, priority, self._seq,
                                     event))

    def call_at(self, when: float, fn, *args) -> Event:
        """Run ``fn(*args)`` at absolute virtual time *when*."""
        if when < self._now:
            raise ValueError(f"call_at({when}) is in the past (now={self._now})")
        ev = self.timeout(when - self._now)
        ev.subscribe(lambda _ev: fn(*args))
        return ev

    def call_in(self, delay: float, fn, *args) -> Event:
        """Run ``fn(*args)`` after *delay* seconds."""
        ev = self.timeout(delay)
        ev.subscribe(lambda _ev: fn(*args))
        return ev

    # -- execution ----------------------------------------------------------
    def step(self) -> None:
        """Process the single next event."""
        when, _prio, _seq, event = heapq.heappop(self._queue)
        assert when >= self._now, "event queue went backwards"
        self._now = when
        self._processed_events += 1
        event._process()

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def run(self, until: Optional[float] = None,
            until_event: Optional[Event] = None) -> Any:
        """Run the event loop.

        ``until`` is an absolute virtual time at which to stop (the clock
        is advanced to exactly that time).  ``until_event`` stops the loop
        once that event has been processed and returns its value;
        a failed ``until_event`` re-raises its exception.
        With neither, runs until the event queue drains.
        """
        if until is not None and until < self._now:
            raise ValueError(f"run(until={until}) is in the past")

        stop = {"hit": False}
        if until_event is not None:
            def _stop(_ev):
                stop["hit"] = True

            until_event.subscribe(_stop)

        try:
            while self._queue:
                if stop["hit"]:
                    break
                if until is not None and self._queue[0][0] > until:
                    break
                self.step()
        except StopSimulation as exc:
            return exc.value

        if until is not None and not stop["hit"]:
            self._now = max(self._now, until)

        if until_event is not None and until_event.triggered:
            if not until_event.ok:
                raise until_event.value
            return until_event.value
        return None

    def stop(self, value: Any = None) -> None:
        """Abort :meth:`run` from inside a callback or process."""
        raise StopSimulation(value)

    def __repr__(self) -> str:
        return (f"<Simulator t={self._now:.6f}s queued={len(self._queue)} "
                f"processed={self._processed_events}>")
