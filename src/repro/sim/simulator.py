"""The virtual-time event loop at the heart of the reproduction.

Everything in this repository — CPU scheduling, network transfers, proclet
migration, the Quicksand controllers — executes on this single-threaded
deterministic simulator.  Time is a ``float`` in *seconds* of virtual time;
no wall-clock API is consulted anywhere, so runs are exactly reproducible
given a seed.

Scheduled events can be *cancelled* (:meth:`Simulator.cancel`): the queue
entry is tombstoned rather than removed, skipped for free when popped,
and the heap is compacted once the dead/live ratio crosses a threshold.
The fluid scheduler uses this to retire superseded completion timers
instead of letting them bloat the heap.

Timer wheel
-----------

Near-future events (heartbeat probes, watchdogs, pollers — anything due
within :data:`_WHEEL_SPAN` slots of :data:`_SLOT_WIDTH` seconds) are kept
in a hashed timer wheel instead of the binary heap: insert appends to a
per-slot list (O(1)) and cancel is a tombstone that the slot drain
discards wholesale, so a cancel-heavy periodic workload never pays heap
sift or compaction costs.  Events past the wheel window overflow to the
heap as before.  Dispatch compares the actual ``(when, priority, seq)``
tuples across both structures, and a drained slot is sorted on exactly
those tuples, so the total event order — including same-timestamp
tie-breaks — is bit-identical to the heap-only kernel.  The wheel can be
disabled with ``REPRO_TIMER_WHEEL=0`` (or ``timer_wheel=False``); digests
must not differ either way.
"""

from __future__ import annotations

import heapq
import os
from typing import Any, Dict, Generator, Iterable, Optional

from .errors import StopSimulation
from .events import NORMAL, PENDING, Event, Timeout
from .process import Process
from .rand import RandomStreams

#: Never bother compacting heaps with fewer dead entries than this.
_COMPACT_MIN_DEAD = 64

#: Compact once dead entries exceed this multiple of live entries.  The
#: trigger is a *ratio* so that long runs with huge heaps don't compact
#: pathologically often: the amortized reclaim cost stays proportional
#: to useful work regardless of queue size.
_COMPACT_DEAD_RATIO = 1.0

#: Timer-wheel slot width in seconds.  A power of two, so scaling a
#: timestamp by ``1 / _SLOT_WIDTH`` is exact in binary floating point
#: and slot assignment is a pure monotone function of the timestamp.
#: ~1 ms: wide enough that a slot drain amortizes its (Python-level)
#: bookkeeping over several timers of a sub-ms poller workload, narrow
#: enough that a drained slot's C sort stays tiny.  Slot routing never
#: affects dispatch order — entries are merged on their full
#: ``(when, priority, seq)`` tuples — so the width is purely a
#: throughput knob.
_SLOT_WIDTH = 2.0 ** -10
_INV_SLOT = 2.0 ** 10

#: Number of slots the wheel covers ahead of its floor (~1 s).
#: Events farther out than this go to the heap.
_WHEEL_SPAN = 1024


def _wheel_default() -> bool:
    return os.environ.get("REPRO_TIMER_WHEEL", "1").strip().lower() \
        not in ("0", "false", "off", "no")


#: Called as ``fn(sim)`` on every new Simulator (see set_tracer_factory).
_tracer_factory = None

#: Process-wide kernel totals, accumulated in bulk whenever a
#: Simulator's run()/step() exits.  ``repro.exec`` workers snapshot
#: these around a task to report how much simulation the task did
#: without hooking any experiment's internals.
_KERNEL_TOTALS = {
    "events": 0,
    "cancellations": 0,
    "tombstones_popped": 0,
    "compactions": 0,
    "wheel_inserts": 0,
    "wheel_cancels": 0,
    "overflow_to_heap": 0,
    "cascades": 0,
}


def kernel_totals() -> Dict[str, int]:
    """A copy of the process-wide kernel counters (see ``repro.exec``)."""
    return dict(_KERNEL_TOTALS)


def set_tracer_factory(fn) -> None:
    """Install *fn* to be called with every newly built Simulator.

    :func:`repro.obs.capture` uses this to attach a
    :class:`~repro.obs.SpanTracer` to simulators it did not construct
    itself (experiments build their own).  Pass ``None`` to uninstall.
    """
    global _tracer_factory
    _tracer_factory = fn


def get_tracer_factory():
    return _tracer_factory


class Simulator:
    """Deterministic discrete-event simulator.

    Parameters
    ----------
    start:
        Initial virtual time (seconds).
    seed:
        Master seed for the simulator's named RNG streams.
    timer_wheel:
        Route near-future events through the timer wheel (default: the
        ``REPRO_TIMER_WHEEL`` environment variable, on unless set to
        ``0``/``false``/``off``/``no``).  Trajectories are bit-identical
        either way; the wheel only changes constant factors.
    """

    __slots__ = ("_now", "_queue", "_seq", "_processed_events", "_dead",
                 "_cancellations", "_tombstones_popped", "_compactions",
                 "_running", "_pending_flushes", "_observers", "random",
                 "tracer", "_wheel_on", "_wheel", "_slot_heap", "_due",
                 "_due_idx", "_wheel_floor", "_wheel_floor_end",
                 "_wheel_limit", "_wheel_len",
                 "_dead_wheel", "_wheel_inserts", "_wheel_cancels",
                 "_cascades", "__weakref__")

    def __init__(self, start: float = 0.0, seed: int = 0,
                 timer_wheel: Optional[bool] = None):
        self._now = float(start)
        self._queue: list = []  # (time, priority, seq, event)
        self._seq = 0
        self._processed_events = 0
        self._dead = 0          # tombstoned entries still in the heap
        self._cancellations = 0
        self._tombstones_popped = 0
        self._compactions = 0
        self._running = False   # True while run()/step() is executing
        # Timer wheel: absolute slot index -> unsorted entry list.  The
        # floor is the last drained slot; entries at or below it (and
        # beyond the window) go to the heap, so every wheel slot is
        # strictly in the future of the drained one.
        self._wheel_on = _wheel_default() if timer_wheel is None \
            else bool(timer_wheel)
        self._wheel: Dict[int, list] = {}
        self._slot_heap: list = []      # min-heap of populated slot indices
        self._due: list = []            # sorted entries of the drained slot
        self._due_idx = 0
        self._wheel_floor = int(self._now * _INV_SLOT)
        # First instant routable to the wheel.  With the wheel disabled
        # it is +inf, so _schedule's single range test rejects every
        # event without a separate feature check.
        self._wheel_floor_end = ((self._wheel_floor + 1) * _SLOT_WIDTH
                                 if self._wheel_on else float("inf"))
        self._wheel_limit = (self._wheel_floor + _WHEEL_SPAN) * _SLOT_WIDTH
        self._wheel_len = 0             # entries in wheel slots + _due
        self._dead_wheel = 0            # tombstoned entries in the wheel
        self._wheel_inserts = 0
        self._wheel_cancels = 0
        self._cascades = 0
        # Fluid schedulers with a coalesced reassignment pending; always
        # drained before virtual time advances (see _drain_flushes).
        self._pending_flushes: list = []
        # Called as fn(self) after every processed event (see add_observer).
        self._observers: list = []
        self.random = RandomStreams(seed)
        #: Span tracer (:mod:`repro.obs`), or None when tracing is off.
        #: Instrumentation sites read this once and skip all work when it
        #: is None — the zero-overhead disabled path.
        self.tracer = None
        if _tracer_factory is not None:
            _tracer_factory(self)

    # -- time -------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Number of events processed so far (for diagnostics)."""
        return self._processed_events

    # -- heap diagnostics ---------------------------------------------------
    @property
    def queued(self) -> int:
        """Live (non-tombstoned) events waiting in heap or wheel."""
        return (len(self._queue) - self._dead
                + self._wheel_len - self._dead_wheel)

    @property
    def dead_entries(self) -> int:
        """Tombstoned entries awaiting pop, drain, or compaction."""
        return self._dead + self._dead_wheel

    @property
    def compactions(self) -> int:
        """Number of heap compaction passes performed so far."""
        return self._compactions

    @property
    def cancellations(self) -> int:
        """Total events tombstoned via :meth:`cancel` so far."""
        return self._cancellations

    @property
    def tombstones_popped(self) -> int:
        """Dead entries discarded by dispatch or slot drains (vs
        compaction)."""
        return self._tombstones_popped

    def heap_stats(self) -> Dict[str, int]:
        """Event-queue diagnostics as a dict (see ``repro.metrics``)."""
        return {
            "queued": self.queued,
            "dead_entries": self._dead + self._dead_wheel,
            "compactions": self._compactions,
            "cancellations": self._cancellations,
            "tombstones_popped": self._tombstones_popped,
            "wheel_inserts": self._wheel_inserts,
            "wheel_cancels": self._wheel_cancels,
            # Every schedule either wheels or heaps, so the overflow
            # count is derived rather than maintained on the hot path.
            "overflow_to_heap": (self._seq - self._wheel_inserts
                                 if self._wheel_on else 0),
            "cascades": self._cascades,
        }

    # -- observation --------------------------------------------------------
    def add_observer(self, fn) -> None:
        """Call ``fn(self)`` after every processed event.

        Observers must be read-only with respect to simulation state:
        they run synchronously inside the event loop, after the event's
        callbacks, and anything they mutate perturbs the run.  The chaos
        :class:`~repro.chaos.InvariantChecker` uses this hook to assert
        global invariants at every step of a simulation.
        """
        self._observers.append(fn)

    def remove_observer(self, fn) -> None:
        """Detach a previously added observer (no-op if absent)."""
        try:
            self._observers.remove(fn)
        except ValueError:
            pass

    # -- event construction -------------------------------------------------
    def event(self) -> Event:
        """Create an untriggered event bound to this simulator."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event that fires after *delay* seconds of virtual time."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str = "") -> Process:
        """Spawn *generator* as a simulation process."""
        return Process(self, generator, name=name)

    # alias that reads better at call sites spawning background work
    spawn = process

    def all_of(self, events: Iterable[Event]) -> Event:
        from .events import AllOf

        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> Event:
        from .events import AnyOf

        return AnyOf(self, events)

    # -- scheduling ---------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0,
                  priority: int = NORMAL) -> None:
        """Enqueue *event* for processing at ``now + delay``."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past: delay={delay}")
        self._seq += 1
        when = self._now + delay
        entry = (when, priority, self._seq, event)
        # Wheel-routable window: [floor_end, limit).  Both bounds are
        # exact multiples of the power-of-two slot width, so the float
        # compares agree exactly with slot-index arithmetic.  floor_end
        # is +inf with the wheel off, making the common heap path a
        # single compare.
        if self._wheel_floor_end <= when < self._wheel_limit:
            idx = int(when * _INV_SLOT)
            slot = self._wheel.get(idx)
            if slot is None:
                self._wheel[idx] = [entry]
                heapq.heappush(self._slot_heap, idx)
            else:
                slot.append(entry)
            event._wheel = True
            self._wheel_len += 1
            self._wheel_inserts += 1
            return
        heapq.heappush(self._queue, entry)

    def call_at(self, when: float, fn, *args) -> Event:
        """Run ``fn(*args)`` at absolute virtual time *when*."""
        if when < self._now:
            raise ValueError(f"call_at({when}) is in the past (now={self._now})")
        ev = self.timeout(when - self._now)
        ev.subscribe(lambda _ev: fn(*args))
        return ev

    def call_in(self, delay: float, fn, *args) -> Event:
        """Run ``fn(*args)`` after *delay* seconds."""
        ev = self.timeout(delay)
        ev.subscribe(lambda _ev: fn(*args))
        return ev

    # -- cancellation --------------------------------------------------------
    def cancel(self, event: Event) -> bool:
        """Tombstone a scheduled-but-unprocessed *event*.

        The event's callbacks will never run; its queue entry is skipped
        when popped (or reclaimed in bulk by a slot drain or heap
        compaction).  Returns True if the event was live and is now
        cancelled, False if it was never scheduled, already processed,
        or already cancelled.

        A wheel-resident cancel is pure bookkeeping: the tombstone is
        discarded wholesale when its slot drains, before any sorting.
        Heap compaction is batched: a cancel issued from inside the
        dispatch loop (the common case — schedulers retiring superseded
        timers from event callbacks) only marks the tombstone; the loop
        itself compacts at most once per dispatch when the dead/live
        ratio crosses :data:`_COMPACT_DEAD_RATIO`.  Cancels issued
        outside a run compact eagerly.
        """
        if (event._value is PENDING or event._processed
                or event._cancelled):
            return False
        event._cancelled = True
        self._cancellations += 1
        if event._wheel:
            self._dead_wheel += 1
            self._wheel_cancels += 1
            return True
        self._dead += 1
        if (not self._running and self._dead > _COMPACT_MIN_DEAD
                and self._dead > _COMPACT_DEAD_RATIO
                * (len(self._queue) - self._dead)):
            self._compact()
        return True

    def _compact(self) -> None:
        """Drop tombstoned heap entries and re-heapify (in place, so
        aliases held by the run loop stay valid).  Wheel tombstones are
        reclaimed by slot drains instead."""
        self._queue[:] = [e for e in self._queue if not e[3]._cancelled]
        heapq.heapify(self._queue)
        self._dead = 0
        self._compactions += 1

    # -- wheel drain ---------------------------------------------------------
    def _advance_wheel(self):
        """Head entry of the wheel side (cascading slots into the sorted
        due-list as needed), or None when the wheel is empty.

        Tombstoned entries are filtered out *before* the sort — a
        cancelled wheel timer is never ordered, popped, or compacted.
        The due-list keeps the exact ``(when, priority, seq)`` tuple
        order within the slot, and slots drain in index order, so the
        merged stream preserves the global heap order bit-for-bit.
        """
        due = self._due
        di = self._due_idx
        while di >= len(due):
            slot_heap = self._slot_heap
            if not slot_heap:
                return None
            idx = heapq.heappop(slot_heap)
            live = self._wheel.pop(idx)
            if self._dead_wheel:
                entries = live
                live = [e for e in entries if not e[3]._cancelled]
                dropped = len(entries) - len(live)
                if dropped:
                    self._dead_wheel -= dropped
                    self._wheel_len -= dropped
                    self._tombstones_popped += dropped
            live.sort()
            self._due = due = live
            self._due_idx = di = 0
            self._wheel_floor = idx
            self._wheel_floor_end = (idx + 1) * _SLOT_WIDTH
            self._wheel_limit = (idx + _WHEEL_SPAN) * _SLOT_WIDTH
            self._cascades += 1
        return due[di]

    # -- execution ----------------------------------------------------------
    def _drain_flushes(self) -> None:
        """Run every pending coalesced reassignment (FIFO).

        Called whenever virtual time is about to advance, so deferred
        water-fills are always observationally complete within the
        timestamp that made them necessary.  Flushing may enqueue new
        events at the current time and may re-mark schedulers dirty;
        both are handled by the callers' re-check loops.
        """
        pending = self._pending_flushes
        while pending:
            pending.pop(0)._run_pending_flush()

    def step(self) -> None:
        """Process the single next live event (skipping tombstones)."""
        queue = self._queue
        self._running = True
        try:
            while True:
                if not self._wheel_len:
                    wh = None
                elif self._due_idx < len(self._due):
                    wh = self._due[self._due_idx]
                else:
                    wh = self._advance_wheel()
                if queue:
                    head = queue[0]
                    use_heap = wh is None or head < wh
                    if not use_heap:
                        head = wh
                elif wh is not None:
                    head = wh
                    use_heap = False
                else:
                    if self._pending_flushes:
                        self._drain_flushes()
                        continue
                    return
                if self._pending_flushes and head[0] > self._now:
                    self._drain_flushes()
                    continue
                if (self._dead > _COMPACT_MIN_DEAD
                        and self._dead > _COMPACT_DEAD_RATIO
                        * (len(queue) - self._dead)):
                    self._compact()
                    continue
                event = head[3]
                if use_heap:
                    heapq.heappop(queue)
                    if event._cancelled:
                        self._dead -= 1
                        self._tombstones_popped += 1
                        continue
                else:
                    self._due_idx += 1
                    self._wheel_len -= 1
                    if event._cancelled:
                        self._dead_wheel -= 1
                        self._tombstones_popped += 1
                        continue
                when = head[0]
                assert when >= self._now, "event queue went backwards"
                self._now = when
                self._processed_events += 1
                event._process()
                if self._observers:
                    for fn in self._observers:
                        fn(self)
                _KERNEL_TOTALS["events"] += 1
                return
        finally:
            self._running = False

    def peek(self) -> float:
        """Time of the next live event, or ``inf`` if none."""
        queue = self._queue
        while queue and queue[0][3]._cancelled:
            heapq.heappop(queue)
            self._dead -= 1
            self._tombstones_popped += 1
        wh = self._advance_wheel()
        while wh is not None and wh[3]._cancelled:
            self._due_idx += 1
            self._wheel_len -= 1
            self._dead_wheel -= 1
            self._tombstones_popped += 1
            wh = self._advance_wheel()
        if queue and (wh is None or queue[0] < wh):
            return queue[0][0]
        if wh is not None:
            return wh[0]
        return float("inf")

    def run(self, until: Optional[float] = None,
            until_event: Optional[Event] = None) -> Any:
        """Run the event loop.

        ``until`` is an absolute virtual time at which to stop (the clock
        is advanced to exactly that time).  ``until_event`` stops the loop
        once that event has been processed and returns its value;
        a failed ``until_event`` re-raises its exception.  If the queue
        drains without the event triggering, ``run`` raises
        ``RuntimeError`` (the event is deadlocked) — unless ``until`` was
        also given, which makes the wait an ordinary bounded one.
        With neither, runs until the event queue drains.
        """
        if until is not None and until < self._now:
            raise ValueError(f"run(until={until}) is in the past")

        stop_hit = []
        if until_event is not None:
            until_event.subscribe(stop_hit.append)

        # Hot loop: local aliases avoid repeated attribute lookups on the
        # schedule->pop->_process path.  Each iteration resolves the
        # earliest entry across the heap and the wheel by comparing the
        # actual (when, priority, seq) tuples — the merged order is the
        # heap-only order, bit for bit.  Pending coalesced reassignments
        # are drained whenever time is about to advance (or the queue
        # drains), so they are observationally equivalent to eager
        # per-mutation recomputation.  Dead heap entries accumulated by
        # in-loop cancels are reclaimed here, at most one batched
        # compaction per dispatch, once the dead/live ratio crosses the
        # threshold; dead wheel entries are discarded by slot drains.
        queue = self._queue
        pop = heapq.heappop
        flushes = self._pending_flushes
        observers = self._observers
        horizon = float("inf") if until is None else until
        events_before = self._processed_events
        cancels_before = self._cancellations
        compactions_before = self._compactions
        popped_before = self._tombstones_popped
        wheel_before = self._wheel_inserts
        wheel_cancels_before = self._wheel_cancels
        seq_before = self._seq
        cascades_before = self._cascades
        self._running = True
        try:
            while True:
                if stop_hit:
                    break
                # _wheel_len counts every entry still inside the wheel
                # side (due-list remainder + slots, live or dead), so a
                # single truthiness check skips the whole wheel probe on
                # heap-only workloads.
                if self._wheel_len:
                    due = self._due
                    di = self._due_idx
                    if di < len(due):
                        wh = due[di]
                    else:
                        wh = self._advance_wheel()
                        di = self._due_idx
                else:
                    wh = None
                if queue:
                    head = queue[0]
                    use_heap = wh is None or head < wh
                    if not use_heap:
                        head = wh
                elif wh is not None:
                    head = wh
                    use_heap = False
                else:
                    if flushes:
                        self._drain_flushes()
                        continue
                    break
                if flushes and head[0] > self._now:
                    self._drain_flushes()
                    continue  # flushing may have enqueued new events
                if (self._dead > _COMPACT_MIN_DEAD
                        and self._dead > _COMPACT_DEAD_RATIO
                        * (len(queue) - self._dead)):
                    self._compact()
                    continue
                if head[0] > horizon:
                    break
                event = head[3]
                if use_heap:
                    pop(queue)
                    if event._cancelled:
                        self._dead -= 1
                        self._tombstones_popped += 1
                        continue
                else:
                    self._due_idx = di + 1
                    self._wheel_len -= 1
                    if event._cancelled:
                        self._dead_wheel -= 1
                        self._tombstones_popped += 1
                        continue
                self._now = head[0]
                self._processed_events += 1
                # Inlined Event._process (no subclass overrides it): one
                # method call per event is real money at ~10^5 events/s.
                callbacks = event.callbacks
                event.callbacks = None
                event._processed = True
                if callbacks:
                    for cb in callbacks:
                        cb(event)
                if observers:
                    for fn in observers:
                        fn(self)
        except StopSimulation as exc:
            return exc.value
        finally:
            self._running = False
            totals = _KERNEL_TOTALS
            totals["events"] += self._processed_events - events_before
            totals["cancellations"] += self._cancellations - cancels_before
            totals["tombstones_popped"] += \
                self._tombstones_popped - popped_before
            totals["compactions"] += self._compactions - compactions_before
            totals["wheel_inserts"] += self._wheel_inserts - wheel_before
            totals["wheel_cancels"] += \
                self._wheel_cancels - wheel_cancels_before
            if self._wheel_on:
                totals["overflow_to_heap"] += \
                    (self._seq - seq_before) \
                    - (self._wheel_inserts - wheel_before)
            totals["cascades"] += self._cascades - cascades_before

        if until is not None and not stop_hit:
            self._now = max(self._now, until)

        if until_event is not None and until_event.triggered:
            if not until_event.ok:
                raise until_event.value
            return until_event.value
        if until_event is not None and until is None:
            # The queue drained with the awaited event untriggered:
            # whatever it depends on is deadlocked (e.g. blocked on a
            # gate nobody will open).  Returning None here would let the
            # caller mistake a hung operation for a completed one.
            raise RuntimeError(
                f"run(until_event={until_event!r}) deadlocked: the event "
                f"queue drained at t={self._now:.6f}s without it "
                f"triggering")
        return None

    def stop(self, value: Any = None) -> None:
        """Abort :meth:`run` from inside a callback or process."""
        raise StopSimulation(value)

    def __repr__(self) -> str:
        return (f"<Simulator t={self._now:.6f}s queued={self.queued} "
                f"dead={self.dead_entries} compactions={self._compactions} "
                f"processed={self._processed_events}>")
