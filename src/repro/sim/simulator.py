"""The virtual-time event loop at the heart of the reproduction.

Everything in this repository — CPU scheduling, network transfers, proclet
migration, the Quicksand controllers — executes on this single-threaded
deterministic simulator.  Time is a ``float`` in *seconds* of virtual time;
no wall-clock API is consulted anywhere, so runs are exactly reproducible
given a seed.

Scheduled events can be *cancelled* (:meth:`Simulator.cancel`): the heap
entry is tombstoned rather than removed, skipped for free when popped,
and the heap is compacted once dead entries outnumber live ones.  The
fluid scheduler uses this to retire superseded completion timers instead
of letting them bloat the heap.
"""

from __future__ import annotations

import heapq
from typing import Any, Dict, Generator, Iterable, Optional

from .errors import StopSimulation
from .events import NORMAL, PENDING, Event, Timeout
from .process import Process
from .rand import RandomStreams

#: Never bother compacting heaps smaller than this many dead entries.
_COMPACT_MIN_DEAD = 64

#: Called as ``fn(sim)`` on every new Simulator (see set_tracer_factory).
_tracer_factory = None

#: Process-wide kernel totals, accumulated in bulk whenever a
#: Simulator's run()/step() exits.  ``repro.exec`` workers snapshot
#: these around a task to report how much simulation the task did
#: without hooking any experiment's internals.
_KERNEL_TOTALS = {
    "events": 0,
    "cancellations": 0,
    "tombstones_popped": 0,
    "compactions": 0,
}


def kernel_totals() -> Dict[str, int]:
    """A copy of the process-wide kernel counters (see ``repro.exec``)."""
    return dict(_KERNEL_TOTALS)


def set_tracer_factory(fn) -> None:
    """Install *fn* to be called with every newly built Simulator.

    :func:`repro.obs.capture` uses this to attach a
    :class:`~repro.obs.SpanTracer` to simulators it did not construct
    itself (experiments build their own).  Pass ``None`` to uninstall.
    """
    global _tracer_factory
    _tracer_factory = fn


def get_tracer_factory():
    return _tracer_factory


class Simulator:
    """Deterministic discrete-event simulator.

    Parameters
    ----------
    start:
        Initial virtual time (seconds).
    seed:
        Master seed for the simulator's named RNG streams.
    """

    __slots__ = ("_now", "_queue", "_seq", "_processed_events", "_dead",
                 "_cancellations", "_tombstones_popped", "_compactions",
                 "_running", "_pending_flushes", "_observers", "random",
                 "tracer", "__weakref__")

    def __init__(self, start: float = 0.0, seed: int = 0):
        self._now = float(start)
        self._queue: list = []  # (time, priority, seq, event)
        self._seq = 0
        self._processed_events = 0
        self._dead = 0          # tombstoned (cancelled) entries still queued
        self._cancellations = 0
        self._tombstones_popped = 0
        self._compactions = 0
        self._running = False   # True while run()/step() is executing
        # Fluid schedulers with a coalesced reassignment pending; always
        # drained before virtual time advances (see _drain_flushes).
        self._pending_flushes: list = []
        # Called as fn(self) after every processed event (see add_observer).
        self._observers: list = []
        self.random = RandomStreams(seed)
        #: Span tracer (:mod:`repro.obs`), or None when tracing is off.
        #: Instrumentation sites read this once and skip all work when it
        #: is None — the zero-overhead disabled path.
        self.tracer = None
        if _tracer_factory is not None:
            _tracer_factory(self)

    # -- time -------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Number of events processed so far (for diagnostics)."""
        return self._processed_events

    # -- heap diagnostics ---------------------------------------------------
    @property
    def queued(self) -> int:
        """Live (non-tombstoned) events waiting in the heap."""
        return len(self._queue) - self._dead

    @property
    def dead_entries(self) -> int:
        """Tombstoned heap entries awaiting pop or compaction."""
        return self._dead

    @property
    def compactions(self) -> int:
        """Number of heap compaction passes performed so far."""
        return self._compactions

    @property
    def cancellations(self) -> int:
        """Total events tombstoned via :meth:`cancel` so far."""
        return self._cancellations

    @property
    def tombstones_popped(self) -> int:
        """Dead entries discarded by the dispatch loop (vs compaction)."""
        return self._tombstones_popped

    def heap_stats(self) -> Dict[str, int]:
        """Event-heap diagnostics as a dict (see ``repro.metrics``)."""
        return {
            "queued": self.queued,
            "dead_entries": self._dead,
            "compactions": self._compactions,
            "cancellations": self._cancellations,
            "tombstones_popped": self._tombstones_popped,
        }

    # -- observation --------------------------------------------------------
    def add_observer(self, fn) -> None:
        """Call ``fn(self)`` after every processed event.

        Observers must be read-only with respect to simulation state:
        they run synchronously inside the event loop, after the event's
        callbacks, and anything they mutate perturbs the run.  The chaos
        :class:`~repro.chaos.InvariantChecker` uses this hook to assert
        global invariants at every step of a simulation.
        """
        self._observers.append(fn)

    def remove_observer(self, fn) -> None:
        """Detach a previously added observer (no-op if absent)."""
        try:
            self._observers.remove(fn)
        except ValueError:
            pass

    # -- event construction -------------------------------------------------
    def event(self) -> Event:
        """Create an untriggered event bound to this simulator."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event that fires after *delay* seconds of virtual time."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str = "") -> Process:
        """Spawn *generator* as a simulation process."""
        return Process(self, generator, name=name)

    # alias that reads better at call sites spawning background work
    spawn = process

    def all_of(self, events: Iterable[Event]) -> Event:
        from .events import AllOf

        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> Event:
        from .events import AnyOf

        return AnyOf(self, events)

    # -- scheduling ---------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0,
                  priority: int = NORMAL) -> None:
        """Enqueue *event* for processing at ``now + delay``."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past: delay={delay}")
        self._seq += 1
        heapq.heappush(self._queue, (self._now + delay, priority, self._seq,
                                     event))

    def call_at(self, when: float, fn, *args) -> Event:
        """Run ``fn(*args)`` at absolute virtual time *when*."""
        if when < self._now:
            raise ValueError(f"call_at({when}) is in the past (now={self._now})")
        ev = self.timeout(when - self._now)
        ev.subscribe(lambda _ev: fn(*args))
        return ev

    def call_in(self, delay: float, fn, *args) -> Event:
        """Run ``fn(*args)`` after *delay* seconds."""
        ev = self.timeout(delay)
        ev.subscribe(lambda _ev: fn(*args))
        return ev

    # -- cancellation --------------------------------------------------------
    def cancel(self, event: Event) -> bool:
        """Tombstone a scheduled-but-unprocessed *event*.

        The event's callbacks will never run; its heap entry is skipped
        when popped (or reclaimed by compaction).  Returns True if the
        event was live and is now cancelled, False if it was never
        scheduled, already processed, or already cancelled.

        Compaction is batched: a cancel issued from inside the dispatch
        loop (the common case — schedulers retiring superseded timers
        from event callbacks) only marks the tombstone; the loop itself
        compacts at most once per dispatch when dead entries outnumber
        live ones.  Cancels issued outside a run compact eagerly.
        """
        if (event._value is PENDING or event._processed
                or event._cancelled):
            return False
        event._cancelled = True
        self._dead += 1
        self._cancellations += 1
        if (not self._running and self._dead > _COMPACT_MIN_DEAD
                and self._dead * 2 > len(self._queue)):
            self._compact()
        return True

    def _compact(self) -> None:
        """Drop tombstoned entries and re-heapify (in place, so aliases
        held by the run loop stay valid)."""
        self._queue[:] = [e for e in self._queue if not e[3]._cancelled]
        heapq.heapify(self._queue)
        self._dead = 0
        self._compactions += 1

    # -- execution ----------------------------------------------------------
    def _drain_flushes(self) -> None:
        """Run every pending coalesced reassignment (FIFO).

        Called whenever virtual time is about to advance, so deferred
        water-fills are always observationally complete within the
        timestamp that made them necessary.  Flushing may enqueue new
        events at the current time and may re-mark schedulers dirty;
        both are handled by the callers' re-check loops.
        """
        pending = self._pending_flushes
        while pending:
            pending.pop(0)._run_pending_flush()

    def step(self) -> None:
        """Process the single next live event (skipping tombstones)."""
        queue = self._queue
        self._running = True
        try:
            while True:
                if self._pending_flushes and (
                        not queue or queue[0][0] > self._now):
                    self._drain_flushes()
                    if not queue:
                        return
                    continue
                if (self._dead > _COMPACT_MIN_DEAD
                        and self._dead * 2 > len(queue)):
                    self._compact()
                when, _prio, _seq, event = heapq.heappop(queue)
                if event._cancelled:
                    self._dead -= 1
                    self._tombstones_popped += 1
                    if not queue:
                        return
                    continue
                assert when >= self._now, "event queue went backwards"
                self._now = when
                self._processed_events += 1
                event._process()
                if self._observers:
                    for fn in self._observers:
                        fn(self)
                _KERNEL_TOTALS["events"] += 1
                return
        finally:
            self._running = False

    def peek(self) -> float:
        """Time of the next live event, or ``inf`` if none."""
        queue = self._queue
        while queue and queue[0][3]._cancelled:
            heapq.heappop(queue)
            self._dead -= 1
            self._tombstones_popped += 1
        return queue[0][0] if queue else float("inf")

    def run(self, until: Optional[float] = None,
            until_event: Optional[Event] = None) -> Any:
        """Run the event loop.

        ``until`` is an absolute virtual time at which to stop (the clock
        is advanced to exactly that time).  ``until_event`` stops the loop
        once that event has been processed and returns its value;
        a failed ``until_event`` re-raises its exception.  If the queue
        drains without the event triggering, ``run`` raises
        ``RuntimeError`` (the event is deadlocked) — unless ``until`` was
        also given, which makes the wait an ordinary bounded one.
        With neither, runs until the event queue drains.
        """
        if until is not None and until < self._now:
            raise ValueError(f"run(until={until}) is in the past")

        stop_hit = []
        if until_event is not None:
            until_event.subscribe(stop_hit.append)

        # Hot loop: local aliases avoid repeated attribute lookups on the
        # schedule->pop->_process path, and tombstoned entries are
        # discarded without touching the clock.  Pending coalesced
        # reassignments are drained whenever time is about to advance
        # (or the queue drains), so they are observationally equivalent
        # to eager per-mutation recomputation.  Dead entries accumulated
        # by in-loop cancels are reclaimed here, at most one batched
        # compaction per dispatch, once they outnumber live entries.
        queue = self._queue
        pop = heapq.heappop
        flushes = self._pending_flushes
        observers = self._observers
        horizon = float("inf") if until is None else until
        events_before = self._processed_events
        cancels_before = self._cancellations
        compactions_before = self._compactions
        popped = 0
        self._running = True
        try:
            while queue or flushes:
                if stop_hit:
                    break
                if flushes and (not queue or queue[0][0] > self._now):
                    self._drain_flushes()
                    continue  # flushing may have enqueued new events
                if not queue:
                    break
                if (self._dead > _COMPACT_MIN_DEAD
                        and self._dead * 2 > len(queue)):
                    self._compact()
                if queue[0][0] > horizon:
                    break
                entry = pop(queue)
                event = entry[3]
                if event._cancelled:
                    self._dead -= 1
                    popped += 1
                    continue
                self._now = entry[0]
                self._processed_events += 1
                event._process()
                if observers:
                    for fn in observers:
                        fn(self)
        except StopSimulation as exc:
            return exc.value
        finally:
            self._running = False
            self._tombstones_popped += popped
            totals = _KERNEL_TOTALS
            totals["events"] += self._processed_events - events_before
            totals["cancellations"] += self._cancellations - cancels_before
            totals["tombstones_popped"] += popped
            totals["compactions"] += self._compactions - compactions_before

        if until is not None and not stop_hit:
            self._now = max(self._now, until)

        if until_event is not None and until_event.triggered:
            if not until_event.ok:
                raise until_event.value
            return until_event.value
        if until_event is not None and until is None:
            # The queue drained with the awaited event untriggered:
            # whatever it depends on is deadlocked (e.g. blocked on a
            # gate nobody will open).  Returning None here would let the
            # caller mistake a hung operation for a completed one.
            raise RuntimeError(
                f"run(until_event={until_event!r}) deadlocked: the event "
                f"queue drained at t={self._now:.6f}s without it "
                f"triggering")
        return None

    def stop(self, value: Any = None) -> None:
        """Abort :meth:`run` from inside a callback or process."""
        raise StopSimulation(value)

    def __repr__(self) -> str:
        return (f"<Simulator t={self._now:.6f}s queued={self.queued} "
                f"dead={self._dead} compactions={self._compactions} "
                f"processed={self._processed_events}>")
