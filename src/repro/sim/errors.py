"""Exception types raised by the simulation kernel."""

from __future__ import annotations


class SimulationError(Exception):
    """Base class for all simulation-kernel errors."""


class EventAlreadyTriggered(SimulationError):
    """An event was succeeded or failed more than once."""


class StopSimulation(SimulationError):
    """Raised internally to halt :meth:`Simulator.run` early."""

    def __init__(self, value=None):
        super().__init__(value)
        self.value = value


class Interrupt(SimulationError):
    """Thrown into a process by :meth:`Process.interrupt`.

    The interrupted process may catch this to clean up or to react to
    preemption; ``cause`` carries the interrupter's reason.
    """

    def __init__(self, cause=None):
        super().__init__(cause)
        self.cause = cause


class UnboundResource(SimulationError):
    """An operation referenced a resource item not currently submitted."""
