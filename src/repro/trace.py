"""Structured control-plane tracing.

Every consequential scheduler/runtime decision — migrations, splits,
merges, evictions, autoscale actions — emits a :class:`TraceEvent`.
The trace is how you debug a simulation ("why did this proclet move?")
and how tests assert *causality* rather than just outcomes.

Tracing is on by default (appends are cheap); cap the buffer with
``max_events`` for very long runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

from .units import fmt_time


@dataclass(frozen=True)
class TraceEvent:
    """One control-plane decision."""

    time: float
    category: str
    message: str
    fields: Dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        extras = " ".join(f"{k}={v}" for k, v in self.fields.items())
        return (f"[{fmt_time(self.time):>12}] {self.category:<12} "
                f"{self.message}" + (f" ({extras})" if extras else ""))


class Tracer:
    """Append-only, queryable control-plane trace."""

    def __init__(self, sim, enabled: bool = True,
                 max_events: Optional[int] = 100_000):
        self.sim = sim
        self.enabled = enabled
        self.max_events = max_events
        self.events: List[TraceEvent] = []
        self.dropped = 0

    def emit(self, category: str, message: str, **fields) -> None:
        if not self.enabled:
            return
        if self.max_events is not None \
                and len(self.events) >= self.max_events:
            self.dropped += 1
            return
        self.events.append(TraceEvent(time=self.sim.now,
                                      category=category,
                                      message=message, fields=fields))

    # -- queries ------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.events)

    def by_category(self, category: str) -> List[TraceEvent]:
        return [e for e in self.events if e.category == category]

    def since(self, t: float) -> List[TraceEvent]:
        return [e for e in self.events if e.time >= t]

    def grep(self, needle: str) -> List[TraceEvent]:
        return [
            e for e in self.events
            if needle in e.message
            or any(needle in str(v) for v in e.fields.values())
        ]

    def categories(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for e in self.events:
            out[e.category] = out.get(e.category, 0) + 1
        return out

    def tail(self, n: int = 20) -> Iterator[TraceEvent]:
        return iter(self.events[-n:])

    def dump(self, limit: int = 50, category: Optional[str] = None) -> str:
        events = (self.by_category(category) if category else self.events)
        lines = [str(e) for e in events[-limit:]]
        if self.dropped:
            lines.append(f"... ({self.dropped} events dropped at cap)")
        return "\n".join(lines) if lines else "(empty trace)"
