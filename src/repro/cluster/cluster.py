"""Cluster assembly: spec -> simulator + machines + fabric + metrics."""

from __future__ import annotations

from typing import Dict, List, Optional

from ..metrics import MetricsRecorder
from ..sim import Simulator
from .machine import Machine
from .network import Fabric
from .topology import ClusterSpec


class Cluster:
    """A fully-instantiated simulated cluster."""

    def __init__(self, spec: ClusterSpec,
                 sim: Optional[Simulator] = None):
        self.spec = spec
        self.sim = sim if sim is not None else Simulator(seed=spec.seed)
        self.metrics = MetricsRecorder(self.sim)
        self.machines: List[Machine] = [
            Machine(self.sim, i, mspec, self.metrics)
            for i, mspec in enumerate(spec.machines)
        ]
        self._by_name: Dict[str, Machine] = {
            m.name: m for m in self.machines
        }
        self.fabric = Fabric(self.sim, spec.network, self.metrics)

    def machine(self, name_or_id) -> Machine:
        """Look up a machine by name or integer id."""
        if isinstance(name_or_id, int):
            return self.machines[name_or_id]
        return self._by_name[name_or_id]

    @property
    def total_cores(self) -> float:
        return sum(m.cpu.cores for m in self.machines)

    @property
    def total_free_memory(self) -> float:
        return sum(m.memory.free for m in self.machines)

    def run(self, until=None, until_event=None):
        """Convenience passthrough to the simulator's event loop."""
        return self.sim.run(until=until, until_event=until_event)

    def __repr__(self) -> str:
        return f"<Cluster {len(self.machines)} machines t={self.sim.now:.4f}s>"
