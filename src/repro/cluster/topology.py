"""Declarative specs describing a simulated cluster.

A :class:`ClusterSpec` is the single input to every experiment: it fixes
machine shapes (cores, DRAM, NIC, GPUs) and network constants.  The
experiment harnesses in :mod:`repro.experiments` construct the exact specs
of the paper's setups (e.g. Fig. 2's 6-core/12-GiB + 40-core/1-GiB pair).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..units import GiB, US, gbps


@dataclass(frozen=True)
class GpuSpec:
    """GPUs attached to one machine.

    ``batch_time`` is the virtual-time cost of training on one batch on
    one GPU — the paper emulates GPUs exactly this way (§4: "we emulated
    GPUs by adding a delay to consume data from the queue").
    """

    count: int = 0
    batch_time: float = 10e-3

    def __post_init__(self):
        if self.count < 0:
            raise ValueError(f"negative GPU count: {self.count}")
        if self.batch_time <= 0:
            raise ValueError(f"batch_time must be positive: {self.batch_time}")


@dataclass(frozen=True)
class StorageSpec:
    """Persistent storage attached to one machine."""

    capacity_bytes: int = 0
    iops: float = 100_000.0
    read_bandwidth: float = 2 * GiB
    write_bandwidth: float = 1 * GiB

    def __post_init__(self):
        if self.capacity_bytes < 0:
            raise ValueError("negative storage capacity")
        if self.iops <= 0:
            raise ValueError("iops must be positive")


@dataclass(frozen=True)
class MachineSpec:
    """Shape of one simulated machine."""

    name: str
    cores: float
    dram_bytes: float
    nic_bandwidth: float = gbps(100.0)  # bytes/s
    gpus: GpuSpec = field(default_factory=GpuSpec)
    storage: Optional[StorageSpec] = None

    def __post_init__(self):
        if self.cores <= 0:
            raise ValueError(f"machine {self.name!r} needs cores > 0")
        if self.dram_bytes <= 0:
            raise ValueError(f"machine {self.name!r} needs dram > 0")
        if self.nic_bandwidth <= 0:
            raise ValueError(f"machine {self.name!r} needs NIC bandwidth > 0")


@dataclass(frozen=True)
class NetworkSpec:
    """Datacenter-fabric constants.

    Defaults model a 100 Gbit/s Ethernet with a kernel-bypass stack, the
    platform Nu/Quicksand measures on: one-way latency of a few
    microseconds and a small fixed per-RPC CPU-side overhead.
    """

    latency: float = 5 * US          # one-way propagation + switching
    rpc_overhead: float = 2 * US     # serialization + dispatch per message
    local_call_overhead: float = 100e-9  # same-machine proclet call

    def __post_init__(self):
        if self.latency < 0 or self.rpc_overhead < 0:
            raise ValueError("network constants must be non-negative")
        if self.local_call_overhead < 0:
            raise ValueError("local_call_overhead must be non-negative")


@dataclass(frozen=True)
class ClusterSpec:
    """Everything needed to instantiate a simulated cluster."""

    machines: List[MachineSpec]
    network: NetworkSpec = field(default_factory=NetworkSpec)
    seed: int = 0

    def __post_init__(self):
        if not self.machines:
            raise ValueError("a cluster needs at least one machine")
        names = [m.name for m in self.machines]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate machine names: {names}")

    @property
    def total_cores(self) -> float:
        return sum(m.cores for m in self.machines)

    @property
    def total_dram(self) -> float:
        return sum(m.dram_bytes for m in self.machines)


def symmetric_cluster(n: int, cores: float, dram_bytes: float,
                      **kwargs) -> ClusterSpec:
    """Convenience builder: *n* identical machines."""
    machines = [
        MachineSpec(name=f"m{i}", cores=cores, dram_bytes=dram_bytes)
        for i in range(n)
    ]
    return ClusterSpec(machines=machines, **kwargs)
