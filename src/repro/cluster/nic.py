"""Per-machine NIC model: fluid bandwidth sharing per direction.

Transfers contend on the sender's TX scheduler (fair-shared, priority-
aware).  The receive direction is tracked for utilization accounting but
is not a second serialization point — in every experiment here traffic is
either tx-bound or latency-bound, so the single-bottleneck approximation
is accurate (documented in DESIGN.md §4).
"""

from __future__ import annotations

from ..sim import FluidItem, FluidScheduler, Simulator


class Nic:
    """Network interface of one machine."""

    def __init__(self, sim: Simulator, machine_name: str, bandwidth: float,
                 metrics=None):
        if bandwidth <= 0:
            raise ValueError(f"NIC bandwidth must be positive: {bandwidth}")
        self.sim = sim
        self.machine_name = machine_name
        #: Nominal (spec) bandwidth; the live capacity may be degraded.
        self.bandwidth = float(bandwidth)
        self.tx = FluidScheduler(sim, bandwidth, name=f"{machine_name}.tx")
        self.metrics = metrics
        self.rx_bytes = 0.0
        self.tx_bytes = 0.0
        self.up = True
        #: Fraction of nominal bandwidth currently available, in (0, 1].
        self.degraded_fraction = 1.0

    def send(self, nbytes: float, priority: int = 1,
             name: str = "") -> FluidItem:
        """Enqueue *nbytes* for transmission; the item's ``done`` event
        fires when the last byte leaves the NIC."""
        if nbytes < 0:
            raise ValueError(f"negative transfer size: {nbytes}")
        if not self.up:
            # Lazy import: runtime depends on cluster, not vice versa.
            from ..runtime.errors import MachineFailed

            raise MachineFailed(
                f"{self.machine_name}: cannot transmit, machine is down")
        self.tx_bytes += nbytes
        return self.tx.submit(work=float(nbytes), demand=self.bandwidth,
                              priority=priority,
                              name=name or f"{self.machine_name}.send")

    # -- fault state ---------------------------------------------------------
    def degrade(self, fraction: float) -> None:
        """Clamp the TX capacity to *fraction* of nominal bandwidth
        (models congestion, a flapping link, or a misbehaving peer)."""
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"degrade fraction must be in (0, 1]: {fraction}")
        self.degraded_fraction = float(fraction)
        self.tx.set_capacity(self.bandwidth * self.degraded_fraction)

    def restore(self) -> None:
        """Undo any degradation, returning to nominal bandwidth."""
        self.degraded_fraction = 1.0
        self.tx.set_capacity(self.bandwidth)

    def take_down(self) -> None:
        """Machine crash: refuse new sends (in-flight work is failed by
        the runtime's fail path, not here)."""
        self.up = False

    def bring_up(self) -> None:
        """Machine restart: accept traffic again at nominal bandwidth."""
        self.up = True
        self.restore()

    def note_rx(self, nbytes: float) -> None:
        self.rx_bytes += nbytes

    def tx_utilization_since(self, t0: float, integral0: float = 0.0) -> float:
        return self.tx.utilization_since(t0, integral0)

    @property
    def tx_load(self) -> float:
        """Aggregate transmit rate right now (cached, O(1))."""
        return self.tx.load

    @property
    def tx_queue_depth(self) -> int:
        """Number of in-flight transfers on the TX scheduler."""
        return len(self.tx)

    def __repr__(self) -> str:
        return (f"<Nic {self.machine_name} bw={self.bandwidth:.3g} B/s "
                f"tx_queue={len(self.tx)}>")
