"""A simulated machine: CPU complex + DRAM + NIC + optional GPUs/storage."""

from __future__ import annotations

from typing import Optional

from ..sim import Simulator
from .cpu import Cpu
from .gpu import GpuPool
from .memory import Memory
from .nic import Nic
from .storagedev import StorageDevice
from .topology import MachineSpec


class Machine:
    """One server in the simulated cluster."""

    def __init__(self, sim: Simulator, mid: int, spec: MachineSpec,
                 metrics=None):
        self.sim = sim
        self.id = mid
        self.name = spec.name
        self.spec = spec
        self.cpu = Cpu(sim, spec.name, spec.cores, metrics)
        self.memory = Memory(sim, spec.name, spec.dram_bytes, metrics)
        self.nic = Nic(sim, spec.name, spec.nic_bandwidth, metrics)
        self.gpus: Optional[GpuPool] = (
            GpuPool(sim, spec.name, spec.gpus, metrics)
            if spec.gpus.count > 0 else None
        )
        self.storage: Optional[StorageDevice] = (
            StorageDevice(sim, spec.name, spec.storage, metrics)
            if spec.storage is not None else None
        )
        self.metrics = metrics

    def __repr__(self) -> str:
        return (f"<Machine {self.name} cores={self.cpu.cores:g} "
                f"dram={self.memory.capacity / 2**30:.1f} GiB>")

    # Machines are used as dict keys throughout the scheduler.
    def __hash__(self) -> int:
        return hash(self.id)

    def __eq__(self, other) -> bool:
        return isinstance(other, Machine) and other.id == self.id
