"""A simulated machine: CPU complex + DRAM + NIC + optional GPUs/storage."""

from __future__ import annotations

from typing import Optional

from ..sim import Simulator
from .cpu import Cpu
from .gpu import GpuPool
from .memory import Memory
from .nic import Nic
from .storagedev import StorageDevice
from .topology import MachineSpec


class Machine:
    """One server in the simulated cluster."""

    def __init__(self, sim: Simulator, mid: int, spec: MachineSpec,
                 metrics=None):
        self.sim = sim
        self.id = mid
        self.name = spec.name
        self.spec = spec
        self.cpu = Cpu(sim, spec.name, spec.cores, metrics)
        self.memory = Memory(sim, spec.name, spec.dram_bytes, metrics)
        self.nic = Nic(sim, spec.name, spec.nic_bandwidth, metrics)
        self.gpus: Optional[GpuPool] = (
            GpuPool(sim, spec.name, spec.gpus, metrics)
            if spec.gpus.count > 0 else None
        )
        self.storage: Optional[StorageDevice] = (
            StorageDevice(sim, spec.name, spec.storage, metrics)
            if spec.storage is not None else None
        )
        self.metrics = metrics
        #: False while the machine is crashed (fail-stop).
        self.up = True
        #: Bumped on every crash; reservations made against an older
        #: incarnation must not be released against the new one.
        self.incarnation = 0

    # -- fail-stop state -----------------------------------------------------
    def fail(self) -> None:
        """Take the machine down: no cores, no NIC, DRAM wiped.

        Callers that need the full runtime semantics (killing hosted
        proclets, failing in-flight work) should go through
        :meth:`repro.runtime.NuRuntime.fail_machine`, which ends here.
        """
        if not self.up:
            return
        self.up = False
        self.incarnation += 1
        self.cpu.set_cores(0.0)
        self.nic.take_down()
        self.memory.wipe()

    def restore(self) -> None:
        """Bring a crashed machine back, empty, at full spec capacity."""
        if self.up:
            return
        self.up = True
        self.cpu.set_cores(self.spec.cores)
        self.nic.bring_up()

    def __repr__(self) -> str:
        return (f"<Machine {self.name} cores={self.cpu.cores:g} "
                f"dram={self.memory.capacity / 2**30:.1f} GiB"
                f"{'' if self.up else ' DOWN'}>")

    # Machines are used as dict keys throughout the scheduler.
    def __hash__(self) -> int:
        return hash(self.id)

    def __eq__(self, other) -> bool:
        return isinstance(other, Machine) and other.id == self.id
