"""Per-machine DRAM accounting with pressure signals.

Memory is a *space* resource, not a rate, so unlike CPU/NIC it is modeled
as a simple reservation ledger.  Watermark callbacks give the Quicksand
local scheduler its memory-pressure signal (§5 of the paper asks what the
memory analogue of queueing delay is; we use high-watermark crossings).
"""

from __future__ import annotations

from typing import Callable, List, Tuple


class OutOfMemory(Exception):
    """A reservation exceeded the machine's DRAM capacity."""

    def __init__(self, machine: str, requested: float, free: float):
        super().__init__(
            f"{machine}: requested {requested:.0f} B but only "
            f"{free:.0f} B free"
        )
        self.machine = machine
        self.requested = requested
        self.free = free


class Memory:
    """DRAM ledger of one machine."""

    def __init__(self, sim, machine_name: str, capacity_bytes: float,
                 metrics=None):
        if capacity_bytes <= 0:
            raise ValueError(f"capacity must be positive: {capacity_bytes}")
        self.sim = sim
        self.machine_name = machine_name
        self.capacity = float(capacity_bytes)
        self.used = 0.0
        self.metrics = metrics
        self._gauge = metrics.gauge(f"{machine_name}.mem.used") \
            if metrics else None
        # (threshold, callback) pairs fired on upward crossings
        self._watermarks: List[Tuple[float, Callable[["Memory"], None]]] = []
        # unconditional change listeners (machine-index rebucketing);
        # fired before watermark callbacks so any placement query made
        # from a watermark handler sees up-to-date buckets
        self._listeners: List[Callable[["Memory"], None]] = []
        self.peak_used = 0.0
        #: Bytes reserved by fault injection (pressure-spike ballast),
        #: tracked separately so accounting invariants can subtract it.
        self.ballast = 0.0

    # -- reservations --------------------------------------------------------
    @property
    def free(self) -> float:
        return self.capacity - self.used

    @property
    def pressure(self) -> float:
        """Fraction of DRAM in use, in [0, 1]."""
        return self.used / self.capacity

    def can_fit(self, nbytes: float) -> bool:
        return nbytes <= self.free

    def reserve(self, nbytes: float) -> None:
        """Claim *nbytes*; raises :class:`OutOfMemory` when it can't fit."""
        if nbytes < 0:
            raise ValueError(f"negative reservation: {nbytes}")
        if nbytes > self.free:
            raise OutOfMemory(self.machine_name, nbytes, self.free)
        before = self.pressure
        self.used += nbytes
        self.peak_used = max(self.peak_used, self.used)
        if self._gauge is not None:
            self._gauge.set(self.sim.now, self.used)
        for fn in self._listeners:
            fn(self)
        after = self.pressure
        for threshold, cb in self._watermarks:
            if before < threshold <= after:
                cb(self)

    def release(self, nbytes: float) -> None:
        """Return *nbytes* to the pool."""
        if nbytes < 0:
            raise ValueError(f"negative release: {nbytes}")
        if nbytes > self.used + 1e-6:
            raise ValueError(
                f"{self.machine_name}: releasing {nbytes:.0f} B but only "
                f"{self.used:.0f} B reserved"
            )
        self.used = max(0.0, self.used - nbytes)
        if self._gauge is not None:
            self._gauge.set(self.sim.now, self.used)
        for fn in self._listeners:
            fn(self)

    # -- fault injection -----------------------------------------------------
    def set_ballast(self, nbytes: float) -> float:
        """Pin *nbytes* of DRAM as fault-injection ballast.

        Models a memory-pressure spike (an antagonist process ballooning)
        without going through the proclet ledger.  The request is clamped
        to what actually fits, so a spike can never itself violate the
        capacity invariant; watermark callbacks fire exactly as they would
        for a real allocation.  Returns the ballast actually held.
        """
        if nbytes < 0:
            raise ValueError(f"negative ballast: {nbytes}")
        target = min(float(nbytes), self.ballast + self.free)
        delta = target - self.ballast
        if delta > 0:
            self.reserve(delta)
        elif delta < 0:
            self.release(-delta)
        self.ballast = target
        return self.ballast

    def wipe(self) -> None:
        """Machine crash: all DRAM contents (and ballast) vanish."""
        self.used = 0.0
        self.ballast = 0.0
        if self._gauge is not None:
            self._gauge.set(self.sim.now, 0.0)
        for fn in self._listeners:
            fn(self)

    # -- signals -----------------------------------------------------------------
    def add_listener(self, fn: Callable[["Memory"], None]) -> None:
        """Invoke *fn* after every ledger change (reserve/release/wipe)."""
        self._listeners.append(fn)

    def add_watermark(self, threshold: float,
                      callback: Callable[["Memory"], None]) -> None:
        """Invoke *callback* whenever pressure crosses *threshold* upward."""
        if not 0.0 < threshold <= 1.0:
            raise ValueError(f"watermark must be in (0, 1]: {threshold}")
        self._watermarks.append((threshold, callback))

    def __repr__(self) -> str:
        return (f"<Memory {self.machine_name} "
                f"{self.used / 2**30:.2f}/{self.capacity / 2**30:.2f} GiB>")
