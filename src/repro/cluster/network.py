"""The datacenter fabric connecting simulated machines.

Provides two primitives the proclet runtime builds on:

* :meth:`Fabric.transfer` — a bulk byte move (heap migration, prefetch
  batches): one-way latency + tx-bandwidth contention at the sender.
* :meth:`Fabric.rpc_cost` — the fixed round-trip cost of a small method
  invocation, used by the runtime's remote-call path.
"""

from __future__ import annotations

from typing import Generator

from ..sim import Event, Simulator
from .machine import Machine
from .topology import NetworkSpec


class Fabric:
    """Full-bisection fabric with per-NIC bandwidth contention."""

    def __init__(self, sim: Simulator, spec: NetworkSpec, metrics=None):
        self.sim = sim
        self.spec = spec
        self.metrics = metrics
        self.total_bytes_moved = 0.0
        self.total_transfers = 0
        # Partitioned machine pairs ({id, id} frozensets).  Bulk
        # transfers between partitioned machines stall (transport-layer
        # retry) and resume when the partition heals.
        self._partitions: set = set()
        self._heal_gate: Event = None  # recreated per partition epoch

    # -- bulk data -----------------------------------------------------------
    def transfer(self, src: Machine, dst: Machine, nbytes: float,
                 priority: int = 1, name: str = "") -> Event:
        """Move *nbytes* from *src* to *dst*; returns a completion event.

        Same-machine transfers are free apart from the local-call
        overhead (data never leaves DRAM).
        """
        if nbytes < 0:
            raise ValueError(f"negative transfer: {nbytes}")
        if src is dst:
            return self.sim.timeout(self.spec.local_call_overhead)
        return self.sim.process(
            self._transfer_proc(src, dst, nbytes, priority, name),
            name=name or f"xfer:{src.name}->{dst.name}",
        )

    def _transfer_proc(self, src: Machine, dst: Machine, nbytes: float,
                       priority: int, name: str) -> Generator:
        self.total_transfers += 1
        self.total_bytes_moved += nbytes
        # Wire latency, then serialization onto the sender's NIC.
        yield self.sim.timeout(self.spec.latency)
        # A partition stalls the flow (transport retries) until healed.
        while self.is_partitioned(src, dst):
            yield self._partition_gate()
        if nbytes > 0:
            item = src.nic.send(nbytes, priority=priority, name=name)
            yield item.done
        dst.nic.note_rx(nbytes)
        if self.metrics is not None:
            self.metrics.count("net.transfers")
            self.metrics.count("net.bytes", nbytes)

    # -- partitions ----------------------------------------------------------
    def partition(self, a: Machine, b: Machine) -> None:
        """Cut bulk connectivity between *a* and *b* (both directions).

        Only bulk transfers stall; small control messages are modeled as
        unqueued latency and keep flowing (a deliberate simplification —
        the runtime's correctness never depends on control-plane loss).
        """
        if a is b:
            raise ValueError("cannot partition a machine from itself")
        self._partitions.add(frozenset((a.id, b.id)))

    def heal(self, a: Machine, b: Machine) -> None:
        """Restore connectivity between *a* and *b*; stalled flows resume."""
        self._partitions.discard(frozenset((a.id, b.id)))
        self._release_stalled()

    def heal_all(self) -> None:
        """Drop every partition."""
        if self._partitions:
            self._partitions.clear()
            self._release_stalled()

    def is_partitioned(self, a: Machine, b: Machine) -> bool:
        return bool(self._partitions) and \
            frozenset((a.id, b.id)) in self._partitions

    def _partition_gate(self) -> Event:
        """Event that fires at the next heal (shared by stalled flows)."""
        if self._heal_gate is None:
            self._heal_gate = self.sim.event()
        return self._heal_gate

    def _release_stalled(self) -> None:
        gate, self._heal_gate = self._heal_gate, None
        if gate is not None:
            gate.succeed()  # stalled transfers re-check their pair

    # -- small messages -----------------------------------------------------------
    def oneway_delay(self, req_bytes: float = 256.0) -> float:
        """Delivery time of a small control message (no queueing model —
        control traffic is negligible next to bulk transfers)."""
        return self.spec.latency + self.spec.rpc_overhead \
            + req_bytes / 1e9  # tiny serialization term

    def rpc_cost(self, req_bytes: float = 256.0,
                 resp_bytes: float = 256.0) -> float:
        """Round-trip fixed cost of a remote method invocation."""
        return self.oneway_delay(req_bytes) + self.oneway_delay(resp_bytes)

    def message(self, src: Machine, dst: Machine,
                nbytes: float = 256.0) -> Event:
        """Deliver a small control message; completion = arrival at dst."""
        if src is dst:
            return self.sim.timeout(self.spec.local_call_overhead)
        return self.sim.timeout(self.oneway_delay(nbytes))
