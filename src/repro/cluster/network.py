"""The datacenter fabric connecting simulated machines.

Provides two primitives the proclet runtime builds on:

* :meth:`Fabric.transfer` — a bulk byte move (heap migration, prefetch
  batches): one-way latency + tx-bandwidth contention at the sender.
* :meth:`Fabric.rpc_cost` — the fixed round-trip cost of a small method
  invocation, used by the runtime's remote-call path.
"""

from __future__ import annotations

from typing import Generator

from ..sim import Event, Simulator
from .machine import Machine
from .topology import NetworkSpec


class Fabric:
    """Full-bisection fabric with per-NIC bandwidth contention."""

    def __init__(self, sim: Simulator, spec: NetworkSpec, metrics=None):
        self.sim = sim
        self.spec = spec
        self.metrics = metrics
        self.total_bytes_moved = 0.0
        self.total_transfers = 0

    # -- bulk data -----------------------------------------------------------
    def transfer(self, src: Machine, dst: Machine, nbytes: float,
                 priority: int = 1, name: str = "") -> Event:
        """Move *nbytes* from *src* to *dst*; returns a completion event.

        Same-machine transfers are free apart from the local-call
        overhead (data never leaves DRAM).
        """
        if nbytes < 0:
            raise ValueError(f"negative transfer: {nbytes}")
        if src is dst:
            return self.sim.timeout(self.spec.local_call_overhead)
        return self.sim.process(
            self._transfer_proc(src, dst, nbytes, priority, name),
            name=name or f"xfer:{src.name}->{dst.name}",
        )

    def _transfer_proc(self, src: Machine, dst: Machine, nbytes: float,
                       priority: int, name: str) -> Generator:
        self.total_transfers += 1
        self.total_bytes_moved += nbytes
        # Wire latency, then serialization onto the sender's NIC.
        yield self.sim.timeout(self.spec.latency)
        if nbytes > 0:
            item = src.nic.send(nbytes, priority=priority, name=name)
            yield item.done
        dst.nic.note_rx(nbytes)
        if self.metrics is not None:
            self.metrics.count("net.transfers")
            self.metrics.count("net.bytes", nbytes)

    # -- small messages -----------------------------------------------------------
    def oneway_delay(self, req_bytes: float = 256.0) -> float:
        """Delivery time of a small control message (no queueing model —
        control traffic is negligible next to bulk transfers)."""
        return self.spec.latency + self.spec.rpc_overhead \
            + req_bytes / 1e9  # tiny serialization term

    def rpc_cost(self, req_bytes: float = 256.0,
                 resp_bytes: float = 256.0) -> float:
        """Round-trip fixed cost of a remote method invocation."""
        return self.oneway_delay(req_bytes) + self.oneway_delay(resp_bytes)

    def message(self, src: Machine, dst: Machine,
                nbytes: float = 256.0) -> Event:
        """Deliver a small control message; completion = arrival at dst."""
        if src is dst:
            return self.sim.timeout(self.spec.local_call_overhead)
        return self.sim.timeout(self.oneway_delay(nbytes))
