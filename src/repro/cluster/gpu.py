"""Emulated GPU pool.

The paper's own prototype *emulates* GPUs: "we emulated GPUs by adding a
delay to consume data from the queue" (§4).  We model the same thing: a
pool of k GPUs on a machine, where training one batch occupies one GPU
for ``batch_time`` seconds.  The pool size can change at runtime — that
is precisely the perturbation of Fig. 3 (available GPUs alternate between
four and eight every 200 ms).
"""

from __future__ import annotations

from typing import Callable, List

from ..sim import FluidItem, FluidScheduler, Simulator
from .topology import GpuSpec


class GpuPool:
    """k identical GPUs consuming batches at a fixed per-batch delay."""

    def __init__(self, sim: Simulator, machine_name: str, spec: GpuSpec,
                 metrics=None):
        self.sim = sim
        self.machine_name = machine_name
        self.batch_time = spec.batch_time
        self.sched = FluidScheduler(sim, float(spec.count),
                                    name=f"{machine_name}.gpu")
        self.metrics = metrics
        self.batches_done = 0
        self._resize_listeners: List[Callable[[int], None]] = []

    # -- capacity ---------------------------------------------------------
    @property
    def count(self) -> int:
        return int(self.sched.capacity)

    def resize(self, count: int) -> None:
        """Change the number of available GPUs (Fig. 3 perturbation)."""
        if count < 0:
            raise ValueError(f"negative GPU count: {count}")
        if count == self.count:
            return
        self.sched.set_capacity(float(count))
        if self.metrics is not None:
            self.metrics.record(f"{self.machine_name}.gpu.count", count)
        for fn in self._resize_listeners:
            fn(count)

    def on_resize(self, fn: Callable[[int], None]) -> None:
        """Subscribe to GPU-count changes (how the trainer tells the
        Quicksand controller that its consumption rate moved)."""
        self._resize_listeners.append(fn)

    # -- consumption ----------------------------------------------------------
    def train_batch(self, name: str = "") -> FluidItem:
        """Occupy one GPU for ``batch_time``; ``done`` fires at completion."""
        item = self.sched.submit(work=self.batch_time, demand=1.0,
                                 name=name or "batch")
        item.done.subscribe(self._count_batch)
        return item

    def _count_batch(self, _event) -> None:
        self.batches_done += 1
        if self.metrics is not None:
            self.metrics.count(f"{self.machine_name}.gpu.batches")

    @property
    def service_rate(self) -> float:
        """Steady-state batches/second the pool can absorb."""
        if self.batch_time <= 0:
            return float("inf")
        return self.count / self.batch_time

    def __repr__(self) -> str:
        return (f"<GpuPool {self.machine_name} count={self.count} "
                f"batch_time={self.batch_time:g}s>")
