"""Per-machine CPU model.

A machine's cores form one fluid capacity shared under strict priority —
this mirrors Caladan-style core reallocation, where a latency-critical
(HIGH) app instantly reclaims cores from best-effort (NORMAL/LOW) work.
Quicksand proclets run at NORMAL; the phased antagonist in Fig. 1 runs at
HIGH; harvest-style background work would run at LOW.
"""

from __future__ import annotations

from enum import IntEnum
from ..sim import FluidItem, FluidScheduler, Simulator


class Priority(IntEnum):
    """CPU priority classes (lower value preempts higher)."""

    HIGH = 0
    NORMAL = 1
    LOW = 2


class Cpu:
    """The CPU complex of one machine."""

    def __init__(self, sim: Simulator, machine_name: str, cores: float,
                 metrics=None):
        self.sim = sim
        self.machine_name = machine_name
        self.sched = FluidScheduler(sim, cores, name=f"{machine_name}.cpu")
        self.metrics = metrics

    # -- capacity -----------------------------------------------------------
    @property
    def cores(self) -> float:
        return self.sched.capacity

    def set_cores(self, cores: float) -> None:
        """Resize the machine (models cores being taken on/offline)."""
        self.sched.set_capacity(cores)

    # -- work submission --------------------------------------------------------
    def run(self, work: float, threads: float = 1.0,
            priority: Priority = Priority.NORMAL, name: str = "",
            owner=None) -> FluidItem:
        """Execute *work* core-seconds using up to *threads* cores."""
        return self.sched.submit(work=work, demand=threads,
                                 priority=int(priority), name=name,
                                 owner=owner)

    def hold(self, threads: float, priority: Priority = Priority.NORMAL,
             name: str = "", owner=None) -> FluidItem:
        """Occupy up to *threads* cores until cancelled (busy loop)."""
        return self.sched.hold(demand=threads, priority=int(priority),
                               name=name, owner=owner)

    def release(self, item: FluidItem) -> float:
        return self.sched.cancel(item)

    # -- signals ---------------------------------------------------------------
    def free_cores(self, priority: Priority = Priority.NORMAL) -> float:
        """Cores a new item at *priority* could obtain right now."""
        return self.sched.free_capacity(priority=int(priority))

    @property
    def load(self) -> float:
        return self.sched.load

    def contended(self, priority: Priority = Priority.NORMAL,
                  threshold: float = 0.05) -> bool:
        """True when *priority*-class work would be (nearly) starved."""
        return self.free_cores(priority) < threshold

    def utilization_since(self, t0: float, integral0: float = 0.0) -> float:
        return self.sched.utilization_since(t0, integral0)

    def snapshot_integral(self) -> float:
        """Current served-work integral, for later utilization deltas."""
        self.sched.sync()
        return self.sched.served_integral

    def add_observer(self, fn) -> None:
        """Observe every effective rate reassignment (used by local
        schedulers); no-op reassignments are coalesced away."""
        self.sched.add_observer(fn)

    def __repr__(self) -> str:
        return (f"<Cpu {self.machine_name} cores={self.cores:g} "
                f"load={self.load:.2f}>")
