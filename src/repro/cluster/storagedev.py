"""Per-machine persistent storage device (flash-style).

Models the two sub-resources the paper calls out in §5 — *capacity* and
*IOPS* — plus read/write bandwidth.  Flat storage (``repro.storage``)
spreads storage proclets across many devices to aggregate both.
"""

from __future__ import annotations

from typing import Generator

from ..sim import FluidScheduler, Simulator
from .topology import StorageSpec


class OutOfStorage(Exception):
    """A write exceeded the device's capacity."""


class StorageDevice:
    """One device with capacity, IOPS and bandwidth limits."""

    def __init__(self, sim: Simulator, machine_name: str, spec: StorageSpec,
                 metrics=None):
        self.sim = sim
        self.machine_name = machine_name
        self.spec = spec
        self.capacity = float(spec.capacity_bytes)
        self.used = 0.0
        # IOPS: capacity = ops/s; each op is 1 unit of work.
        self.iops = FluidScheduler(sim, spec.iops,
                                   name=f"{machine_name}.iops")
        self.read_bw = FluidScheduler(sim, spec.read_bandwidth,
                                      name=f"{machine_name}.disk.rd")
        self.write_bw = FluidScheduler(sim, spec.write_bandwidth,
                                       name=f"{machine_name}.disk.wr")
        self.metrics = metrics
        self.reads = 0
        self.writes = 0

    @property
    def free(self) -> float:
        return self.capacity - self.used

    @property
    def iops_load(self) -> float:
        """Current aggregate op service rate (cached, O(1))."""
        return self.iops.load

    def free_iops(self, priority: int = 1) -> float:
        """IOPS headroom a new op at *priority* would see (uses the
        scheduler's cached per-class rate sums)."""
        return self.iops.free_capacity(priority=priority)

    def reserve(self, nbytes: float) -> None:
        if nbytes < 0:
            raise ValueError(f"negative reservation: {nbytes}")
        if nbytes > self.free:
            raise OutOfStorage(
                f"{self.machine_name}: need {nbytes:.0f} B, "
                f"free {self.free:.0f} B"
            )
        self.used += nbytes

    def release(self, nbytes: float) -> None:
        if nbytes < 0 or nbytes > self.used + 1e-6:
            raise ValueError(f"bad release of {nbytes} (used={self.used})")
        self.used = max(0.0, self.used - nbytes)

    # -- I/O ---------------------------------------------------------------
    def read(self, nbytes: float, priority: int = 1) -> Generator:
        """Process: one read op (IOPS charge + bandwidth charge)."""
        self.reads += 1
        op = self.iops.submit(work=1.0, demand=self.spec.iops,
                              priority=priority, name="read-op")
        yield op.done
        if nbytes > 0:
            xfer = self.read_bw.submit(work=float(nbytes),
                                       demand=self.spec.read_bandwidth,
                                       priority=priority, name="read-bw")
            yield xfer.done

    def write(self, nbytes: float, priority: int = 1) -> Generator:
        """Process: one write op (IOPS charge + bandwidth charge)."""
        self.writes += 1
        op = self.iops.submit(work=1.0, demand=self.spec.iops,
                              priority=priority, name="write-op")
        yield op.done
        if nbytes > 0:
            xfer = self.write_bw.submit(work=float(nbytes),
                                        demand=self.spec.write_bandwidth,
                                        priority=priority, name="write-bw")
            yield xfer.done

    def __repr__(self) -> str:
        return (f"<StorageDevice {self.machine_name} "
                f"{self.used / 2**30:.2f}/{self.capacity / 2**30:.2f} GiB "
                f"iops={self.spec.iops:g}>")
