"""Simulated cluster substrate: machines, CPU/memory/NIC/GPU/storage, fabric."""

from .cluster import Cluster
from .cpu import Cpu, Priority
from .gpu import GpuPool
from .machine import Machine
from .memory import Memory, OutOfMemory
from .network import Fabric
from .nic import Nic
from .storagedev import OutOfStorage, StorageDevice
from .topology import (
    ClusterSpec,
    GpuSpec,
    MachineSpec,
    NetworkSpec,
    StorageSpec,
    symmetric_cluster,
)

__all__ = [
    "Cluster",
    "ClusterSpec",
    "Cpu",
    "Fabric",
    "GpuPool",
    "GpuSpec",
    "Machine",
    "MachineSpec",
    "Memory",
    "NetworkSpec",
    "Nic",
    "OutOfMemory",
    "OutOfStorage",
    "Priority",
    "StorageDevice",
    "StorageSpec",
    "symmetric_cluster",
]
