"""Datacenter-scale multi-tenant serving (the paper's §1 pitch, measured).

The paper opens with the claim that static VM-shaped carve-ups waste the
datacenter: every tenant sizes for its own peak, peaks don't align, and
the stranded capacity cannot be lent because VM boundaries are rigid.
Quicksand's counter-bet is fungibility — tenants expressed as granular
resource proclets that a cluster-wide scheduler can grow, shrink, and
migrate at millisecond scale, so one tenant's diurnal trough becomes
another tenant's burst headroom.

This module makes that comparison a single switchable scenario:

* Each **tenant** is an SLO-annotated request fleet: a seeded
  nonhomogeneous arrival trace (:mod:`repro.apps.traces`), exponential
  service demand, PS service at HIGH priority on whichever machines its
  :class:`ServingReplica` proclets currently occupy, and an
  SLO-aware :class:`AdmissionController` that sheds load it cannot
  serve within the deadline.

* ``mode="fungible"`` runs all tenants on one shared Quicksand cluster
  under a tenant-aware :class:`ServingScheduler`: per-tenant demand is
  EWMA-estimated from the live trace, cluster cores are divided by
  weighted max-min water-filling, replica fleets are scaled to their
  allocation through normal Quicksand placement, and replicas are
  migrated off contended machines using the machine index's bucketed
  extreme queries (no per-round sweep over the fleet).

* ``mode="static"`` is the baseline the paper argues against: machines
  are hard-partitioned up front (largest-remainder apportionment by
  weight x mean demand), replicas are pinned, and no scheduler runs.
  Idle cycles in one partition are invisible to every other tenant.

Both modes report goodput (completions within the SLO deadline over
offered load), p99/p999 latency, and cluster utilization — the
experiment driver (:mod:`repro.experiments.serving`) sweeps them over a
seed grid and CI pins the fungible:static goodput ratio.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Generator, List, Optional, Sequence, Tuple

from ..cluster import Priority, symmetric_cluster
from ..core.config import QuicksandConfig
from ..core.quicksand import Quicksand
from ..core.resource import ResourceKind, ResourceProclet
from ..metrics import Summary
from ..metrics.stats import percentile
from ..runtime import MigrationFailed, ProcletStatus
from ..runtime.errors import InvalidPlacement, MachineFailed
from ..units import GiB, MS
from .traces import ArrivalTrace, TraceSpec


@dataclass(frozen=True)
class TenantSpec:
    """One tenant: an arrival trace plus an SLO and a sharing weight."""

    name: str
    trace: TraceSpec
    #: Mean CPU demand per request (core-seconds; exponential draws).
    service_mean: float
    #: Response-time SLO: a request completing within *slo_deadline*
    #: of its arrival counts toward goodput.
    slo_deadline: float
    #: Water-filling weight (relative claim on contended cores).
    weight: float = 1.0

    def __post_init__(self):
        if self.service_mean <= 0:
            raise ValueError("service_mean must be positive")
        if self.slo_deadline <= self.service_mean:
            raise ValueError("slo_deadline must exceed service_mean")
        if self.weight <= 0:
            raise ValueError("weight must be positive")

    @property
    def mean_demand_cores(self) -> float:
        """Long-run mean core demand (rate x service)."""
        return self.trace.mean_rate * self.service_mean


class ServingReplica(ResourceProclet):
    """One single-core serving instance of a tenant.

    Replicas are plain compute proclets: placement packs them by
    planned CPU, the scheduler migrates them like any other proclet,
    and a machine crash kills them fail-stop.  Requests execute on the
    replica's *current* machine, so migration shifts where a tenant's
    load lands without touching the tenant's request loop.
    """

    kind = ResourceKind.COMPUTE
    parallelism = 1

    def __init__(self, tenant_name: str):
        super().__init__()
        self.tenant_name = tenant_name


@dataclass(frozen=True)
class AdmissionController:
    """SLO-aware load shedding at the tenant frontend.

    Under processor sharing, ``k`` resident requests on one core each
    see ``k x service_mean`` response time, so a request admitted while
    ``k >= deadline / service_mean`` is already doomed.  The controller
    caps per-tenant in-flight requests at that bound times *slack*
    (< 1 leaves margin for service-time variance), scaled by the
    tenant's current replica capacity — shedding early is what keeps
    the p99 of *admitted* requests inside the SLO when the tenant is
    under-provisioned.
    """

    slack: float = 0.8

    def __post_init__(self):
        if not 0.0 < self.slack <= 2.0:
            raise ValueError("slack must be in (0, 2]")

    def max_inflight(self, spec: TenantSpec, capacity_cores: float) -> int:
        per_core = spec.slo_deadline / spec.service_mean
        return max(1, int(capacity_cores * per_core * self.slack))

    def admit(self, spec: TenantSpec, inflight: int,
              capacity_cores: float) -> bool:
        return inflight < self.max_inflight(spec, capacity_cores)


class Tenant:
    """Runtime state of one tenant inside a scenario (counters, replica
    fleet, request loop).  Created by :class:`ServingScenario`."""

    def __init__(self, scenario: "ServingScenario", spec: TenantSpec):
        self.scenario = scenario
        self.spec = spec
        self.sim = scenario.qs.sim
        self.rng_service = self.sim.random.stream(
            f"serving.{spec.name}.service")
        self.trace = ArrivalTrace(
            spec.trace,
            self.sim.random.stream(f"serving.{spec.name}.arrivals"),
            scenario.duration)
        self.replicas: List = []          # ProcletRefs, dispatch order
        self.spawned = 0                  # monotone replica name counter
        self._rr = 0                      # round-robin cursor
        self.inflight = 0
        self.offered = 0
        self.admitted = 0
        self.rejected = 0
        self.completed = 0
        self.slo_ok = 0
        self.failed = 0
        #: (arrival time, response time) per completed request.
        self.samples: List[Tuple[float, float]] = []
        #: Arrivals since the scheduler last sampled (demand estimator).
        self.window_arrivals = 0
        #: EWMA of core demand (rate x service_mean), seeded analytically.
        self.demand_ewma = spec.trace.base_rate * spec.service_mean
        #: In-flight FluidItems (starvation invariant inspects rates).
        self.active_items: set = set()
        # Post-warmup counter baselines, set by the warmup marker.
        self._base: Dict[str, int] = {}

    # -- replica fleet -----------------------------------------------------
    def live_replicas(self) -> List:
        """Current ``(ref, proclet)`` pairs, pruning dead replicas (a
        machine crash kills them without telling us)."""
        runtime = self.scenario.qs.runtime
        alive = []
        for ref in self.replicas:
            p = runtime._proclets.get(ref.proclet_id)
            if p is not None and p.status is not ProcletStatus.DEAD:
                alive.append((ref, p))
        if len(alive) != len(self.replicas):
            self.replicas = [ref for ref, _p in alive]
        return alive

    @property
    def capacity_cores(self) -> float:
        return float(sum(p.parallelism for _r, p in self.live_replicas()))

    # -- request path ------------------------------------------------------
    def arrival_loop(self) -> Generator:
        sim = self.sim
        admission = self.scenario.admission
        t_prev = 0.0
        for t in self.trace.arrivals():
            yield sim.timeout(t - t_prev)
            t_prev = t
            self.offered += 1
            self.window_arrivals += 1
            live = self.live_replicas()
            if not live or not admission.admit(self.spec, self.inflight,
                                               len(live)):
                self.rejected += 1
                continue
            self.admitted += 1
            self.inflight += 1
            _ref, proclet = live[self._rr % len(live)]
            self._rr += 1
            sim.process(self._serve(proclet, sim.now),
                        name=f"{self.spec.name}.req")

    def _serve(self, proclet: ServingReplica,
               arrived_at: float) -> Generator:
        machine = proclet.machine
        draw = self.rng_service.expovariate(1.0 / self.spec.service_mean)
        item = machine.cpu.run(work=draw, threads=1.0,
                               priority=Priority.HIGH,
                               name=f"{self.spec.name}.req")
        self.active_items.add(item)
        try:
            yield item.done
        except MachineFailed:
            self.failed += 1
            return
        finally:
            self.active_items.discard(item)
            self.inflight -= 1
        latency = self.sim.now - arrived_at
        self.completed += 1
        self.samples.append((arrived_at, latency))
        if latency <= self.spec.slo_deadline:
            self.slo_ok += 1

    # -- reporting ---------------------------------------------------------
    def mark_baseline(self) -> None:
        """Snapshot counters at warmup end; stats() reports deltas."""
        self._base = {"offered": self.offered, "admitted": self.admitted,
                      "rejected": self.rejected, "completed": self.completed,
                      "slo_ok": self.slo_ok, "failed": self.failed}

    def stats(self, since: float = 0.0) -> Dict:
        base = self._base
        offered = self.offered - base.get("offered", 0)
        slo_ok = self.slo_ok - base.get("slo_ok", 0)
        lats = [lat for arr, lat in self.samples if arr >= since]
        summary = Summary.of(lats)
        return {
            "tenant": self.spec.name,
            "offered": offered,
            "admitted": self.admitted - base.get("admitted", 0),
            "rejected": self.rejected - base.get("rejected", 0),
            "completed": self.completed - base.get("completed", 0),
            "slo_ok": slo_ok,
            "failed": self.failed - base.get("failed", 0),
            "goodput": slo_ok / offered if offered else 0.0,
            "mean": summary.mean,
            "p50": summary.p50,
            "p99": summary.p99,
            "p999": percentile(lats, 99.9) if lats else 0.0,
            "replicas": len(self.live_replicas()),
        }


def weighted_water_fill(demands: Dict[str, float],
                        weights: Dict[str, float],
                        capacity: float) -> Dict[str, float]:
    """Weighted max-min allocation of *capacity* across *demands*.

    Iteratively satisfies every demand below its weighted fair share
    and re-divides the leftovers among the rest, so no tenant gets more
    than it asked for and contended capacity splits by weight.
    Deterministic: iteration order is sorted tenant names.
    """
    if capacity < 0:
        raise ValueError("capacity must be >= 0")
    names = sorted(demands)
    alloc = {name: 0.0 for name in names}
    active = [n for n in names if demands[n] > 0]
    remaining = capacity
    while active and remaining > 1e-12:
        total_w = sum(weights[n] for n in active)
        share = remaining / total_w
        sated = [n for n in active if demands[n] <= share * weights[n]]
        if not sated:
            for n in active:
                alloc[n] = share * weights[n]
            return alloc
        for n in sated:
            alloc[n] = demands[n]
            remaining -= demands[n]
        active = [n for n in active if n not in sated]
    return alloc


class ServingScheduler:
    """Tenant-aware global scheduling for the fungible mode.

    Every *interval* of virtual time, one round:

    1. **Estimate** each tenant's demand (cores) from its arrival count
       this window, EWMA-smoothed.
    2. **Allocate** cluster cores by weighted max-min water-filling —
       the §5 "slow global decisions" step, but over tenants rather
       than proclets.
    3. **Scale** each tenant's replica fleet toward its allocation:
       spawns go through normal Quicksand placement (bucketed machine
       index); shrinks destroy surplus replicas (one-round hysteresis
       avoids thrash).
    4. **Migrate** at most one replica from the most planned-committed
       machine to the least, picked tenant-aware (the most
       over-provisioned tenant's replica moves first).  Both extremes
       come from :meth:`MachineIndex.cpu_ratio_extremes` — O(buckets),
       not O(machines), which is what keeps a round affordable at a
       thousand machines.

    Cluster capacity is tracked event-driven off the runtime's
    failure/restore hooks, so rounds never sum over the fleet.
    """

    def __init__(self, scenario: "ServingScenario",
                 interval: float = 20 * MS, ewma_alpha: float = 0.35,
                 headroom: float = 1.25, migrate_threshold: float = 0.5,
                 min_replicas: int = 1):
        if interval <= 0:
            raise ValueError("interval must be positive")
        if not 0.0 < ewma_alpha <= 1.0:
            raise ValueError("ewma_alpha must be in (0, 1]")
        self.scenario = scenario
        self.qs = scenario.qs
        self.interval = interval
        self.ewma_alpha = ewma_alpha
        self.headroom = headroom
        self.migrate_threshold = migrate_threshold
        self.min_replicas = min_replicas
        self.rounds = 0
        self.scale_ups = 0
        self.scale_downs = 0
        self.migrations = 0
        self._capacity = sum(m.cpu.cores for m in self.qs.machines)
        self.qs.runtime.on_machine_failure(self._on_failure)
        self.qs.runtime.on_machine_restore(self._on_restore)
        self._process = self.qs.sim.process(self._loop(),
                                            name="serving-sched")

    # -- capacity tracking (event-driven, no fleet sums) -------------------
    def _on_failure(self, machine, _lost) -> None:
        self._capacity -= machine.spec.cores

    def _on_restore(self, machine) -> None:
        self._capacity += machine.spec.cores

    # -- the round ---------------------------------------------------------
    def _loop(self) -> Generator:
        while True:
            yield self.qs.sim.timeout(self.interval)
            self.rounds += 1
            self._round()

    def _round(self) -> None:
        tenants = self.scenario.tenants
        demands: Dict[str, float] = {}
        weights: Dict[str, float] = {}
        for t in tenants:
            rate = t.window_arrivals / self.interval
            t.window_arrivals = 0
            sample = rate * t.spec.service_mean
            t.demand_ewma += self.ewma_alpha * (sample - t.demand_ewma)
            demands[t.spec.name] = t.demand_ewma * self.headroom
            weights[t.spec.name] = t.spec.weight
        alloc = weighted_water_fill(demands, weights,
                                    max(0.0, self._capacity))
        for t in tenants:
            target = max(self.min_replicas,
                         math.ceil(alloc[t.spec.name] - 1e-9))
            live = t.live_replicas()
            if len(live) < target:
                for _ in range(target - len(live)):
                    if not self._spawn(t):
                        break
            elif len(live) > target + 1:
                # One replica of hysteresis so an allocation flickering
                # across an integer boundary doesn't churn spawns.
                self._shrink(t, live, len(live) - target)
        self._migrate_if_imbalanced()

    def _spawn(self, tenant: Tenant) -> bool:
        replica = ServingReplica(tenant.spec.name)
        try:
            ref = self.qs.spawn(
                replica, name=f"{tenant.spec.name}.r{tenant.spawned}")
        except InvalidPlacement:
            return False
        tenant.spawned += 1
        tenant.replicas.append(ref)
        self.scale_ups += 1
        return True

    def _shrink(self, tenant: Tenant, live: List, n: int) -> None:
        # Newest first: oldest replicas keep serving (stable dispatch).
        for ref, p in reversed(live):
            if n == 0:
                return
            if p.status is ProcletStatus.RUNNING:
                self.qs.runtime.destroy(ref)
                tenant.replicas.remove(ref)
                self.scale_downs += 1
                n -= 1

    def _migrate_if_imbalanced(self) -> None:
        index = self.qs.machine_index
        healthy = self.qs.placement._healthy
        low, low_r, high, high_r = index.cpu_ratio_extremes(healthy)
        if high is None or low is high:
            return
        if high_r - low_r < self.migrate_threshold:
            return
        candidates = [
            p for p in self.qs.runtime.proclets_on(high)
            if isinstance(p, ServingReplica)
            and p.status is ProcletStatus.RUNNING
        ]
        if not candidates:
            return
        by_name = self.scenario.tenant_by_name
        def surplus(p: ServingReplica) -> Tuple[float, int]:
            t = by_name[p.tenant_name]
            return (len(t.replicas) - t.demand_ewma, p.id)
        victim = max(candidates, key=surplus)
        self.migrations += 1
        ev = self.qs.runtime.migrate(victim, low)
        ev.subscribe(self._swallow_migration_failure)

    @staticmethod
    def _swallow_migration_failure(event) -> None:
        if not event.ok and not isinstance(event.value, MigrationFailed):
            raise event.value


class ServingScenario:
    """A multi-tenant serving cluster, fungible or statically carved.

    Build it, :meth:`run` it, read :meth:`results`.  The same tenant
    specs, seeds, and traces drive both modes, so any difference in the
    report is the resource model, not the workload.
    """

    MODES = ("fungible", "static")

    def __init__(self, tenants: Sequence[TenantSpec], machines: int = 24,
                 cores: float = 2.0, dram_bytes: float = 1 * GiB,
                 mode: str = "fungible", seed: int = 0,
                 duration: float = 2.0, warmup: float = 0.25,
                 admission_slack: float = 0.4,
                 sched_interval: float = 20 * MS,
                 headroom: float = 1.8,
                 migrate_threshold: float = 0.5):
        if mode not in self.MODES:
            raise ValueError(f"unknown mode: {mode!r}")
        if not tenants:
            raise ValueError("need at least one tenant")
        names = [t.name for t in tenants]
        if len(set(names)) != len(names):
            raise ValueError("tenant names must be unique")
        if not 0.0 <= warmup < duration:
            raise ValueError("warmup must be in [0, duration)")
        self.mode = mode
        self.duration = duration
        self.warmup = warmup
        # Local/global/split-merge off: replicas never starve (HIGH
        # priority work is the only load) and the ServingScheduler *is*
        # the global policy here — one owner of every move.
        self.qs = Quicksand(
            symmetric_cluster(machines, cores=cores, dram_bytes=dram_bytes,
                              seed=seed),
            QuicksandConfig(enable_local_scheduler=False,
                            enable_global_scheduler=False,
                            enable_split_merge=False))
        self.admission = AdmissionController(admission_slack)
        self.tenants = [Tenant(self, spec) for spec in tenants]
        self.tenant_by_name = {t.spec.name: t for t in self.tenants}
        self.partitions: Dict[str, List] = {}
        self.scheduler: Optional[ServingScheduler] = None
        if mode == "fungible":
            self._bootstrap_fungible()
            self.scheduler = ServingScheduler(
                self, interval=sched_interval, headroom=headroom,
                migrate_threshold=migrate_threshold)
        else:
            self._bootstrap_static()
        for t in self.tenants:
            self.qs.sim.process(t.arrival_loop(),
                                name=f"{t.spec.name}.arrivals")
        self.qs.sim.process(self._warmup_marker(), name="serving.warmup")
        self._util_t0 = 0.0
        self._util_integrals: List[Tuple[object, float]] = []

    # -- bootstrap ---------------------------------------------------------
    def _bootstrap_fungible(self) -> None:
        for t in self.tenants:
            target = max(1, math.ceil(t.spec.mean_demand_cores))
            for _ in range(target):
                replica = ServingReplica(t.spec.name)
                try:
                    ref = self.qs.spawn(
                        replica, name=f"{t.spec.name}.r{t.spawned}")
                except InvalidPlacement:
                    break
                t.spawned += 1
                t.replicas.append(ref)

    def _bootstrap_static(self) -> None:
        """Hard-partition machines by *reservation weight* (largest
        remainder, every tenant at least one machine), pin one replica
        per core, run no scheduler — the VM baseline.

        Sizing by weight rather than by measured demand is the point:
        a static carve-up reflects what each tenant reserved (and pays
        for), not what it turns out to need.  Tenants that over-reserve
        strand capacity nobody else can borrow; tenants that
        under-reserve drown at their own peaks with idle cores one
        partition over — the §1 utilization story, made measurable.
        """
        machines = self.qs.machines
        if len(machines) < len(self.tenants):
            raise ValueError(
                f"static mode needs >= 1 machine per tenant "
                f"({len(machines)} machines, {len(self.tenants)} tenants)")
        share = {t.spec.name: t.spec.weight for t in self.tenants}
        total = sum(share.values())
        spare = len(machines) - len(self.tenants)
        quota = {name: spare * s / total if total > 0 else 0.0
                 for name, s in share.items()}
        counts = {name: 1 + int(quota[name]) for name in quota}
        leftover = len(machines) - sum(counts.values())
        remainders = sorted(quota,
                            key=lambda n: (quota[n] - int(quota[n]), n),
                            reverse=True)
        for name in remainders[:leftover]:
            counts[name] += 1
        cursor = 0
        for t in self.tenants:
            owned = machines[cursor:cursor + counts[t.spec.name]]
            cursor += counts[t.spec.name]
            self.partitions[t.spec.name] = owned
            for m in owned:
                for _ in range(int(m.cpu.cores)):
                    replica = ServingReplica(t.spec.name)
                    ref = self.qs.spawn(
                        replica, m, name=f"{t.spec.name}.r{t.spawned}")
                    t.spawned += 1
                    t.replicas.append(ref)

    # -- measurement windows -----------------------------------------------
    def _warmup_marker(self) -> Generator:
        yield self.qs.sim.timeout(self.warmup)
        for t in self.tenants:
            t.mark_baseline()
        self._util_t0 = self.qs.sim.now
        self._util_integrals = [(m, m.cpu.snapshot_integral())
                                for m in self.qs.machines]

    # -- driving -----------------------------------------------------------
    def run(self) -> None:
        self.qs.run(until=self.duration)

    # -- reporting ---------------------------------------------------------
    def utilization(self) -> float:
        """Core-weighted mean CPU utilization since warmup (machines
        that crashed mid-window are excluded: their cores are gone)."""
        busy = 0.0
        cores = 0.0
        for m, integral0 in self._util_integrals:
            if not m.up or m.cpu.cores <= 0:
                continue
            busy += m.cpu.utilization_since(self._util_t0,
                                            integral0) * m.cpu.cores
            cores += m.cpu.cores
        return busy / cores if cores > 0 else 0.0

    def results(self) -> Dict:
        per_tenant = [t.stats(since=self.warmup) for t in self.tenants]
        offered = sum(s["offered"] for s in per_tenant)
        slo_ok = sum(s["slo_ok"] for s in per_tenant)
        lats = [lat for t in self.tenants
                for arr, lat in t.samples if arr >= self.warmup]
        return {
            "mode": self.mode,
            "machines": len(self.qs.machines),
            "tenants": per_tenant,
            "offered": offered,
            "slo_ok": slo_ok,
            "goodput": slo_ok / offered if offered else 0.0,
            "p99": percentile(lats, 99.0) if lats else 0.0,
            "p999": percentile(lats, 99.9) if lats else 0.0,
            "utilization": self.utilization(),
            "migrations": (self.scheduler.migrations
                           if self.scheduler else 0),
            "scale_ups": (self.scheduler.scale_ups
                          if self.scheduler else 0),
            "scale_downs": (self.scheduler.scale_downs
                            if self.scheduler else 0),
        }

    def check_no_starvation(self) -> List[str]:
        """Chaos invariant: no tenant that is offering load is starved.

        A tenant with admitted traffic must keep at least one live
        replica, and if it has requests in flight right now, at least
        one of them must be receiving CPU (HIGH-priority PS shares
        equally, so zero service everywhere means the tenant's machines
        are all gone — the scheduler should have respawned elsewhere).
        """
        violations = []
        for t in self.tenants:
            if t.admitted == 0:
                continue
            if not t.live_replicas():
                violations.append(
                    f"tenant {t.spec.name}: no live replicas")
            if t.inflight > 0 and t.active_items:
                served = sum(item.rate for item in t.active_items
                             if item.active)
                if served <= 0.0:
                    violations.append(
                        f"tenant {t.spec.name}: {t.inflight} in-flight "
                        f"requests receiving zero CPU")
        return violations


def default_tenants(n: int = 8, over_rate: float = 700.0,
                    under_rate: float = 1900.0,
                    service_mean: float = 2.5 * MS,
                    slo_deadline: float = 50 * MS,
                    period: float = 1.0) -> Tuple[TenantSpec, ...]:
    """A staggered-peak, reservation-mismatched tenant population.

    Phases spread evenly over the diurnal period, so the *sum* of
    demand is nearly flat while every individual tenant swings hard.
    Even tenants **over-reserve** (weight 2, modest demand); odd
    tenants **under-reserve** (weight 1, ~3x the demand) — in static
    mode the former strand capacity their neighbours drown for, which
    is the paper's §1 utilization pitch as a measurable gap.  Every
    third tenant additionally gets 3x burst windows (a release, a news
    spike) that only a borrowing scheduler can absorb.

    At the canonical 24 x 2-core cluster this population offers ~55%
    of cluster capacity in the mean, with per-tenant peaks well beyond
    any static share — the regime where the fungible:static goodput
    ratio the golden tests pin (>= 1.3) holds with margin.
    """
    tenants = []
    for i in range(n):
        over = (i % 2 == 0)
        bursty = (i % 3 == 0)
        tenants.append(TenantSpec(
            name=f"t{i}",
            trace=TraceSpec(
                base_rate=over_rate if over else under_rate,
                period=period,
                amplitude=0.9,
                phase=i / n,
                burst_factor=3.0 if bursty else 1.0,
                bursts_per_period=2.0 if bursty else 0.0,
                burst_duration=0.08 * period,
            ),
            service_mean=service_mean,
            slo_deadline=slo_deadline,
            weight=2.0 if over else 1.0,
        ))
    return tuple(tenants)
