"""Emulated-GPU training stage (§4).

Exactly like the paper's prototype, GPUs are emulated by a per-batch
delay.  The trainer runs one consumer loop per *potential* GPU; the GPU
pool's fluid capacity then makes aggregate consumption track the number
of *available* GPUs automatically (4 GPUs -> 400 batches/s at 10 ms per
batch, 8 -> 800), which is the signal Fig. 3's autoscaler chases.
"""

from __future__ import annotations

from typing import Generator, List, Optional

from ...cluster import Machine
from ...sim import Event


class TrainerApp:
    """Pops preprocessed batches from the queue and trains on GPUs."""

    def __init__(self, qs, queue, machine: Optional[Machine] = None,
                 consumers: Optional[int] = None, name: str = "trainer"):
        self.qs = qs
        self.queue = queue
        self.name = name
        if machine is None:
            machine = qs.placement.best_for_gpu()
        if machine is None or machine.gpus is None:
            raise RuntimeError("trainer needs a machine with GPUs")
        self.machine = machine
        self.gpu_ref = qs.spawn_gpu(machine, name=f"{name}.gpu")
        self.consumers = (machine.gpus.count if consumers is None
                          else consumers)
        self.batches_trained = 0
        self.running = True
        self._loops: List = []

    def start(self) -> None:
        for i in range(self.consumers):
            proc = self.qs.sim.process(self._consume_loop(),
                                       name=f"{self.name}.c{i}")
            self._loops.append(proc)

    def _consume_loop(self) -> Generator:
        while self.running:
            batch = yield self.queue.pop()
            if batch is None:
                continue
            yield self.gpu_ref.call("gp_train", batch)
            self.batches_trained += 1

    def stop(self) -> None:
        self.running = False

    @property
    def consumption_rate_nominal(self) -> float:
        """Steady-state batches/second at the current GPU count."""
        return self.machine.gpus.service_rate


class GpuAvailabilityDriver:
    """Fig. 3's perturbation: toggle available GPUs on a fixed period.

    "We vary the number of available GPUs between four and eight every
    200 milliseconds."
    """

    def __init__(self, machine: Machine, low: int = 4, high: int = 8,
                 period: float = 0.2):
        if machine.gpus is None:
            raise ValueError("machine has no GPUs")
        if low < 0 or high < low:
            raise ValueError("need 0 <= low <= high")
        if period <= 0:
            raise ValueError("period must be positive")
        self.machine = machine
        self.low = low
        self.high = high
        self.period = period
        self.toggle_times: List[tuple] = []  # (time, new_count)
        self._running = False

    def start(self) -> Event:
        self._running = True
        sim = self.machine.sim
        return sim.process(self._loop(sim), name="gpu-driver")

    def stop(self) -> None:
        self._running = False

    def _loop(self, sim) -> Generator:
        pool = self.machine.gpus
        level = self.high
        pool.resize(level)
        self.toggle_times.append((sim.now, level))
        while self._running:
            yield sim.timeout(self.period)
            if not self._running:
                return
            level = self.low if level == self.high else self.high
            pool.resize(level)
            self.toggle_times.append((sim.now, level))
