"""DNN training pipeline case study (§4 of the paper)."""

from .images import DatasetSpec, ImageSpec, load_dataset
from .pipeline import BatchPipeline, BatchPipelineResult, StreamingPipeline
from .preprocess import PreprocessStage, StreamingPreprocess, StreamingSource
from .trainer import GpuAvailabilityDriver, TrainerApp

__all__ = [
    "BatchPipeline",
    "BatchPipelineResult",
    "DatasetSpec",
    "GpuAvailabilityDriver",
    "ImageSpec",
    "PreprocessStage",
    "StreamingPipeline",
    "StreamingPreprocess",
    "StreamingSource",
    "TrainerApp",
    "load_dataset",
]
