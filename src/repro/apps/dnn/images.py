"""Synthetic image dataset for the DNN-training case study (§4).

The paper preprocesses real images with OpenCV; what Figs. 2 and 3
depend on is only (a) the dataset's total bytes and (b) the CPU-seconds
of preprocessing per image.  We generate synthetic images with
configurable size/cost and a little deterministic jitter, calibrated so
the baseline machine of Fig. 2 (46 cores) finishes in ~26 s.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ...units import MiB


@dataclass(frozen=True)
class ImageSpec:
    """One synthetic image."""

    index: int
    nbytes: float
    preprocess_cpu: float


@dataclass(frozen=True)
class DatasetSpec:
    """Shape of a synthetic image dataset.

    Defaults reproduce Fig. 2's regime: ``count * mean_bytes`` ≈ 11.7 GiB
    (fits the 13 GiB baseline machine with runtime headroom) and
    ``count * mean_cpu`` = 1200 CPU-seconds (≈26.1 s on 46 cores).
    """

    count: int = 12_000
    mean_bytes: float = 1 * MiB
    mean_cpu: float = 0.1
    size_jitter: float = 0.0   # +/- fraction of mean_bytes
    cpu_jitter: float = 0.0    # +/- fraction of mean_cpu
    seed_stream: str = "dataset"

    def __post_init__(self):
        if self.count < 1:
            raise ValueError("dataset needs at least one image")
        if self.mean_bytes <= 0 or self.mean_cpu <= 0:
            raise ValueError("image size and cpu cost must be positive")
        if not 0.0 <= self.size_jitter < 1.0 \
                or not 0.0 <= self.cpu_jitter < 1.0:
            raise ValueError("jitter fractions must be in [0, 1)")

    @property
    def total_bytes(self) -> float:
        return self.count * self.mean_bytes

    @property
    def total_cpu(self) -> float:
        return self.count * self.mean_cpu

    def generate(self, rng) -> List[ImageSpec]:
        """Materialize the image list with deterministic jitter."""
        images = []
        for i in range(self.count):
            sz = self.mean_bytes
            cpu = self.mean_cpu
            if self.size_jitter > 0:
                sz *= 1.0 + self.size_jitter * (2 * rng.random() - 1.0)
            if self.cpu_jitter > 0:
                cpu *= 1.0 + self.cpu_jitter * (2 * rng.random() - 1.0)
            images.append(ImageSpec(index=i, nbytes=sz, preprocess_cpu=cpu))
        return images


def load_dataset(qs, vector, spec: DatasetSpec):
    """Append the dataset into a sharded vector; returns the completion
    event.  The element *value* carries the per-image CPU cost so the
    preprocessing stage can look it up without a second table.

    Loading models a bulk ingest from outside the cluster (the paper's
    images arrive from storage); it is not part of any measured window.
    """
    rng = qs.sim.random.stream(spec.seed_stream)
    images = spec.generate(rng)

    def loader():
        for img in images:
            ev = vector.append(img.preprocess_cpu, img.nbytes)
            yield ev
        # Let deferred seals/splits finish before declaring ready.
        yield qs.sim.timeout(1e-3)
        return len(images)

    return qs.sim.process(loader(), name="dataset-loader")
