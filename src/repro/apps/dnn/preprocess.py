"""CPU preprocessing stage of the DNN pipeline (§4).

Two operating modes:

* **batch** (Fig. 2): preprocess an entire sharded vector of images once,
  as fast as the cluster's CPUs allow.  Work is chunked into tasks over a
  compute pool; each task streams its slice through a prefetching reader
  (remote shards cost ~nothing thanks to overlap) and pushes preprocessed
  tensors into the output queue.

* **streaming** (Fig. 3): an endless producer whose instantaneous rate the
  :class:`ComputeAutoscaler` matches to GPU consumption by splitting and
  merging the pool's compute proclets.
"""

from __future__ import annotations

from typing import Optional

from ...core.computeproclet import Task, TaskSource
from ...sim import Event
from ...units import KiB


class BatchSource(TaskSource):
    """Shared chunk dispenser for the batch preprocessing run.

    Members *pull* chunks of the image range on demand, so load balances
    itself: a worker on a slow/contended machine simply takes fewer
    chunks (equivalent to work stealing, which is what a task queue over
    sharded threads gives the real system)."""

    def __init__(self, stage: "PreprocessStage", lo: int, hi: int,
                 chunk_elems: int):
        self.stage = stage
        self._next = lo
        self.hi = hi
        self.chunk_elems = chunk_elems
        self.outstanding = 0
        self.dispatched = 0
        self.done: Event = stage.qs.sim.event()

    def pull(self, ctx):
        yield ctx.cpu(1e-6)  # dispatcher bookkeeping
        if self._next >= self.hi:
            return None
        lo = self._next
        hi = min(lo + self.chunk_elems, self.hi)
        self._next = hi
        self.outstanding += 1
        self.dispatched += 1
        return Task(key=(lo, hi), fn=self._chunk_fn(lo, hi))

    def _chunk_fn(self, lo: int, hi: int):
        stage = self.stage

        def fn(ctx, _task):
            reader = stage.vector.reader(lo, hi)
            while True:
                batch = yield from reader.next_batch(ctx)
                if batch is None:
                    break
                for key, cpu_cost in batch:
                    yield ctx.cpu(cpu_cost)
                    stage.images_done += 1
                    if stage.out_queue is not None:
                        yield stage.out_queue.push(
                            ("batch", key), stage.output_bytes, ctx=ctx)
            self.outstanding -= 1
            if (self._next >= self.hi and self.outstanding == 0
                    and not self.done.triggered):
                self.done.succeed(stage.images_done)

        return fn


class PreprocessStage:
    """The CPU stage: sharded-vector images -> preprocessed batches."""

    def __init__(self, qs, vector, out_queue, name: str = "preproc",
                 output_bytes: float = 64 * KiB,
                 workers: Optional[int] = None, parallelism: int = 1,
                 chunk_elems: Optional[int] = None):
        self.qs = qs
        self.vector = vector
        self.out_queue = out_queue
        self.name = name
        self.output_bytes = output_bytes
        self.parallelism = parallelism
        self.chunk_elems = chunk_elems
        if workers is None:
            # Default: one single-thread worker per core in the cluster.
            workers = max(1, int(qs.cluster.total_cores))
        self.workers = workers
        self.pool = None
        self.images_done = 0

    # -- batch mode (Fig. 2) ----------------------------------------------------
    def run_batch(self) -> Event:
        """Preprocess every image once; event fires at completion.

        Spawns the worker pool lazily so workers start pulling only once
        the dataset is in place."""
        chunk = self.chunk_elems
        if chunk is None:
            # ~20 chunks per worker keeps the self-balancing tail under a
            # few percent at any dataset size.
            chunk = max(1, len(self.vector) // (self.workers * 20))
        source = BatchSource(self, 0, len(self.vector), chunk)
        self.pool = self.qs.compute_pool(
            name=self.name, parallelism=self.parallelism,
            source=source, initial_members=self.workers,
        )
        return source.done

    def stop(self) -> Event:
        if self.pool is None:
            ev = self.qs.sim.event()
            ev.succeed()
            return ev
        return self.pool.stop()


class StreamingSource(TaskSource):
    """Endless preprocessing tasks cycling over the image vector.

    Each task reads one image from its memory proclet (charged), burns
    its preprocessing CPU, and pushes one batch into the queue.  Shared
    by every member of the pool, so splits (§3.3) immediately add
    production capacity.
    """

    def __init__(self, qs, vector, out_queue,
                 output_bytes: float = 16 * KiB,
                 cpu_per_batch: Optional[float] = None):
        self.qs = qs
        self.vector = vector
        self.out_queue = out_queue
        self.output_bytes = output_bytes
        self.cpu_per_batch = cpu_per_batch
        self._cursor = 0
        self.batches_produced = 0
        self.stopped = False

    def pull(self, ctx):
        if self.stopped:
            return None
        index = self._cursor % len(self.vector)
        self._cursor += 1
        task = Task(key=index, fn=self._make_fn(index))
        return task
        yield  # pull itself costs nothing; the task carries the work

    def _make_fn(self, index: int):
        def fn(ctx, _task):
            cpu_cost = yield self.vector.get(index, ctx=ctx)
            if self.cpu_per_batch is not None:
                cpu_cost = self.cpu_per_batch
            yield ctx.cpu(cpu_cost)
            yield self.out_queue.push(("batch", index), self.output_bytes,
                                      ctx=ctx)
            self.batches_produced += 1

        return fn


class StreamingPreprocess:
    """Fig. 3's producer: an autoscaled pool over a StreamingSource."""

    def __init__(self, qs, vector, out_queue, cpu_per_batch: float,
                 name: str = "stream-preproc", initial_members: int = 1,
                 max_members: Optional[int] = None,
                 output_bytes: float = 16 * KiB, demand_fn=None):
        from ...core.splitmerge import ComputeAutoscaler

        self.qs = qs
        self.source = StreamingSource(qs, vector, out_queue,
                                      output_bytes=output_bytes,
                                      cpu_per_batch=cpu_per_batch)
        self.pool = qs.compute_pool(name=name, parallelism=1,
                                    source=self.source,
                                    initial_members=initial_members)
        self.autoscaler = ComputeAutoscaler(
            qs, self.pool, out_queue,
            nominal_task_rate=1.0 / cpu_per_batch,
            min_members=1, max_members=max_members,
            demand_fn=demand_fn,
        )

    @property
    def members(self) -> int:
        return self.pool.size

    def stop(self) -> Event:
        self.autoscaler.stop()
        self.source.stopped = True
        return self.pool.stop()
