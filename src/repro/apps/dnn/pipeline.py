"""End-to-end DNN training pipeline (§4): images -> CPU preprocess ->
sharded queue -> emulated-GPU training."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ...units import KiB, MiB
from .images import DatasetSpec, load_dataset
from .preprocess import PreprocessStage, StreamingPreprocess
from .trainer import TrainerApp


@dataclass
class BatchPipelineResult:
    """Outcome of a Fig. 2-style batch preprocessing run."""

    load_time: float
    preprocess_time: float
    images: int
    shard_machines: dict = field(default_factory=dict)
    worker_machines: dict = field(default_factory=dict)
    remote_calls: int = 0
    local_calls: int = 0


class BatchPipeline:
    """Fig. 2's workload: preprocess a full dataset once.

    The trainer side is a fast drain (GPUs are not the bottleneck in
    Fig. 2 — the experiment isolates the preprocessing stage).
    """

    def __init__(self, qs, dataset: DatasetSpec = DatasetSpec(),
                 workers: Optional[int] = None,
                 output_bytes: float = 64 * KiB,
                 queue_shards: int = 2):
        self.qs = qs
        self.dataset = dataset
        self.vector = qs.sharded_vector(name="images")
        self.queue = qs.sharded_queue(name="batches",
                                      initial_shards=queue_shards)
        self.stage = PreprocessStage(qs, self.vector, self.queue,
                                     workers=workers,
                                     output_bytes=output_bytes)
        self._drain_running = True

    def _drainer(self):
        """Instant consumer standing in for non-bottleneck GPUs."""
        while self._drain_running:
            batch = yield self.queue.pop()
            if batch is None:
                return

    def run(self) -> BatchPipelineResult:
        """Load, preprocess, measure.  Runs the simulator to completion
        of the preprocessing stage and returns the measurements."""
        sim = self.qs.sim
        t0 = sim.now
        loaded = load_dataset(self.qs, self.vector, self.dataset)
        sim.run(until_event=loaded)
        load_time = sim.now - t0

        for _ in range(4):
            sim.process(self._drainer(), name="drain")
        t1 = sim.now
        done = self.stage.run_batch()
        sim.run(until_event=done)
        preprocess_time = sim.now - t1
        self._drain_running = False

        def count_by_machine(machines):
            out = {}
            for m in machines:
                out[m.name] = out.get(m.name, 0) + 1
            return out

        return BatchPipelineResult(
            load_time=load_time,
            preprocess_time=preprocess_time,
            images=len(self.vector),
            shard_machines=count_by_machine(self.vector.shard_machines()),
            worker_machines=count_by_machine(self.stage.pool.machines()),
            remote_calls=self.qs.runtime.remote_calls,
            local_calls=self.qs.runtime.local_calls,
        )


class StreamingPipeline:
    """Fig. 3's workload: continuous preprocessing feeding real
    (emulated) GPUs whose availability changes at runtime."""

    def __init__(self, qs, gpu_machine, cpu_per_batch: float = 0.01,
                 image_count: int = 256, image_bytes: float = 0.25 * MiB,
                 max_members: Optional[int] = None,
                 initial_members: int = 4,
                 use_declared_demand: bool = True):
        self.qs = qs
        self.vector = qs.sharded_vector(name="stream-images")
        self.queue = qs.sharded_queue(name="stream-batches",
                                      initial_shards=1)
        spec = DatasetSpec(count=image_count, mean_bytes=image_bytes,
                           mean_cpu=cpu_per_batch)
        qs.sim.run(until_event=load_dataset(qs, self.vector, spec))
        # The trainer reports its achievable consumption rate (§4: the
        # controller scales "after learning of a change in GPU
        # resources"); with use_declared_demand=False the controller
        # falls back to pure queue signals (the ABL-SIGNAL ablation).
        demand_fn = ((lambda: gpu_machine.gpus.service_rate)
                     if use_declared_demand else None)
        self.preprocess = StreamingPreprocess(
            qs, self.vector, self.queue, cpu_per_batch=cpu_per_batch,
            initial_members=initial_members, max_members=max_members,
            demand_fn=demand_fn,
        )
        self.trainer = TrainerApp(qs, self.queue, machine=gpu_machine)

    def start(self) -> None:
        self.trainer.start()

    def stop(self) -> None:
        self.trainer.stop()
        self.preprocess.stop()
