"""Seeded arrival traces: diurnal load curves with bursts.

The serving scenario (:mod:`repro.apps.serving`) stands in for millions
of users with *traces*, not with per-user state: each tenant's request
stream is a nonhomogeneous Poisson process whose rate follows a scaled
"day" — a sinusoidal diurnal curve — with seeded burst windows layered
on top (a release, a news spike).  DCSim-style datacenter simulators
drive their schedulers the same way; what matters for the scheduler is
that *when one tenant peaks, another is idle*, which is exactly the
fungibility opportunity the paper's §1 pitch claims static VM carve-ups
waste.

Determinism: bursts are pre-drawn from one named stream at construction
and arrivals come from thinning against a fixed envelope rate, so the
same ``(spec, rng stream)`` pair always yields byte-identical arrival
sequences — grid cells stay digest-stable under ``repro.exec`` fan-out.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Generator, List, Tuple


@dataclass(frozen=True)
class TraceSpec:
    """Shape of one tenant's arrival-rate curve.

    ``rate(t) = base_rate * diurnal(t) * burst(t)`` where ``diurnal``
    swings sinusoidally in ``[1 - amplitude, 1 + amplitude]`` over
    *period* (phase-shifted per tenant so peaks stagger) and ``burst``
    is ``burst_factor`` inside seeded burst windows, 1 elsewhere.
    """

    #: Mean request rate (req/s of virtual time) around which the
    #: diurnal curve swings.
    base_rate: float
    #: Length of the scaled "day" in virtual seconds.
    period: float = 1.0
    #: Diurnal swing in [0, 1): 0 = flat, 0.9 = peaks at 1.9x the mean.
    amplitude: float = 0.6
    #: Peak position as a fraction of *period* (staggering knob).
    phase: float = 0.0
    #: Rate multiplier inside a burst window (1 = bursts disabled).
    burst_factor: float = 1.0
    #: Expected number of burst windows per period.
    bursts_per_period: float = 0.0
    #: Length of each burst window in virtual seconds.
    burst_duration: float = 0.05

    def __post_init__(self):
        if self.base_rate <= 0:
            raise ValueError("base_rate must be positive")
        if self.period <= 0:
            raise ValueError("period must be positive")
        if not 0.0 <= self.amplitude < 1.0:
            raise ValueError("amplitude must be in [0, 1)")
        if self.burst_factor < 1.0:
            raise ValueError("burst_factor must be >= 1")
        if self.bursts_per_period < 0:
            raise ValueError("bursts_per_period must be >= 0")
        if self.burst_duration <= 0:
            raise ValueError("burst_duration must be positive")

    # -- analytic helpers ---------------------------------------------------
    def diurnal(self, t: float) -> float:
        """The diurnal multiplier at virtual time *t* (burst-free)."""
        x = 2.0 * math.pi * (t / self.period - self.phase)
        return 1.0 + self.amplitude * math.sin(x)

    @property
    def peak_rate(self) -> float:
        """Envelope rate: diurnal peak times a burst (thinning bound)."""
        return self.base_rate * (1.0 + self.amplitude) * self.burst_factor

    @property
    def mean_rate(self) -> float:
        """Long-run mean rate (sin integrates to zero; bursts add their
        expected duty cycle)."""
        duty = min(1.0, (self.bursts_per_period * self.burst_duration)
                   / self.period)
        return self.base_rate * (1.0 + duty * (self.burst_factor - 1.0))


@dataclass
class ArrivalTrace:
    """A concrete, seeded realization of a :class:`TraceSpec`.

    Burst windows for ``[0, horizon)`` are drawn up front from *rng*
    (a named :class:`random.Random` stream), then :meth:`arrivals`
    thins a homogeneous Poisson stream at :attr:`TraceSpec.peak_rate`
    down to the instantaneous rate — the standard exact sampler for
    nonhomogeneous Poisson processes.
    """

    spec: TraceSpec
    rng: object
    horizon: float
    #: Burst windows as sorted, non-overlapping ``(start, end)`` pairs.
    bursts: List[Tuple[float, float]] = field(init=False)

    def __post_init__(self):
        if self.horizon <= 0:
            raise ValueError("horizon must be positive")
        self.bursts = self._draw_bursts()

    def _draw_bursts(self) -> List[Tuple[float, float]]:
        spec = self.spec
        if spec.bursts_per_period <= 0 or spec.burst_factor == 1.0:
            return []
        windows: List[Tuple[float, float]] = []
        burst_rate = spec.bursts_per_period / spec.period
        t = self.rng.expovariate(burst_rate)
        while t < self.horizon:
            end = t + spec.burst_duration
            if windows and t < windows[-1][1]:
                # Overlapping draws coalesce: extend the open window.
                windows[-1] = (windows[-1][0], max(windows[-1][1], end))
            else:
                windows.append((t, end))
            t += self.rng.expovariate(burst_rate)
        return windows

    def in_burst(self, t: float) -> bool:
        # Windows are few (O(bursts) per run) and arrivals advance
        # monotonically, so a linear probe with a moving cursor is O(1)
        # amortized; bisect would be overkill.
        for start, end in self.bursts:
            if t < start:
                return False
            if t < end:
                return True
        return False

    def rate_at(self, t: float) -> float:
        """Instantaneous arrival rate at virtual time *t*."""
        rate = self.spec.base_rate * self.spec.diurnal(t)
        if self.in_burst(t):
            rate *= self.spec.burst_factor
        return rate

    def offered_rate_mean(self) -> float:
        """Realized mean rate over the horizon (bursts as drawn)."""
        burst_time = sum(end - start for start, end in self.bursts)
        duty = min(1.0, burst_time / self.horizon)
        return self.spec.base_rate * (
            1.0 + duty * (self.spec.burst_factor - 1.0))

    def arrivals(self) -> Generator[float, None, None]:
        """Yield arrival times in ``(0, horizon)``, strictly increasing.

        Exact thinning: candidates arrive at the constant envelope
        ``peak_rate``; each is kept with probability ``rate_at(t) /
        peak_rate``.  The envelope dominates the true rate everywhere,
        so the kept stream is distributed exactly as the target
        nonhomogeneous process.
        """
        peak = self.spec.peak_rate
        t = 0.0
        while True:
            t += self.rng.expovariate(peak)
            if t >= self.horizon:
                return
            if self.rng.random() * peak < self.rate_at(t):
                yield t
