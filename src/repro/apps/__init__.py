"""Applications from the paper: the Fig. 1 filler and phased antagonist,
the §4 DNN pipeline, plus an analytics example."""

from .analytics import WordCountJob
from .filler import FillerApp
from .kvcache import ElasticCache
from .phased import PhasedApp
from .service import CloneService, LatencyService

__all__ = [
    "CloneService",
    "ElasticCache",
    "FillerApp",
    "LatencyService",
    "PhasedApp",
    "WordCountJob",
]
