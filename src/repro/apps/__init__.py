"""Applications from the paper: the Fig. 1 filler and phased antagonist,
the §4 DNN pipeline, plus an analytics example."""

from .analytics import WordCountJob
from .filler import FillerApp
from .kvcache import ElasticCache
from .phased import PhasedApp
from .service import CloneService, LatencyService
from .serving import (AdmissionController, ServingReplica, ServingScenario,
                      ServingScheduler, TenantSpec, default_tenants,
                      weighted_water_fill)
from .traces import ArrivalTrace, TraceSpec

__all__ = [
    "AdmissionController",
    "ArrivalTrace",
    "CloneService",
    "ElasticCache",
    "FillerApp",
    "LatencyService",
    "PhasedApp",
    "ServingReplica",
    "ServingScenario",
    "ServingScheduler",
    "TenantSpec",
    "TraceSpec",
    "WordCountJob",
    "default_tenants",
    "weighted_water_fill",
]
