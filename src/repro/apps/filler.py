"""The Fig. 1 filler application: CPU-hungry, small-state, fungible.

The filler is structured as many single-thread compute proclets with tiny
heaps, each grinding through an endless stream of small work units.  When
a HIGH-priority burst starves them, the Quicksand local scheduler
migrates them (in <1 ms, because their state is small) to wherever cores
are idle — which is how the filler harvests the anti-phased idle windows
of the two machines.
"""

from __future__ import annotations

from typing import List, Optional

from ..cluster import Machine
from ..core.computeproclet import Task, TaskSource
from ..units import KiB, US


class _EndlessWork(TaskSource):
    """Generates an infinite stream of fixed-cost work units."""

    def __init__(self, app: "FillerApp"):
        self.app = app

    def pull(self, ctx):
        if not self.app.running:
            return None
        return Task(work=self.app.work_unit)
        yield  # unreachable; pull needs no simulated time of its own


class FillerApp:
    """Fungible filler built from granular compute proclets."""

    def __init__(self, qs, proclets: int = 8, work_unit: float = 100 * US,
                 state_bytes: float = 64 * KiB,
                 machine: Optional[Machine] = None, name: str = "filler"):
        if proclets < 1:
            raise ValueError("need at least one filler proclet")
        if work_unit <= 0:
            raise ValueError("work_unit must be positive")
        self.qs = qs
        self.name = name
        self.work_unit = work_unit
        self.state_bytes = state_bytes
        self.running = True
        self.refs: List = []
        self._units = qs.metrics.counter(f"{name}.units")
        source = _EndlessWork(self)
        for i in range(proclets):
            ref = qs.spawn_compute(parallelism=1, source=source,
                                   machine=machine, name=f"{name}.{i}")
            proclet = ref.proclet
            proclet.on_task_done = self._on_unit_done
            if state_bytes > 0:
                proclet.heap_alloc(state_bytes)
            self.refs.append(ref)

    def _on_unit_done(self, _proclet, _task, _result) -> None:
        self._units.add(self.qs.sim.now, 1.0)

    # -- measurement -----------------------------------------------------------
    @property
    def units_done(self) -> float:
        return self._units.total

    def goodput_cores(self, t0: float, t1: float) -> float:
        """Average cores' worth of useful filler work over [t0, t1)."""
        if t1 <= t0:
            return 0.0
        w = self._units.series.window(t0, t1)
        return sum(w.values) * self.work_unit / (t1 - t0)

    def goodput_timeline(self, t0: float, t1: float, bucket: float):
        """(time, cores-of-goodput) series — the Fig. 1 y-axis."""
        sums = self._units.series.bucket_sums(t0, t1, bucket)
        return [(t, units * self.work_unit / bucket) for t, units in sums]

    def machines_now(self) -> List[Machine]:
        return [ref.machine for ref in self.refs]

    def total_migrations(self) -> int:
        return sum(ref.proclet.migrations for ref in self.refs)

    def stop(self):
        """Stop generating work; returns the all-workers-exited event."""
        self.running = False
        stops = [ref.proclet.request_stop() for ref in self.refs]
        return self.qs.sim.all_of(stops)
