"""An elastic in-memory cache over memory proclets.

The paper's introduction motivates fungibility with exactly this
workload: an AWS Lambda user "might use it only as an in-memory data
cache that requires little CPU" [InfiniCache, 60] — yet the cloud makes
them rent bundled CPU.  Built on memory proclets, the cache consumes
*only* DRAM (plus negligible cycles), spreads across whatever machines
have free memory, and keeps shrinking/growing per-machine as the
local/global schedulers move its shards.

The cache enforces a byte budget with CLOCK-style eviction batched per
shard (second-chance bits live with the data, so eviction is a local
operation on each memory proclet).
"""

from __future__ import annotations

from typing import Any

from ..core.memproclet import MemoryProclet
from ..runtime import Payload
from ..sim import Event
from ..units import MiB, US

_OP_CPU = 0.3 * US


class CacheShardProclet(MemoryProclet):
    """Memory proclet with second-chance (CLOCK) eviction support."""

    def __init__(self):
        super().__init__()
        self._referenced: dict = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def cs_get(self, ctx, key):
        yield ctx.cpu(_OP_CPU)
        entry = self._objects.get(key)
        if entry is None:
            self.misses += 1
            return Payload(None, nbytes=0.0)
        self._referenced[key] = True
        self.hits += 1
        nbytes, value = entry
        return Payload(value, nbytes=nbytes)

    def cs_put(self, ctx, key, nbytes: float, value: Any):
        yield from self.mp_put(ctx, key, nbytes, value)
        self._referenced[key] = True

    def cs_evict(self, ctx, target_bytes: float):
        """Free at least *target_bytes* using the CLOCK second chance."""
        yield ctx.cpu(_OP_CPU * max(1, self.object_count))
        freed = 0.0
        # First pass: clear reference bits, evict unreferenced entries.
        for _pass in range(2):
            if freed >= target_bytes:
                break
            for key in list(self._keys):
                if freed >= target_bytes:
                    break
                if self._referenced.get(key, False):
                    self._referenced[key] = False
                    continue
                entry = self._objects.pop(key)
                self._keys.remove(key)
                self._referenced.pop(key, None)
                self.heap_free(entry[0])
                freed += entry[0]
                self.evictions += 1
        return freed


class ElasticCache:
    """A byte-budgeted cache namespace spread over cache shards."""

    def __init__(self, qs, name: str = "cache",
                 budget_bytes: float = 256 * MiB, shards: int = 4):
        if budget_bytes <= 0:
            raise ValueError("budget must be positive")
        if shards < 1:
            raise ValueError("need at least one shard")
        self.qs = qs
        self.name = name
        self.budget_bytes = float(budget_bytes)
        self.shards = []
        for i in range(shards):
            proclet = CacheShardProclet()
            ref = qs.spawn(proclet, name=f"{name}.{i}")
            self.shards.append(ref)
        self.puts = 0
        self.gets = 0

    # -- routing -------------------------------------------------------------
    def _route(self, key: Any):
        return self.shards[hash(key) % len(self.shards)]

    # -- API -------------------------------------------------------------------
    def get(self, key: Any, ctx=None) -> Event:
        """Event value: the cached object or ``None`` on a miss."""
        self.gets += 1
        ref = self._route(key)
        if ctx is not None:
            return ctx.call(ref, "cs_get", key)
        return ref.call("cs_get", key)

    def put(self, key: Any, value: Any, nbytes: float, ctx=None) -> Event:
        """Insert; triggers shard-local eviction if over budget."""
        self.puts += 1
        ref = self._route(key)
        ev = (ctx.call(ref, "cs_put", key, nbytes, value, req_bytes=nbytes)
              if ctx is not None
              else ref.call("cs_put", key, nbytes, value))
        ev.subscribe(lambda _e: self._maybe_evict())
        return ev

    def _maybe_evict(self) -> None:
        over = self.used_bytes - self.budget_bytes
        if over <= 0:
            return
        # Ask the fullest shard to shed the overage.
        fullest = max(self.shards, key=lambda r: r.proclet.heap_bytes)
        fullest.call("cs_evict", over)

    # -- stats --------------------------------------------------------------------
    @property
    def used_bytes(self) -> float:
        return sum(r.proclet.heap_bytes for r in self.shards)

    @property
    def hit_rate(self) -> float:
        hits = sum(r.proclet.hits for r in self.shards)
        misses = sum(r.proclet.misses for r in self.shards)
        total = hits + misses
        return hits / total if total else 0.0

    @property
    def evictions(self) -> int:
        return sum(r.proclet.evictions for r in self.shards)

    def shard_machines(self):
        return [r.machine for r in self.shards]

    def destroy(self) -> None:
        for ref in self.shards:
            self.qs.runtime.destroy(ref)
        self.shards.clear()
