"""Latency-critical request services (the HIGH-priority tenants).

Fig. 1's premise is that machines host latency-critical services whose
idle cycles others should harvest *without hurting them*.
:class:`LatencyService` makes that claim measurable on one machine:
Poisson request arrivals served at HIGH priority, with per-request
latency recorded — run it with and without a filler underneath and
compare the tail.

:class:`CloneService` scales the same open-loop workload to a *fleet*
of PS servers and adds synchronized request cloning (clone-to-c with
first-finished-wins cancellation), hedging, heterogeneous service-time
distributions, and clone budgets — the workload half of the
:mod:`repro.hedge` differential suite, built so its steady state is
*exactly* the M/G/1-PS model the closed-form oracle predicts.
"""

from __future__ import annotations

from typing import Generator, List, Optional, Sequence, Tuple

from ..cluster import Machine, Priority
from ..metrics import Summary
from ..runtime.errors import MachineFailed
from ..units import US


class LatencyService:
    """Open-loop request service at HIGH priority on one machine."""

    def __init__(self, machine: Machine, arrival_rate: float,
                 service_cpu: float = 500 * US,
                 concurrency: Optional[int] = None,
                 name: str = "service", rng_stream: str = "service"):
        if arrival_rate <= 0:
            raise ValueError("arrival_rate must be positive")
        if service_cpu <= 0:
            raise ValueError("service_cpu must be positive")
        self.machine = machine
        self.arrival_rate = arrival_rate
        self.service_cpu = service_cpu
        #: Max requests in service simultaneously (thread pool size).
        self.concurrency = (int(machine.cpu.cores) if concurrency is None
                            else concurrency)
        self.name = name
        self.rng = machine.sim.random.stream(rng_stream)
        #: (arrival time, response time) per completed request, in
        #: completion order (same shape as :attr:`CloneService.samples`).
        self.samples: List[Tuple[float, float]] = []
        self.requests_done = 0
        self._running = False

    @property
    def latencies(self) -> List[float]:
        return [latency for _arrived, latency in self.samples]

    @property
    def offered_load(self) -> float:
        """Mean cores of demand (arrival_rate x service_cpu)."""
        return self.arrival_rate * self.service_cpu

    def start(self) -> None:
        if self._running:
            raise RuntimeError("service already started")
        self._running = True
        self.machine.sim.process(self._arrivals(),
                                 name=f"{self.name}.arrivals")

    def stop(self) -> None:
        self._running = False

    def _arrivals(self) -> Generator:
        sim = self.machine.sim
        while self._running:
            yield sim.timeout(self.rng.expovariate(self.arrival_rate))
            if not self._running:
                return
            sim.process(self._serve(sim.now), name=f"{self.name}.req")

    def _serve(self, arrived_at: float) -> Generator:
        sim = self.machine.sim
        item = self.machine.cpu.run(
            work=self.service_cpu, threads=1.0,
            priority=Priority.HIGH, name=f"{self.name}.req",
        )
        yield item.done
        self.requests_done += 1
        self.samples.append((arrived_at, sim.now - arrived_at))

    def latency_summary(self, since: Optional[float] = None,
                        since_index: int = 0) -> Summary:
        """Summary of response times, trimmed by either form.

        ``since`` (virtual time) keeps requests *arriving* at or after
        that instant — the same warmup-trimming contract as
        :meth:`CloneService.latency_summary`.  ``since_index`` (the
        legacy form) slices by completion order.  ``since`` wins when
        both are given.
        """
        if since is not None:
            return Summary.of([latency for arrived, latency in self.samples
                               if arrived >= since])
        return Summary.of(self.latencies[since_index:])

    def __repr__(self) -> str:
        return (f"<LatencyService {self.name!r} on {self.machine.name} "
                f"rate={self.arrival_rate:g}/s "
                f"load={self.offered_load:.2f} cores>")


class CloneService:
    """Open-loop request service over a fleet of PS servers with
    synchronized request cloning.

    The *machines* are partitioned into ``n / clone_factor`` groups.
    Each Poisson arrival is routed (uniformly, seeded stream) to one
    group and cloned to *every* server of that group with an iid
    service-time draw per clone; the first clone to finish defines the
    response time and the losers are cancelled on the spot — so each
    server runs exactly the M/G/1-PS queue with min-of-c service times
    that :mod:`repro.hedge.oracle` predicts in closed form.

    Each request's work runs at *priority* with ``demand = cores`` on
    its server, which under the fluid scheduler gives every resident
    request an equal ``cores/k`` share: processor sharing, not an
    approximation of it.

    Options off the oracle's path (each documented in docs/cloning.md):

    * ``hedge_after=t`` launches the sibling clones one at a time, t
      virtual seconds apart, instead of all at once — the hedge timer
      is cancelled through :meth:`Simulator.cancel` when the primary
      wins, exercising the tombstone machinery at workload scale.
    * ``clone_budget=k`` caps the fleet-wide number of *extra* clones
      in flight; a request that cannot acquire budget degrades toward
      an un-cloned call (``budget_denied`` counts the degradations).
    * A clone stranded on a crashed machine fails without failing the
      request while any sibling survives (cloning doubles as fault
      tolerance); only requests losing *all* clones count as
      ``failed_requests``.
    """

    def __init__(self, machines: Sequence[Machine], arrival_rate: float,
                 service_dist, clone_factor: int = 1,
                 hedge_after: Optional[float] = None,
                 clone_budget: Optional[int] = None,
                 priority: Priority = Priority.HIGH,
                 name: str = "clones"):
        if not machines:
            raise ValueError("need at least one machine")
        if arrival_rate <= 0:
            raise ValueError("arrival_rate must be positive")
        if not isinstance(clone_factor, int) or clone_factor < 1:
            raise ValueError(f"clone_factor must be a positive int, "
                             f"got {clone_factor!r}")
        if len(machines) % clone_factor != 0:
            raise ValueError(
                f"clone_factor {clone_factor} must divide the server "
                f"count {len(machines)} (synchronized cloning)")
        if hedge_after is not None and hedge_after <= 0:
            raise ValueError("hedge_after must be positive")
        if clone_budget is not None and clone_budget < 0:
            raise ValueError("clone_budget must be >= 0")
        self.machines = list(machines)
        self.sim = machines[0].sim
        self.arrival_rate = arrival_rate
        self.service_dist = service_dist
        self.clone_factor = clone_factor
        self.hedge_after = hedge_after
        self.clone_budget = clone_budget
        self.priority = priority
        self.name = name
        c = clone_factor
        self.groups = [self.machines[i * c:(i + 1) * c]
                       for i in range(len(self.machines) // c)]
        # Independent named streams so the arrival process, routing, and
        # service draws stay decoupled across configurations.
        self.rng_arrival = self.sim.random.stream(f"{name}.arrival")
        self.rng_route = self.sim.random.stream(f"{name}.route")
        self.rng_service = self.sim.random.stream(f"{name}.service")
        #: (arrival time, response time) per completed request, in
        #: completion order — :meth:`latency_summary` slices by arrival
        #: time so a warmup window can be discarded.
        self.samples: List[Tuple[float, float]] = []
        self.requests_done = 0
        self.failed_requests = 0
        self.clones_launched = 0
        self.clones_cancelled = 0
        self.hedges_fired = 0
        self.budget_denied = 0
        self._budget_in_use = 0
        self._running = False

    # -- derived ----------------------------------------------------------
    @property
    def offered_load(self) -> float:
        """Per-server utilization the oracle predicts for this config
        (``lambda * c / n * E[min-of-c]``)."""
        from ..hedge.oracle import clone_utilization
        return clone_utilization(self.arrival_rate, len(self.machines),
                                 self.clone_factor, self.service_dist)

    @property
    def latencies(self) -> List[float]:
        return [latency for _arrived, latency in self.samples]

    def latency_summary(self, since: float = 0.0) -> Summary:
        """Summary of response times for requests arriving at or after
        *since* (use to trim the empty-system warmup transient)."""
        return Summary.of([latency for arrived, latency in self.samples
                           if arrived >= since])

    # -- lifecycle --------------------------------------------------------
    def start(self) -> None:
        if self._running:
            raise RuntimeError("service already started")
        self._running = True
        self.sim.process(self._arrivals(), name=f"{self.name}.arrivals")

    def stop(self) -> None:
        self._running = False

    def _arrivals(self) -> Generator:
        sim = self.sim
        while self._running:
            yield sim.timeout(self.rng_arrival.expovariate(self.arrival_rate))
            if not self._running:
                return
            group = self.groups[self.rng_route.randrange(len(self.groups))]
            sim.process(self._serve(group, sim.now), name=f"{self.name}.req")

    # -- request path -----------------------------------------------------
    def _acquire_extra(self) -> bool:
        """Take one unit of the fleet-wide extra-clone budget."""
        if self.clone_budget is None:
            return True
        if self._budget_in_use >= self.clone_budget:
            self.budget_denied += 1
            return False
        self._budget_in_use += 1
        return True

    def _launch(self, server: Machine, items: List) -> None:
        draw = self.service_dist.sample(self.rng_service)
        cores = server.cpu.cores
        item = server.cpu.run(work=draw * cores, threads=cores,
                              priority=self.priority,
                              name=f"{self.name}.req")
        items.append((server, item))
        self.clones_launched += 1

    def _serve(self, group: Sequence[Machine], arrived_at: float) -> Generator:
        sim = self.sim
        items: List = []
        extras = 0
        self._launch(group[0], items)
        hedging = self.hedge_after is not None
        if not hedging:
            for server in group[1:]:
                if not self._acquire_extra():
                    break
                extras += 1
                self._launch(server, items)
        budget_blocked = False
        winner = None
        try:
            while True:
                for _server, item in items:
                    if item.done.triggered and item.done.ok:
                        winner = item
                        break
                if winner is not None:
                    break
                live = [item.done for _server, item in items
                        if not item.done.triggered]
                if not live:
                    self.failed_requests += 1  # every clone crashed
                    return
                want_hedge = (hedging and not budget_blocked
                              and len(items) < len(group))
                if want_hedge:
                    timer = sim.timeout(self.hedge_after)
                    try:
                        yield sim.any_of(live + [timer])
                    except MachineFailed:
                        continue  # a clone died; re-wait on the rest
                    finally:
                        if not timer.processed:
                            sim.cancel(timer)  # tombstoned, not leaked
                    if timer.processed and not any(
                            item.done.triggered for _s, item in items):
                        if self._acquire_extra():
                            extras += 1
                            self.hedges_fired += 1
                            self._launch(group[len(items)], items)
                        else:
                            budget_blocked = True
                else:
                    try:
                        yield sim.any_of(live)
                    except MachineFailed:
                        continue
            self.requests_done += 1
            self.samples.append((arrived_at, sim.now - arrived_at))
        finally:
            # First-finished-wins: reclaim every losing clone's CPU at
            # this virtual instant (and release the budget units).
            for server, item in items:
                if item is not winner and item.active:
                    server.cpu.release(item)
                    self.clones_cancelled += 1
            self._budget_in_use -= extras

    def __repr__(self) -> str:
        return (f"<CloneService {self.name!r} n={len(self.machines)} "
                f"c={self.clone_factor} rate={self.arrival_rate:g}/s "
                f"rho={self.offered_load:.2f}>")
