"""A latency-critical request service (the HIGH-priority tenant).

Fig. 1's premise is that machines host latency-critical services whose
idle cycles others should harvest *without hurting them*.  This app
makes that claim measurable: Poisson request arrivals served at HIGH
priority, with per-request latency recorded — run it with and without a
filler underneath and compare the tail.
"""

from __future__ import annotations

from typing import Generator, List, Optional

from ..cluster import Machine, Priority
from ..metrics import Summary
from ..units import US


class LatencyService:
    """Open-loop request service at HIGH priority on one machine."""

    def __init__(self, machine: Machine, arrival_rate: float,
                 service_cpu: float = 500 * US,
                 concurrency: Optional[int] = None,
                 name: str = "service", rng_stream: str = "service"):
        if arrival_rate <= 0:
            raise ValueError("arrival_rate must be positive")
        if service_cpu <= 0:
            raise ValueError("service_cpu must be positive")
        self.machine = machine
        self.arrival_rate = arrival_rate
        self.service_cpu = service_cpu
        #: Max requests in service simultaneously (thread pool size).
        self.concurrency = (int(machine.cpu.cores) if concurrency is None
                            else concurrency)
        self.name = name
        self.rng = machine.sim.random.stream(rng_stream)
        self.latencies: List[float] = []
        self.requests_done = 0
        self._running = False

    @property
    def offered_load(self) -> float:
        """Mean cores of demand (arrival_rate x service_cpu)."""
        return self.arrival_rate * self.service_cpu

    def start(self) -> None:
        if self._running:
            raise RuntimeError("service already started")
        self._running = True
        self.machine.sim.process(self._arrivals(),
                                 name=f"{self.name}.arrivals")

    def stop(self) -> None:
        self._running = False

    def _arrivals(self) -> Generator:
        sim = self.machine.sim
        while self._running:
            yield sim.timeout(self.rng.expovariate(self.arrival_rate))
            if not self._running:
                return
            sim.process(self._serve(sim.now), name=f"{self.name}.req")

    def _serve(self, arrived_at: float) -> Generator:
        sim = self.machine.sim
        item = self.machine.cpu.run(
            work=self.service_cpu, threads=1.0,
            priority=Priority.HIGH, name=f"{self.name}.req",
        )
        yield item.done
        self.requests_done += 1
        self.latencies.append(sim.now - arrived_at)

    def latency_summary(self, since_index: int = 0) -> Summary:
        return Summary.of(self.latencies[since_index:])

    def __repr__(self) -> str:
        return (f"<LatencyService {self.name!r} on {self.machine.name} "
                f"rate={self.arrival_rate:g}/s "
                f"load={self.offered_load:.2f} cores>")
