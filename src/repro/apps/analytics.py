"""A word-count-style analytics workload (extra example domain).

Demonstrates the general-purpose side of the abstractions: documents in a
sharded vector, a parallel map producing per-task partial counts, and a
reduce that folds them — the classic map-reduce the paper cites as the
kind of high-level framework Quicksand should host (§2, §3.2).
"""

from __future__ import annotations

from typing import Dict, List

from ..compute import reduce as parallel_reduce
from ..sim import Event
from ..units import KiB


class WordCountJob:
    """Count synthetic word occurrences across a document corpus."""

    #: CPU cost per byte of document scanned (models tokenization).
    CPU_PER_BYTE = 5e-9

    def __init__(self, qs, documents: int = 1000,
                 words_per_doc: int = 100, vocabulary: int = 50,
                 doc_bytes: float = 16 * KiB, pool_members: int = 4):
        self.qs = qs
        self.vector = qs.sharded_vector(name="docs")
        self.pool = qs.compute_pool(name="wordcount",
                                    initial_members=pool_members)
        rng = qs.sim.random.stream("wordcount")
        self._vocab = [f"word{i}" for i in range(vocabulary)]
        self.expected: Dict[str, int] = {}
        events = []
        for d in range(documents):
            words: List[str] = rng.choices(self._vocab, k=words_per_doc)
            for w in words:
                self.expected[w] = self.expected.get(w, 0) + 1
            events.append(self.vector.append(words, doc_bytes))
        qs.sim.run(until_event=qs.sim.all_of(events))
        qs.sim.run(until=qs.sim.now + 0.01)  # settle shard splits
        self.doc_bytes = doc_bytes

    def run(self) -> Event:
        """Run the count; event value is the {word: count} dict."""

        def fold(acc, _key, value):
            # Leaf folds see a document's word list; combiner folds see a
            # partial dict from another task.
            if isinstance(value, dict):
                for w, n in value.items():
                    acc[w] = acc.get(w, 0) + n
            else:
                for w in value:
                    acc[w] = acc.get(w, 0) + 1
            return acc

        # A fresh dict per fold chain: initial must be treated as
        # immutable, so wrap the reduce with a copying fold.
        def fold_copy(acc, key, value):
            if acc is _SENTINEL:
                acc = {}
            return fold(acc, key, value)

        _SENTINEL = object()

        ev = parallel_reduce(
            self.pool, self.vector,
            work=self.doc_bytes * self.CPU_PER_BYTE,
            fold=fold_copy, initial=_SENTINEL,
        )
        out = self.qs.sim.event()

        def _finish(e):
            if not e.ok:
                out.fail(e.value)
            else:
                out.succeed(e.value if e.value is not _SENTINEL else {})

        ev.subscribe(_finish)
        return out
