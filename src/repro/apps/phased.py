"""The phased high-priority antagonist of the Fig. 1 experiment.

"Every 10ms, it goes from consuming no CPU to consuming all the cores on
the machine, and reverts to no CPU consumption after another 10ms" (§2).
Runs at HIGH priority, so Caladan-style preemption instantly strips
NORMAL-priority Quicksand proclets of their cores during each burst.
"""

from __future__ import annotations

from typing import Generator, Optional

from ..cluster import Machine, Priority
from ..units import MS


class PhasedApp:
    """Square-wave CPU antagonist pinned to one machine."""

    def __init__(self, machine: Machine, burst: float = 10 * MS,
                 idle: float = 10 * MS, phase_offset: float = 0.0,
                 cores: Optional[float] = None):
        if burst <= 0 or idle < 0:
            raise ValueError("burst must be positive, idle non-negative")
        if phase_offset < 0:
            raise ValueError("phase_offset must be non-negative")
        self.machine = machine
        self.burst = burst
        self.idle = idle
        self.phase_offset = phase_offset
        self.cores = machine.cpu.cores if cores is None else cores
        self.bursts = 0
        self._running = False
        self._process = None

    def start(self) -> None:
        """Begin the burst/idle square wave."""
        if self._running:
            raise RuntimeError("phased app already started")
        self._running = True
        sim = self.machine.sim
        self._process = sim.process(self._loop(sim),
                                    name=f"phased:{self.machine.name}")

    def stop(self) -> None:
        self._running = False

    def _loop(self, sim) -> Generator:
        if self.phase_offset > 0:
            yield sim.timeout(self.phase_offset)
        while self._running:
            hold = self.machine.cpu.hold(
                threads=self.cores, priority=Priority.HIGH,
                name=f"phased:{self.machine.name}",
            )
            self.bursts += 1
            yield sim.timeout(self.burst)
            self.machine.cpu.release(hold)
            if self.idle > 0:
                yield sim.timeout(self.idle)

    def __repr__(self) -> str:
        return (f"<PhasedApp on {self.machine.name} "
                f"burst={self.burst:g}s idle={self.idle:g}s "
                f"offset={self.phase_offset:g}s>")
