"""Proclet migration: the mechanism that makes applications fungible.

Timeline (matching Nu's design, §2 of the paper):

1. mark the proclet MIGRATING — new invocations block on a gate;
2. detach its running CPU work items from the source machine (threads
   pause, their remaining work is preserved);
3. reserve DRAM at the destination (abort cleanly if it cannot fit);
4. copy the heap over the fabric (tx-bandwidth contention applies) plus
   a fixed control overhead;
5. release source DRAM, flip the locator entry;
6. reattach CPU items at the destination and open the gate.

With the default constants a proclet with 10 MiB of heap migrates in
about one millisecond over a 100 Gbit/s NIC, matching the number the
paper quotes for Nu.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

from ..cluster import Machine, OutOfMemory
from ..units import US
from .errors import MigrationFailed
from .proclet import Proclet, ProcletStatus


@dataclass(frozen=True)
class MigrationConfig:
    """Tunable constants of the migration mechanism."""

    #: Control-plane cost paid before the copy (pause, unmap, messages).
    fixed_overhead: float = 50 * US
    #: Control-plane cost paid after the copy (remap, resume, update).
    resume_overhead: float = 50 * US

    def __post_init__(self):
        if self.fixed_overhead < 0 or self.resume_overhead < 0:
            raise ValueError("migration overheads must be non-negative")


class MigrationEngine:
    """Executes proclet migrations for the runtime."""

    def __init__(self, runtime, config: MigrationConfig = MigrationConfig()):
        self.runtime = runtime
        self.config = config
        self.migrations_started = 0
        self.migrations_completed = 0
        self.migrations_failed = 0

    def migrate(self, proclet: Proclet, dst: Machine):
        """Start migrating *proclet* to *dst*; returns the completion
        process event (value: migration latency in seconds)."""
        return self.runtime.sim.process(
            self._migrate_proc(proclet, dst),
            name=f"migrate:{proclet.name}",
        )

    def _migrate_proc(self, proclet: Proclet, dst: Machine) -> Generator:
        sim = self.runtime.sim
        src = proclet.machine
        if proclet.status is ProcletStatus.DEAD:
            raise MigrationFailed(f"{proclet!r} is dead")
        if proclet.status is ProcletStatus.MIGRATING:
            raise MigrationFailed(f"{proclet!r} is already migrating")
        if dst is src:
            return 0.0

        self.migrations_started += 1
        t0 = sim.now
        proclet._status = ProcletStatus.MIGRATING
        proclet._migration_gate = sim.event()

        # Pause: detach running CPU work (threads freeze mid-computation).
        paused = list(proclet._active_cpu)
        for item in paused:
            if item.active:
                item._sched.detach(item)

        def _abort():
            for item in paused:
                if not item.active and not item.done.triggered:
                    src.cpu.sched.attach(item)
            proclet._status = ProcletStatus.RUNNING
            gate, proclet._migration_gate = proclet._migration_gate, None
            gate.succeed()

        # Reserve at destination before copying (fail fast on OOM).
        try:
            dst.memory.reserve(proclet.footprint)
        except OutOfMemory as exc:
            self.migrations_failed += 1
            _abort()
            raise MigrationFailed(str(exc)) from exc

        yield sim.timeout(self.config.fixed_overhead)
        xfer = self.runtime.fabric.transfer(
            src, dst, proclet.footprint, name=f"mig:{proclet.name}",
        )
        yield xfer
        yield sim.timeout(self.config.resume_overhead)

        # Commit: move accounting and location.
        src.memory.release(proclet.footprint)
        proclet._machine = dst
        self.runtime.locator.move(proclet.id, dst)

        # Resume threads at the destination.
        for item in paused:
            if not item.active and not item.done.triggered:
                dst.cpu.sched.attach(item)

        proclet._status = ProcletStatus.RUNNING
        proclet.migrations += 1
        gate, proclet._migration_gate = proclet._migration_gate, None
        gate.succeed()

        latency = sim.now - t0
        self.migrations_completed += 1
        m = self.runtime.metrics
        if m is not None:
            m.count("runtime.migrations")
            m.observe("runtime.migration.latency", latency)
            m.observe("runtime.migration.bytes", proclet.footprint)
        self.runtime.tracer.emit(
            "migration", f"{proclet.name} {src.name}->{dst.name}",
            bytes=int(proclet.footprint), latency_us=round(latency * 1e6, 1),
        )
        proclet.on_migrated(src, dst)
        return latency
