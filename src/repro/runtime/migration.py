"""Proclet migration: the mechanism that makes applications fungible.

Timeline (matching Nu's design, §2 of the paper):

1. mark the proclet MIGRATING — new invocations block on a gate;
2. detach its running CPU work items from the source machine (threads
   pause, their remaining work is preserved);
3. reserve DRAM at the destination; a *transient* failure (destination
   momentarily out of memory, or an injected chaos fault) backs off and
   retries up to ``max_retries`` times before surfacing
   :class:`MigrationFailed`;
4. copy the heap over the fabric (tx-bandwidth contention applies) plus
   a fixed control overhead;
5. release source DRAM, flip the locator entry;
6. reattach CPU items at the destination and open the gate.

With the default constants a proclet with 10 MiB of heap migrates in
about one millisecond over a 100 Gbit/s NIC, matching the number the
paper quotes for Nu.

Crash safety: either endpoint may fail-stop mid-migration.  If the
source dies the proclet dies with it (the runtime's fail path triggers
the gate and fails paused work so callers never hang); if the
destination dies the migration aborts back to the source with
:class:`MigrationFailed` and the destination reservation is reconciled
against the machine's *incarnation* counter (a reservation made against
a wiped DRAM must not be double-released).  In-flight destination
reservations are tracked so the chaos invariant checker can account for
every reserved byte at any instant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Generator, Optional, Tuple

from ..cluster import Machine, OutOfMemory
from ..units import US
from .errors import MigrationFailed
from .proclet import Proclet, ProcletStatus


@dataclass(frozen=True)
class MigrationConfig:
    """Tunable constants of the migration mechanism."""

    #: Control-plane cost paid before the copy (pause, unmap, messages).
    fixed_overhead: float = 50 * US
    #: Control-plane cost paid after the copy (remap, resume, update).
    resume_overhead: float = 50 * US
    #: Transient destination failures retried this many times before the
    #: migration surfaces :class:`MigrationFailed`.
    max_retries: int = 2
    #: Delay before the first retry; each further retry multiplies it.
    retry_backoff: float = 200 * US
    backoff_multiplier: float = 2.0
    #: Fraction of the current backoff added as seeded random jitter
    #: (drawn from the ``runtime.migration.jitter`` stream, so replays
    #: stay deterministic).  Pure exponential backoff synchronizes
    #: concurrent retries into a stampede against a just-restored
    #: machine; any jitter > 0 desynchronizes them.  The default 0
    #: preserves the historical bit-identical trajectories.
    retry_jitter: float = 0.0

    def __post_init__(self):
        if self.fixed_overhead < 0 or self.resume_overhead < 0:
            raise ValueError("migration overheads must be non-negative")
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0: {self.max_retries}")
        if self.retry_backoff < 0:
            raise ValueError("retry_backoff must be non-negative")
        if self.backoff_multiplier < 1.0:
            raise ValueError("backoff_multiplier must be >= 1")
        if self.retry_jitter < 0:
            raise ValueError("retry_jitter must be non-negative")


class MigrationEngine:
    """Executes proclet migrations for the runtime."""

    def __init__(self, runtime, config: MigrationConfig = MigrationConfig()):
        self.runtime = runtime
        self.config = config
        self.migrations_started = 0
        self.migrations_completed = 0
        self.migrations_failed = 0
        self.migrations_retried = 0
        #: Chaos hook, called once per reservation attempt as
        #: ``fn(proclet, dst) -> bool``; returning True injects a
        #: transient failure into that attempt (retried like OOM).
        self.fault_hook: Optional[Callable[[Proclet, Machine], bool]] = None
        # Destination DRAM held by in-flight migrations:
        # proclet id -> (dst, bytes, dst incarnation at reserve time).
        self._inflight: Dict[int, Tuple[Machine, float, int]] = {}
        # Gate-window accounting: every interval a proclet spends behind
        # its migration gate for a non-migration reason (the reshard
        # protocol's dual-route window) is reported here, so callers can
        # prove "no key unroutable for longer than one migration gate".
        self.gate_windows: Dict[str, int] = {}
        self.gate_window_time: Dict[str, float] = {}
        self.max_gate_window: float = 0.0

    def note_gate_window(self, kind: str, duration: float) -> None:
        """Record one closed gate window of *kind* (e.g. ``reshard.split``)
        that held callers out for *duration* seconds."""
        self.gate_windows[kind] = self.gate_windows.get(kind, 0) + 1
        self.gate_window_time[kind] = (
            self.gate_window_time.get(kind, 0.0) + duration)
        if duration > self.max_gate_window:
            self.max_gate_window = duration
        m = self.runtime.metrics
        if m is not None:
            m.count(f"runtime.gate.{kind}")
            m.observe("runtime.gate.window", duration)

    def inflight_reserved_on(self, machine: Machine) -> float:
        """Bytes of *machine*'s DRAM reserved by in-flight migrations
        (for accounting invariants)."""
        return sum(
            nbytes for dst, nbytes, inc in self._inflight.values()
            if dst is machine and inc == machine.incarnation
        )

    def migrate(self, proclet: Proclet, dst: Machine):
        """Start migrating *proclet* to *dst*; returns the completion
        process event (value: migration latency in seconds)."""
        tr = self.runtime.sim.tracer
        # The span parent must be captured *here*, synchronously: the
        # generator body only starts on a later event-queue pop, by which
        # time the scheduler region that requested this migration has
        # already been exited.
        parent = tr.current if tr is not None else None
        return self.runtime.sim.process(
            self._migrate_proc(proclet, dst, parent),
            name=f"migrate:{proclet.name}",
        )

    def _release_inflight(self, proclet: Proclet) -> None:
        """Drop the in-flight reservation, returning the DRAM unless the
        destination crashed (wiping it) since the reservation was made."""
        entry = self._inflight.pop(proclet.id, None)
        if entry is None:
            return
        dst, nbytes, inc = entry
        if dst.up and dst.incarnation == inc:
            dst.memory.release(nbytes)

    def _migrate_proc(self, proclet: Proclet, dst: Machine,
                      parent=None) -> Generator:
        sim = self.runtime.sim
        config = self.config
        src = proclet.machine
        if proclet.status is ProcletStatus.DEAD:
            raise MigrationFailed(f"{proclet!r} is dead")
        if proclet.status is ProcletStatus.MIGRATING:
            raise MigrationFailed(f"{proclet!r} is already migrating")
        if dst is src:
            return 0.0
        if not dst.up:
            raise MigrationFailed(f"destination {dst.name} is down")

        self.migrations_started += 1
        t0 = sim.now
        proclet._status = ProcletStatus.MIGRATING
        proclet._migration_gate = sim.event()
        # Heap size is snapshotted once: reserve, copy, and release must
        # agree on one number even if accounting shifts mid-flight.
        nbytes = proclet.footprint

        tr = sim.tracer
        mig_span = phase = None
        if tr is not None:
            mig_span = tr.begin(
                "migration", f"{proclet.name} {src.name}->{dst.name}",
                parent=parent, track=f"proclet:{proclet.name}",
                bytes=int(nbytes), path=f"{src.name}->{dst.name}")
            proclet._gate_span = tr.begin(
                "gate", f"gated:{proclet.name}", parent=mig_span,
                track=f"proclet:{proclet.name}")
            # Checkpoint phase: pause, destination reservation (with any
            # retries), and the pre-copy control overhead.
            phase = tr.begin("checkpoint", "checkpoint", parent=mig_span,
                             track=f"machine:{src.name}")

        # Pause: detach running CPU work (threads freeze mid-computation).
        paused = list(proclet._active_cpu)
        for item in paused:
            if item.active:
                item._sched.detach(item)

        def _abort_to_src():
            # Reopen shop at the source.  Only reachable while the
            # proclet still lives there — if the source died, the
            # runtime's fail path already killed proclet and gate.
            for item in paused:
                if not item.active and not item.done.triggered:
                    src.cpu.sched.attach(item)
            proclet._status = ProcletStatus.RUNNING
            gate, proclet._migration_gate = proclet._migration_gate, None
            if gate is not None and not gate.triggered:
                gate.succeed()
            if tr is not None:
                tr.end(proclet._gate_span, outcome="aborted")
                proclet._gate_span = None

        def _fail(msg: str, cause: Optional[BaseException] = None):
            self.migrations_failed += 1
            if proclet._status is ProcletStatus.MIGRATING:
                _abort_to_src()
            if tr is not None:
                tr.end(phase, outcome="failed")
                tr.end(mig_span, outcome="failed", error=msg)
            exc = MigrationFailed(msg)
            exc.__cause__ = cause
            return exc

        # Reserve at destination, retrying transient failures with
        # exponential backoff (the proclet stays gated while backing off).
        attempt = 0
        backoff = config.retry_backoff
        while True:
            if proclet._status is ProcletStatus.DEAD:
                raise _fail(f"{proclet.name}: source machine died "
                            f"mid-migration")
            if not dst.up:
                raise _fail(f"destination {dst.name} went down")
            transient: Optional[BaseException] = None
            try:
                dst.memory.reserve(nbytes)
            except OutOfMemory as exc:
                transient = exc
            if transient is None and self.fault_hook is not None \
                    and self.fault_hook(proclet, dst):
                dst.memory.release(nbytes)
                transient = MigrationFailed(
                    f"injected transient fault migrating {proclet.name} "
                    f"to {dst.name}")
            if transient is None:
                break
            if attempt >= config.max_retries:
                raise _fail(f"{transient} (after {attempt} retries)",
                            cause=transient)
            attempt += 1
            self.migrations_retried += 1
            if self.runtime.metrics is not None:
                self.runtime.metrics.count("runtime.migration.retries")
            delay = backoff
            if config.retry_jitter > 0.0:
                rng = sim.random.stream("runtime.migration.jitter")
                delay += backoff * config.retry_jitter * rng.random()
            yield sim.timeout(delay)
            backoff *= config.backoff_multiplier

        self._inflight[proclet.id] = (dst, nbytes, dst.incarnation)
        try:
            yield sim.timeout(config.fixed_overhead)
            self._checkpoint(proclet, dst)
            if tr is not None:
                tr.end(phase)
                phase = tr.begin("transfer", "transfer", parent=mig_span,
                                 track=f"machine:{src.name}",
                                 bytes=int(nbytes), nic=src.name)
            xfer = self.runtime.fabric.transfer(
                src, dst, nbytes, name=f"mig:{proclet.name}",
            )
            yield xfer
            self._checkpoint(proclet, dst)
            if tr is not None:
                tr.end(phase)
                phase = tr.begin("commit", "commit", parent=mig_span,
                                 track=f"machine:{dst.name}")
            yield sim.timeout(config.resume_overhead)
            self._checkpoint(proclet, dst)
        except MigrationFailed as exc:
            self._release_inflight(proclet)
            raise _fail(str(exc), cause=exc.__cause__ or exc.__context__)
        except GeneratorExit:
            # The process was abandoned (simulation ended mid-copy and
            # the generator is being finalized).  Raising anything other
            # than GeneratorExit here would surface during GC — at an
            # arbitrary point in the host program — so just reconcile
            # the reservation and let close() complete.
            self._release_inflight(proclet)
            raise
        except BaseException as exc:
            # e.g. MachineFailed thrown into the copy when the source's
            # NIC work was failed by a crash.
            self._release_inflight(proclet)
            raise _fail(f"{proclet.name}: {exc}", cause=exc)

        # Commit: move accounting and location.
        self._inflight.pop(proclet.id, None)
        src.memory.release(nbytes)
        proclet._machine = dst
        self.runtime.locator.move(proclet.id, dst)

        # Resume threads at the destination.
        for item in paused:
            if not item.active and not item.done.triggered:
                dst.cpu.sched.attach(item)

        proclet._status = ProcletStatus.RUNNING
        proclet.migrations += 1
        gate, proclet._migration_gate = proclet._migration_gate, None
        gate.succeed()

        latency = sim.now - t0
        if tr is not None:
            tr.end(proclet._gate_span)
            proclet._gate_span = None
            tr.end(phase)
            tr.end(mig_span, latency_us=round(latency * 1e6, 1))
        self.migrations_completed += 1
        m = self.runtime.metrics
        if m is not None:
            m.count("runtime.migrations")
            m.observe("runtime.migration.latency", latency)
            m.observe("runtime.migration.bytes", nbytes)
        self.runtime.tracer.emit(
            "migration", f"{proclet.name} {src.name}->{dst.name}",
            bytes=int(nbytes), latency_us=round(latency * 1e6, 1),
        )
        proclet.on_migrated(src, dst)
        return latency

    def _checkpoint(self, proclet: Proclet, dst: Machine) -> None:
        """Abort the copy if either endpoint failed since the last yield.

        The destination check compares *incarnations*, not just ``up``:
        a crash-and-restart between checkpoints leaves the machine up
        but its DRAM (including our reservation) wiped, so committing
        against it would place the proclet on unaccounted memory.
        """
        if proclet._status is ProcletStatus.DEAD:
            raise MigrationFailed(
                f"{proclet.name}: source machine died mid-migration")
        entry = self._inflight.get(proclet.id)
        if not dst.up or (entry is not None
                          and entry[2] != dst.incarnation):
            raise MigrationFailed(
                f"{proclet.name}: destination {dst.name} died mid-migration")
