"""Runtime-level exception types."""

from __future__ import annotations


class RuntimeFault(Exception):
    """Base class for proclet-runtime errors."""


class DeadProclet(RuntimeFault):
    """A method was invoked on a destroyed proclet."""


class UnknownMethod(RuntimeFault):
    """The invoked method does not exist on the target proclet."""


class MigrationFailed(RuntimeFault):
    """A migration could not complete (e.g. destination out of memory)."""


class InvalidPlacement(RuntimeFault):
    """A proclet could not be placed (no machine fits its footprint)."""


class MachineFailed(RuntimeFault):
    """The machine hosting a proclet failed while work was in flight."""


class ProcletLost(DeadProclet):
    """The proclet died with its machine (fail-stop node loss).

    Subclasses :class:`DeadProclet` so existing handlers keep working,
    but lets fault-tolerance code distinguish "destroyed on purpose"
    from "lost to a crash" — the latter is the case worth retrying
    against a replica or rebuilding from upstream state."""


class WrongShard(RuntimeFault):
    """The key no longer belongs to this shard (it split or merged after
    the caller routed).  Clients retry against refreshed routing."""
