"""Proclets: Nu's independently schedulable logical-process units.

A proclet bundles a *heap* (bytes charged against its current machine's
DRAM) and *threads* (method invocations executing on its current
machine's CPU).  Methods are written as generator functions receiving a
:class:`~repro.runtime.context.Context`::

    class Counter(Proclet):
        def __init__(self):
            super().__init__()
            self.value = 0

        def increment(self, ctx, amount=1):
            yield ctx.cpu(100e-9)      # burn 100ns of CPU
            self.value += amount
            return self.value

Plain (non-generator) methods also work for pure bookkeeping.
"""

from __future__ import annotations

import enum
from typing import Optional, Set

from ..units import KiB


class ProcletStatus(enum.Enum):
    CREATED = "created"
    RUNNING = "running"
    MIGRATING = "migrating"
    DEAD = "dead"


class Proclet:
    """Base class for all proclets.

    Subclasses must call ``super().__init__()`` and may then use
    :meth:`heap_alloc` / :meth:`heap_free` (after the runtime has placed
    them) to track the size of their user data.
    """

    #: Runtime bookkeeping bytes per proclet (stack pool, tables).
    BASE_FOOTPRINT = 64 * KiB

    def __init__(self):
        self._heap_bytes = 0.0
        # Injected by the runtime at spawn time:
        self._runtime = None
        self._id: Optional[int] = None
        self._name = ""
        self._machine = None
        self._status = ProcletStatus.CREATED
        self._inflight = 0
        self._migration_gate = None  # Event released when migration ends
        self._active_cpu: Set = set()  # FluidItems owned by running methods
        self.migrations = 0
        # Open obs spans (repro.obs), or None when tracing is off:
        self._span = None       # lifetime span, spawn -> destroy
        self._gate_span = None  # current gated window, gate -> ungate

    # -- identity -----------------------------------------------------------
    @property
    def id(self) -> Optional[int]:
        return self._id

    @property
    def name(self) -> str:
        return self._name

    @property
    def machine(self):
        """The machine currently hosting this proclet."""
        return self._machine

    @property
    def status(self) -> ProcletStatus:
        return self._status

    @property
    def runtime(self):
        return self._runtime

    # -- heap ------------------------------------------------------------------
    @property
    def heap_bytes(self) -> float:
        """User-data bytes currently held (excludes BASE_FOOTPRINT)."""
        return self._heap_bytes

    @property
    def footprint(self) -> float:
        """Total DRAM charged to the hosting machine."""
        return self._heap_bytes + self.BASE_FOOTPRINT

    def heap_alloc(self, nbytes: float) -> None:
        """Grow the heap, charging the hosting machine's DRAM.

        Raises :class:`repro.cluster.OutOfMemory` when the machine cannot
        fit the allocation — the Quicksand memory-pressure path exists to
        migrate data away *before* this happens.
        """
        if nbytes < 0:
            raise ValueError(f"negative allocation: {nbytes}")
        if self._machine is None:
            raise RuntimeError(f"{self!r} is not placed on a machine yet")
        self._machine.memory.reserve(nbytes)
        self._heap_bytes += nbytes
        if self._runtime is not None:
            self._runtime._notify_heap_change(self)

    def heap_free(self, nbytes: float) -> None:
        """Shrink the heap, releasing DRAM on the hosting machine."""
        if nbytes < 0:
            raise ValueError(f"negative free: {nbytes}")
        if nbytes > self._heap_bytes + 1e-6:
            raise ValueError(
                f"{self!r}: freeing {nbytes} > heap {self._heap_bytes}"
            )
        self._machine.memory.release(nbytes)
        self._heap_bytes = max(0.0, self._heap_bytes - nbytes)
        if self._runtime is not None:
            self._runtime._notify_heap_change(self)

    # -- lifecycle hooks -----------------------------------------------------
    def on_start(self, ctx):
        """Optional startup method (generator or plain); invoked at spawn."""

    def on_migrated(self, src_machine, dst_machine) -> None:
        """Synchronous hook called after each completed migration."""

    # -- fault-tolerance hooks (repro.ft) ------------------------------------
    def ft_capture(self):
        """Snapshot user state for checkpoint/replication.

        Returns ``(state, nbytes)`` where *state* is an opaque value
        :meth:`ft_restore` can rebuild from and *nbytes* is the wire/DRAM
        size of the snapshot, or ``(None, 0.0)`` for stateless proclets
        (the default) — those recover via ``RESTART`` semantics.
        Capturing must not mutate the proclet.
        """
        return None, 0.0

    def ft_restore(self, state) -> None:
        """Rebuild user state from an :meth:`ft_capture` snapshot.

        Called on a freshly respawned incarnation, already placed on a
        machine — implementations charge DRAM through the normal
        :meth:`heap_alloc` path so accounting invariants keep holding.
        """

    def __repr__(self) -> str:
        where = self._machine.name if self._machine is not None else "?"
        return (f"<{type(self).__name__} #{self._id} {self._name!r} "
                f"on {where} {self._status.value} "
                f"heap={self._heap_bytes:.0f}B>")
