"""Nu substrate: proclets, location-transparent refs, fast migration."""

from .context import Context
from .errors import (
    DeadProclet,
    InvalidPlacement,
    MachineFailed,
    MigrationFailed,
    ProcletLost,
    RuntimeFault,
    UnknownMethod,
)
from .locator import Locator
from .migration import MigrationConfig, MigrationEngine
from .proclet import Proclet, ProcletStatus
from .ref import Payload, ProcletRef
from .runtime import NuRuntime

__all__ = [
    "Context",
    "DeadProclet",
    "InvalidPlacement",
    "Locator",
    "MachineFailed",
    "MigrationConfig",
    "MigrationEngine",
    "MigrationFailed",
    "NuRuntime",
    "Payload",
    "Proclet",
    "ProcletLost",
    "ProcletRef",
    "ProcletStatus",
    "RuntimeFault",
    "UnknownMethod",
]
