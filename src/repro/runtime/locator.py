"""Proclet location service.

Maps proclet ids to machines.  Like Nu, the authoritative table is
complemented by **per-machine caches**: a remote invocation uses the
caller machine's cached location and, when the proclet has moved since,
pays a forwarding hop to the new host before the cache is refreshed.
Migrations do not invalidate caches eagerly (that would be a broadcast);
staleness is resolved lazily on the next call, exactly once per
(machine, moved proclet) pair.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..cluster import Machine

#: Location-change listener: ``fn(proclet_id, src, dst)`` with ``src``
#: None on initial placement and ``dst`` None on removal.
LocationListener = Callable[[int, Optional[Machine], Optional[Machine]], None]


class Locator:
    """Authoritative proclet -> machine mapping with lazy caches."""

    def __init__(self):
        self._table: Dict[int, Machine] = {}
        self._by_machine: Dict[Machine, set] = {}
        # proclet_id -> {caller_machine: believed location}.  Keyed by
        # proclet first so removal drops one inner dict in O(1) instead
        # of scanning every cached (caller, proclet) pair — at cluster
        # scale the cache holds O(machines x proclets) entries and a
        # linear sweep per destroy would dominate control-plane cost.
        self._caches: Dict[int, Dict[Machine, Machine]] = {}
        self.forwarding_hops = 0
        self._listeners: List[LocationListener] = []

    def add_listener(self, fn: LocationListener) -> None:
        """Observe every authoritative-table change (place/move/remove).
        The machine index uses this to keep planned-demand exact."""
        self._listeners.append(fn)

    def place(self, proclet_id: int, machine: Machine) -> None:
        """Record the initial placement of a proclet."""
        if proclet_id in self._table:
            raise ValueError(f"proclet #{proclet_id} already placed")
        self._table[proclet_id] = machine
        self._by_machine.setdefault(machine, set()).add(proclet_id)
        for fn in self._listeners:
            fn(proclet_id, None, machine)

    def move(self, proclet_id: int, dst: Machine) -> None:
        """Update the mapping after a migration."""
        src = self._table[proclet_id]
        self._by_machine[src].discard(proclet_id)
        self._table[proclet_id] = dst
        self._by_machine.setdefault(dst, set()).add(proclet_id)
        for fn in self._listeners:
            fn(proclet_id, src, dst)

    def remove(self, proclet_id: int) -> None:
        machine = self._table.pop(proclet_id)
        self._by_machine[machine].discard(proclet_id)
        self._caches.pop(proclet_id, None)
        for fn in self._listeners:
            fn(proclet_id, machine, None)

    def lookup(self, proclet_id: int) -> Machine:
        return self._table[proclet_id]

    # -- cached lookups (the remote-invocation path) -----------------------
    def cached_lookup(self, caller: Machine, proclet_id: int) -> Machine:
        """Where *caller* believes the proclet lives (may be stale)."""
        per_proclet = self._caches.get(proclet_id)
        if per_proclet is None:
            per_proclet = self._caches[proclet_id] = {}
        believed = per_proclet.get(caller)
        if believed is None:
            believed = per_proclet[caller] = self._table[proclet_id]
        return believed

    def note_forwarded(self, caller: Machine, proclet_id: int) -> Machine:
        """Record that *caller*'s cache was stale; refresh and return
        the authoritative location."""
        self.forwarding_hops += 1
        actual = self._table[proclet_id]
        self._caches.setdefault(proclet_id, {})[caller] = actual
        return actual

    def proclets_on(self, machine: Machine) -> List[int]:
        return sorted(self._by_machine.get(machine, ()))

    def __len__(self) -> int:
        return len(self._table)
