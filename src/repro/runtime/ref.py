"""Location-transparent proclet references.

A :class:`ProcletRef` is the only handle application code ever holds to a
proclet.  All interaction goes through :meth:`call` / :meth:`tell`, so
the runtime is free to migrate the target between invocations (§3.1:
"Quicksand's runtime provides location transparency").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..sim import Event


@dataclass(frozen=True)
class Payload:
    """A method return value with an explicit wire size.

    Returning ``Payload(value, nbytes)`` from a proclet method makes the
    runtime charge a bulk transfer of *nbytes* back to a remote caller
    (e.g. reading a 200 KiB image from a memory proclet).  Local callers
    pay nothing, which is exactly the locality benefit Quicksand's
    scheduler chases.
    """

    value: Any
    nbytes: float = 0.0


class ProcletRef:
    """Handle to a (possibly remote, possibly moving) proclet."""

    __slots__ = ("runtime", "proclet_id", "_name")

    def __init__(self, runtime, proclet_id: int, name: str = ""):
        self.runtime = runtime
        self.proclet_id = proclet_id
        self._name = name

    @property
    def name(self) -> str:
        return self._name

    def call(self, method: str, *args, caller_machine=None,
             req_bytes: float = 0.0, **kwargs) -> Event:
        """Invoke *method*; returns the completion event.

        Driver code (outside any proclet) typically calls this with the
        default ``caller_machine=None``; proclet methods should prefer
        ``ctx.call`` which fills in their own machine for the local/remote
        cost decision.
        """
        return self.runtime.invoke(self, method, *args,
                                   caller_machine=caller_machine,
                                   req_bytes=req_bytes, **kwargs)

    def tell(self, method: str, *args, **kwargs) -> Event:
        """Fire-and-forget invocation (result event returned but the
        caller is not expected to wait on it)."""
        return self.call(method, *args, **kwargs)

    # -- introspection (simulation-side, not part of the app-facing API) ----
    @property
    def proclet(self):
        """The underlying proclet object (simulator's omniscient view)."""
        return self.runtime.get_proclet(self.proclet_id)

    @property
    def machine(self):
        return self.runtime.locator.lookup(self.proclet_id)

    def __eq__(self, other) -> bool:
        return (isinstance(other, ProcletRef)
                and other.proclet_id == self.proclet_id
                and other.runtime is self.runtime)

    def __hash__(self) -> int:
        return hash((id(self.runtime), self.proclet_id))

    def __repr__(self) -> str:
        return f"<ProcletRef #{self.proclet_id} {self._name!r}>"
