"""Execution context handed to every proclet method.

The context is how method code consumes simulated resources: CPU work,
sleeps, nested proclet calls, bulk data transfers, heap allocation.  Its
key property is *migration transparency*: a CPU work item started through
``ctx.cpu`` is registered with the proclet, so the migration engine can
detach it from the source machine and reattach it at the destination —
the method's ``yield`` wakes up none the wiser, exactly like a Nu thread
migrating with its proclet.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from ..cluster import Priority
from ..sim import Event

if TYPE_CHECKING:
    from .proclet import Proclet
    from .ref import ProcletRef


class Context:
    """Per-invocation execution context."""

    __slots__ = ("runtime", "proclet", "priority", "work_items")

    def __init__(self, runtime, proclet: "Proclet",
                 priority: Priority = Priority.NORMAL,
                 work_items=None):
        self.runtime = runtime
        self.proclet = proclet
        self.priority = priority
        #: Optional per-invocation cancel scope (a list): every CPU work
        #: item started through this context is appended, so a losing
        #: clone attempt can reclaim exactly its own in-flight work
        #: (see :mod:`repro.hedge`).  None for plain calls — zero cost.
        self.work_items = work_items

    # -- environment -----------------------------------------------------
    @property
    def sim(self):
        return self.runtime.sim

    @property
    def now(self) -> float:
        return self.runtime.sim.now

    @property
    def machine(self):
        """The machine the proclet is on *right now* (moves with it)."""
        return self.proclet.machine

    def rng(self, name: str = "ctx"):
        return self.runtime.sim.random.stream(name)

    # -- resources -----------------------------------------------------------
    def cpu(self, work: float, threads: float = 1.0) -> Event:
        """Consume *work* core-seconds on the proclet's machine.

        Returns the completion event (``yield ctx.cpu(...)``).  The work
        item follows the proclet across migrations.
        """
        proclet = self.proclet
        item = proclet.machine.cpu.run(
            work=work, threads=threads, priority=self.priority,
            name=f"{proclet.name}.cpu", owner=proclet,
        )
        if item.done.triggered:
            return item.done
        proclet._active_cpu.add(item)
        item.done.subscribe(lambda _e: proclet._active_cpu.discard(item))
        if self.work_items is not None:
            self.work_items.append(item)
        return item.done

    def sleep(self, delay: float) -> Event:
        """Suspend the method for *delay* virtual seconds."""
        return self.sim.timeout(delay)

    def alloc(self, nbytes: float) -> None:
        """Grow the proclet heap (charges the hosting machine's DRAM)."""
        self.proclet.heap_alloc(nbytes)

    def free(self, nbytes: float) -> None:
        """Shrink the proclet heap."""
        self.proclet.heap_free(nbytes)

    # -- communication --------------------------------------------------------
    def call(self, ref: "ProcletRef", method: str, *args,
             req_bytes: float = 0.0, **kwargs) -> Event:
        """Invoke a method on another proclet (location-transparent).

        The runtime charges a cheap function call when *ref* is colocated
        and an RPC otherwise (§3.1).  ``req_bytes`` models a bulk request
        payload (e.g. a write), charged as a fabric transfer.
        """
        return self.runtime.invoke(
            ref, method, *args, caller_machine=self.proclet.machine,
            caller_proclet_id=self.proclet.id,
            priority=self.priority, req_bytes=req_bytes, **kwargs,
        )

    def send(self, dst_machine, nbytes: float, name: str = "") -> Event:
        """Bulk-transfer bytes from the proclet's machine to *dst_machine*."""
        return self.runtime.fabric.transfer(
            self.proclet.machine, dst_machine, nbytes,
            priority=int(self.priority), name=name,
        )

    def __repr__(self) -> str:
        return f"<Context of {self.proclet!r}>"
