"""The Nu runtime: spawning, invoking, and migrating proclets.

This is the substrate layer the paper builds Quicksand on (§2): a
distributed runtime spanning all machines that makes proclet method
invocation location-transparent and migration fast.  The Quicksand layer
(:mod:`repro.core`) adds resource-specialized proclets, adaptive
split/merge, and the two-level scheduler on top.
"""

from __future__ import annotations

import inspect
from typing import Callable, Dict, Generator, List, Optional

from ..cluster import Cluster, Machine, Priority
from ..sim import Process
from .context import Context
from .errors import DeadProclet, MachineFailed, ProcletLost, UnknownMethod
from .locator import Locator
from .migration import MigrationConfig, MigrationEngine
from .proclet import Proclet, ProcletStatus
from .ref import Payload, ProcletRef
from .reshard import ReshardLedger


class NuRuntime:
    """Distributed proclet runtime over a simulated cluster."""

    def __init__(self, cluster: Cluster,
                 migration_config: MigrationConfig = MigrationConfig(),
                 location_caching: bool = True):
        #: Nu-style per-machine location caches with lazy forwarding.
        #: Disable for an always-consistent control plane (ablations).
        self.location_caching = location_caching
        self.cluster = cluster
        self.sim = cluster.sim
        self.fabric = cluster.fabric
        self.metrics = cluster.metrics
        from ..trace import Tracer

        self.tracer = Tracer(self.sim)
        self.locator = Locator()
        self.migration = MigrationEngine(self, migration_config)
        #: Ledger of in-flight shard split/merge operations; the chaos
        #: invariant checker audits every structural change through it.
        self.reshard_ledger = ReshardLedger(self.sim)
        self._proclets: Dict[int, Proclet] = {}
        # Ids of proclets killed by machine failures: lookups through a
        # stale ref raise ProcletLost instead of the generic DeadProclet.
        # Query through is_lost()/lost_proclets(); a RecoveryManager may
        # move an id back out via respawn().
        self._lost: set = set()
        # Proclet-id -> incarnation number, bumped by every respawn().
        # At most one incarnation of an id is ever live (see respawn).
        self._incarnations: Dict[int, int] = {}
        self._next_id = 0
        self.local_calls = 0
        self.remote_calls = 0
        #: The attached repro.ft.RecoveryManager, or None (the default:
        #: fail-stop semantics, bit-identical to runs without repro.ft).
        self.recovery = None
        #: Unsettled CloneCall coordinators (clone_to/hedge_after calls
        #: whose loser attempts have not all finished) — the chaos
        #: invariant checker walks this to prove cancellation landed.
        self._clone_calls: List = []
        #: Monotonic counters for the cloning/hedging layer, read by
        #: metrics.record_clone_stats and the chaos invariants.
        self.clone_stats: Dict[str, int] = {
            "calls": 0, "calls_won": 0, "clones_launched": 0,
            "losers_cancelled": 0, "hedges_fired": 0,
            "late_completions": 0,
        }
        self._heap_listeners: List[Callable[[Proclet], None]] = []
        #: Called as fn(caller_proclet_id_or_None, callee_id, remote: bool)
        #: on every invocation — feeds the affinity tracker.
        self._invocation_listeners: List[Callable] = []
        #: Called as fn(machine, lost_proclets) after fail_machine has
        #: finished tearing a machine down (recovery bookkeeping hook).
        self._failure_listeners: List[Callable] = []
        #: Called as fn(machine) after restore_machine brings a crashed
        #: machine back (placement-index rebucketing hook).
        self._restore_listeners: List[Callable] = []

    # -- lifecycle ----------------------------------------------------------
    def spawn(self, proclet: Proclet, machine: Machine,
              name: str = "") -> ProcletRef:
        """Place *proclet* on *machine* and return its reference.

        Charges the proclet's footprint against the machine's DRAM;
        raises :class:`repro.cluster.OutOfMemory` if it cannot fit.
        Runs the proclet's ``on_start`` hook as its first invocation.
        """
        if proclet._id is not None:
            raise ValueError(f"{proclet!r} was already spawned")
        if not machine.up:
            raise MachineFailed(
                f"cannot spawn {type(proclet).__name__} on crashed "
                f"machine {machine.name}")
        machine.memory.reserve(proclet.footprint)
        pid = self._next_id
        self._next_id += 1
        proclet._runtime = self
        proclet._id = pid
        proclet._name = name or f"{type(proclet).__name__}#{pid}"
        proclet._machine = machine
        proclet._status = ProcletStatus.RUNNING
        self._proclets[pid] = proclet
        self.locator.place(pid, machine)
        if self.metrics is not None:
            self.metrics.count("runtime.spawns")
        tr = self.sim.tracer
        if tr is not None:
            proclet._span = tr.begin(
                "proclet", proclet._name, track=f"proclet:{proclet._name}",
                machine=machine.name, footprint=proclet.footprint)
            tr.instant("lifecycle", f"spawn {proclet._name}",
                       parent=proclet._span, track=f"machine:{machine.name}")
        ref = ProcletRef(self, pid, proclet._name)
        if type(proclet).on_start is not Proclet.on_start:
            self.invoke(ref, "on_start", caller_machine=machine,
                        retryable=False)
        return ref

    def destroy(self, ref: ProcletRef) -> None:
        """Tear down a proclet, releasing its DRAM immediately."""
        proclet = self._proclets.get(ref.proclet_id)
        if proclet is None or proclet._status is ProcletStatus.DEAD:
            return  # destroy is idempotent
        proclet._machine.memory.release(proclet.footprint)
        proclet._status = ProcletStatus.DEAD
        self.locator.remove(proclet.id)
        del self._proclets[proclet.id]
        if self.metrics is not None:
            self.metrics.count("runtime.destroys")
        tr = self.sim.tracer
        if tr is not None:
            tr.instant("lifecycle", f"destroy {proclet._name}",
                       parent=proclet._span,
                       track=f"machine:{proclet._machine.name}")
            tr.end(proclet._gate_span, outcome="destroyed")
            tr.end(proclet._span, outcome="destroyed")

    # -- lookup ----------------------------------------------------------------
    def get_proclet(self, proclet_id: int) -> Proclet:
        proclet = self._proclets.get(proclet_id)
        if proclet is None:
            if proclet_id in self._lost:
                raise ProcletLost(
                    f"proclet #{proclet_id} was lost to a machine failure")
            raise DeadProclet(f"proclet #{proclet_id} does not exist")
        return proclet

    def proclets_on(self, machine: Machine) -> List[Proclet]:
        return [self._proclets[pid]
                for pid in self.locator.proclets_on(machine)]

    @property
    def proclet_count(self) -> int:
        return len(self._proclets)

    # -- failure bookkeeping (public surface) --------------------------------
    def is_lost(self, proclet_id: int) -> bool:
        """True while *proclet_id* is dead due to a machine failure (as
        opposed to destroyed or never spawned).  A recovery manager may
        later clear this by respawning the id."""
        return proclet_id in self._lost

    def lost_proclets(self) -> List[int]:
        """Sorted ids of all proclets currently lost to machine
        failures."""
        return sorted(self._lost)

    def incarnation_of(self, proclet_id: int) -> int:
        """How many times *proclet_id* has been respawned (0 = the
        original incarnation)."""
        return self._incarnations.get(proclet_id, 0)

    def respawn(self, proclet: Proclet, machine: Machine,
                proclet_id: int, name: str = "") -> ProcletRef:
        """Bring a lost proclet id back to life as a new incarnation.

        *proclet* is a fresh (never-spawned) object that takes over
        *proclet_id*, so existing :class:`ProcletRef`\\ s transparently
        resolve to the new incarnation.  Only ids lost to machine
        failures can be respawned — at most one incarnation of an id is
        ever live.  State restoration (checkpoint install, replica
        promotion, lineage replay) is the caller's job; see
        :mod:`repro.ft`.
        """
        if proclet._id is not None:
            raise ValueError(f"{proclet!r} was already spawned")
        if proclet_id not in self._lost:
            raise ValueError(
                f"proclet #{proclet_id} is not lost; only proclets lost "
                f"to machine failures can be respawned")
        if not machine.up:
            raise MachineFailed(
                f"cannot respawn proclet #{proclet_id} on crashed "
                f"machine {machine.name}")
        machine.memory.reserve(proclet.footprint)
        self._lost.discard(proclet_id)
        incarnation = self._incarnations.get(proclet_id, 0) + 1
        self._incarnations[proclet_id] = incarnation
        proclet._runtime = self
        proclet._id = proclet_id
        proclet._name = name or f"{type(proclet).__name__}#{proclet_id}"
        proclet._machine = machine
        proclet._status = ProcletStatus.RUNNING
        self._proclets[proclet_id] = proclet
        self.locator.place(proclet_id, machine)
        if self.metrics is not None:
            self.metrics.count("runtime.respawns")
        tr = self.sim.tracer
        if tr is not None:
            proclet._span = tr.begin(
                "proclet", proclet._name, track=f"proclet:{proclet._name}",
                machine=machine.name, footprint=proclet.footprint,
                incarnation=incarnation)
            tr.instant("lifecycle", f"respawn {proclet._name}",
                       parent=proclet._span, track=f"machine:{machine.name}")
        ref = ProcletRef(self, proclet_id, proclet._name)
        if type(proclet).on_start is not Proclet.on_start:
            self.invoke(ref, "on_start", caller_machine=machine,
                        retryable=False)
        return ref

    # -- invocation -------------------------------------------------------------
    def invoke(self, ref: ProcletRef, method: str, *args,
               caller_machine: Optional[Machine] = None,
               caller_proclet_id: Optional[int] = None,
               priority: Priority = Priority.NORMAL,
               req_bytes: float = 0.0, retryable: bool = True,
               clone_to: int = 1, hedge_after: Optional[float] = None,
               **kwargs) -> Process:
        """Invoke *method* on the proclet behind *ref*.

        Returns a process event whose value is the method's return value.
        Colocated caller -> cheap function call; remote caller -> RPC
        round trip (plus bulk transfers for ``req_bytes`` and any
        :class:`Payload` response).  Invocations issued while the target
        is migrating block until the migration completes (§3.3).

        When a :mod:`repro.ft` recovery manager covers the target,
        losing it to a machine failure does not surface
        :class:`ProcletLost` immediately: the call backs off (budgeted
        exponential delay + seeded jitter) and transparently retries
        against the respawned incarnation (at-least-once semantics).
        Pass ``retryable=False`` for calls that must not re-execute,
        e.g. worker-loop drivers restarted by ``on_start`` instead.

        ``clone_to=N`` races up to N attempts of the call
        first-response-wins, cancelling the losers; ``hedge_after=t``
        staggers the extra attempts t seconds apart instead of firing
        them all at once (see :mod:`repro.hedge`).  ``clone_to=1`` with
        no hedge is *exactly* the plain call path — bit-identical
        trajectories, pinned by tests.  Hedging a non-retryable call is
        rejected (a hedge can double-execute by construction); cloning
        one degrades to sequential failover that stops at the first
        attempt whose method body started (at-most-once).
        """
        if not isinstance(clone_to, int) or clone_to < 1:
            raise ValueError(f"clone_to must be a positive int, "
                             f"got {clone_to!r}")
        if hedge_after is not None:
            if hedge_after <= 0:
                raise ValueError(f"hedge_after must be positive, "
                                 f"got {hedge_after!r}")
            if not retryable and clone_to > 1:
                raise ValueError(
                    "hedge_after with retryable=False is rejected: a "
                    "hedged attempt races the original, so the method "
                    "body may run twice; use clone_to alone (sequential "
                    "failover) for at-most-once calls")
        if clone_to == 1:
            return self.sim.process(
                self._invoke_proc(ref, method, args, kwargs, caller_machine,
                                  caller_proclet_id, priority, req_bytes,
                                  retryable),
                name=f"call:{ref.name}.{method}",
            )
        from ..hedge import CloneCall
        self.clone_stats["calls"] += 1
        if self.metrics is not None:
            self.metrics.count("hedge.calls")
        call = CloneCall(self, ref, method, args, kwargs,
                         caller_machine=caller_machine,
                         caller_proclet_id=caller_proclet_id,
                         priority=priority, req_bytes=req_bytes,
                         retryable=retryable, clone_to=clone_to,
                         hedge_after=hedge_after)
        return call.start()

    # -- clone-call registry (read by chaos invariants) ---------------------
    def _register_clone_call(self, call) -> None:
        self._clone_calls.append(call)

    def _unregister_clone_call(self, call) -> None:
        try:
            self._clone_calls.remove(call)
        except ValueError:
            pass

    def active_clone_calls(self) -> List:
        """Unsettled cloned calls (decision pending or losers still
        winding down) — chaos invariants assert these drain."""
        return list(self._clone_calls)

    def _invoke_proc(self, ref: ProcletRef, method: str, args, kwargs,
                     caller_machine: Optional[Machine],
                     caller_proclet_id: Optional[int], priority: Priority,
                     req_bytes: float, retryable: bool = True,
                     clone_state=None, work_items=None) -> Generator:
        attempt = 0
        while True:
            try:
                result = yield from self._invoke_attempt(
                    ref, method, args, kwargs, caller_machine,
                    caller_proclet_id, priority, req_bytes,
                    clone_state, work_items)
                return result
            except (ProcletLost, MachineFailed) as exc:
                # Transparent retry: only when a recovery manager covers
                # the target and the failure is the *target* being lost
                # (a MachineFailed from the caller's own resources must
                # surface — the callee may be perfectly healthy).
                recovery = self.recovery
                if recovery is None or not retryable:
                    raise
                if not (isinstance(exc, ProcletLost)
                        or ref.proclet_id in self._lost):
                    raise
                # Clones share one retry budget: the recovery manager
                # sees the clone-set-wide attempt index, so retries and
                # hedges compose instead of multiplying.
                shared = attempt if clone_state is None else \
                    clone_state.retries
                delay = recovery.retry_delay(ref.proclet_id, shared, exc)
                if delay is None:
                    raise
                attempt += 1
                if clone_state is not None:
                    clone_state.retries += 1
                if self.metrics is not None:
                    self.metrics.count("ft.call_retries")
                yield self.sim.timeout(delay)

    def _invoke_attempt(self, ref: ProcletRef, method: str, args, kwargs,
                        caller_machine: Optional[Machine],
                        caller_proclet_id: Optional[int],
                        priority: Priority, req_bytes: float,
                        clone_state=None, work_items=None) -> Generator:
        proclet = self.get_proclet(ref.proclet_id)

        # Block while the target is mid-migration (possibly repeatedly).
        while proclet._status is ProcletStatus.MIGRATING:
            yield proclet._migration_gate
        if proclet._status is ProcletStatus.DEAD:
            raise DeadProclet(f"{ref!r} was destroyed")

        target = proclet.machine
        # Where does the caller *believe* the proclet lives?  With
        # location caching the request first travels to the believed
        # host and pays a forwarding hop when the proclet has moved
        # since (Nu's lazy cache-refresh protocol).
        believed = target
        if (self.location_caching and caller_machine is not None):
            believed = self.locator.cached_lookup(caller_machine,
                                                  proclet.id)
        remote = caller_machine is not None and (
            caller_machine is not target or believed is not target)
        for listener in self._invocation_listeners:
            listener(caller_proclet_id, proclet.id, remote)
        spec = self.fabric.spec
        if remote:
            self.remote_calls += 1
            hops = []
            if believed is not caller_machine:
                hops.append((caller_machine, believed))
            if believed is not target:
                # Stale cache: the believed host forwards to the actual
                # one and the caller's cache is refreshed.
                hops.append((believed, target))
                self.locator.note_forwarded(caller_machine, proclet.id)
            for src, dst in hops:
                yield self.sim.timeout(self.fabric.oneway_delay())
                if req_bytes > 0 and src is not dst:
                    yield self.fabric.transfer(src, dst, req_bytes,
                                               priority=int(priority),
                                               name=f"req:{method}")
        else:
            self.local_calls += 1
            yield self.sim.timeout(spec.local_call_overhead)

        fn = getattr(proclet, method, None)
        if fn is None or not callable(fn):
            raise UnknownMethod(f"{type(proclet).__name__}.{method}")

        ctx = Context(self, proclet, priority, work_items)
        proclet._inflight += 1
        if clone_state is not None:
            # The at-most-once marker for non-retryable clones: bumped
            # the moment the body is about to run, crash or not.
            clone_state.executions += 1
        try:
            result = fn(ctx, *args, **kwargs)
            if inspect.isgenerator(result):
                result = yield from result
        finally:
            proclet._inflight -= 1

        resp_bytes = 0.0
        if isinstance(result, Payload):
            resp_bytes = result.nbytes
            result = result.value

        if remote:
            # The proclet may have moved while executing; the response
            # flows from wherever it lives now.
            source = proclet.machine if proclet._status is not \
                ProcletStatus.DEAD else target
            yield self.sim.timeout(self.fabric.oneway_delay())
            if resp_bytes > 0 and caller_machine is not source:
                yield self.fabric.transfer(source, caller_machine, resp_bytes,
                                           priority=int(priority),
                                           name=f"resp:{method}")
        return result

    # -- migration ----------------------------------------------------------------
    def migrate(self, ref_or_proclet, dst: Machine) -> Process:
        """Migrate a proclet to *dst*; returns the completion event
        (value: migration latency in seconds)."""
        proclet = (ref_or_proclet if isinstance(ref_or_proclet, Proclet)
                   else self.get_proclet(ref_or_proclet.proclet_id))
        return self.migration.migrate(proclet, dst)

    # -- failure injection --------------------------------------------------------
    def fail_machine(self, machine: Machine) -> List[Proclet]:
        """Crash *machine*: every hosted proclet dies, its DRAM is gone,
        and work in flight there fails with :class:`MachineFailed`.

        Models fail-stop node loss for fault-injection tests; returns
        the proclets that were lost.  The rest of the cluster keeps
        running (granular fault isolation, §5).  Afterwards the machine
        is marked down (``machine.up`` is False): it refuses spawns and
        placement, its cores and NIC are gone, and in-flight migrations
        targeting it abort with :class:`MigrationFailed` at their next
        checkpoint.  A later :meth:`restore_machine` brings it back
        empty.  Idempotent on an already-down machine.
        """
        if not machine.up:
            return []
        lost = self.proclets_on(machine)
        exc = MachineFailed(f"machine {machine.name} failed")
        tr = self.sim.tracer
        for proclet in lost:
            proclet._status = ProcletStatus.DEAD
            gate = proclet._migration_gate
            if gate is not None and not gate.triggered:
                proclet._migration_gate = None
                gate.succeed()  # blocked callers re-check and see DEAD
            self.locator.remove(proclet.id)
            del self._proclets[proclet.id]
            self._lost.add(proclet.id)
            if tr is not None:
                tr.end(proclet._gate_span, outcome="machine-failed")
                tr.end(proclet._span, outcome="machine-failed")
        # Fail all in-flight work on the machine's resources (method
        # bodies and remote waiters observe MachineFailed).
        machine.cpu.sched.fail_all(exc)
        machine.nic.tx.fail_all(exc)
        if machine.gpus is not None:
            machine.gpus.sched.fail_all(exc)
        if machine.storage is not None:
            machine.storage.iops.fail_all(exc)
            machine.storage.read_bw.fail_all(exc)
            machine.storage.write_bw.fail_all(exc)
        # Fail-stop the hardware: cores offline, NIC down, DRAM wiped.
        machine.fail()
        if self.metrics is not None:
            self.metrics.count("runtime.machine_failures")
        self.tracer.emit("failure", f"machine {machine.name} crashed",
                         lost_proclets=len(lost))
        # Recovery bookkeeping hooks run last, against the settled
        # post-crash state (machine down, proclets deregistered).
        for listener in self._failure_listeners:
            listener(machine, lost)
        return lost

    def restore_machine(self, machine: Machine) -> None:
        """Bring a crashed machine back online, empty and at full spec
        capacity.  Proclets lost in the crash stay dead (fail-stop, no
        disk-backed resurrection); placement simply starts considering
        the machine again.  Idempotent on an up machine."""
        if machine.up:
            return
        machine.restore()
        if self.metrics is not None:
            self.metrics.count("runtime.machine_restores")
        self.tracer.emit("failure", f"machine {machine.name} restored")
        for listener in self._restore_listeners:
            listener(machine)

    # -- heap-change notifications (split/merge controller hook) -----------------
    def on_heap_change(self, fn: Callable[[Proclet], None]) -> None:
        self._heap_listeners.append(fn)

    def on_invocation(self, fn: Callable) -> None:
        """Subscribe to every invocation (affinity-tracking hook)."""
        self._invocation_listeners.append(fn)

    def on_machine_failure(self, fn: Callable) -> None:
        """Subscribe ``fn(machine, lost_proclets)`` to machine crashes
        (called synchronously at the end of :meth:`fail_machine`)."""
        self._failure_listeners.append(fn)

    def on_machine_restore(self, fn: Callable) -> None:
        """Subscribe ``fn(machine)`` to machine restores (called
        synchronously at the end of :meth:`restore_machine`)."""
        self._restore_listeners.append(fn)

    def _notify_heap_change(self, proclet: Proclet) -> None:
        for fn in self._heap_listeners:
            fn(proclet)
