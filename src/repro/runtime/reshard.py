"""Reshard ledger: runtime-level bookkeeping for shard split/merge.

Every structural change to a sharded data structure — whether driven by
the legacy heap-change controller, an experiment script, or the
:mod:`repro.autoscale` control loop — registers a :class:`ReshardOp`
here for its whole lifetime.  The ledger is what makes resharding
*auditable*: the chaos invariant checker runs after every simulator
event and needs to distinguish a child proclet that is mid-handoff
(spawned but not yet published in its structure's routing table) from a
genuinely orphaned one, and an aborted operation that rolled back
cleanly from one that leaked state.

The module is deliberately dependency-free within the runtime package
(no proclet/machine imports) so that both :mod:`repro.runtime.runtime`
and the higher layers (:mod:`repro.ds`, :mod:`repro.autoscale`) can use
it without import cycles.
"""

from __future__ import annotations

import enum
from typing import Any, Dict, List, Optional, Set


class ReshardPhase(enum.Enum):
    """Lifecycle of one reshard operation.

    ``PREPARE``  — child spawned / survivor chosen; data moving; the old
                   routing table is still authoritative (dual-route
                   window: the parent answers, the child exists).
    ``COMMIT``   — the atomic range-map flip.  Entered and left without
                   yielding to the simulator, so no observer ever sees a
                   half-flipped table.
    ``CLEANUP``  — post-flip teardown (retiring the donor shard,
                   releasing gates).  The new table is authoritative.
    ``DONE``     — completed; removed from the active set.
    ``ABORTED``  — rolled back; the pre-op table is authoritative and
                   any spawned child has been destroyed or disowned.
    """

    PREPARE = "prepare"
    COMMIT = "commit"
    CLEANUP = "cleanup"
    DONE = "done"
    ABORTED = "aborted"


#: Phases during which an op is still in flight.
_ACTIVE_PHASES = (ReshardPhase.PREPARE, ReshardPhase.COMMIT,
                  ReshardPhase.CLEANUP)


class ReshardOp:
    """One split or merge, tracked from first side effect to settlement."""

    __slots__ = ("op_id", "kind", "structure", "parent_id", "child_id",
                 "phase", "started_at", "phase_at", "settled_at",
                 "abort_reason", "driver")

    def __init__(self, op_id: int, kind: str, structure: Any,
                 parent_id: int, now: float, driver: str):
        self.op_id = op_id
        self.kind = kind                  # "split" | "merge"
        self.structure = structure        # the owning ShardedBase (or None)
        self.parent_id = parent_id        # donor shard's proclet id
        self.child_id: Optional[int] = None
        self.phase = ReshardPhase.PREPARE
        self.started_at = now
        self.phase_at = now               # entry time of current phase
        self.settled_at: Optional[float] = None
        self.abort_reason: Optional[str] = None
        self.driver = driver              # "legacy" | "autoscale" | ...

    @property
    def active(self) -> bool:
        return self.phase in _ACTIVE_PHASES

    def __repr__(self) -> str:
        return (f"<ReshardOp #{self.op_id} {self.kind} "
                f"parent={self.parent_id} child={self.child_id} "
                f"{self.phase.value}>")


class ReshardLedger:
    """Registry of in-flight reshard operations and tracked structures.

    Invariant-checker contract (see ``chaos/invariants.py``):

    * a live shard proclet that is absent from its structure's routing
      table is legal only while :meth:`protects_child` is true for it;
    * :meth:`structures` enumerates every live sharded structure so the
      checker can prove routable-keys-always and range-map/locator
      agreement after *every* simulator event, including mid-abort.
    """

    def __init__(self, sim):
        self.sim = sim
        self._next_op = 0
        self._active: Dict[int, ReshardOp] = {}
        self._structures: List[Any] = []
        # Monotonic counters, read by metrics.record_autoscale_stats and
        # the chaos digest.
        self.counters: Dict[str, int] = {
            "split_started": 0, "split_committed": 0, "split_aborted": 0,
            "merge_started": 0, "merge_committed": 0, "merge_aborted": 0,
        }

    # -- structure tracking -------------------------------------------------
    def track(self, structure: Any) -> None:
        if structure not in self._structures:
            self._structures.append(structure)

    def untrack(self, structure: Any) -> None:
        try:
            self._structures.remove(structure)
        except ValueError:
            pass

    def structures(self) -> List[Any]:
        return list(self._structures)

    # -- operation lifecycle ------------------------------------------------
    def begin(self, kind: str, structure: Any, parent_id: int,
              driver: str = "legacy") -> ReshardOp:
        if kind not in ("split", "merge"):
            raise ValueError(f"unknown reshard kind {kind!r}")
        op = ReshardOp(self._next_op, kind, structure, parent_id,
                       self.sim.now, driver)
        self._next_op += 1
        self._active[op.op_id] = op
        self.counters[f"{kind}_started"] += 1
        return op

    def add_child(self, op: ReshardOp, child_id: int) -> None:
        """Record the spawned child (split) or survivor (merge)."""
        op.child_id = child_id

    def advance(self, op: ReshardOp, phase: ReshardPhase) -> None:
        """Move *op* to a later active phase (PREPARE→COMMIT→CLEANUP)."""
        if not op.active:
            raise ValueError(f"{op!r} already settled")
        op.phase = phase
        op.phase_at = self.sim.now

    def complete(self, op: ReshardOp) -> None:
        """Settle *op* as committed; idempotent once settled."""
        if not op.active:
            return
        op.phase = ReshardPhase.DONE
        op.settled_at = self.sim.now
        self._active.pop(op.op_id, None)
        self.counters[f"{op.kind}_committed"] += 1

    def abort(self, op: ReshardOp, reason: str) -> None:
        """Settle *op* as rolled back; idempotent once settled."""
        if not op.active:
            return
        op.phase = ReshardPhase.ABORTED
        op.abort_reason = reason
        op.settled_at = self.sim.now
        self._active.pop(op.op_id, None)
        self.counters[f"{op.kind}_aborted"] += 1

    # -- queries (invariant checker / metrics) ------------------------------
    def active_ops(self) -> List[ReshardOp]:
        return list(self._active.values())

    def active_count(self) -> int:
        return len(self._active)

    def active_for_structure(self, structure: Any) -> List[ReshardOp]:
        return [op for op in self._active.values()
                if op.structure is structure]

    def protects_child(self, proclet_id: int) -> bool:
        """Is *proclet_id* the child/survivor of an in-flight op?  While
        true, the proclet may legally be live yet unrouted."""
        return any(op.child_id == proclet_id or op.parent_id == proclet_id
                   for op in self._active.values())

    def protected_ids(self) -> Set[int]:
        ids: Set[int] = set()
        for op in self._active.values():
            ids.add(op.parent_id)
            if op.child_id is not None:
                ids.add(op.child_id)
        return ids

    def __repr__(self) -> str:
        return (f"<ReshardLedger active={len(self._active)} "
                f"structures={len(self._structures)}>")
