"""Distributed thread pool and parallel computation APIs (§3.2)."""

from .parallel import filter_collect, for_each, map_collect, reduce
from .threadpool import ComputePool

__all__ = [
    "ComputePool",
    "filter_collect",
    "for_each",
    "map_collect",
    "reduce",
]
