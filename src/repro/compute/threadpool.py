"""Distributed thread pool over compute proclets (§3.2).

A :class:`ComputePool` is a set of compute proclets acting as one
elastic executor.  Growing the pool uses the §3.3 split mechanism (queue
division + placement on a machine with idle cores); shrinking merges a
member away.  The :class:`repro.core.ComputeAutoscaler` drives
``grow``/``shrink`` automatically in the Fig. 3 pipeline.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

from ..cluster import Machine
from ..core.computeproclet import ComputeProclet, Task, TaskSource
from ..runtime import ProcletRef
from ..sim import Event


class ComputePool:
    """Elastic group of compute proclets with one submission interface."""

    def __init__(self, qs, name: str = "pool", parallelism: int = 1,
                 source: Optional[TaskSource] = None,
                 initial_members: int = 1,
                 machine: Optional[Machine] = None):
        if initial_members < 1:
            raise ValueError("a pool needs at least one member")
        self.qs = qs
        self.name = name
        self.parallelism = parallelism
        self.source = source
        self.members: List[ProcletRef] = []
        self.total_done = 0
        self._pending_growth = 0
        self._retired: List[ProcletRef] = []
        # Tasks submitted but not yet finished, per member proclet id.
        # Routing balances on this rather than on queue_length, which
        # only updates once the simulated submission lands.
        self._assigned: dict = {}
        for i in range(initial_members):
            self._spawn_member(machine)

    # -- membership -----------------------------------------------------------
    def _spawn_member(self, machine: Optional[Machine] = None) -> ProcletRef:
        proclet = ComputeProclet(parallelism=self.parallelism,
                                 source=self.source)
        proclet.on_task_done = self._on_task_done
        proclet.shard_owner = self
        ref = self.qs.spawn(proclet, machine,
                            name=f"{self.name}.w{len(self.members)}")
        self.members.append(ref)
        return ref

    def _on_task_done(self, proclet, _task, _result) -> None:
        self.total_done += 1
        pid = proclet.id
        if self._assigned.get(pid, 0) > 0:
            self._assigned[pid] -= 1

    @property
    def size(self) -> int:
        return len(self.members)

    @property
    def effective_size(self) -> int:
        """Members plus splits already in flight (autoscaler's view —
        prevents over-issuing splits while one is mid-flight)."""
        return len(self.members) + self._pending_growth

    @property
    def backlog(self) -> int:
        return sum(ref.proclet.queue_length for ref in self.members)

    def grow(self, count: int = 1) -> int:
        """Add up to *count* members by splitting (§3.3); returns how
        many splits were actually initiated (0 when the cluster has no
        idle CPU — the paper's admission rule).

        Each member seeds at most one split per call: a split gates its
        seed, so a second concurrent split of the same proclet would
        abort against the gate.
        """
        from repro.runtime import ProcletStatus

        started = 0
        seeds = sorted(
            (r for r in self.members
             if r.proclet.status is ProcletStatus.RUNNING),
            key=lambda r: -r.proclet.queue_length,
        )
        for seed in seeds[:count]:
            if self.qs.placement.best_for_compute(self.parallelism) is None:
                break
            ev = self.qs.split_compute(seed)
            self._pending_growth += 1
            ev.subscribe(self._on_grow_done)
            started += 1
        return started

    def _on_grow_done(self, event: Event) -> None:
        self._pending_growth -= 1
        if not event.ok:
            raise event.value
        new_ref = event.value
        if new_ref is not None:
            new_ref.proclet.shard_owner = self
            self.members.append(new_ref)

    def shrink(self, count: int = 1) -> int:
        """Retire up to *count* members by merging them away."""
        removed = 0
        while removed < count and len(self.members) > 1:
            victim = self.members.pop()
            survivor = self.members[0]
            self._retired.append(victim)
            ev = self.qs.merge_compute(survivor, victim)
            ev.subscribe(self._raise_on_failure)
            removed += 1
        return removed

    @staticmethod
    def _raise_on_failure(event: Event) -> None:
        if not event.ok:
            raise event.value

    # -- work submission ------------------------------------------------------------
    def submit(self, task: Task) -> Event:
        """Submit one task; returns its completion event."""
        if task.done is None:
            task.done = self.qs.sim.event()
        target = min(
            self.members,
            key=lambda r: self._assigned.get(r.proclet_id, 0),
        )
        self._assigned[target.proclet_id] = \
            self._assigned.get(target.proclet_id, 0) + 1
        target.call("cp_submit", task)
        return task.done

    def submit_fn(self, fn: Callable, key: Any = None) -> Event:
        """Submit a generator function ``fn(ctx, task)`` as a task
        (the ``Run(lambda)`` API of §3.1)."""
        return self.submit(Task(fn=fn, key=key))

    def run(self, work: float, key: Any = None) -> Event:
        """Submit a plain CPU burn of *work* core-seconds."""
        return self.submit(Task(work=work, key=key))

    def heal(self) -> int:
        """Replace members lost to machine failures.

        Dead members are dropped from the pool and fresh proclets with
        the same source are spawned in their place (their *queued* tasks
        died with the machine — redo logic is the application's policy).
        Returns the number of members replaced.
        """
        from repro.runtime import ProcletStatus

        dead = [
            ref for ref in self.members
            if self.qs.runtime._proclets.get(ref.proclet_id) is None
            or ref.proclet.status is ProcletStatus.DEAD
        ]
        for ref in dead:
            self.members.remove(ref)
            self._assigned.pop(ref.proclet_id, None)
        for _ in dead:
            self._spawn_member()
        return len(dead)

    def stop(self) -> Event:
        """Stop all members; the event fires when every worker exited."""
        stops = [ref.proclet.request_stop() for ref in self.members]
        return self.qs.sim.all_of(stops)

    def machines(self) -> List[Machine]:
        """Multiset of machines hosting members (placement diagnostics)."""
        return [ref.machine for ref in self.members]

    def __repr__(self) -> str:
        return (f"<ComputePool {self.name!r} members={len(self.members)} "
                f"backlog={self.backlog} done={self.total_done}>")
