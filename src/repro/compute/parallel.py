"""Parallel computation APIs over sharded data (§3.2).

``map``/``for_each``/``reduce``/``filter`` compose compute proclets with
memory proclets: each task scans a slice of a sharded vector through a
prefetching reader, burns per-element CPU, and optionally emits results
(e.g. into a sharded queue).  This is the "pass data structure iterators
to a map API" pattern the paper describes.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Union

from ..core.computeproclet import Task
from ..sim import Event

#: Per-element work: either a constant (seconds) or fn(key, value) -> s.
WorkSpec = Union[float, Callable[[Any, Any], float]]


def _work_of(work: WorkSpec, key, value) -> float:
    return work(key, value) if callable(work) else work


def _slice_tasks(pool, vector, lo: int, hi: int, task_elems: int,
                 body) -> List[Event]:
    """Submit one task per element slice; returns their events."""
    events = []
    start = lo
    while start < hi:
        end = min(start + task_elems, hi)
        events.append(pool.submit(Task(fn=body(start, end),
                                       key=(start, end))))
        start = end
    return events


def for_each(pool, vector, work: WorkSpec, emit=None,
             lo: int = 0, hi: Optional[int] = None,
             task_elems: int = 512, reader_depth: Optional[int] = None,
             reader_chunk: Optional[int] = None) -> Event:
    """Apply per-element *work* over ``vector[lo:hi]`` using *pool*.

    ``emit(ctx, key, value)`` is an optional generator run after each
    element (push to a queue, write a result, ...).  Returns an event
    that fires when every element has been processed.
    """
    hi = len(vector) if hi is None else hi

    def body(start: int, end: int):
        def task_fn(ctx, _task):
            reader = vector.reader(start, end, chunk=reader_chunk,
                                   depth=reader_depth)
            count = 0
            while True:
                batch = yield from reader.next_batch(ctx)
                if batch is None:
                    break
                for key, value in batch:
                    w = _work_of(work, key, value)
                    if w > 0:
                        yield ctx.cpu(w)
                    if emit is not None:
                        yield from emit(ctx, key, value)
                    count += 1
            return count

        return task_fn

    events = _slice_tasks(pool, vector, lo, hi, task_elems, body)
    return pool.qs.sim.all_of(events)


def map_collect(pool, vector, work: WorkSpec,
                transform: Optional[Callable[[Any, Any], Any]] = None,
                lo: int = 0, hi: Optional[int] = None,
                task_elems: int = 512) -> Event:
    """Map over the vector and collect ``[(key, result), ...]``.

    The completion event's value is the collected list (ordered by key).
    """
    hi = len(vector) if hi is None else hi
    results: List = []

    def body(start: int, end: int):
        def task_fn(ctx, _task):
            reader = vector.reader(start, end)
            out = []
            while True:
                batch = yield from reader.next_batch(ctx)
                if batch is None:
                    break
                for key, value in batch:
                    w = _work_of(work, key, value)
                    if w > 0:
                        yield ctx.cpu(w)
                    out.append((key, transform(key, value)
                                if transform else value))
            results.extend(out)
            return len(out)

        return task_fn

    done = pool.qs.sim.all_of(
        _slice_tasks(pool, vector, lo, hi, task_elems, body))
    collected = pool.qs.sim.event()
    done.subscribe(
        lambda e: collected.succeed(sorted(results)) if e.ok
        else collected.fail(e.value))
    return collected


def reduce(pool, vector, work: WorkSpec,
           fold: Callable[[Any, Any, Any], Any], initial: Any,
           lo: int = 0, hi: Optional[int] = None,
           task_elems: int = 512) -> Event:
    """Parallel reduction: per-task partial folds, combined at the end.

    ``fold(acc, key, value) -> acc`` must be associative over element
    order within a slice; partials combine with the same fold using the
    slice results as values.  The completion event's value is the final
    accumulator.
    """
    hi = len(vector) if hi is None else hi
    partials: List = []

    def body(start: int, end: int):
        def task_fn(ctx, _task):
            reader = vector.reader(start, end)
            acc = initial
            while True:
                batch = yield from reader.next_batch(ctx)
                if batch is None:
                    break
                for key, value in batch:
                    w = _work_of(work, key, value)
                    if w > 0:
                        yield ctx.cpu(w)
                    acc = fold(acc, key, value)
            partials.append((start, acc))
            return acc

        return task_fn

    done = pool.qs.sim.all_of(
        _slice_tasks(pool, vector, lo, hi, task_elems, body))
    result = pool.qs.sim.event()

    def _combine(e):
        if not e.ok:
            result.fail(e.value)
            return
        acc = initial
        for _start, partial in sorted(partials):
            acc = fold(acc, None, partial)
        result.succeed(acc)

    done.subscribe(_combine)
    return result


class _Drop:
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<dropped>"


_DROP = _Drop()


def filter_collect(pool, vector, work: WorkSpec,
                   predicate: Callable[[Any, Any], bool],
                   lo: int = 0, hi: Optional[int] = None,
                   task_elems: int = 512) -> Event:
    """Parallel filter: event value is ``[(key, value), ...]`` passing
    *predicate*, ordered by key."""
    mapped = map_collect(
        pool, vector, work,
        transform=lambda k, v: (v if predicate(k, v) else _DROP),
        lo=lo, hi=hi, task_elems=task_elems,
    )
    out = pool.qs.sim.event()

    def _strip(e):
        if not e.ok:
            out.fail(e.value)
            return
        out.succeed([(k, v) for k, v in e.value if v is not _DROP])

    mapped.subscribe(_strip)
    return out
