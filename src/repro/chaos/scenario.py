"""Canned chaos scenario: workload + faults + invariants in one call.

:func:`run_chaos` builds a cluster, starts a realistic mixed workload
(an elastic compute pool streaming tasks plus a set of memory shards
under key churn), expands a seeded :class:`RandomFaultPlan` into a
schedule, arms the injector, attaches the :class:`InvariantChecker`,
and runs to the horizon.  The whole run is a pure function of the
config — same seed, same everything — which :meth:`ChaosResult.digest`
makes checkable: the CLI runs a scenario twice and diffs the digests.

Fault tolerance comes in two flavors, selected by
``ChaosConfig.recovery_policy``:

* ``None`` (default) — application-level redo: a healer listener
  re-spawns pool members and memory shards a short delay after each
  crash, and the drivers treat :class:`ProcletLost` on a stale ref as a
  signal to count the loss and move on.  Bit-identical to runs
  predating :mod:`repro.ft`.
* a :class:`~repro.ft.RecoveryPolicy` value (``"none"``/``"restart"``/
  ``"checkpoint"``/``"replicate"``/``"lineage"``) — runtime-level
  recovery: the app healer is disabled, shards are protected under the
  chosen policy (pool members under RESTART), and the recovery manager
  re-places lost proclets while blocked calls transparently retry.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Generator, List, Optional

from ..cluster import ClusterSpec, MachineSpec, OutOfMemory
from ..core import Quicksand, QuicksandConfig
from ..runtime import MachineFailed, MigrationFailed, ProcletLost
from ..runtime.errors import DeadProclet, InvalidPlacement
from ..units import GiB, MiB
from .faults import FaultSchedule, MachineCrash, RandomFaultPlan
from .injector import ChaosInjector
from .invariants import InvariantChecker


@dataclass
class ChaosConfig:
    """Knobs for one chaos run.  Everything that can influence the
    simulation is in here — the run is a pure function of this object."""

    seed: int = 42
    machines: int = 4
    cores: int = 8
    dram_bytes: float = 4 * GiB
    duration: float = 2.0
    # Workload.
    shards: int = 6
    shard_item_bytes: float = 8 * MiB
    churn_interval: float = 0.002
    pool_members: int = 3
    parallelism: int = 2
    task_interval: float = 0.003
    task_work: float = 0.004
    # Fault plan (see RandomFaultPlan for the remaining defaults).
    crash_probability: float = 0.6
    migration_flakiness: float = 0.25
    heal_delay: float = 0.02
    # Runtime-level recovery: None = legacy app-level healing, else a
    # RecoveryPolicy value for the shards ("none" runs the detector and
    # registry but recovers nothing — lost proclets stay lost).
    recovery_policy: Optional[str] = None
    # Autoscaler mode: replaces the legacy size controller with the
    # ShardAutoscaler and adds a range-sharded map under routed-key
    # churn, so faults land at every reshard phase boundary.  The
    # default False keeps pre-autoscaler digests byte-identical.
    autoscale: bool = False
    map_item_bytes: float = 2 * MiB
    map_churn_interval: float = 0.002
    # Checking.
    oracle: bool = False
    invariant_stride: int = 1
    gate_timeout: Optional[float] = None  # default: the full horizon


@dataclass
class ChaosResult:
    """Outcome of a chaos run that completed with all invariants holding
    (a violation raises instead of returning)."""

    config: ChaosConfig
    schedule: FaultSchedule
    injected: int
    skipped: int
    machines_crashed: int
    tasks_done: int
    lost_calls: int
    invariant_checks: int
    oracle_comparisons: int
    migrations: int
    migrations_retried: int
    migrations_failed: int
    # Runtime-level recovery outcomes (all zero under the legacy path).
    suspects: int = 0
    confirms: int = 0
    recoveries: int = 0
    failed_recoveries: int = 0
    call_retries: int = 0
    sheds: int = 0
    # Reshard/autoscaler outcomes (all zero with autoscale off).
    reshard_splits: int = 0
    reshard_merges: int = 0
    reshard_aborts: int = 0
    autoscale_decisions: int = 0
    autoscale_sheds: int = 0
    trace_lines: List[str] = field(repr=False, default_factory=list)
    counters: List[str] = field(repr=False, default_factory=list)

    def digest(self) -> str:
        """Hex digest of everything observable about the run.  Two runs
        of the same config must produce identical digests — this is the
        determinism acceptance check."""
        h = hashlib.sha256()
        for line in self.trace_lines:
            h.update(line.encode())
            h.update(b"\n")
        for line in self.counters:
            h.update(line.encode())
            h.update(b"\n")
        h.update(f"tasks={self.tasks_done}\n".encode())
        h.update(f"lost={self.lost_calls}\n".encode())
        h.update(f"checks={self.invariant_checks}\n".encode())
        return h.hexdigest()

    def report(self) -> str:
        lines = [
            f"chaos run: seed={self.config.seed} "
            f"machines={self.config.machines} "
            f"duration={self.config.duration:.2f}s",
            f"  faults injected   : {self.injected} "
            f"({self.skipped} skipped)",
            f"  machines crashed  : {self.machines_crashed}",
            f"  tasks completed   : {self.tasks_done}",
            f"  calls hit faults  : {self.lost_calls}",
            f"  migrations        : {self.migrations} "
            f"({self.migrations_retried} retried, "
            f"{self.migrations_failed} failed)",
            f"  invariant checks  : {self.invariant_checks} "
            f"(oracle comparisons: {self.oracle_comparisons})",
        ]
        if self.config.recovery_policy is not None:
            lines.append(
                f"  recovery ({self.config.recovery_policy}): "
                f"{self.recoveries} recovered of {self.confirms} confirmed "
                f"deaths ({self.failed_recoveries} failed, {self.sheds} "
                f"shed, {self.call_retries} calls retried)")
        if self.config.autoscale:
            lines.append(
                f"  autoscaler        : {self.autoscale_decisions} "
                f"decisions, {self.reshard_splits} splits + "
                f"{self.reshard_merges} merges committed, "
                f"{self.reshard_aborts} aborted, "
                f"{self.autoscale_sheds} sheds")
        lines += [
            f"  digest            : {self.digest()}",
            "fault schedule:",
            self.schedule.describe(),
        ]
        return "\n".join(lines)


def run_chaos(config: ChaosConfig = ChaosConfig()) -> ChaosResult:
    """Execute one seeded chaos scenario end to end.

    Raises :class:`repro.chaos.InvariantViolation` the moment any global
    invariant breaks; returns a :class:`ChaosResult` otherwise.
    """
    names = [f"m{i}" for i in range(config.machines)]
    spec = ClusterSpec(
        machines=[MachineSpec(name=n, cores=config.cores,
                              dram_bytes=config.dram_bytes)
                  for n in names],
        seed=config.seed,
    )
    qs = Quicksand(spec, config=QuicksandConfig())
    sim = qs.sim
    autoscaler = qs.enable_autoscaler() if config.autoscale else None

    plan = RandomFaultPlan(
        seed=config.seed, machines=names, duration=config.duration,
        crash_probability=config.crash_probability,
        migration_flakiness=config.migration_flakiness,
    )
    schedule = plan.schedule(dram_bytes=config.dram_bytes)
    injector = ChaosInjector(qs.runtime, schedule)
    checker = InvariantChecker(
        qs.runtime, oracle=config.oracle, stride=config.invariant_stride,
        gate_timeout=(config.gate_timeout if config.gate_timeout is not None
                      else config.duration),
    ).attach(sim)

    state = _Workload(qs, config)
    state.start()

    def after_fault(fault) -> None:
        if isinstance(fault, MachineCrash):
            sim.call_in(config.heal_delay, state.heal)

    if config.recovery_policy is None:
        # Legacy path: the application heals itself after crashes.
        injector.on_fault(after_fault)
    injector.start()

    qs.run(until=config.duration)
    checker.check()  # final state must hold too
    checker.detach()

    metrics = qs.metrics
    counters = [f"{name}={c.total:g}"
                for name, c in sorted(metrics._counters.items())]

    recovery = qs.recovery
    reshard = qs.runtime.reshard_ledger.counters
    return ChaosResult(
        config=config,
        schedule=schedule,
        injected=len(injector.injected),
        skipped=len(injector.skipped),
        machines_crashed=injector.machines_crashed,
        tasks_done=state.pool.total_done,
        lost_calls=state.lost_calls,
        invariant_checks=checker.checks,
        oracle_comparisons=checker.oracle_comparisons,
        migrations=qs.runtime.migration.migrations_completed,
        migrations_retried=qs.runtime.migration.migrations_retried,
        migrations_failed=qs.runtime.migration.migrations_failed,
        suspects=recovery.detector.suspects if recovery else 0,
        confirms=recovery.detector.confirms if recovery else 0,
        recoveries=sum(recovery.recoveries.values()) if recovery else 0,
        failed_recoveries=recovery.failed_recoveries if recovery else 0,
        call_retries=int(qs.metrics.counter("ft.call_retries").total)
        if recovery else 0,
        sheds=recovery.sheds if recovery else 0,
        reshard_splits=reshard["split_committed"],
        reshard_merges=reshard["merge_committed"],
        reshard_aborts=(reshard["split_aborted"]
                        + reshard["merge_aborted"]),
        autoscale_decisions=(len(autoscaler.decisions)
                             if autoscaler else 0),
        autoscale_sheds=autoscaler.sheds if autoscaler else 0,
        trace_lines=[str(e) for e in qs.runtime.tracer.events],
        counters=counters,
    )


def run_chaos_summary(**config_kwargs) -> dict:
    """One chaos run as a picklable, cacheable task (see ``repro.exec``).

    Accepts :class:`ChaosConfig` fields as keyword arguments and returns
    plain data — the replay digest plus the headline counters — so a
    seed grid can fan out across worker processes and the parent can
    diff digests without shipping trace lines around.
    """
    config = ChaosConfig(**config_kwargs)
    result = run_chaos(config)
    return {
        "seed": config.seed,
        "digest": result.digest(),
        "injected": result.injected,
        "machines_crashed": result.machines_crashed,
        "tasks_done": result.tasks_done,
        "lost_calls": result.lost_calls,
        "invariant_checks": result.invariant_checks,
        "migrations": result.migrations,
        "confirms": result.confirms,
        "recoveries": result.recoveries,
        "failed_recoveries": result.failed_recoveries,
        "call_retries": result.call_retries,
        "reshard_splits": result.reshard_splits,
        "reshard_merges": result.reshard_merges,
        "reshard_aborts": result.reshard_aborts,
        "autoscale_decisions": result.autoscale_decisions,
        "autoscale_sheds": result.autoscale_sheds,
    }


class _Workload:
    """The mixed workload a chaos scenario runs underneath the faults."""

    def __init__(self, qs: Quicksand, config: ChaosConfig):
        self.qs = qs
        self.config = config
        self.pool = None
        self.shards: List = []
        self.map = None
        self.lost_calls = 0
        self.lineage = None
        self._next_key = 0
        self._next_map_key = 0

    def start(self) -> None:
        from ..ft import LineageLog, RecoveryPolicy

        policy = (RecoveryPolicy(self.config.recovery_policy)
                  if self.config.recovery_policy is not None else None)
        manager = self.qs.enable_recovery() if policy is not None else None
        if policy is RecoveryPolicy.LINEAGE:
            self.lineage = LineageLog()
        self.pool = self.qs.compute_pool(
            name="chaos-pool", parallelism=self.config.parallelism,
            initial_members=self.config.pool_members)
        for i in range(self.config.shards):
            self.shards.append(self.qs.spawn_memory(name=f"shard{i}"))
        if manager is not None:
            # Shards carry the grid's policy; pool members are stateless
            # workers, so RESTART is always the right recovery for them.
            # (Split-derived proclets are unprotected: recovering only
            # registered state is itself a policy worth chaos-testing.)
            for ref in self.shards:
                manager.protect(ref, policy, lineage=self.lineage)
            member_policy = (RecoveryPolicy.RESTART
                             if policy is not RecoveryPolicy.NONE
                             else RecoveryPolicy.NONE)
            for ref in self.pool.members:
                manager.protect(ref, member_policy,
                                factory=self._make_member)
        if self.config.autoscale:
            # Routed traffic against a range-sharded map: splits/merges
            # re-route keys while faults land at every protocol phase.
            self.map = self.qs.sharded_map(name="chaos-map")
            self.qs.sim.process(self._map_driver(), name="chaos-map-churn")
        self.qs.sim.process(self._task_driver(), name="chaos-tasks")
        self.qs.sim.process(self._churn_driver(), name="chaos-churn")

    def _make_member(self):
        """RESTART factory for a pool member: a fresh worker wired back
        into the pool's completion accounting."""
        from ..core.computeproclet import ComputeProclet

        proclet = ComputeProclet(parallelism=self.pool.parallelism,
                                 source=self.pool.source)
        proclet.on_task_done = self.pool._on_task_done
        proclet.shard_owner = self.pool
        return proclet

    # -- fault recovery ------------------------------------------------------
    def heal(self) -> None:
        """Replace pool members and shards lost to a crash.  Retries
        later if the cluster currently has nowhere to put them."""
        try:
            self.pool.heal()
            dead = [ref for ref in self.shards
                    if self.qs.runtime._proclets.get(ref.proclet_id) is None]
            for ref in dead:
                self.shards.remove(ref)
                self.shards.append(
                    self.qs.spawn_memory(name=f"{ref.name}.re"))
        except (OutOfMemory, InvalidPlacement, MachineFailed):
            self.qs.sim.call_in(self.config.heal_delay, self.heal)

    # -- drivers -------------------------------------------------------------
    def _task_driver(self) -> Generator:
        rng = self.qs.sim.random.stream("chaos.workload.tasks")
        while True:
            yield self.qs.sim.timeout(
                rng.expovariate(1.0 / self.config.task_interval))
            if not self.pool.members:
                continue  # wiped out; the healer will restock
            work = rng.uniform(0.5, 1.5) * self.config.task_work
            try:
                self.pool.run(work)
            except (ProcletLost, DeadProclet, MachineFailed):
                self.lost_calls += 1

    def _churn_driver(self) -> Generator:
        rng = self.qs.sim.random.stream("chaos.workload.mem")
        while True:
            yield self.qs.sim.timeout(
                rng.expovariate(1.0 / self.config.churn_interval))
            if not self.shards:
                continue
            ref = self.shards[rng.randrange(len(self.shards))]
            key = f"k{self._next_key}"
            self._next_key += 1
            nbytes = rng.uniform(0.5, 1.5) * self.config.shard_item_bytes
            if self.lineage is not None:
                ev = self.lineage.recording_put(self.qs.runtime, ref,
                                                key, nbytes)
            else:
                ev = self.qs.runtime.invoke(ref, "mp_put", key, nbytes)
            ev.subscribe(self._on_churn_done)

    def _map_driver(self) -> Generator:
        """Routed key churn against the autoscaled map: mostly inserts
        (growing the keyspace so shards split), occasional deletes (so
        drained shards merge back), occasional reads."""
        rng = self.qs.sim.random.stream("chaos.workload.map")
        while True:
            yield self.qs.sim.timeout(
                rng.expovariate(1.0 / self.config.map_churn_interval))
            roll = rng.random()
            if roll < 0.70 or self._next_map_key == 0:
                key = f"mk{self._next_map_key:08d}"
                self._next_map_key += 1
                nbytes = (rng.uniform(0.5, 1.5)
                          * self.config.map_item_bytes)
                ev = self.map.put(key, self._next_map_key, nbytes)
            else:
                key = f"mk{rng.randrange(self._next_map_key):08d}"
                ev = (self.map.delete(key) if roll < 0.85
                      else self.map.get(key))
            ev.subscribe(self._on_map_done)

    def _on_map_done(self, event) -> None:
        if event.ok:
            return
        if isinstance(event.value,
                      (DeadProclet, MachineFailed, OutOfMemory,
                       MigrationFailed, KeyError)):
            # KeyError: the deleted/read key never landed (its insert
            # hit a fault) or died with an unrecovered shard.
            self.lost_calls += 1
        else:
            raise event.value

    def _on_churn_done(self, event) -> None:
        if not event.ok:
            if isinstance(event.value,
                          (DeadProclet, MachineFailed, OutOfMemory,
                           MigrationFailed)):
                self.lost_calls += 1
            else:
                raise event.value
