"""Global-invariant checking as a DES observer.

An :class:`InvariantChecker` hooks :meth:`Simulator.add_observer` and
re-derives, after every processed event, the properties that must hold
at *every* instant of a correct simulation, no matter what faults were
injected:

1. **No double placement** — the locator's per-machine sets partition
   its table; every entry maps to a live proclet whose ``machine``
   agrees with the table.
2. **Conservation of heap bytes** — each live machine's DRAM ledger
   equals the footprints of its resident proclets, plus fault ballast,
   plus destination reservations of in-flight migrations.  A crashed
   machine holds exactly zero.
3. **Fluid sanity** — for every scheduler: rates are within
   ``[0, demand]``, their sum matches the cached ``load`` aggregate and
   never exceeds capacity, and priority is strict (a hungry class
   starves everything below it).  Optionally each scheduler is also
   diffed against the brute-force oracle (:mod:`repro.chaos.oracle`).
4. **No permanently-gated proclet** — a MIGRATING proclet always has an
   untriggered gate, and no single gate stays closed longer than
   ``gate_timeout`` virtual seconds.
8. **Clone-set hygiene** (:mod:`repro.hedge`) — every cloned call has
   at most one winner; once a call is decided and virtual time has
   advanced past the decision instant, every losing attempt has
   actually terminated and none of its cancelled CPU work items is
   still active on a scheduler (cancelled clones must not leak
   capacity, DRAM-backed work, or gated proclets — the DRAM and gate
   invariants above apply to clone losers like everything else).
9. **Reshard integrity** (:mod:`repro.runtime.reshard`) — for every
   tracked sharded structure: the routing table covers the full key
   space at every instant (first bound is BOTTOM, bounds strictly
   sorted, parallel arrays agree — *routable-keys-always*); every table
   entry resolves to a live or recoverably-lost proclet (a destroyed
   entry is legal only inside an active, ledger-protected reshard op);
   each settled shard proclet's enforced ``range_lo``/``range_hi``
   agrees with its table neighbours; and no live shard proclet is
   absent from its owner's table unless an active op protects it (no
   orphaned child shards, including across aborts).

The checker is read-only: schedulers with a *pending* coalesced
reassignment are skipped for that event (forcing a flush mid-instant
would perturb the run) and re-checked after the flush lands, which is
always before virtual time advances.

On violation it raises :class:`InvariantViolation` from inside the event
loop, failing the run at the first bad state — the chaos analogue of an
assertion compiled into the kernel.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from . import oracle as _oracle

#: Rate/aggregate slack: a few ulps of a realistic capacity.
_RATE_EPS = 1e-9
#: DRAM ledger slack in bytes (footprints are floats; 1 B is generous).
_MEM_EPS = 1.0


class InvariantViolation(Exception):
    """A global invariant failed to hold after an event."""


class InvariantChecker:
    """Asserts global invariants over a :class:`NuRuntime` after every
    simulator event (or every ``stride``-th event)."""

    def __init__(self, runtime, oracle: bool = False, stride: int = 1,
                 gate_timeout: float = 1.0):
        if stride < 1:
            raise ValueError(f"stride must be >= 1: {stride}")
        self.runtime = runtime
        self.oracle = oracle
        self.stride = stride
        self.gate_timeout = gate_timeout
        self.checks = 0
        self.events_seen = 0
        self.oracle_comparisons = 0
        # id(gate) -> first time the gate was seen closed.
        self._gate_seen: Dict[int, float] = {}
        # pid -> highest incarnation ever observed (must never regress).
        self._incarnation_seen: Dict[int, int] = {}
        self._attached_to = None

    # -- observer plumbing ---------------------------------------------------
    def attach(self, sim=None) -> "InvariantChecker":
        sim = sim or self.runtime.sim
        sim.add_observer(self._on_event)
        self._attached_to = sim
        return self

    def detach(self) -> None:
        if self._attached_to is not None:
            self._attached_to.remove_observer(self._on_event)
            self._attached_to = None

    def _on_event(self, _sim) -> None:
        self.events_seen += 1
        if self.events_seen % self.stride == 0:
            self.check()

    # -- the invariants ------------------------------------------------------
    def check(self) -> None:
        """Run every invariant once; raises :class:`InvariantViolation`."""
        self.checks += 1
        self._check_placement()
        self._check_memory_conservation()
        self._check_fluid()
        self._check_gates()
        self._check_recovery()
        self._check_clones()
        self._check_resharding()

    def _fail(self, what: str) -> None:
        raise InvariantViolation(
            f"t={self.runtime.sim.now:.6f}s: {what}")

    def _check_placement(self) -> None:
        loc = self.runtime.locator
        proclets = self.runtime._proclets
        seen: set = set()
        for machine, pids in loc._by_machine.items():
            for pid in pids:
                if pid in seen:
                    self._fail(f"proclet #{pid} double-placed")
                seen.add(pid)
                if loc._table.get(pid) is not machine:
                    self._fail(
                        f"proclet #{pid} in {machine.name}'s residency set "
                        f"but table says "
                        f"{getattr(loc._table.get(pid), 'name', None)}")
        if seen != set(loc._table):
            self._fail("locator table and residency sets disagree: "
                       f"{sorted(seen ^ set(loc._table))}")
        for pid, machine in loc._table.items():
            proclet = proclets.get(pid)
            if proclet is None:
                self._fail(f"locator maps dead proclet #{pid}")
            if proclet._machine is not machine:
                self._fail(
                    f"{proclet.name}: locator says {machine.name}, proclet "
                    f"says {getattr(proclet._machine, 'name', None)}")
        for pid, proclet in proclets.items():
            if pid not in loc._table:
                self._fail(f"live proclet {proclet.name} missing from "
                           f"locator")

    def _check_memory_conservation(self) -> None:
        loc = self.runtime.locator
        migration = self.runtime.migration
        proclets = self.runtime._proclets
        for m in self.runtime.cluster.machines:
            if not m.up:
                if m.memory.used != 0.0:
                    self._fail(f"crashed {m.name} holds "
                               f"{m.memory.used:.0f} B of DRAM")
                if loc.proclets_on(m):
                    self._fail(f"crashed {m.name} still hosts proclets "
                               f"{loc.proclets_on(m)}")
                continue
            resident = sum(proclets[pid].footprint
                           for pid in loc.proclets_on(m))
            recovery = self.runtime.recovery
            ckpt = recovery.reserved_on(m) if recovery is not None else 0.0
            expected = (resident + m.memory.ballast
                        + migration.inflight_reserved_on(m) + ckpt)
            if not math.isclose(m.memory.used, expected,
                                rel_tol=1e-9, abs_tol=_MEM_EPS):
                self._fail(
                    f"{m.name} DRAM ledger {m.memory.used:.1f} B != "
                    f"{expected:.1f} B (residents {resident:.1f} + ballast "
                    f"{m.memory.ballast:.1f} + in-flight "
                    f"{migration.inflight_reserved_on(m):.1f} + "
                    f"checkpoints {ckpt:.1f})")
            if m.memory.used > m.memory.capacity + _MEM_EPS:
                self._fail(f"{m.name} DRAM oversubscribed: "
                           f"{m.memory.used:.0f} / "
                           f"{m.memory.capacity:.0f} B")

    def _schedulers(self):
        for m in self.runtime.cluster.machines:
            yield m.cpu.sched
            yield m.nic.tx
            if m.gpus is not None:
                yield m.gpus.sched
            if m.storage is not None:
                yield m.storage.iops
                yield m.storage.read_bw
                yield m.storage.write_bw

    def _check_fluid(self) -> None:
        for sched in self._schedulers():
            if sched._dirty:
                # A coalesced reassignment is pending; it will flush
                # before time advances and the next event re-checks.
                continue
            eps = _RATE_EPS * max(1.0, sched.capacity)
            total = 0.0
            hungriest: Optional[int] = None
            for it in sched._items:
                rate = it._rate
                if rate < -eps or rate > it.demand + eps:
                    self._fail(f"{sched.name}/{it.name}: rate {rate!r} "
                               f"outside [0, demand={it.demand!r}]")
                total += rate
                if rate < it.demand - eps and (hungriest is None
                                               or it.priority < hungriest):
                    hungriest = it.priority
            if total > sched.capacity + eps:
                self._fail(f"{sched.name}: rates sum to {total!r} > "
                           f"capacity {sched.capacity!r}")
            if not math.isclose(total, sched._load,
                                rel_tol=1e-9, abs_tol=eps):
                self._fail(f"{sched.name}: cached load {sched._load!r} != "
                           f"rate sum {total!r}")
            if hungriest is not None:
                for it in sched._items:
                    if it.priority > hungriest and it._rate > eps:
                        self._fail(
                            f"{sched.name}/{it.name}: class {it.priority} "
                            f"served while class {hungriest} is hungry")
            if self.oracle and sched._items:
                self.oracle_comparisons += 1
                divergences = _oracle.compare(sched)
                if divergences:
                    self._fail(f"oracle divergence: "
                               + "; ".join(map(str, divergences)))

    def _check_gates(self) -> None:
        from ..runtime.proclet import ProcletStatus

        now = self.runtime.sim.now
        live_gates: set = set()
        for proclet in self.runtime._proclets.values():
            if proclet._status is ProcletStatus.DEAD:
                self._fail(f"{proclet.name} is DEAD but still registered")
            if proclet._status is ProcletStatus.MIGRATING:
                gate = proclet._migration_gate
                if gate is None:
                    self._fail(f"{proclet.name} MIGRATING without a gate")
                if gate.triggered:
                    self._fail(f"{proclet.name} MIGRATING behind an "
                               f"already-open gate")
                key = id(gate)
                live_gates.add(key)
                first = self._gate_seen.setdefault(key, now)
                if now - first > self.gate_timeout:
                    self._fail(
                        f"{proclet.name} gated for "
                        f"{now - first:.3f}s > {self.gate_timeout:.3f}s "
                        f"(permanently gated?)")
        # Forget gates that opened, so ids can be reused safely.
        for key in list(self._gate_seen):
            if key not in live_gates:
                del self._gate_seen[key]

    def _check_recovery(self) -> None:
        """Fault-tolerance invariants (cheap no-ops without repro.ft).

        5. **No double incarnation** — an id is never simultaneously
           live and lost, and its incarnation number never regresses.
        6. **Checkpoint byte conservation** — the per-machine view of
           checkpoint reservations sums exactly to the manager's
           authoritative held-bytes ledger.
        7. **Recovered-state convergence** — every completed restore
           matched its expected state (the manager records divergences).
        """
        runtime = self.runtime
        for pid in runtime.lost_proclets():
            if pid in runtime._proclets:
                self._fail(f"proclet #{pid} is both live and lost "
                           f"(double incarnation)")
        for pid, inc in runtime._incarnations.items():
            seen = self._incarnation_seen.get(pid, 0)
            if inc < seen:
                self._fail(f"proclet #{pid} incarnation regressed "
                           f"{seen} -> {inc}")
            self._incarnation_seen[pid] = inc
        recovery = runtime.recovery
        if recovery is None:
            return
        per_machine = sum(recovery.reserved_on(m)
                          for m in runtime.cluster.machines)
        if not math.isclose(per_machine, recovery.checkpoint_bytes_held,
                            rel_tol=1e-9, abs_tol=_MEM_EPS):
            self._fail(
                f"checkpoint bytes not conserved: machines hold "
                f"{per_machine:.1f} B, manager ledger says "
                f"{recovery.checkpoint_bytes_held:.1f} B")
        if recovery.convergence_errors:
            self._fail("recovered state diverged: "
                       + "; ".join(recovery.convergence_errors))

    def _check_clones(self) -> None:
        """Clone-set hygiene (invariant 8; cheap no-op without cloned
        calls in flight)."""
        now = self.runtime.sim.now
        for call in self.runtime._clone_calls:
            winners = sum(1 for att in call.attempts if att.won)
            if winners > 1:
                self._fail(f"{call!r} has {winners} winners")
            if not call.decided:
                continue
            if winners == 0 and call.process is not None \
                    and call.process.triggered and call.process.ok:
                self._fail(f"{call!r} decided successfully without a "
                           f"winning attempt")
            if now <= call.decided_at:
                # Cancellation lands within the decision instant; give
                # the interrupt wakeups this timestamp to process.
                continue
            for att in call.attempts:
                if att.won:
                    continue
                if not att.process.triggered:
                    self._fail(
                        f"{call!r}: losing clone {att.index} still alive "
                        f"{now - call.decided_at:.6f}s after the "
                        f"decision (cancel leaked)")
                for item in att.work_items:
                    if item.active:
                        self._fail(
                            f"{call!r}: cancelled clone {att.index} "
                            f"leaked active work item {item.name!r}")

    def _check_resharding(self) -> None:
        """Reshard integrity (invariant 9; cheap no-op without tracked
        sharded structures)."""
        runtime = self.runtime
        ledger = getattr(runtime, "reshard_ledger", None)
        if ledger is None or not ledger._structures:
            return
        from ..ds.sharding import _Bottom
        from ..runtime.proclet import ProcletStatus

        structures = ledger.structures()
        protected = ledger.protected_ids()
        lost = set(runtime.lost_proclets())
        recovery = runtime.recovery
        table_pids: Dict[int, set] = {}
        for ds in structures:
            shards = list(ds.shards)
            table_pids[id(ds)] = {getattr(s, "ref", s).proclet_id
                                  for s in shards}
            los = getattr(ds, "_los", None)
            if los is not None:
                # Range-sharded: full key-space coverage at every
                # instant (routable-keys-always).
                if not shards:
                    self._fail(f"{ds.name}: empty routing table "
                               f"(every key unroutable)")
                if len(los) != len(shards):
                    self._fail(f"{ds.name}: lo array has {len(los)} "
                               f"entries for {len(shards)} shards")
                if not isinstance(shards[0].lo, _Bottom):
                    self._fail(
                        f"{ds.name}: first shard starts at "
                        f"{shards[0].lo!r}, not BOTTOM — keys below it "
                        f"are unroutable")
                for i, shard in enumerate(shards):
                    if shard.lo != los[i]:
                        self._fail(f"{ds.name}: shard {i} lower bound "
                                   f"{shard.lo!r} != lo array {los[i]!r}")
                    if i > 0 and not los[i - 1] < los[i]:
                        self._fail(f"{ds.name}: lower bounds out of "
                                   f"order at {i}: {los[i - 1]!r} !< "
                                   f"{los[i]!r}")
            for i, shard in enumerate(shards):
                pid = getattr(shard, "ref", shard).proclet_id
                proclet = runtime._proclets.get(pid)
                if proclet is None:
                    # Lost to a machine failure (recovery's problem) or
                    # destroyed inside a still-settling reshard op (the
                    # legacy merge's completion-subscriber window).
                    if pid not in lost and pid not in protected:
                        self._fail(
                            f"{ds.name}: routing table entry #{pid} is "
                            f"destroyed with no active reshard op "
                            f"(unroutable range)")
                    continue
                if los is None or pid in protected:
                    continue
                if proclet._status is not ProcletStatus.RUNNING:
                    continue  # gated by an op; ranges settle at cleanup
                if recovery is not None and recovery.restoring(pid):
                    continue
                lo = shard.lo
                want_lo = None if isinstance(lo, _Bottom) else lo
                want_hi = (shards[i + 1].lo if i + 1 < len(shards)
                           else None)
                if proclet.range_lo != want_lo \
                        or proclet.range_hi != want_hi:
                    self._fail(
                        f"{ds.name}/{proclet.name}: enforced range "
                        f"[{proclet.range_lo!r}, {proclet.range_hi!r}) "
                        f"disagrees with the routing table "
                        f"[{want_lo!r}, {want_hi!r})")
        # No orphaned children: a live shard proclet outside its owner's
        # routing table is legal only mid-reshard (ledger-protected).
        for pid, proclet in runtime._proclets.items():
            owner = getattr(proclet, "shard_owner", None)
            if owner is None or id(owner) not in table_pids:
                continue
            if pid in table_pids[id(owner)]:
                continue
            if ledger.protects_child(pid):
                continue
            self._fail(
                f"{owner.name}: live shard {proclet.name} is missing "
                f"from the routing table and no active reshard op "
                f"protects it (orphaned child shard)")

    def __repr__(self) -> str:
        return (f"<InvariantChecker checks={self.checks} "
                f"oracle={'on' if self.oracle else 'off'} "
                f"stride={self.stride}>")
