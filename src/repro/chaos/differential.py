"""Differential fluid-engine checking as a fan-out-able task.

The incremental fluid engine (:mod:`repro.sim.fluid`) is driven through
a seeded random mutation sequence — submissions, cancellations, demand
and priority changes, capacity dips, detach/attach, virtual-time
advances — and compared against the brute-force water-fill oracle
(:mod:`repro.chaos.oracle`) after **every** mutation.

The same :func:`differential_task` backs both the pytest suite
(``tests/chaos/test_differential.py``) and the parallel CI sweep
(``python -m repro chaos --differential 0-219 --jobs N``): it is a
module-level, picklable function of its seed, so ``repro.exec`` can
spread the 220-seed campaign across worker processes.
"""

from __future__ import annotations

import random
from typing import Dict, List

from ..sim import FluidScheduler, Simulator
from .oracle import compare


def mutate(rng, sim, sched, items) -> str:
    """Apply one random mutation; returns a short op label."""
    op = rng.randrange(8)
    live = [it for it in items if it.active]
    if op == 0 or not live:
        items.append(sched.submit(
            work=rng.uniform(0.05, 5.0),
            demand=rng.uniform(0.1, 4.0),
            priority=rng.randrange(3)))
        return "submit"
    if op == 1:
        sched.cancel(rng.choice(live))
        return "cancel"
    if op == 2:
        # Includes deep dips: a chaos fault can degrade a NIC to a
        # sliver of nominal, or machine failure zeroes core capacity.
        sched.set_capacity(rng.choice([0.001, 0.5, 1.0, 2.0, 4.0, 8.0]))
        return "capacity"
    if op == 3:
        sched.set_demand(rng.choice(live), rng.uniform(0.05, 4.0))
        return "demand"
    if op == 4:
        sched.set_priority(rng.choice(live), rng.randrange(3))
        return "priority"
    if op == 5:
        it = rng.choice(live)
        sched.detach(it)
        sched.attach(it)
        return "detach-attach"
    if op == 6:
        items.append(sched.hold(demand=rng.uniform(0.1, 2.0),
                                priority=rng.randrange(3)))
        return "hold"
    sim.run(until=sim.now + rng.uniform(0.001, 0.5))
    return "advance"


def differential_task(seed: int, steps: int = 25) -> Dict:
    """Drive one seeded mutation sequence; compare after every step.

    Returns plain data: the per-step op labels and any divergences
    (stringified), so a clean run is ``{"divergences": []}`` and the
    result hashes canonically for the exec cache.
    """
    rng = random.Random(seed)
    sim = Simulator()
    sched = FluidScheduler(sim, capacity=rng.choice([1.0, 2.0, 4.0]),
                           name=f"diff{seed}")
    items: List = []
    ops: List[str] = []
    divergences: List[str] = []
    for step in range(steps):
        label = mutate(rng, sim, sched, items)
        ops.append(label)
        for d in compare(sched):
            divergences.append(f"step {step} ({label}): {d}")
    return {"seed": int(seed), "steps": int(steps), "ops": ops,
            "divergences": divergences}
