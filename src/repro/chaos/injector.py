"""Executes a :class:`FaultSchedule` against a live runtime, in virtual
time, deterministically.

The injector is a thin dispatch layer: every fault becomes one simulator
callback at its scheduled instant, resolved against the cluster by
machine *name*.  All stochastic behaviour (migration-flakiness coins)
draws from the simulator's named streams, so a chaos run is a pure
function of ``(cluster spec, workload, schedule, seed)``.

Safety rule: a :class:`MachineCrash` that would take down the *last*
live machine is skipped (and counted) — a cluster with zero machines
has no behaviour worth testing, and a random plan should never be able
to wedge the run into that corner.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from .faults import (
    Fault,
    FaultSchedule,
    MachineCrash,
    MachineRestart,
    MemoryPressure,
    MemoryPressureRelease,
    MigrationFlakiness,
    NetworkPartition,
    NicDegrade,
    NicRestore,
    PartitionHeal,
)


class ChaosInjector:
    """Schedules and applies faults against a :class:`NuRuntime`."""

    def __init__(self, runtime, schedule: FaultSchedule):
        self.runtime = runtime
        self.cluster = runtime.cluster
        self.sim = runtime.sim
        self.metrics = runtime.metrics
        self.schedule = schedule
        self.injected: List[Fault] = []
        self.skipped: List[Fault] = []
        self.machines_crashed = 0
        self._crashed_at: Dict[str, float] = {}
        self._listeners: List[Callable[[Fault], None]] = []
        self._flaky_until = -1.0
        self._flaky_probability = 0.0
        self._started = False
        # Open fault-window spans (repro.obs), keyed by window identity
        # so the matching restore/heal fault closes the right one.
        self._windows: Dict[str, object] = {}

    # -- wiring --------------------------------------------------------------
    def on_fault(self, fn: Callable[[Fault], None]) -> None:
        """Call ``fn(fault)`` right after each fault is applied (the
        hook reaction code — pool healers, alert assertions — uses)."""
        self._listeners.append(fn)

    def start(self) -> "ChaosInjector":
        """Arm every fault in the schedule as a simulator callback."""
        if self._started:
            raise RuntimeError("injector already started")
        self._started = True
        for fault in self.schedule:
            self.sim.call_at(fault.at, self._inject, fault)
        return self

    # -- dispatch ------------------------------------------------------------
    def _inject(self, fault: Fault) -> None:
        kind = type(fault).__name__
        if isinstance(fault, MachineCrash):
            machine = self.cluster.machine(fault.machine)
            up = [m for m in self.cluster.machines if m.up]
            if machine.up and len(up) <= 1:
                self.skipped.append(fault)
                self._note(kind, fault, skipped=True)
                return
            self._crashed_at[fault.machine] = self.sim.now
            self.machines_crashed += 1
            self.runtime.fail_machine(machine)
            self._window_begin(f"crash:{fault.machine}",
                               f"crash {fault.machine}",
                               machine=fault.machine)
        elif isinstance(fault, MachineRestart):
            machine = self.cluster.machine(fault.machine)
            self.runtime.restore_machine(machine)
            self._window_end(f"crash:{fault.machine}")
            crashed = self._crashed_at.pop(fault.machine, None)
            if crashed is not None and self.metrics is not None:
                self.metrics.observe("chaos.downtime",
                                     self.sim.now - crashed)
        elif isinstance(fault, NicDegrade):
            machine = self.cluster.machine(fault.machine)
            if machine.up:
                machine.nic.degrade(fault.fraction)
                self._window_begin(f"nic:{fault.machine}",
                                   f"nic-degrade {fault.machine}",
                                   machine=fault.machine,
                                   fraction=fault.fraction)
        elif isinstance(fault, NicRestore):
            machine = self.cluster.machine(fault.machine)
            if machine.up:
                machine.nic.restore()
            self._window_end(f"nic:{fault.machine}")
        elif isinstance(fault, NetworkPartition):
            self.runtime.fabric.partition(self.cluster.machine(fault.a),
                                          self.cluster.machine(fault.b))
            pair = "|".join(sorted((fault.a, fault.b)))
            self._window_begin(f"partition:{pair}", f"partition {pair}",
                               a=fault.a, b=fault.b)
        elif isinstance(fault, PartitionHeal):
            self.runtime.fabric.heal(self.cluster.machine(fault.a),
                                     self.cluster.machine(fault.b))
            pair = "|".join(sorted((fault.a, fault.b)))
            self._window_end(f"partition:{pair}")
        elif isinstance(fault, MemoryPressure):
            machine = self.cluster.machine(fault.machine)
            if machine.up:
                machine.memory.set_ballast(fault.nbytes)
                self._window_begin(f"mem:{fault.machine}",
                                   f"memory-pressure {fault.machine}",
                                   machine=fault.machine,
                                   nbytes=int(fault.nbytes))
        elif isinstance(fault, MemoryPressureRelease):
            machine = self.cluster.machine(fault.machine)
            if machine.up:
                machine.memory.set_ballast(0.0)
            self._window_end(f"mem:{fault.machine}")
        elif isinstance(fault, MigrationFlakiness):
            self._flaky_until = self.sim.now + fault.duration
            self._flaky_probability = fault.probability
            if self.runtime.migration.fault_hook is None:
                self.runtime.migration.fault_hook = self._flaky_coin
            self._window_begin("flaky", "migration-flakiness",
                               probability=fault.probability,
                               duration=fault.duration)
        else:  # pragma: no cover - future fault kinds
            raise TypeError(f"unknown fault: {fault!r}")

        self.injected.append(fault)
        self._note(kind, fault)
        for fn in self._listeners:
            fn(fault)

    # -- fault-window spans ---------------------------------------------------
    def _window_begin(self, key: str, name: str, **args) -> None:
        """Open a fault-window span; a same-key window still open is
        closed first (e.g. flakiness replaced before it expired).  Spans
        are records only — never simulator events — so windows that are
        never healed simply stay open until the tracer finishes."""
        tr = self.sim.tracer
        if tr is None:
            return
        self._window_end(key)
        self._windows[key] = tr.begin("fault", name, track="chaos", **args)

    def _window_end(self, key: str, **args) -> None:
        tr = self.sim.tracer
        span = self._windows.pop(key, None)
        if tr is not None and span is not None:
            tr.end(span, **args)

    def _flaky_coin(self, _proclet, _dst) -> bool:
        if self.sim.now >= self._flaky_until:
            return False
        rng = self.sim.random.stream("chaos.migration")
        return rng.random() < self._flaky_probability

    def _note(self, kind: str, fault: Fault, skipped: bool = False) -> None:
        if self.metrics is not None:
            self.metrics.count("chaos.faults.skipped" if skipped
                               else "chaos.faults")
            if not skipped:
                self.metrics.count(f"chaos.faults.{kind}")
        self.runtime.tracer.emit(
            "chaos", ("skipped " if skipped else "") + fault.describe())

    def __repr__(self) -> str:
        return (f"<ChaosInjector {len(self.injected)}/{len(self.schedule)} "
                f"injected, {len(self.skipped)} skipped>")
