"""Brute-force reference implementation of the fluid water-fill.

The incremental engine in :mod:`repro.sim.fluid` earns its speed with
dirty-flags, persistent priority buckets, and cached aggregates — all
state that can silently rot under churn.  This module recomputes the
rate vector from first principles on every call, with an intentionally
different algorithm (fixed-point freeze iteration instead of the
engine's sorted single pass), and compares the two.  Agreement between
two independent derivations is the differential-testing guarantee the
chaos suite leans on.

Both algorithms compute the same mathematical object — strict priority
across classes, max-min fairness with demand caps within a class — so
they agree up to floating-point summation order.  ``compare`` therefore
takes tolerances; the defaults flag anything beyond a few ulps of a
realistic capacity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

_EPS = 1e-12


def max_min_rates(demands: Sequence[float], capacity: float) -> List[float]:
    """Max-min fair shares of *capacity* with per-item demand caps.

    Fixed-point iteration: repeatedly hand every unfrozen item an equal
    share; items whose demand is below the share are frozen at their
    demand, returning the leftover to the pool.  Terminates in at most
    ``len(demands)`` rounds (every round freezes at least one item or
    finishes).
    """
    n = len(demands)
    rates = [0.0] * n
    active = list(range(n))
    cap = max(0.0, float(capacity))
    while active and cap > _EPS:
        share = cap / len(active)
        constrained = [i for i in active if demands[i] <= share]
        if not constrained:
            for i in active:
                rates[i] = share
            return rates
        for i in constrained:
            rates[i] = demands[i]
            cap -= demands[i]
        cap = max(0.0, cap)
        active = [i for i in active if demands[i] > share]
    return rates


def reference_rates(items: Sequence[Tuple[float, int]],
                    capacity: float) -> List[float]:
    """Rate vector for ``items`` = [(demand, priority), ...].

    Strict priority: each class is water-filled against whatever
    capacity the more urgent classes left over.
    """
    by_prio: Dict[int, List[int]] = {}
    for idx, (_demand, prio) in enumerate(items):
        by_prio.setdefault(prio, []).append(idx)
    rates = [0.0] * len(items)
    remaining = float(capacity)
    for prio in sorted(by_prio):
        group = by_prio[prio]
        group_rates = max_min_rates([items[i][0] for i in group], remaining)
        for i, rate in zip(group, group_rates):
            rates[i] = rate
        remaining = max(0.0, remaining - sum(group_rates))
    return rates


@dataclass(frozen=True)
class Divergence:
    """One item whose engine rate disagrees with the oracle."""

    scheduler: str
    item: str
    engine_rate: float
    oracle_rate: float

    @property
    def error(self) -> float:
        return abs(self.engine_rate - self.oracle_rate)

    def __str__(self) -> str:
        return (f"{self.scheduler}/{self.item}: engine={self.engine_rate!r} "
                f"oracle={self.oracle_rate!r} (err={self.error:.3e})")


def compare(sched, rel_tol: float = 1e-9,
            abs_tol: float = 1e-9) -> List[Divergence]:
    """Diff a live :class:`FluidScheduler` against the oracle.

    Returns the divergences (empty list = perfect agreement).  Reading
    ``item.rate`` flushes any pending coalesced reassignment first, so
    the engine is compared in its settled state.  Also checks the
    cached ``load`` aggregate against the recomputed rate sum — a
    stale cache is a divergence on the synthetic item ``"<load>"``.
    """
    items = sched.items
    oracle = reference_rates([(it.demand, it.priority) for it in items],
                             sched.capacity)
    scale = max(1.0, sched.capacity)
    out: List[Divergence] = []
    for it, want in zip(items, oracle):
        got = it.rate
        if abs(got - want) > max(abs_tol, rel_tol * scale):
            out.append(Divergence(scheduler=sched.name, item=it.name,
                                  engine_rate=got, oracle_rate=want))
    cached_load = sched.load
    if abs(cached_load - sum(oracle)) > max(abs_tol, rel_tol * scale):
        out.append(Divergence(scheduler=sched.name, item="<load>",
                              engine_rate=cached_load,
                              oracle_rate=sum(oracle)))
    return out
