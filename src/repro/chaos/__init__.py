"""Deterministic fault injection ("chaos") for the simulated cluster.

Everything here runs in virtual time and draws randomness only from
seeded named streams, so a chaos run — faults, retries, recoveries and
all — replays bit-for-bit from its seed.  The pieces:

* :mod:`~repro.chaos.faults` — the fault vocabulary, hand-scripted
  :class:`FaultSchedule`\\ s, and seeded :class:`RandomFaultPlan`\\ s;
* :mod:`~repro.chaos.injector` — applies a schedule to a live runtime;
* :mod:`~repro.chaos.invariants` — a DES observer asserting global
  invariants (placement, DRAM conservation, fluid sanity, no stuck
  gates) after every event;
* :mod:`~repro.chaos.oracle` — a brute-force water-fill used as a
  differential-testing reference for the incremental fluid engine;
* :mod:`~repro.chaos.scenario` — a canned workload + faults + checking
  harness behind ``python -m repro chaos``.
"""

from .faults import (
    Fault,
    FaultSchedule,
    MachineCrash,
    MachineRestart,
    MemoryPressure,
    MemoryPressureRelease,
    MigrationFlakiness,
    NetworkPartition,
    NicDegrade,
    NicRestore,
    PartitionHeal,
    RandomFaultPlan,
)
from .differential import differential_task
from .injector import ChaosInjector
from .invariants import InvariantChecker, InvariantViolation
from .oracle import Divergence, compare, max_min_rates, reference_rates
from .scenario import ChaosConfig, ChaosResult, run_chaos, run_chaos_summary

__all__ = [
    "ChaosConfig",
    "ChaosInjector",
    "ChaosResult",
    "Divergence",
    "Fault",
    "FaultSchedule",
    "InvariantChecker",
    "InvariantViolation",
    "MachineCrash",
    "MachineRestart",
    "MemoryPressure",
    "MemoryPressureRelease",
    "MigrationFlakiness",
    "NetworkPartition",
    "NicDegrade",
    "NicRestore",
    "PartitionHeal",
    "RandomFaultPlan",
    "compare",
    "differential_task",
    "max_min_rates",
    "reference_rates",
    "run_chaos",
    "run_chaos_summary",
]
