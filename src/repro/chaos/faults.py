"""The fault model: what can go wrong, and when.

Faults are plain frozen dataclasses naming machines by *name* (not by
object), so a plan is printable, comparable, and independent of any
particular cluster instance — the same :class:`FaultSchedule` can be
replayed against a fresh cluster build, which is exactly what the
determinism tests do.

Two ways to obtain a schedule:

* script it by hand (``FaultSchedule([MachineCrash(at=0.5, machine="m1"),
  ...])``) for targeted regression tests;
* draw it from a :class:`RandomFaultPlan`, which expands a master seed
  into a fully deterministic schedule via the same named-stream
  derivation the simulator uses (:class:`repro.sim.RandomStreams`), so
  plans are replayable bit-for-bit from ``(seed, config)`` alone.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Iterable, List, Sequence, Tuple

from ..sim.rand import RandomStreams


@dataclass(frozen=True)
class Fault:
    """Base class: one injectable event at virtual time ``at``."""

    at: float

    def describe(self) -> str:
        extras = ", ".join(
            f"{f.name}={getattr(self, f.name)!r}"
            for f in fields(self) if f.name != "at"
        )
        return f"{type(self).__name__}({extras})"


@dataclass(frozen=True)
class MachineCrash(Fault):
    """Fail-stop node loss: proclets die, DRAM is wiped, NIC goes dark."""

    machine: str = ""


@dataclass(frozen=True)
class MachineRestart(Fault):
    """A crashed machine rejoins, empty, at full spec capacity."""

    machine: str = ""


@dataclass(frozen=True)
class NicDegrade(Fault):
    """Clamp a machine's TX bandwidth to ``fraction`` of nominal."""

    machine: str = ""
    fraction: float = 0.5


@dataclass(frozen=True)
class NicRestore(Fault):
    """Undo a :class:`NicDegrade`."""

    machine: str = ""


@dataclass(frozen=True)
class NetworkPartition(Fault):
    """Cut bulk connectivity between two machines (both directions)."""

    a: str = ""
    b: str = ""


@dataclass(frozen=True)
class PartitionHeal(Fault):
    """Heal a :class:`NetworkPartition`; stalled transfers resume."""

    a: str = ""
    b: str = ""


@dataclass(frozen=True)
class MemoryPressure(Fault):
    """Pin ``nbytes`` of a machine's DRAM as antagonist ballast
    (clamped to what fits; see :meth:`repro.cluster.Memory.set_ballast`)."""

    machine: str = ""
    nbytes: float = 0.0


@dataclass(frozen=True)
class MemoryPressureRelease(Fault):
    """Drop a machine's ballast back to zero."""

    machine: str = ""


@dataclass(frozen=True)
class MigrationFlakiness(Fault):
    """For ``duration`` seconds, each migration reservation attempt
    fails transiently with probability ``probability`` (exercising the
    engine's retry/backoff path).  Coin flips come from the simulator's
    ``chaos.migration`` stream, so they replay with the run."""

    probability: float = 0.3
    duration: float = 0.1


class FaultSchedule:
    """An immutable, time-ordered list of faults."""

    def __init__(self, faults: Iterable[Fault] = ()):
        self.faults: Tuple[Fault, ...] = tuple(
            sorted(faults, key=lambda f: f.at))
        for f in self.faults:
            if f.at < 0:
                raise ValueError(f"fault scheduled before t=0: {f}")

    def __len__(self) -> int:
        return len(self.faults)

    def __iter__(self):
        return iter(self.faults)

    def __eq__(self, other) -> bool:
        return (isinstance(other, FaultSchedule)
                and other.faults == self.faults)

    def __repr__(self) -> str:
        return f"<FaultSchedule {len(self.faults)} faults>"

    def describe(self) -> str:
        return "\n".join(f"  t={f.at:.4f}s  {f.describe()}"
                         for f in self.faults) or "  (empty)"


@dataclass(frozen=True)
class RandomFaultPlan:
    """Seeded generator of a :class:`FaultSchedule` over ``machines``.

    Expansion is a pure function of the dataclass fields: the plan draws
    from ``RandomStreams(seed)`` named streams only, never from global
    randomness or the wall clock, so ``plan.schedule()`` is replayable.

    Crash/restart pairs are generated per machine: a machine crashes at
    a uniform time in the middle 80% of the horizon and restarts after
    an exponential downtime (mean ``mean_downtime``).  ``ensure_crash``
    guarantees at least one crash even when ``crash_probability`` rolls
    all misses — the acceptance bar for a chaos run is that at least one
    machine actually dies mid-experiment.
    """

    seed: int
    machines: Sequence[str]
    duration: float
    crash_probability: float = 0.5
    mean_downtime: float = 0.2
    nic_degrade_probability: float = 0.4
    min_degrade_fraction: float = 0.2
    partition_probability: float = 0.3
    partition_mean_duration: float = 0.05
    pressure_probability: float = 0.4
    pressure_fraction: float = 0.6
    pressure_mean_duration: float = 0.2
    migration_flakiness: float = 0.25
    ensure_crash: bool = True

    def __post_init__(self):
        if self.duration <= 0:
            raise ValueError(f"duration must be positive: {self.duration}")
        if not self.machines:
            raise ValueError("a fault plan needs at least one machine")
        if not 0.0 <= self.crash_probability <= 1.0:
            raise ValueError("crash_probability must be in [0, 1]")

    def schedule(self, dram_bytes: float = 0.0) -> FaultSchedule:
        """Expand the plan into a concrete schedule.

        ``dram_bytes`` sizes memory-pressure ballast (typically the
        machines' DRAM capacity); with 0 no pressure faults are drawn.
        """
        streams = RandomStreams(self.seed)
        faults: List[Fault] = []
        # Middle 80% of the horizon: faults land mid-experiment, never
        # degenerately at t=0 or after the workload has drained.
        lo, hi = 0.1 * self.duration, 0.9 * self.duration

        crash_rng = streams.stream("chaos.plan.crash")
        crashed: List[str] = []
        for name in self.machines:
            if crash_rng.random() < self.crash_probability:
                crashed.append(name)
        if self.ensure_crash and not crashed and self.crash_probability > 0:
            crashed.append(
                crash_rng.choice(sorted(self.machines)))
        # Never crash every machine at once: keep at least one survivor
        # (the injector additionally enforces this at injection time).
        if len(crashed) >= len(self.machines):
            crashed = crashed[:len(self.machines) - 1]
        for name in crashed:
            t = crash_rng.uniform(lo, hi)
            downtime = crash_rng.expovariate(1.0 / self.mean_downtime)
            faults.append(MachineCrash(at=t, machine=name))
            if t + downtime < self.duration:
                faults.append(MachineRestart(at=t + downtime, machine=name))

        nic_rng = streams.stream("chaos.plan.nic")
        for name in self.machines:
            if nic_rng.random() < self.nic_degrade_probability:
                t = nic_rng.uniform(lo, hi)
                frac = nic_rng.uniform(self.min_degrade_fraction, 0.9)
                hold = nic_rng.expovariate(1.0 / self.partition_mean_duration)
                faults.append(NicDegrade(at=t, machine=name, fraction=frac))
                if t + hold < self.duration:
                    faults.append(NicRestore(at=t + hold, machine=name))

        part_rng = streams.stream("chaos.plan.partition")
        if len(self.machines) >= 2 \
                and part_rng.random() < self.partition_probability:
            a, b = part_rng.sample(sorted(self.machines), 2)
            t = part_rng.uniform(lo, hi)
            hold = part_rng.expovariate(1.0 / self.partition_mean_duration)
            faults.append(NetworkPartition(at=t, a=a, b=b))
            faults.append(PartitionHeal(at=min(t + hold, self.duration),
                                        a=a, b=b))

        mem_rng = streams.stream("chaos.plan.memory")
        if dram_bytes > 0:
            for name in self.machines:
                if mem_rng.random() < self.pressure_probability:
                    t = mem_rng.uniform(lo, hi)
                    nbytes = self.pressure_fraction * dram_bytes
                    hold = mem_rng.expovariate(
                        1.0 / self.pressure_mean_duration)
                    faults.append(MemoryPressure(at=t, machine=name,
                                                 nbytes=nbytes))
                    if t + hold < self.duration:
                        faults.append(
                            MemoryPressureRelease(at=t + hold, machine=name))

        if self.migration_flakiness > 0:
            flaky_rng = streams.stream("chaos.plan.flaky")
            t = flaky_rng.uniform(lo, hi)
            faults.append(MigrationFlakiness(
                at=t, probability=self.migration_flakiness,
                duration=0.2 * self.duration))

        return FaultSchedule(faults)
