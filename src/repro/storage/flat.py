"""Flat storage abstraction (§3.2): aggregate capacity and IOPS.

Modeled on Flat Datacenter Storage [40]: objects are hashed across many
fine-grained storage proclets spread over every machine with a storage
device, so the application sees one namespace whose capacity and IOPS
are the sums of all devices.
"""

from __future__ import annotations

import zlib
from typing import Any, List, Optional

from ..runtime import ProcletRef
from ..sim import Event


class FlatStorage:
    """One flat object namespace over all storage devices."""

    def __init__(self, qs, name: str = "storage",
                 proclets_per_device: int = 4):
        if proclets_per_device < 1:
            raise ValueError("need at least one proclet per device")
        self.qs = qs
        self.name = name
        self.proclets: List[ProcletRef] = []
        machines = qs.placement.storage_machines()
        if not machines:
            raise RuntimeError(
                "flat storage needs at least one machine with a storage "
                "device (MachineSpec.storage)"
            )
        for machine in machines:
            for i in range(proclets_per_device):
                self.proclets.append(
                    qs.spawn_storage(machine,
                                     name=f"{name}.{machine.name}.{i}")
                )

    # -- routing ------------------------------------------------------------
    def _route(self, key: Any) -> ProcletRef:
        digest = zlib.crc32(repr(key).encode())
        return self.proclets[digest % len(self.proclets)]

    # -- object API (§3.1 ReadObject/WriteObject) ------------------------------
    def write(self, key: Any, nbytes: float, value: Any = None,
              ctx=None) -> Event:
        ref = self._route(key)
        if ctx is not None:
            return ctx.call(ref, "sp_write", key, nbytes, value,
                            req_bytes=nbytes)
        return ref.call("sp_write", key, nbytes, value)

    def read(self, key: Any, ctx=None) -> Event:
        ref = self._route(key)
        if ctx is not None:
            return ctx.call(ref, "sp_read", key)
        return ref.call("sp_read", key)

    def delete(self, key: Any, ctx=None) -> Event:
        ref = self._route(key)
        if ctx is not None:
            return ctx.call(ref, "sp_delete", key)
        return ref.call("sp_delete", key)

    def contains(self, key: Any, ctx=None) -> Event:
        ref = self._route(key)
        if ctx is not None:
            return ctx.call(ref, "sp_contains", key)
        return ref.call("sp_contains", key)

    # -- aggregate stats --------------------------------------------------------
    @property
    def total_capacity(self) -> float:
        return sum(m.storage.capacity
                   for m in self.qs.placement.storage_machines())

    @property
    def total_free(self) -> float:
        return sum(m.storage.free
                   for m in self.qs.placement.storage_machines())

    @property
    def aggregate_iops(self) -> float:
        return sum(m.storage.spec.iops
                   for m in self.qs.placement.storage_machines())

    @property
    def object_count(self) -> int:
        return sum(ref.proclet.object_count for ref in self.proclets)

    def destroy(self) -> None:
        for ref in self.proclets:
            self.qs.runtime.destroy(ref)
        self.proclets.clear()

    def __repr__(self) -> str:
        return (f"<FlatStorage {self.name!r} proclets={len(self.proclets)} "
                f"objects={self.object_count}>")
