"""Sharded persistent store: range-sharded objects over storage proclets.

§3.3: "If a shard becomes oversized, Quicksand splits it into two shards
... This technique can also be applied to storage proclets to keep the
desired granularity."  This module is that application: an ordered
persistent map whose shards are storage proclets, split at the
byte-median key when they outgrow ``max_storage_shard_bytes`` and merged
back when deletions leave them sparse.

Unlike DRAM shards, splitting a storage shard moves *persistent* bytes:
the data is read from the source device, shipped over the fabric, and
written to the destination device — all three costs are charged.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Any, Generator, List, Optional, Tuple

from ..cluster import Machine
from ..runtime import Payload, ProcletStatus
from ..runtime.errors import WrongShard
from ..sim import Event
from ..units import GiB, US
from ..core.resource import ResourceKind, ResourceProclet

_OP_CPU = 0.3 * US
_INDEX_BYTES = 64.0


class StoreShardProclet(ResourceProclet):
    """One range shard of the sharded store (a storage-kind proclet)."""

    kind = ResourceKind.STORAGE

    def __init__(self):
        super().__init__()
        self._objects: dict = {}
        self._keys: List[Any] = []
        self.range_lo: Optional[Any] = None
        self.range_hi: Optional[Any] = None

    def _device(self):
        dev = self.machine.storage
        if dev is None:
            raise RuntimeError(
                f"{self.name}: machine {self.machine.name} has no storage"
            )
        return dev

    @property
    def stored_bytes(self) -> float:
        return sum(nbytes for nbytes, _v in self._objects.values())

    @property
    def object_count(self) -> int:
        return len(self._objects)

    def _check_range(self, key) -> None:
        if self.range_lo is not None and key < self.range_lo:
            raise WrongShard(f"{self.name}: {key!r} below range")
        if self.range_hi is not None and not key < self.range_hi:
            raise WrongShard(f"{self.name}: {key!r} beyond range")

    # -- proclet methods ------------------------------------------------------
    def ss_write(self, ctx, key, nbytes: float, value: Any = None):
        yield ctx.cpu(_OP_CPU)
        self._check_range(key)
        device = self._device()
        old = self._objects.get(key)
        if old is not None:
            device.release(old[0])
            self.heap_free(_INDEX_BYTES)
        else:
            bisect.insort(self._keys, key)
        device.reserve(nbytes)
        ctx.alloc(_INDEX_BYTES)
        yield from device.write(nbytes, priority=int(ctx.priority))
        self._objects[key] = (float(nbytes), value)
        if self.shard_owner is not None:
            self.shard_owner._note_size_change(self)
        return old is None

    def ss_read(self, ctx, key):
        yield ctx.cpu(_OP_CPU)
        self._check_range(key)
        entry = self._objects.get(key)
        if entry is None:
            raise KeyError(f"{self.name}: no object {key!r}")
        nbytes, value = entry
        yield from self._device().read(nbytes, priority=int(ctx.priority))
        return Payload(value, nbytes=nbytes)

    def ss_delete(self, ctx, key):
        yield ctx.cpu(_OP_CPU)
        self._check_range(key)
        entry = self._objects.pop(key, None)
        if entry is None:
            raise KeyError(f"{self.name}: no object {key!r}")
        self._keys.remove(key)
        self._device().release(entry[0])
        self.heap_free(_INDEX_BYTES)
        if self.shard_owner is not None:
            self.shard_owner._note_size_change(self)
        return entry[0]

    # -- split/merge primitives ------------------------------------------------
    def split_point(self) -> Any:
        if len(self._keys) < 2:
            raise ValueError(f"{self.name}: too small to split")
        target = self.stored_bytes / 2.0
        acc = 0.0
        for idx, key in enumerate(self._keys):
            acc += self._objects[key][0]
            if acc >= target:
                return self._keys[min(idx + 1, len(self._keys) - 1)]
        return self._keys[-1]

    def extract_upper(self, split_key) -> Tuple[List[Tuple[Any, float, Any]],
                                                float]:
        """Remove objects >= split_key; device bytes are released here,
        the caller installs them at the destination."""
        idx = bisect.bisect_left(self._keys, split_key)
        moved_keys = self._keys[idx:]
        del self._keys[idx:]
        items = []
        total = 0.0
        for key in moved_keys:
            nbytes, value = self._objects.pop(key)
            items.append((key, nbytes, value))
            total += nbytes
        if items:
            self._device().release(total)
            self.heap_free(_INDEX_BYTES * len(items))
        return items, total

    def extract_all(self):
        if not self._keys:
            return [], 0.0
        return self.extract_upper(self._keys[0])

    def install(self, items: List[Tuple[Any, float, Any]]) -> None:
        total = sum(nbytes for _k, nbytes, _v in items)
        if items:
            self._device().reserve(total)
            self.heap_alloc(_INDEX_BYTES * len(items))
        for key, nbytes, value in items:
            bisect.insort(self._keys, key)
            self._objects[key] = (nbytes, value)


@dataclass
class _StoreShard:
    lo: Any  # None = -inf
    ref: Any

    @property
    def proclet(self) -> StoreShardProclet:
        return self.ref.proclet


class ShardedStore:
    """Ordered persistent map over storage-proclet shards."""

    def __init__(self, qs, name: str = "store",
                 max_shard_bytes: float = 1 * GiB,
                 min_shard_bytes: float = 64 * 2**20,
                 initial_machine: Optional[Machine] = None):
        if max_shard_bytes <= min_shard_bytes:
            raise ValueError("max_shard_bytes must exceed min_shard_bytes")
        self.qs = qs
        self.name = name
        self.max_shard_bytes = max_shard_bytes
        self.min_shard_bytes = min_shard_bytes
        self.shards: List[_StoreShard] = []
        self.splits = 0
        self.merges = 0
        self._busy = False
        first = self._spawn_shard(None, initial_machine)
        self.shards.append(first)

    def _spawn_shard(self, lo, machine: Optional[Machine] = None):
        proclet = StoreShardProclet()
        proclet.shard_owner = self
        if machine is None:
            machine = self.qs.placement.best_for_storage(0.0)
        if machine is None:
            raise RuntimeError(
                f"{self.name}: no machine with a storage device"
            )
        ref = self.qs.runtime.spawn(proclet, machine,
                                    name=f"{self.name}.shard@{lo!r}")
        return _StoreShard(lo=lo, ref=ref)

    # -- routing -------------------------------------------------------------
    def _index_for(self, key) -> int:
        idx = 0
        for i, shard in enumerate(self.shards):
            if shard.lo is None or shard.lo <= key:
                idx = i
            else:
                break
        return idx

    def route(self, key):
        return self.shards[self._index_for(key)].ref

    def _refresh_ranges(self) -> None:
        for i, shard in enumerate(self.shards):
            p = self.qs.runtime._proclets.get(shard.ref.proclet_id)
            if p is None:
                continue
            p.range_lo = shard.lo
            p.range_hi = (self.shards[i + 1].lo
                          if i + 1 < len(self.shards) else None)

    # -- API ---------------------------------------------------------------------
    def _call(self, key, method, *args, ctx=None,
              req_bytes: float = 0.0) -> Event:
        from ..runtime import DeadProclet

        def attempt():
            last = None
            for _try in range(8):
                ref = self.route(key)
                ev = (ctx.call(ref, method, *args, req_bytes=req_bytes)
                      if ctx is not None
                      else ref.call(method, *args, req_bytes=req_bytes))
                try:
                    return (yield ev)
                except (DeadProclet, WrongShard) as exc:
                    last = exc
            raise last

        return self.qs.sim.process(attempt(), name=f"{self.name}.{method}")

    def write(self, key, nbytes: float, value: Any = None,
              ctx=None) -> Event:
        return self._call(key, "ss_write", key, nbytes, value, ctx=ctx,
                          req_bytes=nbytes)

    def read(self, key, ctx=None) -> Event:
        return self._call(key, "ss_read", key, ctx=ctx)

    def delete(self, key, ctx=None) -> Event:
        return self._call(key, "ss_delete", key, ctx=ctx)

    @property
    def shard_count(self) -> int:
        return len(self.shards)

    @property
    def total_bytes(self) -> float:
        return sum(s.proclet.stored_bytes for s in self.shards)

    @property
    def total_objects(self) -> int:
        return sum(s.proclet.object_count for s in self.shards)

    def shard_machines(self):
        return [s.ref.machine for s in self.shards]

    # -- adaptive split/merge (§3.3 applied to storage) ---------------------------
    def _note_size_change(self, proclet: StoreShardProclet) -> None:
        if self._busy:
            return
        if proclet.stored_bytes > self.max_shard_bytes:
            self._busy = True
            self.qs.sim.call_in(0.0, self._start_split, proclet)
        elif (proclet.stored_bytes < self.min_shard_bytes
              and len(self.shards) > 1):
            self._busy = True
            self.qs.sim.call_in(0.0, self._start_merge, proclet)

    def _shard_of(self, proclet) -> Optional[_StoreShard]:
        for shard in self.shards:
            if shard.ref.proclet_id == proclet.id:
                return shard
        return None

    def _start_split(self, proclet) -> None:
        ev = self.qs.sim.process(self._split_proc(proclet),
                                 name=f"{self.name}.split")
        ev.subscribe(lambda e: self._op_done(e))

    def _start_merge(self, proclet) -> None:
        ev = self.qs.sim.process(self._merge_proc(proclet),
                                 name=f"{self.name}.merge")
        ev.subscribe(lambda e: self._op_done(e))

    def _op_done(self, event) -> None:
        self._busy = False
        if not event.ok:
            raise event.value

    def _split_proc(self, src: StoreShardProclet) -> Generator:
        shard = self._shard_of(src)
        if (shard is None or src.status is not ProcletStatus.RUNNING
                or src.object_count < 2):
            return None
        gate = self.qs._block(src)
        yield self.qs.sim.timeout(self.qs.config.split_overhead)
        split_key = src.split_point()
        # Pick a destination device with room for the upper half.
        upper_estimate = src.stored_bytes / 2.0
        dst = self.qs.placement.best_for_storage(upper_estimate)
        if dst is None:
            self.qs._unblock(src, gate)
            return None
        items, nbytes = src.extract_upper(split_key)
        new_shard = self._spawn_shard(split_key, dst)
        # Persistent split = device read + fabric transfer + device write.
        if nbytes > 0:
            yield self.qs.sim.process(
                src.machine.storage.read(nbytes), name="split-read")
            if dst is not src.machine:
                yield self.qs.cluster.fabric.transfer(
                    src.machine, dst, nbytes, name=f"{self.name}.split")
            yield self.qs.sim.process(
                dst.storage.write(nbytes), name="split-write")
        new_shard.proclet.install(items)
        idx = self.shards.index(shard)
        self.shards.insert(idx + 1, new_shard)
        self._refresh_ranges()
        self.qs._unblock(src, gate)
        self.splits += 1
        return new_shard.ref

    def _merge_proc(self, src: StoreShardProclet) -> Generator:
        shard = self._shard_of(src)
        if (shard is None or len(self.shards) < 2
                or src.status is not ProcletStatus.RUNNING):
            return None
        idx = self.shards.index(shard)
        partner = self.shards[idx - 1] if idx > 0 else self.shards[1]
        dst_p = partner.proclet
        if dst_p.status is not ProcletStatus.RUNNING:
            return None
        if (dst_p.stored_bytes + src.stored_bytes
                > 0.7 * self.max_shard_bytes):
            return None
        if dst_p.machine.storage.free < src.stored_bytes:
            return None
        gate = self.qs._block(src)
        yield self.qs.sim.timeout(self.qs.config.split_overhead)
        items, nbytes = src.extract_all()
        if nbytes > 0:
            yield self.qs.sim.process(
                src.machine.storage.read(nbytes), name="merge-read")
            if dst_p.machine is not src.machine:
                yield self.qs.cluster.fabric.transfer(
                    src.machine, dst_p.machine, nbytes,
                    name=f"{self.name}.merge")
            yield self.qs.sim.process(
                dst_p.machine.storage.write(nbytes), name="merge-write")
        dst_p.install(items)
        self.qs._unblock(src, gate)
        # The survivor absorbs the merged range.
        if idx > 0:
            pass  # partner keeps its lo; src's range folds upward into it
        else:
            partner.lo = shard.lo
        self.shards.remove(shard)
        self._refresh_ranges()
        self.qs.runtime.destroy(shard.ref)
        self.merges += 1
        return True

    def destroy(self) -> None:
        for shard in list(self.shards):
            proclet = shard.proclet
            # Release the device capacity the shard's objects hold; the
            # runtime's destroy only knows about DRAM footprints.
            if proclet.stored_bytes > 0:
                proclet._device().release(proclet.stored_bytes)
            self.qs.runtime.destroy(shard.ref)
        self.shards.clear()

    def __repr__(self) -> str:
        return (f"<ShardedStore {self.name!r} shards={len(self.shards)} "
                f"bytes={self.total_bytes:.0f}>")
