"""Storage abstractions over storage proclets: flat namespace (§3.2)
and range-sharded persistent store with §3.3 split/merge."""

from .flat import FlatStorage
from .sharded import ShardedStore, StoreShardProclet

__all__ = ["FlatStorage", "ShardedStore", "StoreShardProclet"]
