"""Command-line entry point: ``python -m repro <experiment> [options]``.

Runs any of the paper's experiments or the ablation suite with
adjustable parameters, printing the same paper-comparable report the
benchmark harness records.
"""

from __future__ import annotations

import argparse
import sys

from .apps.dnn import DatasetSpec
from .units import MiB


def _cmd_fig1(args) -> int:
    from .experiments import fig1_filler

    config = fig1_filler.Fig1Config(duration=args.duration,
                                    seed=args.seed)
    fungible = fig1_filler.run_fig1(config)
    static = fig1_filler.run_fig1(
        fig1_filler.Fig1Config(duration=args.duration, seed=args.seed,
                               fungible=False))
    print(fig1_filler.report(fungible, static))
    return 0


def _cmd_fig2(args) -> int:
    from .experiments import fig2_imbalance

    if args.full_scale:
        dataset = DatasetSpec()
    else:
        dataset = DatasetSpec(count=args.images, mean_bytes=1 * MiB,
                              mean_cpu=0.1)
    rows = fig2_imbalance.run_fig2(dataset=dataset, seed=args.seed)
    print(fig2_imbalance.report(rows))
    return 0


def _cmd_fig3(args) -> int:
    from .experiments import fig3_gpu_adapt

    config = fig3_gpu_adapt.Fig3Config(duration=args.duration,
                                       seed=args.seed)
    print(fig3_gpu_adapt.report(fig3_gpu_adapt.run_fig3(config)))
    return 0


def _cmd_ablations(args) -> int:
    from .experiments import ablations

    results, report = ablations.run_ablation_grid(
        jobs=args.jobs, cache=args.cache_dir)
    print(ablations.format_report(results))
    print(report.summary())
    return _check_budget(report.wall_s, args.budget)


def _parse_seeds(text: str):
    """Parse ``"1-5"`` / ``"0,3,7"`` / ``"4"`` into a seed list."""
    seeds = []
    for part in text.split(","):
        part = part.strip()
        if "-" in part[1:]:  # allow negative singletons
            lo, hi = part.split("-", 1)
            seeds.extend(range(int(lo), int(hi) + 1))
        else:
            seeds.append(int(part))
    return seeds


def _check_budget(wall_s: float, budget) -> int:
    """Enforce ``--budget SECONDS`` on the exec phase (0 = off)."""
    if budget and wall_s > budget:
        print(f"WALL-CLOCK BUDGET EXCEEDED: {wall_s:.1f}s > "
              f"{budget:.1f}s budget")
        return 1
    return 0


def _cmd_sweep(args) -> int:
    from .experiments import sweep_burst
    from .exec import results_digest

    points, report = sweep_burst.run_sweep_exec(
        seed=args.seed, jobs=args.jobs, cache=args.cache_dir)
    print(sweep_burst.report(points))
    print(report.summary())
    print(f"sweep digest: {results_digest(report.values())}")
    return _check_budget(report.wall_s, args.budget)


def _cmd_chaos(args) -> int:
    """Seeded chaos scenarios: one detailed run, a parallel seed grid,
    or the parallel differential-oracle campaign."""
    from .chaos import ChaosConfig, run_chaos

    if args.differential:
        return _chaos_differential(args)
    if args.seeds:
        return _chaos_grid(args)

    config = ChaosConfig(seed=args.seed, machines=args.machines,
                         duration=args.duration, oracle=args.oracle,
                         invariant_stride=args.stride,
                         recovery_policy=args.recovery,
                         autoscale=args.autoscale)
    result = run_chaos(config)
    print(result.report())
    if args.check_determinism:
        replay = run_chaos(config)
        if replay.digest() != result.digest():
            print("DETERMINISM FAILURE: replay digest "
                  f"{replay.digest()} != {result.digest()}")
            return 1
        print(f"replay digest matches ({result.digest()[:16]}...): "
              "run is deterministic")
    return 0


def _chaos_grid(args) -> int:
    """Fan a grid of chaos seeds out through repro.exec."""
    from .chaos import run_chaos_summary
    from .exec import RunSpec, run_specs

    seeds = _parse_seeds(args.seeds)
    specs = [
        RunSpec(run_chaos_summary,
                {"seed": seed, "machines": args.machines,
                 "duration": args.duration, "oracle": args.oracle,
                 "invariant_stride": args.stride,
                 "recovery_policy": args.recovery,
                 "autoscale": args.autoscale},
                name=f"chaos.seed={seed}"
                     + (f".rec={args.recovery}" if args.recovery else "")
                     + (".autoscale" if args.autoscale else ""))
        for seed in seeds
    ]
    report = run_specs(specs, jobs=args.jobs, cache=args.cache_dir)
    for row in report.values():
        print(f"seed {row['seed']:>4d}: digest {row['digest'][:16]}... "
              f"faults={row['injected']} crashes={row['machines_crashed']} "
              f"tasks={row['tasks_done']} checks={row['invariant_checks']}")
    print(report.summary())
    wall = report.wall_s
    if args.check_determinism:
        # Replay the whole grid fresh (no cache — a cached replay would
        # compare a result with itself) and require identical digests.
        replay = run_specs(specs, jobs=args.jobs, cache=None)
        wall += replay.wall_s
        if replay.digest() != report.digest():
            for a, b in zip(report.values(), replay.values()):
                if a != b:
                    print(f"DETERMINISM FAILURE: seed {a['seed']} "
                          f"digest {a['digest']} != {b['digest']}")
            return 1
        print(f"replay grid digest matches ({report.digest()[:16]}...): "
              f"{len(seeds)} seeds deterministic")
    return _check_budget(wall, args.budget)


def _chaos_differential(args) -> int:
    """Fan the fluid-vs-oracle differential seeds out through repro.exec."""
    from .chaos import differential_task
    from .exec import RunSpec, run_specs

    seeds = _parse_seeds(args.differential)
    specs = [RunSpec(differential_task, {"seed": seed, "steps": args.steps},
                     name=f"chaos.diff.seed={seed}")
             for seed in seeds]
    report = run_specs(specs, jobs=args.jobs, cache=args.cache_dir)
    bad = [row for row in report.values() if row["divergences"]]
    for row in bad:
        print(f"seed {row['seed']}: ENGINE/ORACLE DIVERGENCE")
        for line in row["divergences"]:
            print(f"  {line}")
    print(report.summary())
    print(f"differential: {len(seeds) - len(bad)}/{len(seeds)} seeds "
          f"agree with the oracle")
    if bad:
        return 1
    return _check_budget(report.wall_s, args.budget)


def _cmd_cloning(args) -> int:
    """Cloning grid vs the closed-form PS oracle (CI's second
    differential suite)."""
    from .experiments import cloning

    seeds = _parse_seeds(args.seeds)
    cells, report = cloning.run_cloning_exec(
        seeds=seeds, seed=args.seed, duration=args.duration,
        jobs=args.jobs, cache=args.cache_dir)
    print(cloning.report(cells))
    print(report.summary())
    digest = cloning.cells_digest(cells)
    print(f"cloning digest: {digest}")
    wall = report.wall_s
    if args.check_determinism:
        # Replay the whole grid fresh (no cache) and require identical
        # cell digests — serial-vs-parallel equivalence is CI's job.
        _cells2, replay = cloning.run_cloning_exec(
            seeds=seeds, seed=args.seed, duration=args.duration,
            jobs=args.jobs, cache=None)
        wall += replay.wall_s
        if replay.digest() != report.digest():
            print(f"DETERMINISM FAILURE: replay digest "
                  f"{replay.digest()} != {report.digest()}")
            return 1
        print(f"replay grid digest matches ({report.digest()[:16]}...): "
              f"{len(cells)} cells deterministic")
    divergences = cloning.differential(cells)
    if divergences:
        for d in divergences:
            print(f"ORACLE DIVERGENCE: {d}")
        return 1
    return _check_budget(wall, args.budget)


def _cmd_serving(args) -> int:
    """Multi-tenant serving grid: fungible Quicksand vs static VM
    carve-up, with the goodput-ratio gate CI pins."""
    from .experiments import serving

    seeds = _parse_seeds(args.seeds)
    cells, report = serving.run_serving_exec(
        seeds=seeds, seed=args.seed, machines=args.machines,
        n_tenants=args.tenants, duration=args.duration,
        jobs=args.jobs, cache=args.cache_dir)
    print(serving.report(cells))
    print(report.summary())
    digest = serving.cells_digest(cells)
    print(f"serving digest: {digest}")
    wall = report.wall_s
    if args.check_determinism:
        # Replay the whole grid fresh (no cache) and require identical
        # cell digests — serial-vs-parallel equivalence is CI's job.
        _cells2, replay = serving.run_serving_exec(
            seeds=seeds, seed=args.seed, machines=args.machines,
            n_tenants=args.tenants, duration=args.duration,
            jobs=args.jobs, cache=None)
        wall += replay.wall_s
        if replay.digest() != report.digest():
            print(f"DETERMINISM FAILURE: replay digest "
                  f"{replay.digest()} != {report.digest()}")
            return 1
        print(f"replay grid digest matches ({report.digest()[:16]}...): "
              f"{len(cells)} cells deterministic")
    starved = [v for cell in cells for v in cell["starvation_violations"]]
    if starved:
        for v in starved:
            print(f"STARVATION VIOLATION: {v}")
        return 1
    if args.min_ratio > 0:
        ratio = serving.goodput_ratio(cells)
        if ratio < args.min_ratio:
            print(f"GOODPUT RATIO GATE FAILED: {ratio:.3f} < "
                  f"{args.min_ratio:g}")
            return 1
        print(f"goodput ratio gate passed: {ratio:.3f} >= "
              f"{args.min_ratio:g}")
    return _check_budget(wall, args.budget)


def _cmd_autoscale(args) -> int:
    """Hand-tuned controller vs ShardAutoscaler parity, plus the
    autoscaled chaos fault grid."""
    from .experiments import autoscale

    rows = autoscale.run_autoscale_fig2(seed=args.seed)
    grid = None
    wall = 0.0
    if not args.no_grid:
        seeds = _parse_seeds(args.seeds)
        grid, exec_report = autoscale.run_autoscale_grid(
            seeds=seeds, duration=args.duration,
            jobs=args.jobs, cache=args.cache_dir)
        wall = exec_report.wall_s
        print(autoscale.report(rows, grid))
        print(exec_report.summary())
    else:
        print(autoscale.report(rows))
    if args.max_ratio > 0:
        worst = max(r.ratio for r in rows)
        if worst > args.max_ratio:
            print(f"PARITY GATE FAILED: worst ratio {worst:.3f} > "
                  f"{args.max_ratio:g}")
            return 1
        print(f"parity gate passed: worst ratio {worst:.3f} <= "
              f"{args.max_ratio:g}")
    return _check_budget(wall, args.budget)


def _cmd_recovery(args) -> int:
    """Kill-mid-run experiment: full policy ablation or one policy."""
    from .experiments import recovery

    if args.policy is not None:
        rows = [recovery.run_recovery_fig2(policy=None, kill_at=None,
                                           seed=args.seed),
                recovery.run_recovery_fig2(policy=args.policy,
                                           kill_at=args.kill_at,
                                           seed=args.seed)]
    else:
        rows = recovery.run_recovery_ablation(seed=args.seed,
                                              kill_at=args.kill_at)
    print(recovery.report(rows))
    return 0


def _cmd_trace(args) -> int:
    """Run one experiment under span capture; export trace + profile."""
    import json

    from .experiments.tracedrun import run_traced

    run = run_traced(args.experiment, seed=args.seed)
    digest = run.digest()
    if args.check_determinism:
        replay = run_traced(args.experiment, seed=args.seed)
        if replay.digest() != digest:
            print("DETERMINISM FAILURE: replay digest "
                  f"{replay.digest()} != {digest}")
            return 1
        print(f"replay digest matches ({digest[:16]}...): "
              "trace is deterministic")
    if args.out:
        with open(args.out, "w") as f:
            json.dump(run.chrome(), f, indent=1)
            f.write("\n")
        with open(args.out + ".digest", "w") as f:
            f.write(digest + "\n")
        print(f"[chrome trace written to {args.out}; "
              f"digest to {args.out}.digest]")
    if not args.no_profile:
        print(run.profile(top=args.top))
    print(f"{run.span_count()} spans across "
          f"{len(run.spans.tracers)} simulator(s)")
    print(f"trace digest: {digest}")
    return 0


def _cmd_all(args) -> int:
    """Regenerate every figure and ablation; optionally write a file."""
    from .experiments import ablations, fig1_filler, fig2_imbalance
    from .experiments import fig3_gpu_adapt

    sections = []
    fungible, static = fig1_filler.run_fig1_both()
    sections.append(fig1_filler.report(fungible, static))
    dataset = (DatasetSpec() if args.full_scale
               else DatasetSpec(count=1200, mean_bytes=1 * MiB,
                                mean_cpu=0.1))
    sections.append(fig2_imbalance.report(
        fig2_imbalance.run_fig2(dataset=dataset)))
    sections.append(fig3_gpu_adapt.report(fig3_gpu_adapt.run_fig3()))
    sections.append(ablations.report_all())
    text = ("\n\n" + "=" * 72 + "\n\n").join(sections)
    print(text)
    if args.out:
        with open(args.out, "w") as f:
            f.write(text + "\n")
        print(f"\n[report written to {args.out}]")
    return 0


def _add_exec_args(parser) -> None:
    """Shared repro.exec knobs for commands that fan out run grids."""
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for independent runs "
                             "(1 = serial; results are identical)")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="content-addressed result cache; re-runs "
                             "of unchanged grids are served from disk")
    parser.add_argument("--budget", type=float, default=0.0,
                        metavar="SECONDS",
                        help="fail if the run-execution phase exceeds "
                             "this wall-clock budget (0 = no budget)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Quicksand (HotOS '23) reproduction experiments",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p1 = sub.add_parser("fig1", help="filler migration experiment")
    p1.add_argument("--duration", type=float, default=0.2,
                    help="measured window in virtual seconds")
    p1.add_argument("--seed", type=int, default=0)
    p1.set_defaults(fn=_cmd_fig1)

    p2 = sub.add_parser("fig2", help="imbalanced-machines table")
    p2.add_argument("--images", type=int, default=1200,
                    help="dataset size (default: 10x-reduced scale)")
    p2.add_argument("--full-scale", action="store_true",
                    help="use the paper's 12000-image scale")
    p2.add_argument("--seed", type=int, default=0)
    p2.set_defaults(fn=_cmd_fig2)

    p3 = sub.add_parser("fig3", help="GPU-adaptation experiment")
    p3.add_argument("--duration", type=float, default=1.6)
    p3.add_argument("--seed", type=int, default=0)
    p3.set_defaults(fn=_cmd_fig3)

    pa = sub.add_parser("ablations", help="run all DESIGN.md ablations")
    _add_exec_args(pa)
    pa.set_defaults(fn=_cmd_ablations)

    ps = sub.add_parser("sweep",
                        help="EXT-SWEEP: fungibility gain vs burst period")
    ps.add_argument("--seed", type=int, default=0)
    _add_exec_args(ps)
    ps.set_defaults(fn=_cmd_sweep)

    pc = sub.add_parser(
        "chaos",
        help="seeded fault-injection run with invariant checking")
    pc.add_argument("--seed", type=int, default=42)
    pc.add_argument("--seeds", default=None,
                    help="seed grid (e.g. '1-5' or '1,3,9') fanned out "
                         "through repro.exec")
    pc.add_argument("--differential", default=None, metavar="SEEDS",
                    help="run the fluid-vs-oracle differential campaign "
                         "over this seed range instead of full scenarios")
    pc.add_argument("--steps", type=int, default=25,
                    help="mutations per differential seed")
    pc.add_argument("--machines", type=int, default=4)
    pc.add_argument("--duration", type=float, default=2.0)
    pc.add_argument("--oracle", action="store_true",
                    help="also diff every fluid scheduler against the "
                         "brute-force water-fill oracle (slow)")
    pc.add_argument("--stride", type=int, default=1,
                    help="check invariants every N-th event")
    pc.add_argument("--check-determinism", action="store_true",
                    help="run the scenario twice and require identical "
                         "digests")
    pc.add_argument("--recovery", default=None,
                    choices=["none", "restart", "checkpoint", "replicate",
                             "lineage"],
                    help="run under the repro.ft recovery subsystem with "
                         "this policy on the map shards (default: legacy "
                         "application-level healing, byte-identical to "
                         "previous releases)")
    pc.add_argument("--autoscale", action="store_true",
                    help="replace the legacy size controller with the "
                         "ShardAutoscaler and add a range-sharded map "
                         "under routed churn (exercises the two-phase "
                         "reshard protocol under faults)")
    _add_exec_args(pc)
    pc.set_defaults(fn=_cmd_chaos)

    pcl = sub.add_parser(
        "cloning",
        help="request-cloning grid differentially compared against the "
             "closed-form PS oracle")
    pcl.add_argument("--seed", type=int, default=0,
                     help="master seed mixed into every cell's stream")
    pcl.add_argument("--seeds", default="0",
                     help="replication seeds per grid cell "
                          "(e.g. '0-2' or '0,5')")
    pcl.add_argument("--duration", type=float, default=6.0,
                     help="virtual seconds per cell")
    pcl.add_argument("--check-determinism", action="store_true",
                     help="replay the grid uncached and require "
                          "identical digests")
    _add_exec_args(pcl)
    pcl.set_defaults(fn=_cmd_cloning)

    psv = sub.add_parser(
        "serving",
        help="multi-tenant serving grid: fungible vs static carve-up "
             "with SLO goodput gates")
    psv.add_argument("--seed", type=int, default=0,
                     help="master seed mixed into every cell's stream")
    psv.add_argument("--seeds", default="0-2",
                     help="replication seeds (e.g. '0-2' or '0,5')")
    psv.add_argument("--machines", type=int, default=24,
                     help="cluster size (2-core machines)")
    psv.add_argument("--tenants", type=int, default=8,
                     help="tenant count (staggered diurnal phases)")
    psv.add_argument("--duration", type=float, default=2.0,
                     help="virtual seconds per cell")
    psv.add_argument("--min-ratio", type=float, default=0.0,
                     help="fail unless fungible/static goodput ratio "
                          "meets this floor (0 = report only)")
    psv.add_argument("--check-determinism", action="store_true",
                     help="replay the grid uncached and require "
                          "identical digests")
    _add_exec_args(psv)
    psv.set_defaults(fn=_cmd_serving)

    pas = sub.add_parser(
        "autoscale",
        help="hand-tuned controller vs ShardAutoscaler parity + "
             "autoscaled chaos fault grid")
    pas.add_argument("--seed", type=int, default=0)
    pas.add_argument("--seeds", default="1-3",
                     help="chaos grid seeds (e.g. '1-5' or '1,3,9')")
    pas.add_argument("--duration", type=float, default=0.4,
                     help="virtual seconds per chaos grid cell")
    pas.add_argument("--no-grid", action="store_true",
                     help="skip the chaos fault grid (parity table only)")
    pas.add_argument("--max-ratio", type=float, default=0.0,
                     help="fail if any autoscaled/hand-tuned completion "
                          "ratio exceeds this ceiling (0 = report only)")
    _add_exec_args(pas)
    pas.set_defaults(fn=_cmd_autoscale)

    pr = sub.add_parser(
        "recovery",
        help="kill-a-machine-mid-Fig.2 experiment and recovery-policy "
             "ablation")
    pr.add_argument("--seed", type=int, default=0)
    pr.add_argument("--kill-at", type=float, default=0.4,
                    help="virtual seconds after preprocessing starts")
    pr.add_argument("--policy", default=None,
                    choices=["none", "restart", "checkpoint", "replicate",
                             "lineage"],
                    help="run a single policy instead of the full "
                         "ablation (baseline is always included)")
    pr.set_defaults(fn=_cmd_recovery)

    pt = sub.add_parser(
        "trace",
        help="run an experiment with span tracing; export Chrome "
             "trace_event JSON + virtual-time profile")
    pt.add_argument("experiment",
                    choices=["fig1", "fig2", "fig3", "chaos"],
                    help="experiment to run at trace scale")
    pt.add_argument("--out", default=None,
                    help="write Perfetto-loadable JSON here "
                         "(plus <out>.digest)")
    pt.add_argument("--seed", type=int, default=0)
    pt.add_argument("--top", type=int, default=8,
                    help="profile lines shown per track")
    pt.add_argument("--no-profile", action="store_true",
                    help="skip the text profile")
    pt.add_argument("--check-determinism", action="store_true",
                    help="run twice and require identical trace digests")
    pt.set_defaults(fn=_cmd_trace)

    pall = sub.add_parser("all", help="regenerate every figure + ablation")
    pall.add_argument("--out", default=None,
                      help="also write the report to this file")
    pall.add_argument("--full-scale", action="store_true")
    pall.set_defaults(fn=_cmd_all)

    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
