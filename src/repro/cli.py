"""Command-line entry point: ``python -m repro <experiment> [options]``.

Runs any of the paper's experiments or the ablation suite with
adjustable parameters, printing the same paper-comparable report the
benchmark harness records.
"""

from __future__ import annotations

import argparse
import sys

from .apps.dnn import DatasetSpec
from .units import MiB


def _cmd_fig1(args) -> int:
    from .experiments import fig1_filler

    config = fig1_filler.Fig1Config(duration=args.duration,
                                    seed=args.seed)
    fungible = fig1_filler.run_fig1(config)
    static = fig1_filler.run_fig1(
        fig1_filler.Fig1Config(duration=args.duration, seed=args.seed,
                               fungible=False))
    print(fig1_filler.report(fungible, static))
    return 0


def _cmd_fig2(args) -> int:
    from .experiments import fig2_imbalance

    if args.full_scale:
        dataset = DatasetSpec()
    else:
        dataset = DatasetSpec(count=args.images, mean_bytes=1 * MiB,
                              mean_cpu=0.1)
    rows = fig2_imbalance.run_fig2(dataset=dataset, seed=args.seed)
    print(fig2_imbalance.report(rows))
    return 0


def _cmd_fig3(args) -> int:
    from .experiments import fig3_gpu_adapt

    config = fig3_gpu_adapt.Fig3Config(duration=args.duration,
                                       seed=args.seed)
    print(fig3_gpu_adapt.report(fig3_gpu_adapt.run_fig3(config)))
    return 0


def _cmd_ablations(args) -> int:
    from .experiments import ablations

    print(ablations.report_all())
    return 0


def _cmd_sweep(args) -> int:
    from .experiments import sweep_burst

    print(sweep_burst.report(sweep_burst.run_sweep()))
    return 0


def _cmd_chaos(args) -> int:
    """Run one seeded chaos scenario (optionally twice, diffing digests)."""
    from .chaos import ChaosConfig, run_chaos

    config = ChaosConfig(seed=args.seed, machines=args.machines,
                         duration=args.duration, oracle=args.oracle,
                         invariant_stride=args.stride)
    result = run_chaos(config)
    print(result.report())
    if args.check_determinism:
        replay = run_chaos(config)
        if replay.digest() != result.digest():
            print("DETERMINISM FAILURE: replay digest "
                  f"{replay.digest()} != {result.digest()}")
            return 1
        print(f"replay digest matches ({result.digest()[:16]}...): "
              "run is deterministic")
    return 0


def _cmd_trace(args) -> int:
    """Run one experiment under span capture; export trace + profile."""
    import json

    from .experiments.tracedrun import run_traced

    run = run_traced(args.experiment, seed=args.seed)
    digest = run.digest()
    if args.check_determinism:
        replay = run_traced(args.experiment, seed=args.seed)
        if replay.digest() != digest:
            print("DETERMINISM FAILURE: replay digest "
                  f"{replay.digest()} != {digest}")
            return 1
        print(f"replay digest matches ({digest[:16]}...): "
              "trace is deterministic")
    if args.out:
        with open(args.out, "w") as f:
            json.dump(run.chrome(), f, indent=1)
            f.write("\n")
        with open(args.out + ".digest", "w") as f:
            f.write(digest + "\n")
        print(f"[chrome trace written to {args.out}; "
              f"digest to {args.out}.digest]")
    if not args.no_profile:
        print(run.profile(top=args.top))
    print(f"{run.span_count()} spans across "
          f"{len(run.spans.tracers)} simulator(s)")
    print(f"trace digest: {digest}")
    return 0


def _cmd_all(args) -> int:
    """Regenerate every figure and ablation; optionally write a file."""
    from .experiments import ablations, fig1_filler, fig2_imbalance
    from .experiments import fig3_gpu_adapt

    sections = []
    fungible, static = fig1_filler.run_fig1_both()
    sections.append(fig1_filler.report(fungible, static))
    dataset = (DatasetSpec() if args.full_scale
               else DatasetSpec(count=1200, mean_bytes=1 * MiB,
                                mean_cpu=0.1))
    sections.append(fig2_imbalance.report(
        fig2_imbalance.run_fig2(dataset=dataset)))
    sections.append(fig3_gpu_adapt.report(fig3_gpu_adapt.run_fig3()))
    sections.append(ablations.report_all())
    text = ("\n\n" + "=" * 72 + "\n\n").join(sections)
    print(text)
    if args.out:
        with open(args.out, "w") as f:
            f.write(text + "\n")
        print(f"\n[report written to {args.out}]")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Quicksand (HotOS '23) reproduction experiments",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p1 = sub.add_parser("fig1", help="filler migration experiment")
    p1.add_argument("--duration", type=float, default=0.2,
                    help="measured window in virtual seconds")
    p1.add_argument("--seed", type=int, default=0)
    p1.set_defaults(fn=_cmd_fig1)

    p2 = sub.add_parser("fig2", help="imbalanced-machines table")
    p2.add_argument("--images", type=int, default=1200,
                    help="dataset size (default: 10x-reduced scale)")
    p2.add_argument("--full-scale", action="store_true",
                    help="use the paper's 12000-image scale")
    p2.add_argument("--seed", type=int, default=0)
    p2.set_defaults(fn=_cmd_fig2)

    p3 = sub.add_parser("fig3", help="GPU-adaptation experiment")
    p3.add_argument("--duration", type=float, default=1.6)
    p3.add_argument("--seed", type=int, default=0)
    p3.set_defaults(fn=_cmd_fig3)

    pa = sub.add_parser("ablations", help="run all DESIGN.md ablations")
    pa.set_defaults(fn=_cmd_ablations)

    ps = sub.add_parser("sweep",
                        help="EXT-SWEEP: fungibility gain vs burst period")
    ps.set_defaults(fn=_cmd_sweep)

    pc = sub.add_parser(
        "chaos",
        help="seeded fault-injection run with invariant checking")
    pc.add_argument("--seed", type=int, default=42)
    pc.add_argument("--machines", type=int, default=4)
    pc.add_argument("--duration", type=float, default=2.0)
    pc.add_argument("--oracle", action="store_true",
                    help="also diff every fluid scheduler against the "
                         "brute-force water-fill oracle (slow)")
    pc.add_argument("--stride", type=int, default=1,
                    help="check invariants every N-th event")
    pc.add_argument("--check-determinism", action="store_true",
                    help="run the scenario twice and require identical "
                         "digests")
    pc.set_defaults(fn=_cmd_chaos)

    pt = sub.add_parser(
        "trace",
        help="run an experiment with span tracing; export Chrome "
             "trace_event JSON + virtual-time profile")
    pt.add_argument("experiment",
                    choices=["fig1", "fig2", "fig3", "chaos"],
                    help="experiment to run at trace scale")
    pt.add_argument("--out", default=None,
                    help="write Perfetto-loadable JSON here "
                         "(plus <out>.digest)")
    pt.add_argument("--seed", type=int, default=0)
    pt.add_argument("--top", type=int, default=8,
                    help="profile lines shown per track")
    pt.add_argument("--no-profile", action="store_true",
                    help="skip the text profile")
    pt.add_argument("--check-determinism", action="store_true",
                    help="run twice and require identical trace digests")
    pt.set_defaults(fn=_cmd_trace)

    pall = sub.add_parser("all", help="regenerate every figure + ablation")
    pall.add_argument("--out", default=None,
                      help="also write the report to this file")
    pall.add_argument("--full-scale", action="store_true")
    pall.set_defaults(fn=_cmd_all)

    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
