"""General sharding library (§3.2).

Partitions a keyed collection into disjoint key ranges, each stored in
its own memory proclet, with an index proclet holding the routing table.
The :class:`ShardSizeController` keeps shards inside the configured size
band by asking the structure to split oversized shards and merge
undersized ones; users never see shard boundaries.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..cluster import Machine
from ..core.memproclet import MemoryProclet
from ..runtime import ProcletRef

#: Routing-table bytes per shard entry, charged to the index proclet.
INDEX_ENTRY_BYTES = 48.0


@functools.total_ordering
class _Bottom:
    """Sentinel ordered below every key (the first shard's lower bound)."""

    def __lt__(self, other) -> bool:
        return not isinstance(other, _Bottom)

    def __eq__(self, other) -> bool:
        return isinstance(other, _Bottom)

    def __hash__(self) -> int:
        return hash("_Bottom")

    def __repr__(self) -> str:
        return "-inf"


BOTTOM = _Bottom()


@dataclass
class Shard:
    """One shard: the key range ``[lo, <next shard's lo>)``."""

    lo: Any
    ref: ProcletRef

    @property
    def proclet(self) -> MemoryProclet:
        return self.ref.proclet


class ShardedBase:
    """Common machinery for range-sharded structures."""

    def __init__(self, qs, name: str,
                 initial_machine: Optional[Machine] = None):
        self.qs = qs
        self.name = name
        self.shards: List[Shard] = []
        self._los: List[Any] = []  # parallel array for bisect routing
        #: Routed calls attempted per shard proclet id — the autoscaler's
        #: load signal (EWMA'd controller-side).  Host bookkeeping only.
        self.route_counts: Dict[int, int] = {}
        # The index memory proclet: holds the shard routing table (§3.2).
        self.index_ref = qs.spawn_memory(machine=initial_machine,
                                         name=f"{name}.index")
        first = self._spawn_shard(BOTTOM, initial_machine)
        self._insert_shard(first)
        qs.runtime.reshard_ledger.track(self)

    # -- shard bookkeeping --------------------------------------------------
    def _spawn_shard(self, lo: Any,
                     machine: Optional[Machine] = None) -> Shard:
        proclet = MemoryProclet()
        proclet.shard_owner = self
        ref = self.qs.spawn(proclet, machine,
                            name=f"{self.name}.shard@{lo!r}")
        return Shard(lo=lo, ref=ref)

    def _insert_shard(self, shard: Shard) -> None:
        idx = self._bisect(shard.lo)
        self.shards.insert(idx, shard)
        self._los.insert(idx, shard.lo)
        self._index_charge(INDEX_ENTRY_BYTES)
        self._refresh_ranges()
        if self.qs.shard_controller is not None:
            self.qs.shard_controller.register(shard.ref, self)

    def _remove_shard(self, shard: Shard) -> None:
        idx = self.shards.index(shard)
        del self.shards[idx]
        del self._los[idx]
        self._index_charge(-INDEX_ENTRY_BYTES)
        self._refresh_ranges()
        if self.qs.shard_controller is not None:
            self.qs.shard_controller.unregister(shard.ref)

    def _index_charge(self, delta: float) -> None:
        """Adjust the index proclet's DRAM for a routing-table entry.

        The table itself lives host-side (``self.shards``); the proclet
        only carries its memory cost.  It may be lost to a machine
        failure — and, under recovery, respawned empty — between two
        charges, so a missing proclet is skipped (its bytes died with
        the machine) and a release is clamped to what the incarnation
        actually holds.
        """
        from ..runtime import DeadProclet

        try:
            proclet = self.index_ref.proclet
        except DeadProclet:
            return
        if delta >= 0:
            proclet.heap_alloc(delta)
        else:
            proclet.heap_free(min(-delta, proclet.heap_bytes))

    def _refresh_ranges(self) -> None:
        """Push the routing table's ranges down into the shard proclets,
        which enforce them at execution time (WrongShard on staleness)."""
        for i, shard in enumerate(self.shards):
            proclet = self.qs.runtime._proclets.get(shard.ref.proclet_id)
            if proclet is None:
                continue
            lo = shard.lo
            proclet.range_lo = None if isinstance(lo, _Bottom) else lo
            proclet.range_hi = (self.shards[i + 1].lo
                                if i + 1 < len(self.shards) else None)

    def _bisect(self, key: Any) -> int:
        """Insertion point for *key* in the lo array (BOTTOM-aware)."""
        if isinstance(key, _Bottom):
            return 0
        lo_idx, hi_idx = 0, len(self._los)
        while lo_idx < hi_idx:
            mid = (lo_idx + hi_idx) // 2
            entry = self._los[mid]
            if isinstance(entry, _Bottom) or entry < key:
                lo_idx = mid + 1
            else:
                hi_idx = mid
        return lo_idx

    def _shard_index_for(self, key: Any) -> int:
        """Index of the shard covering *key*."""
        idx = self._bisect(key)
        if idx < len(self._los) and not isinstance(key, _Bottom) \
                and self._los[idx] == key:
            return idx
        return max(0, idx - 1)

    def _find_by_id(self, proclet_id: int) -> Optional[int]:
        for i, shard in enumerate(self.shards):
            if shard.ref.proclet_id == proclet_id:
                return i
        return None

    # -- routing ------------------------------------------------------------------
    def route(self, key: Any) -> ProcletRef:
        """The shard ref whose range covers *key*."""
        return self.shards[self._shard_index_for(key)].ref

    def call_routed(self, key: Any, method: str, *args, ctx=None,
                    req_bytes: float = 0.0, max_retries: int = 8):
        """Invoke *method* on the shard covering *key*, rerouting on
        stale routing.

        A shard chosen at submit time can be merged away (DeadProclet)
        or re-ranged by a split (WrongShard) before the invocation
        executes — routing tables are client-side caches, as in Slicer.
        Both outcomes are retried against the updated table.
        Application-level ``KeyError`` etc. pass through unchanged.

        ``max_retries`` is one shared budget across both failure kinds
        (the :meth:`NuRuntime._invoke_proc` convention: attempts count
        against a single budget no matter why they failed).  A stale
        route (``WrongShard``) retries immediately — the table is
        already newer than the attempt.  A *lost* shard retries with
        seeded exponential backoff when ``route_retry_backoff`` is
        configured: re-attempting a lost shard at the same instant just
        storms the routing layer until recovery lands.  The default
        backoff of 0 preserves historical bit-identical trajectories.
        """
        from ..runtime import DeadProclet
        from ..runtime.errors import WrongShard

        config = self.qs.config

        def attempt():
            last_exc = None
            backoff = config.route_retry_backoff
            for _try in range(max_retries):
                ref = self.route(key)
                self.route_counts[ref.proclet_id] = \
                    self.route_counts.get(ref.proclet_id, 0) + 1
                ev = (ctx.call(ref, method, *args, req_bytes=req_bytes)
                      if ctx is not None
                      else ref.call(method, *args, req_bytes=req_bytes))
                try:
                    result = yield ev
                except WrongShard as exc:
                    last_exc = exc
                    continue
                except DeadProclet as exc:
                    last_exc = exc
                    if backoff > 0.0:
                        delay = backoff
                        if config.route_retry_jitter > 0.0:
                            rng = self.qs.sim.random.stream(
                                "ds.route.backoff")
                            delay += (backoff * config.route_retry_jitter
                                      * rng.random())
                        yield self.qs.sim.timeout(delay)
                        backoff *= config.route_retry_multiplier
                    continue
                return result
            raise last_exc

        return self.qs.sim.process(attempt(),
                                   name=f"{self.name}.{method}")

    def shard_covering(self, key: Any) -> Tuple[ProcletRef, Any]:
        """``(shard_ref, range_end)`` — the prefetcher's routing query.

        ``range_end`` is the next shard's lower bound, or ``inf`` for the
        last shard.
        """
        idx = self._shard_index_for(key)
        end = (self.shards[idx + 1].lo if idx + 1 < len(self.shards)
               else float("inf"))
        return self.shards[idx].ref, end

    @property
    def shard_count(self) -> int:
        return len(self.shards)

    @property
    def total_bytes(self) -> float:
        return sum(s.proclet.heap_bytes for s in self.shards)

    @property
    def total_objects(self) -> int:
        return sum(s.proclet.object_count for s in self.shards)

    def shard_machines(self):
        """Multiset of machines hosting shards (placement diagnostics)."""
        return [s.ref.machine for s in self.shards]

    # -- split/merge callbacks (driven by ShardSizeController) ---------------------
    def split_shard_by_id(self, proclet_id: int):
        """Split the named shard; returns the split's completion event or
        ``None`` when the shard is gone/busy."""
        idx = self._find_by_id(proclet_id)
        if idx is None:
            return None
        shard = self.shards[idx]
        ev = self.qs.split_memory(shard.ref)
        ev.subscribe(lambda e: self._on_split_done(e))
        return ev

    def _on_split_done(self, event) -> None:
        if not event.ok:
            raise event.value
        result = event.value
        if result is None:
            return  # split was declined (no room anywhere)
        split_key, new_ref = result
        new_ref.proclet.shard_owner = self
        self._insert_shard(Shard(lo=split_key, ref=new_ref))

    def wants_merge(self, proclet_id: int) -> bool:
        """Policy hook: may this undersized shard merge into a neighbour?"""
        idx = self._find_by_id(proclet_id)
        if idx is None or len(self.shards) < 2:
            return False
        neighbour = self._merge_partner(idx)
        if neighbour is None:
            return False
        from ..runtime import DeadProclet

        try:
            combined = (self.shards[idx].proclet.heap_bytes
                        + neighbour.proclet.heap_bytes)
        except DeadProclet:
            # The partner is lost to a machine failure (possibly
            # awaiting recovery): there is nothing to merge into.
            return False
        from ..autoscale import policy

        return policy.merge_fits(combined, self.qs.config.max_shard_bytes)

    def _merge_partner(self, idx: int) -> Optional[Shard]:
        """Prefer the left neighbour (keeps ranges contiguous)."""
        if idx > 0:
            return self.shards[idx - 1]
        if idx + 1 < len(self.shards):
            return self.shards[idx + 1]
        return None

    def merge_shard_by_id(self, proclet_id: int):
        """Merge the named shard into a neighbour; returns the completion
        event or ``None``."""
        idx = self._find_by_id(proclet_id)
        if idx is None or len(self.shards) < 2:
            return None
        shard = self.shards[idx]
        partner = self._merge_partner(idx)
        if partner is None:
            return None
        ev = self.qs.merge_memory(partner.ref, shard.ref)
        ev.subscribe(lambda e: self._on_merge_done(e, shard, partner))
        return ev

    def _on_merge_done(self, event, shard: Shard, partner: Shard) -> None:
        if not event.ok:
            raise event.value
        if event.value is None:
            return  # merge was declined; leave the routing untouched
        # The survivor absorbs the merged shard's range: when the merged
        # shard sat to the survivor's LEFT (including the BOTTOM shard),
        # the survivor inherits its lower bound.
        shard_idx = self.shards.index(shard)
        partner_idx = self.shards.index(partner)
        if shard_idx < partner_idx:
            partner.lo = shard.lo
            self._los[partner_idx] = shard.lo
        self._remove_shard(shard)

    # -- two-phase reshard protocol (autoscaler-driven) ----------------------------
    def reshard_split_by_id(self, proclet_id: int,
                            driver: str = "autoscale"):
        """Split the named shard through the crash-safe two-phase
        protocol (prepare → commit → cleanup, rollback on machine
        failure at any phase).  Unlike :meth:`split_shard_by_id`, the
        routing table flips atomically inside the protocol — there is
        no completion-subscriber window where the child is live but
        unrouted.  Returns the completion event or ``None``."""
        from ..autoscale.reshard import reshard_split

        return reshard_split(self, proclet_id, driver=driver)

    def reshard_merge_by_id(self, proclet_id: int,
                            driver: str = "autoscale"):
        """Merge the named shard into its preferred neighbour through
        the two-phase protocol.  Returns the completion event or
        ``None``."""
        from ..autoscale.reshard import reshard_merge

        return reshard_merge(self, proclet_id, driver=driver)

    # -- teardown -----------------------------------------------------------------------
    def destroy(self) -> None:
        """Destroy every shard and the index proclet."""
        for shard in list(self.shards):
            self._remove_shard(shard)
            self.qs.runtime.destroy(shard.ref)
        self.qs.runtime.destroy(self.index_ref)
        self.qs.runtime.reshard_ledger.untrack(self)

    def __repr__(self) -> str:
        return (f"<{type(self).__name__} {self.name!r} "
                f"shards={len(self.shards)} bytes={self.total_bytes:.0f}>")
