"""Sharded queue (§3.2, §4): the producer/consumer coupling element.

The Fig. 2/3 pipeline connects CPU preprocessing (producers) to GPU
training (consumers) through this queue.  Elements live in queue-shard
memory proclets that charge DRAM for buffered data, so the queue can
"absorb bursts in producer output by storing it in memory proclets that
can split and migrate" (§4).  Ordering is FIFO per shard; global order is
relaxed, as usual for distributed queues.
"""

from __future__ import annotations

import collections
from typing import Any, Deque, Generator, List, Optional, Tuple

from ..cluster import Machine
from ..runtime import MachineFailed, Payload, ProcletStatus
from ..units import US
from ..core.resource import ResourceKind, ResourceProclet

_OP_CPU = 0.2 * US
_EMPTY = object()


class QueueShardProclet(ResourceProclet):
    """One FIFO shard of a sharded queue (a memory-kind proclet)."""

    kind = ResourceKind.MEMORY

    def __init__(self):
        super().__init__()
        self._items: Deque[Tuple[float, Any]] = collections.deque()

    @property
    def length(self) -> int:
        return len(self._items)

    # -- proclet methods -----------------------------------------------------
    def qp_push(self, ctx, nbytes: float, value: Any):
        yield ctx.cpu(_OP_CPU)
        ctx.alloc(nbytes)
        self._items.append((float(nbytes), value))
        owner = self.shard_owner
        if owner is not None:
            owner._note_push()

    def qp_pop(self, ctx):
        """Pop the oldest element, or the EMPTY sentinel."""
        yield ctx.cpu(_OP_CPU)
        if not self._items:
            return Payload(_EMPTY, nbytes=0.0)
        nbytes, value = self._items.popleft()
        self.heap_free(nbytes)
        owner = self.shard_owner
        if owner is not None:
            owner._note_pop()
        return Payload(value, nbytes=nbytes)

    def qp_len(self, ctx):
        yield ctx.cpu(_OP_CPU)
        return len(self._items)

    # -- split/merge primitives (queue-specific, §3.3) --------------------------
    def extract_back_half(self) -> Tuple[List[Tuple[float, Any]], float]:
        n = len(self._items) // 2
        moved = [self._items.pop() for _ in range(n)]
        moved.reverse()
        total = sum(nbytes for nbytes, _v in moved)
        if total > 0:
            self.heap_free(total)
        return moved, total

    def extract_everything(self) -> Tuple[List[Tuple[float, Any]], float]:
        moved = list(self._items)
        self._items.clear()
        total = sum(nbytes for nbytes, _v in moved)
        if total > 0:
            self.heap_free(total)
        return moved, total

    def install_items(self, items: List[Tuple[float, Any]]) -> None:
        total = sum(nbytes for nbytes, _v in items)
        if total > 0:
            self.heap_alloc(total)
        self._items.extend(items)


class ShardedQueue:
    """Multi-shard FIFO connecting pipeline stages."""

    def __init__(self, qs, name: str = "queue", initial_shards: int = 1,
                 machines: Optional[List[Machine]] = None):
        if initial_shards < 1:
            raise ValueError("a queue needs at least one shard")
        self.qs = qs
        self.name = name
        self.shards: List = []
        self.pushed = 0
        self.popped = 0
        #: Times a consumer found the queue empty and had to block —
        #: the "downstream is starving" signal for the autoscaler (§3.3).
        self.waits = 0
        self._rr_push = 0
        self._rr_pop = 0
        self._waiters: List = []
        self._initial_shards = initial_shards
        for i in range(initial_shards):
            machine = machines[i % len(machines)] if machines else None
            self._add_shard(machine)
        qs.runtime.reshard_ledger.track(self)

    # -- shard management ---------------------------------------------------
    def _add_shard(self, machine: Optional[Machine] = None):
        proclet = QueueShardProclet()
        proclet.shard_owner = self
        ref = self.qs.spawn(proclet, machine,
                            name=f"{self.name}.q{len(self.shards)}")
        self.shards.append(ref)
        if self.qs.shard_controller is not None:
            self.qs.shard_controller.register(ref, self)
        return ref

    @property
    def shard_count(self) -> int:
        return len(self.shards)

    @property
    def length(self) -> int:
        return self.pushed - self.popped

    # -- producer side ----------------------------------------------------------
    def push(self, value: Any, nbytes: float, ctx=None):
        """Enqueue one element; returns the completion event.

        Producers inside proclets push to a shard on their own machine
        when one exists (locality); otherwise round-robin.  A shard
        merged away between routing and execution is retried against the
        current shard list (stale-routing semantics, as for the map).
        """
        from ..runtime import DeadProclet

        def attempt():
            last_exc = None
            for _try in range(8):
                ref = self._pick_push_shard(ctx)
                ev = (ctx.call(ref, "qp_push", nbytes, value,
                               req_bytes=nbytes)
                      if ctx is not None
                      else ref.call("qp_push", nbytes, value))
                try:
                    return (yield ev)
                except DeadProclet as exc:
                    last_exc = exc
            raise last_exc

        return self.qs.sim.process(attempt(), name=f"{self.name}.push")

    @staticmethod
    def _routable(ref):
        """The shard's live proclet, or None while it is lost to a
        machine failure (awaiting recovery) — routing must skip it
        rather than crash; the invocation layer handles retries."""
        from ..runtime import DeadProclet

        try:
            proclet = ref.proclet
        except DeadProclet:
            return None
        return None if proclet.status is ProcletStatus.DEAD else proclet

    def _pick_push_shard(self, ctx):
        live = [s for s in self.shards if self._routable(s) is not None]
        candidates = live or self.shards
        if ctx is not None and live:
            local = [s for s in live if s.machine is ctx.machine]
            if local:
                return min(local, key=lambda s: s.proclet.length)
        ref = candidates[self._rr_push % len(candidates)]
        self._rr_push += 1
        return ref

    def _note_push(self) -> None:
        self.pushed += 1
        waiters, self._waiters = self._waiters, []
        for ev in waiters:
            if not ev.triggered:
                ev.succeed()

    def _note_pop(self) -> None:
        self.popped += 1

    # -- consumer side -------------------------------------------------------------
    def pop(self, ctx=None):
        """Dequeue one element, waiting if the queue is empty.

        Returns a process event whose value is the element.
        """
        return self.qs.sim.process(self._pop_proc(ctx),
                                   name=f"{self.name}.pop")

    def _pop_proc(self, ctx) -> Generator:
        from ..runtime import DeadProclet

        while True:
            # Scan shards round-robin, preferring the local one.
            order = self._pop_order(ctx)
            for ref in order:
                ev = (ctx.call(ref, "qp_pop") if ctx is not None
                      else ref.call("qp_pop"))
                try:
                    value = yield ev
                except DeadProclet:
                    continue  # shard merged away mid-scan; move on
                if value is not _EMPTY:
                    return value
            # All empty: block until a push lands anywhere.
            self.waits += 1
            waiter = self.qs.sim.event()
            self._waiters.append(waiter)
            yield waiter

    def _pop_order(self, ctx):
        shards = [s for s in self.shards if self._routable(s) is not None]
        nonempty = [s for s in shards if s.proclet.length > 0]
        candidates = nonempty or shards
        if ctx is not None:
            candidates = sorted(
                candidates, key=lambda s: s.machine is not ctx.machine)
        else:
            self._rr_pop += 1
            k = self._rr_pop % max(1, len(candidates))
            candidates = candidates[k:] + candidates[:k]
        return candidates

    def try_pop(self, ctx=None):
        """Non-blocking pop: event value is the element or ``None``."""
        return self.qs.sim.process(self._try_pop_proc(ctx),
                                   name=f"{self.name}.try_pop")

    def _try_pop_proc(self, ctx) -> Generator:
        from ..runtime import DeadProclet

        for ref in self._pop_order(ctx):
            ev = (ctx.call(ref, "qp_pop") if ctx is not None
                  else ref.call("qp_pop"))
            try:
                value = yield ev
            except DeadProclet:
                continue
            if value is not _EMPTY:
                return value
        return None

    # -- controller protocol (oversize queue shards split, §4) ---------------------
    def split_shard_by_id(self, proclet_id: int):
        shard = self._ref_by_id(proclet_id)
        if shard is None:
            return None
        return self.qs.sim.process(self._split_proc(shard),
                                   name=f"{self.name}.split")

    def _split_proc(self, shard) -> Generator:
        src = shard.proclet
        if src.status is not ProcletStatus.RUNNING or src.length < 2:
            return None
        ledger = self.qs.runtime.reshard_ledger
        op = ledger.begin("split", self, src.id, driver="legacy")
        tr = self.qs.sim.tracer
        span = None
        if tr is not None:
            span = tr.begin("split", f"split {src.name}",
                            track=f"proclet:{src.name}", kind="queue")
        gate = self.qs._block(src)
        yield self.qs.sim.timeout(self.qs.config.split_overhead)
        if src.status is ProcletStatus.DEAD:
            ledger.abort(op, "source machine failed in prepare")
            if tr is not None:
                tr.end(span, outcome="machine-failed")
            return None
        items, nbytes = src.extract_back_half()
        dst = self.qs.placement.best_for_memory(
            nbytes + QueueShardProclet.BASE_FOOTPRINT)
        if dst is None:
            src.install_items(items)
            self.qs._unblock(src, gate)
            ledger.abort(op, "no room for the child shard")
            if tr is not None:
                tr.end(span, outcome="no-room")
            return None
        # Build the new shard fully (spawn, gate, move bytes, install)
        # BEFORE publishing it to the shard list and the controller —
        # otherwise the controller may see an empty registered shard and
        # merge it away mid-split, losing the extracted items.
        new = QueueShardProclet()
        new.shard_owner = self
        new_ref = self.qs.spawn(new, dst,
                                name=f"{self.name}.q{len(self.shards)}")
        ledger.add_child(op, new_ref.proclet_id)
        new_gate = self.qs._block(new)
        if dst is not src.machine:
            try:
                yield self.qs.cluster.fabric.transfer(
                    src.machine, dst, nbytes, name=f"{self.name}.split")
            except MachineFailed:
                # An endpoint crashed mid-copy: abandon the split.  A
                # dead endpoint's gate was opened by the fail path; a
                # surviving source keeps its items.
                if new.status is not ProcletStatus.DEAD:
                    self.qs.runtime.destroy(new_ref)
                if src.status is not ProcletStatus.DEAD:
                    src.install_items(items)
                    self.qs._unblock(src, gate)
                ledger.abort(op, "endpoint failed during copy")
                if tr is not None:
                    tr.end(span, outcome="machine-failed")
                return None
        new.install_items(items)
        self.qs._unblock(new, new_gate)
        self.qs._unblock(src, gate)
        self.shards.append(new_ref)
        ledger.complete(op)
        if self.qs.shard_controller is not None:
            self.qs.shard_controller.register(new_ref, self)
        self.qs.splits += 1
        if tr is not None:
            tr.end(span, moved_bytes=int(nbytes), dst=dst.name,
                   new=new.name)
        return new_ref

    def wants_merge(self, proclet_id: int) -> bool:
        if len(self.shards) <= self._initial_shards:
            return False
        shard = self._ref_by_id(proclet_id)
        return shard is not None and shard.proclet.length == 0

    def merge_shard_by_id(self, proclet_id: int):
        shard = self._ref_by_id(proclet_id)
        if shard is None or len(self.shards) <= self._initial_shards:
            return None
        return self.qs.sim.process(self._merge_proc(shard),
                                   name=f"{self.name}.merge")

    def _merge_proc(self, shard) -> Generator:
        src = shard.proclet
        if src.status is not ProcletStatus.RUNNING \
                or all(s is shard for s in self.shards):
            return None
        ledger = self.qs.runtime.reshard_ledger
        op = ledger.begin("merge", self, src.id, driver="legacy")
        tr = self.qs.sim.tracer
        span = None
        if tr is not None:
            span = tr.begin("merge", f"merge {src.name}",
                            track=f"proclet:{src.name}", kind="queue")
        gate = self.qs._block(src)
        yield self.qs.sim.timeout(self.qs.config.split_overhead)
        if src.status is ProcletStatus.DEAD:
            # The source died while gated (machine failure); the fail
            # path already opened the gate, and the items died with it.
            ledger.abort(op, "source machine failed in prepare")
            if tr is not None:
                tr.end(span, outcome="machine-failed")
            return None

        def pick_survivor():
            # Chosen fresh after every yield: a shard picked before a
            # wait may itself have been merged away (and destroyed) in
            # the meantime, and installing into a dead shard loses items.
            return next(
                (s for s in self.shards
                 if s is not shard
                 and s.proclet.status is ProcletStatus.RUNNING),
                None)

        def abort():
            src.install_items(items)
            self.qs._unblock(src, gate)
            ledger.abort(op, "no live survivor shard")
            if tr is not None:
                tr.end(span, outcome="aborted")
            return None

        items, nbytes = src.extract_everything()
        survivor = pick_survivor()
        if survivor is None:
            return abort()
        if survivor.machine is not src.machine and nbytes > 0:
            try:
                yield self.qs.cluster.fabric.transfer(
                    src.machine, survivor.machine, nbytes,
                    name=f"{self.name}.merge")
            except MachineFailed:
                # An endpoint crashed mid-copy.  If the source survives
                # it keeps its items; if it died they die with it.
                if src.status is not ProcletStatus.DEAD:
                    return abort()
                ledger.abort(op, "source machine failed during copy")
                if tr is not None:
                    tr.end(span, outcome="machine-failed")
                return None
            survivor = pick_survivor()  # may have died during the copy
            if survivor is None:
                return abort()
        ledger.add_child(op, survivor.proclet_id)
        survivor.proclet.install_items(items)
        self.qs._unblock(src, gate)
        self.shards.remove(shard)
        if self.qs.shard_controller is not None:
            self.qs.shard_controller.unregister(shard)
        self.qs.runtime.destroy(shard)
        ledger.complete(op)
        self.qs.merges += 1
        if tr is not None:
            tr.end(span, moved_bytes=int(nbytes),
                   survivor=survivor.name)
        return True

    # -- autoscaler protocol --------------------------------------------------
    # The queue's own split/merge already follow the crash-safe shape the
    # two-phase protocol formalises (gate, build fully before publishing,
    # rollback into a surviving source), so the autoscaler drives them
    # directly instead of the range-map protocol in
    # :mod:`repro.autoscale.reshard` (queues have no key ranges).
    def reshard_split_by_id(self, proclet_id: int,
                            driver: str = "autoscale"):
        return self.split_shard_by_id(proclet_id)

    def reshard_merge_by_id(self, proclet_id: int,
                            driver: str = "autoscale"):
        return self.merge_shard_by_id(proclet_id)

    def _ref_by_id(self, proclet_id: int):
        for ref in self.shards:
            if ref.proclet_id == proclet_id:
                return ref
        return None

    def destroy(self) -> None:
        for ref in list(self.shards):
            if self.qs.shard_controller is not None:
                self.qs.shard_controller.unregister(ref)
            self.qs.runtime.destroy(ref)
        self.shards.clear()
        self.qs.runtime.reshard_ledger.untrack(self)

    def __repr__(self) -> str:
        return (f"<ShardedQueue {self.name!r} shards={len(self.shards)} "
                f"len={self.length}>")
