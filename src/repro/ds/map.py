"""Sharded ordered map (§3.2): range-sharded key/value store.

Keys must be mutually orderable; shards cover disjoint key ranges and
split at the byte-median key when oversized (the §3.3 hash-table-shard
example), merging back when deletions leave them sparse.
"""

from __future__ import annotations

from typing import Any, Optional

from ..cluster import Machine
from ..core.prefetch import PrefetchingReader
from ..sim import Event
from .sharding import ShardedBase


class ShardedMap(ShardedBase):
    """Distributed ordered ``map<K, V>`` over memory proclets."""

    def __init__(self, qs, name: str = "map",
                 initial_machine: Optional[Machine] = None):
        super().__init__(qs, name, initial_machine)
        self._size = 0

    def __len__(self) -> int:
        return self._size

    # -- mutations ------------------------------------------------------------
    def put(self, key: Any, value: Any, nbytes: float, ctx=None) -> Event:
        """Insert or overwrite ``key``; returns the completion event."""
        ev = self.call_routed(key, "mp_put", key, nbytes, value,
                              ctx=ctx, req_bytes=nbytes)
        # mp_put reports insert (True) vs overwrite (False).
        ev.subscribe(self._note_put)
        return ev

    def _note_put(self, event) -> None:
        if event.ok and event.value:
            self._size += 1

    def delete(self, key: Any, ctx=None) -> Event:
        ev = self.call_routed(key, "mp_delete", key, ctx=ctx)
        ev.subscribe(self._note_delete)
        return ev

    def _note_delete(self, event) -> None:
        if event.ok:
            self._size -= 1

    # -- reads ------------------------------------------------------------------
    def get(self, key: Any, ctx=None) -> Event:
        return self.call_routed(key, "mp_get", key, ctx=ctx)

    def contains(self, key: Any, ctx=None) -> Event:
        return self.call_routed(key, "mp_contains", key, ctx=ctx)

    def range_reader(self, lo: Any, hi: Any, chunk: Optional[int] = None,
                     depth: Optional[int] = None) -> PrefetchingReader:
        """Prefetching scan over keys in ``[lo, hi)``."""
        cfg = self.qs.config
        return PrefetchingReader(
            self, lo, hi,
            chunk=cfg.prefetch_chunk if chunk is None else chunk,
            depth=cfg.prefetch_depth if depth is None else depth,
        )


class ShardedSet:
    """Distributed ordered set — a thin veneer over :class:`ShardedMap`.

    Elements are map keys; a fixed small per-element size covers the
    set's bookkeeping bytes.
    """

    ELEMENT_BYTES = 64.0

    def __init__(self, qs, name: str = "set",
                 initial_machine: Optional[Machine] = None):
        self._map = ShardedMap(qs, name=name, initial_machine=initial_machine)

    def __len__(self) -> int:
        return len(self._map)

    @property
    def shard_count(self) -> int:
        return self._map.shard_count

    def add(self, key: Any, ctx=None) -> Event:
        return self._map.put(key, True, self.ELEMENT_BYTES, ctx=ctx)

    def discard(self, key: Any, ctx=None) -> Event:
        return self._map.delete(key, ctx=ctx)

    def contains(self, key: Any, ctx=None) -> Event:
        return self._map.contains(key, ctx=ctx)

    def destroy(self) -> None:
        self._map.destroy()
