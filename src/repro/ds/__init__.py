"""Sharded data structures over memory proclets (§3.2)."""

from .map import ShardedMap, ShardedSet
from .queue import QueueShardProclet, ShardedQueue
from .sharding import BOTTOM, INDEX_ENTRY_BYTES, Shard, ShardedBase
from .vector import ShardedVector

__all__ = [
    "BOTTOM",
    "INDEX_ENTRY_BYTES",
    "QueueShardProclet",
    "Shard",
    "ShardedBase",
    "ShardedMap",
    "ShardedQueue",
    "ShardedSet",
    "ShardedVector",
]
