"""Sharded vector: an append-friendly distributed array (§3.2, §4).

Elements are keyed by dense integer indices; shards cover contiguous
index ranges.  The tail shard — the append target — *seals* instead of
splitting when it reaches the size cap: a fresh empty tail is opened on
the machine with the most free DRAM, so no data moves on the hot path.
This is how the Fig. 2 pipeline spreads its input images across
imbalanced machines for free.
"""

from __future__ import annotations

from typing import Any, Optional

from ..cluster import Machine
from ..core.prefetch import PrefetchingReader
from ..sim import Event
from .sharding import Shard, ShardedBase


class ShardedVector(ShardedBase):
    """Distributed ``vector<T>`` over memory proclets."""

    def __init__(self, qs, name: str = "vector",
                 initial_machine: Optional[Machine] = None):
        super().__init__(qs, name, initial_machine)
        self._length = 0

    def __len__(self) -> int:
        return self._length

    # -- writes --------------------------------------------------------------
    def append(self, value: Any, nbytes: float, ctx=None) -> Event:
        """Append one element; returns the completion event.

        The element lands in the tail shard; when the tail crosses the
        size cap the shard controller seals it and opens a new one.
        """
        idx = self._length
        self._length += 1
        tail = self.shards[-1].ref
        if ctx is not None:
            return ctx.call(tail, "mp_put", idx, nbytes, value,
                            req_bytes=nbytes)
        return tail.call("mp_put", idx, nbytes, value)

    def put(self, index: int, value: Any, nbytes: float, ctx=None) -> Event:
        """Overwrite an existing element in place."""
        self._check_index(index)
        return self.call_routed(index, "mp_put", index, nbytes, value,
                                ctx=ctx, req_bytes=nbytes)

    # -- reads -----------------------------------------------------------------
    def get(self, index: int, ctx=None) -> Event:
        """Read one element (remote callers pay its bytes on the wire)."""
        self._check_index(index)
        return self.call_routed(index, "mp_get", index, ctx=ctx)

    def reader(self, lo: int = 0, hi: Optional[int] = None,
               chunk: Optional[int] = None,
               depth: Optional[int] = None) -> PrefetchingReader:
        """A prefetching sequential reader over ``[lo, hi)`` (§3.2
        iterators with prefetch hints)."""
        cfg = self.qs.config
        return PrefetchingReader(
            self, lo, self._length if hi is None else hi,
            chunk=cfg.prefetch_chunk if chunk is None else chunk,
            depth=cfg.prefetch_depth if depth is None else depth,
        )

    def _check_index(self, index: int) -> None:
        if not 0 <= index < self._length:
            raise IndexError(
                f"{self.name}: index {index} out of range "
                f"[0, {self._length})"
            )

    # -- split policy overrides ----------------------------------------------------
    def split_shard_by_id(self, proclet_id: int):
        """Seal-don't-split for the tail shard (append-path optimization)."""
        idx = self._find_by_id(proclet_id)
        if idx is None:
            return None
        if idx == len(self.shards) - 1:
            return self._seal_tail()
        return super().split_shard_by_id(proclet_id)

    def reshard_split_by_id(self, proclet_id: int,
                            driver: str = "autoscale"):
        """The seal-don't-split tail rule applies to the autoscaler's
        protocol too: sealing is instantaneous bookkeeping, so the
        two-phase machinery would be pure overhead for the tail."""
        idx = self._find_by_id(proclet_id)
        if idx is None:
            return None
        if idx == len(self.shards) - 1:
            return self._seal_tail()
        return super().reshard_split_by_id(proclet_id, driver=driver)

    def _seal_tail(self):
        """Open a fresh, empty tail shard; no data moves.

        Placement goes to the machine with the most free DRAM, which is
        the entire memory-spreading mechanism of the Fig. 2 experiment.
        """
        new = self._spawn_shard(self._length)
        self._insert_shard(new)
        if self.qs.metrics is not None:
            self.qs.metrics.count("quicksand.vector.seals")
        tr = self.qs.sim.tracer
        if tr is not None:
            shard_name = new.proclet.name
            tr.instant("split", f"seal {shard_name}",
                       track=f"proclet:{shard_name}", kind="vector-seal",
                       machine=new.proclet.machine.name)
        # Sealing is instantaneous bookkeeping; return a completed event
        # so the controller's busy-tracking protocol still works.
        ev = self.qs.sim.event()
        ev.succeed(new.ref)
        return ev

    def wants_merge(self, proclet_id: int) -> bool:
        idx = self._find_by_id(proclet_id)
        if idx is None or idx == len(self.shards) - 1:
            return False  # never merge the active tail
        return super().wants_merge(proclet_id)
