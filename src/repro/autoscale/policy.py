"""Shared size-threshold predicates.

Both the deprecated heap-change-driven
:class:`~repro.core.splitmerge.ShardSizeController` and the
:class:`~repro.autoscale.ShardAutoscaler` control loop decide through
these three functions, so the two paths provably agree on what counts
as oversized/undersized (pinned by the fig2 decision-parity test).
Import-free within the package: callable from anywhere without cycles.
"""

from __future__ import annotations

#: Historical merge hysteresis factor (see AutoscaleConfig.merge_fraction).
DEFAULT_MERGE_FRACTION = 0.7


def oversized(heap_bytes: float, max_shard_bytes: float) -> bool:
    """Should this shard split on byte size?"""
    return heap_bytes > max_shard_bytes


def undersized(heap_bytes: float, min_shard_bytes: float) -> bool:
    """Is this shard small enough to consider merging away?"""
    return heap_bytes < min_shard_bytes


def merge_fits(combined_bytes: float, max_shard_bytes: float,
               fraction: float = DEFAULT_MERGE_FRACTION) -> bool:
    """May two partners merge?  True only when their combined size sits
    safely below the split threshold (hysteresis: a merged survivor must
    not immediately re-split)."""
    return combined_bytes < fraction * max_shard_bytes
