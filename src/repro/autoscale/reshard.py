"""Two-phase, crash-safe reshard protocol for range-sharded structures.

The legacy split path (``Quicksand._split_memory_proc`` + the
structure's completion subscriber) publishes the child only after its
process event settles, and relies on ad-hoc cleanup when a machine dies
mid-copy.  This module is the designed-for-failure replacement the
autoscaler drives:

``PREPARE``
    Gate the donor shard (reusing the migration-gate mechanism, so
    callers block rather than fail), carve off the moving half, spawn
    the child *gated* on a health-eligible machine, and copy the bytes.
    The old routing table stays authoritative throughout — this is the
    dual-route window, accounted against
    :meth:`MigrationEngine.note_gate_window` so tests can prove no key
    was unroutable for longer than one migration gate.

``COMMIT``
    The atomic range-map flip: insert the child (split) or retire the
    donor (merge) in the routing table.  No simulator yield separates
    the table update from the range push-down, so no observer — the
    chaos invariant checker runs after *every* event — ever sees a
    half-flipped table.

``CLEANUP``
    Open the gates, retire the donor proclet (merge), settle the
    ledger op.

A ``MachineFailed`` at any yield point rolls back explicitly: the donor
reinstalls its items and reopens (if it survived), a spawned child is
destroyed, and the op is recorded as aborted in the runtime's
:class:`~repro.runtime.reshard.ReshardLedger` — the old shard stays
authoritative, which the chaos invariants verify after every event.
"""

from __future__ import annotations

from typing import Generator, Optional

from ..runtime.errors import MachineFailed
from ..runtime.proclet import ProcletStatus
from ..runtime.reshard import ReshardPhase


def reshard_split(ds, proclet_id: int, driver: str = "autoscale"):
    """Split shard *proclet_id* of structure *ds* through the two-phase
    protocol; returns the completion process event (value:
    ``(split_key, child_ref)`` or ``None`` when declined/aborted), or
    ``None`` when the shard is unknown."""
    idx = ds._find_by_id(proclet_id)
    if idx is None:
        return None
    shard = ds.shards[idx]
    return ds.qs.sim.process(_split_proc(ds, shard, driver),
                             name=f"reshard-split:{ds.name}")


def reshard_merge(ds, proclet_id: int, driver: str = "autoscale"):
    """Merge shard *proclet_id* into its preferred partner through the
    two-phase protocol; returns the completion event (value ``True`` or
    ``None``), or ``None`` when there is nothing to merge."""
    idx = ds._find_by_id(proclet_id)
    if idx is None or len(ds.shards) < 2:
        return None
    shard = ds.shards[idx]
    partner = ds._merge_partner(idx)
    if partner is None:
        return None
    return ds.qs.sim.process(_merge_proc(ds, shard, partner, driver),
                             name=f"reshard-merge:{ds.name}")


def _split_proc(ds, shard, driver: str) -> Generator:
    qs = ds.qs
    sim = qs.sim
    runtime = qs.runtime
    ledger = runtime.reshard_ledger
    src = runtime._proclets.get(shard.ref.proclet_id)
    if src is None or src.status is not ProcletStatus.RUNNING \
            or src.object_count < 2:
        return None

    op = ledger.begin("split", ds, src.id, driver=driver)
    tr = sim.tracer
    span = None
    if tr is not None:
        span = tr.begin("reshard", f"split {src.name}",
                        track=f"proclet:{src.name}", kind="split",
                        driver=driver)
    m = qs.metrics

    def abort(reason: str, outcome: str):
        ledger.abort(op, reason)
        if m is not None:
            m.count("autoscale.reshard.split.abort")
        if tr is not None:
            tr.end(span, outcome=outcome)
        return None

    gate_t0 = sim.now
    gate = qs._block(src)

    def close_gate_window():
        runtime.migration.note_gate_window("reshard.split",
                                           sim.now - gate_t0)

    # -- PREPARE ------------------------------------------------------------
    yield sim.timeout(qs.config.split_overhead)
    if src.status is not ProcletStatus.MIGRATING:
        # The source machine failed while we held the gate: the fail
        # path marked the proclet DEAD and opened the gate.  The old
        # (now lost) shard stays in the table for recovery to handle.
        return abort("source machine failed in prepare", "machine-failed")
    if src.object_count < 2:
        qs._unblock(src, gate)
        close_gate_window()
        return abort("stale: shard shrank below two keys", "stale")

    split_key = src.split_point()
    items, nbytes = src.extract_upper(split_key)
    child = type(src)()
    child.shard_owner = ds
    # Health-gated placement: with recovery enabled best_for_memory only
    # considers machines the failure detector holds ALIVE.
    dst = qs.placement.best_for_memory(nbytes + child.BASE_FOOTPRINT)
    if dst is None or not dst.memory.can_fit(nbytes + child.BASE_FOOTPRINT):
        src.install(items)  # rollback: nowhere to put the upper half
        qs._unblock(src, gate)
        close_gate_window()
        return abort("no room for the child shard", "no-room")

    child_ref = runtime.spawn(child, dst, name=f"{src.name}.hi")
    ledger.add_child(op, child_ref.proclet_id)
    # The child stays gated (dark) until commit: nothing can observe it
    # half-filled, and a concurrent controller cannot merge it away.
    child_gate = qs._block(child)

    def rollback_to_parent(reason: str):
        if child.status is not ProcletStatus.DEAD:
            qs._unblock(child, child_gate)
            runtime.destroy(child_ref)
        if src.status is not ProcletStatus.DEAD:
            src.install(items)
            qs._unblock(src, gate)
            close_gate_window()
        return abort(reason, "machine-failed")

    if dst is not src.machine:
        try:
            yield qs.cluster.fabric.transfer(
                src.machine, dst, nbytes, name=f"reshard:{src.name}")
        except MachineFailed:
            return rollback_to_parent("machine failed during transfer")
        if src.status is not ProcletStatus.MIGRATING \
                or child.status is not ProcletStatus.MIGRATING:
            return rollback_to_parent("endpoint died during transfer")
    child.install(items)

    # -- COMMIT (atomic: no yields until the gates reopen) ------------------
    ledger.advance(op, ReshardPhase.COMMIT)
    from ..ds.sharding import Shard

    ds._insert_shard(Shard(lo=split_key, ref=child_ref))
    qs.splits += 1
    if m is not None:
        m.count("quicksand.splits.memory")
        m.count("autoscale.reshard.split.commit")

    # -- CLEANUP ------------------------------------------------------------
    ledger.advance(op, ReshardPhase.CLEANUP)
    qs._unblock(child, child_gate)
    qs._unblock(src, gate)
    close_gate_window()
    ledger.complete(op)
    runtime.tracer.emit(
        "reshard", f"split {src.name} at {split_key!r} -> {child.name}",
        moved_bytes=int(nbytes), dst=dst.name, driver=driver)
    if tr is not None:
        tr.end(span, moved_bytes=int(nbytes), dst=dst.name,
               new=child.name)
    return split_key, child_ref


def _merge_proc(ds, shard, partner, driver: str) -> Generator:
    qs = ds.qs
    sim = qs.sim
    runtime = qs.runtime
    ledger = runtime.reshard_ledger
    src = runtime._proclets.get(shard.ref.proclet_id)       # merging away
    dst = runtime._proclets.get(partner.ref.proclet_id)     # survivor
    if src is None or dst is None or src is dst:
        return None
    if src.status is not ProcletStatus.RUNNING \
            or dst.status is not ProcletStatus.RUNNING:
        return None
    if not dst.machine.memory.can_fit(src.heap_bytes):
        return None

    op = ledger.begin("merge", ds, src.id, driver=driver)
    ledger.add_child(op, dst.id)
    tr = sim.tracer
    span = None
    if tr is not None:
        span = tr.begin("reshard", f"merge {src.name} -> {dst.name}",
                        track=f"proclet:{dst.name}", kind="merge",
                        driver=driver)
    m = qs.metrics

    def abort(reason: str, outcome: str):
        ledger.abort(op, reason)
        if m is not None:
            m.count("autoscale.reshard.merge.abort")
        if tr is not None:
            tr.end(span, outcome=outcome)
        return None

    gate_t0 = sim.now
    src_gate = qs._block(src)
    dst_gate = qs._block(dst)

    def close_gate_window():
        runtime.migration.note_gate_window("reshard.merge",
                                           sim.now - gate_t0)

    def unblock_survivors(reinstall: bool):
        if reinstall and src.status is ProcletStatus.MIGRATING:
            src.install(items)
        if src.status is ProcletStatus.MIGRATING:
            qs._unblock(src, src_gate)
        if dst.status is ProcletStatus.MIGRATING:
            qs._unblock(dst, dst_gate)
        close_gate_window()

    # -- PREPARE ------------------------------------------------------------
    items = []
    yield sim.timeout(qs.config.split_overhead)
    if src.status is not ProcletStatus.MIGRATING \
            or dst.status is not ProcletStatus.MIGRATING:
        # An endpoint's machine failed while gated.  A dead donor's
        # items died with it (fail-stop); a dead survivor just means the
        # merge never happened.  Either way the table is untouched.
        unblock_survivors(reinstall=False)
        return abort("endpoint machine failed in prepare", "machine-failed")

    items, nbytes = src.extract_all()
    if dst.machine is not src.machine and nbytes > 0:
        try:
            yield qs.cluster.fabric.transfer(
                src.machine, dst.machine, nbytes,
                name=f"reshard:{src.name}")
        except MachineFailed:
            unblock_survivors(reinstall=True)
            return abort("machine failed during transfer", "machine-failed")
        if src.status is not ProcletStatus.MIGRATING \
                or dst.status is not ProcletStatus.MIGRATING:
            unblock_survivors(reinstall=True)
            return abort("endpoint died during transfer", "machine-failed")
    dst.install(items)

    # -- COMMIT (atomic range-map flip) -------------------------------------
    ledger.advance(op, ReshardPhase.COMMIT)
    shard_idx = ds.shards.index(shard)
    partner_idx = ds.shards.index(partner)
    if shard_idx < partner_idx:
        # Survivor absorbs a left donor's range (including BOTTOM).
        partner.lo = shard.lo
        ds._los[partner_idx] = shard.lo
    ds._remove_shard(shard)
    qs.merges += 1
    if m is not None:
        m.count("quicksand.merges.memory")
        m.count("autoscale.reshard.merge.commit")

    # -- CLEANUP ------------------------------------------------------------
    ledger.advance(op, ReshardPhase.CLEANUP)
    qs._unblock(dst, dst_gate)
    qs._unblock(src, src_gate)
    close_gate_window()
    runtime.destroy(shard.ref)
    ledger.complete(op)
    runtime.tracer.emit(
        "reshard", f"merge {src.name} -> {dst.name}",
        moved_bytes=int(nbytes), driver=driver)
    if tr is not None:
        tr.end(span, moved_bytes=int(nbytes))
    return True
