"""The shard autoscaler control loop.

A single DES process samples every tracked range-sharded structure each
``period``: per-shard heap bytes, object counts, and an EWMA of the
routed-call rate are compared against the configured capacity limits,
and out-of-band shards are driven through the two-phase reshard
protocol (:mod:`repro.autoscale.reshard`).  Decisions obey hysteresis
(see :class:`AutoscaleConfig`), a per-shard cool-down, and a
per-structure concurrency cap, so the loop cannot oscillate or stampede.

Fault posture:

* **frozen** — while the failure detector suspects any machine, the
  controller keeps evaluating and *logging* decisions but makes no
  structural change (suspicion means placement information is stale;
  thrashing shards across a possibly-dying cluster helps nobody).
* **degraded** — after ``fault_shed_threshold`` consecutive operations
  fail or are declined (machine failures mid-protocol, no DRAM
  anywhere), the controller sheds to read-only decision logging for
  ``shed_backoff`` seconds, then resumes automatically.

Every decision, phase, and abort is visible: ``autoscale.*`` metric
counters, ``autoscale``/``reshard`` trace events, obs spans from the
protocol generators, and the in-memory ``decisions`` log.
"""

from __future__ import annotations

import functools
from typing import Dict, Generator, List, Optional, Set, Tuple

from ..core.pressure import RateEstimator
from ..runtime.errors import (
    DeadProclet,
    InvalidPlacement,
    MachineFailed,
    MigrationFailed,
)
from ..runtime.proclet import ProcletStatus
from . import policy
from .config import AutoscaleConfig

#: Exceptions a reshard op may legitimately surface under faults; the
#: controller absorbs these (counting toward the shed threshold) and
#: re-raises anything else — an unexpected error is a bug, not weather.
_EXPECTED_ERRORS = (MachineFailed, MigrationFailed, DeadProclet,
                    InvalidPlacement)


class ShardAutoscaler:
    """Monitors shard load/size and drives split/merge decisions."""

    def __init__(self, qs, config: Optional[AutoscaleConfig] = None):
        self.qs = qs
        self.config = config or AutoscaleConfig()
        self.max_shard_bytes = (self.config.max_shard_bytes
                                if self.config.max_shard_bytes is not None
                                else qs.config.max_shard_bytes)
        self.min_shard_bytes = (self.config.min_shard_bytes
                                if self.config.min_shard_bytes is not None
                                else qs.config.min_shard_bytes)
        if self.max_shard_bytes <= self.min_shard_bytes:
            raise ValueError("max_shard_bytes must exceed min_shard_bytes")
        self._rates: Dict[int, RateEstimator] = {}
        self._last_counts: Dict[int, int] = {}
        self._cooldown_until: Dict[int, float] = {}
        self._busy: Set[int] = set()
        self._consecutive_failures = 0
        self._shed_until = -1.0
        self._stopped = False
        #: Decision log: (time, structure, proclet_id, action, reason,
        #: state) — "state" is the controller state when the decision
        #: was evaluated; only "active" decisions execute.
        self.decisions: List[Tuple[float, str, int, str, str, str]] = []
        self.splits_issued = 0
        self.merges_issued = 0
        self.frozen_skips = 0
        self.shed_skips = 0
        self.sheds = 0
        self.op_failures = 0
        self._process = qs.sim.process(self._loop(),
                                       name="shard-autoscaler")

    def stop(self) -> None:
        self._stopped = True

    # -- state machine -------------------------------------------------------
    @property
    def state(self) -> str:
        """``"active"``, ``"frozen"`` (detector suspects a machine), or
        ``"degraded"`` (shed after sustained faults)."""
        if self.qs.sim.now < self._shed_until:
            return "degraded"
        if self._frozen():
            return "frozen"
        return "active"

    def _frozen(self) -> bool:
        if not self.config.freeze_on_suspect:
            return False
        recovery = self.qs.recovery
        return (recovery is not None
                and recovery.detector.any_suspected())

    # -- the loop ------------------------------------------------------------
    def _loop(self) -> Generator:
        period = self.config.period
        while not self._stopped:
            yield self.qs.sim.timeout(period)
            self._tick(self.qs.sim.now)

    def _tick(self, now: float) -> None:
        state = self.state
        ledger = self.qs.runtime.reshard_ledger
        for ds in ledger.structures():
            self._scan(ds, now, state, ledger)

    def _scan(self, ds, now: float, state: str, ledger) -> None:
        runtime = self.qs.runtime
        recovery = runtime.recovery
        inflight = len(ledger.active_for_structure(ds))
        m = self.qs.metrics
        route_counts = getattr(ds, "route_counts", None)
        for shard in list(ds.shards):
            # Range-sharded structures hold Shard entries (``.ref``);
            # the sharded queue holds proclet refs directly.
            ref = getattr(shard, "ref", shard)
            pid = ref.proclet_id
            rate = self._update_rate(pid, now, route_counts)
            proclet = runtime._proclets.get(pid)
            if proclet is None:
                continue  # lost to a machine failure; recovery's problem
            if proclet.status is not ProcletStatus.RUNNING:
                continue  # already gated by some op
            if pid in self._busy or now < self._cooldown_until.get(pid, 0.0):
                continue
            if recovery is not None and recovery.restoring(pid):
                continue  # mid-restore shards look transiently empty
            action, reason = self._decide(ds, pid, proclet, rate)
            if action is None:
                continue
            self.decisions.append((now, ds.name, pid, action, reason,
                                   state))
            if m is not None:
                m.count(f"autoscale.decision.{action}")
            runtime.tracer.emit(
                "autoscale", f"{action} {proclet.name}: {reason}",
                structure=ds.name, state=state)
            if state != "active":
                if state == "frozen":
                    self.frozen_skips += 1
                else:
                    self.shed_skips += 1
                if m is not None:
                    m.count(f"autoscale.skipped.{state}")
                continue
            if inflight >= self.config.max_concurrent:
                continue  # re-evaluated next period
            ev = (ds.reshard_split_by_id(pid) if action == "split"
                  else ds.reshard_merge_by_id(pid))
            if ev is None:
                continue
            if action == "split":
                self.splits_issued += 1
            else:
                self.merges_issued += 1
            inflight += 1
            self._busy.add(pid)
            self._cooldown_until[pid] = now + self.config.cooldown
            ev.subscribe(functools.partial(self._op_done, pid))

    def _update_rate(self, pid: int, now: float,
                     route_counts) -> float:
        if route_counts is None:
            return 0.0
        est = self._rates.get(pid)
        if est is None:
            est = self._rates[pid] = RateEstimator(
                self.config.rate_time_constant)
        count = route_counts.get(pid, 0)
        est.update(now, count - self._last_counts.get(pid, 0))
        self._last_counts[pid] = count
        return est.rate

    # -- decisions -----------------------------------------------------------
    def _decide(self, ds, pid: int, proclet,
                rate: float) -> Tuple[Optional[str], str]:
        cfg = self.config
        heap = proclet.heap_bytes
        if policy.oversized(heap, self.max_shard_bytes):
            return "split", (f"bytes {heap:.0f} > "
                             f"{self.max_shard_bytes:.0f}")
        # Queue shards expose ``length`` instead of ``object_count``.
        objects = getattr(proclet, "object_count",
                          getattr(proclet, "length", 0))
        if cfg.max_shard_objects is not None \
                and objects > cfg.max_shard_objects:
            return "split", (f"objects {objects} > "
                             f"{cfg.max_shard_objects}")
        if cfg.max_route_rate is not None and objects >= 2 \
                and rate > cfg.max_route_rate:
            return "split", (f"route rate {rate:.0f}/s > "
                             f"{cfg.max_route_rate:.0f}/s")
        if policy.undersized(heap, self.min_shard_bytes) \
                and self._merge_ok(ds, pid, rate):
            return "merge", (f"bytes {heap:.0f} < "
                             f"{self.min_shard_bytes:.0f}")
        return None, ""

    def _merge_ok(self, ds, pid: int, rate: float) -> bool:
        if not ds.wants_merge(pid):
            return False
        # Hysteresis on heat: never merge away a shard carrying more
        # than half the split-triggering route rate.
        cfg = self.config
        if cfg.max_route_rate is not None \
                and rate > 0.5 * cfg.max_route_rate:
            return False
        return True

    # -- op settlement -------------------------------------------------------
    def _op_done(self, pid: int, event) -> None:
        self._busy.discard(pid)
        succeeded = event.ok and event.value is not None
        if succeeded:
            self._consecutive_failures = 0
            return
        if not event.ok and not isinstance(event.value, _EXPECTED_ERRORS):
            raise event.value
        self.op_failures += 1
        m = self.qs.metrics
        if m is not None:
            m.count("autoscale.op_failures")
        self._consecutive_failures += 1
        if self._consecutive_failures >= self.config.fault_shed_threshold:
            self._consecutive_failures = 0
            self._shed_until = self.qs.sim.now + self.config.shed_backoff
            self.sheds += 1
            if m is not None:
                m.count("autoscale.sheds")
            self.qs.runtime.tracer.emit(
                "autoscale", "shedding to read-only decision logging",
                until=round(self._shed_until, 6))

    def __repr__(self) -> str:
        return (f"<ShardAutoscaler state={self.state} "
                f"splits={self.splits_issued} merges={self.merges_issued} "
                f"sheds={self.sheds}>")
