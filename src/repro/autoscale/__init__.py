"""Shard autoscaler: hysteresis control loop + crash-safe resharding.

ROADMAP item 2 (modeled on the Neon shard-splitting RFC and Ceph's
pg_autoscaler): per-shard capacity limits on bytes, objects, and routed
call rate; hysteresis bands and cool-downs so decisions never
oscillate; and a two-phase reshard protocol (prepare → commit →
cleanup, with explicit rollback on machine failure at any phase) so no
human ever chooses shard counts and no crash ever strands a key.

Enable with :meth:`repro.core.Quicksand.enable_autoscaler`; without
that call nothing here runs and trajectories are bit-identical to
builds predating this package.
"""

from .config import AutoscaleConfig
from .controller import ShardAutoscaler
from .reshard import reshard_merge, reshard_split

__all__ = [
    "AutoscaleConfig",
    "ShardAutoscaler",
    "reshard_merge",
    "reshard_split",
]
