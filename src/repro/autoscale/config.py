"""Autoscaler knobs, with the no-ping-pong hysteresis proof inline."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..units import MS


@dataclass(frozen=True)
class AutoscaleConfig:
    """Configuration of the :class:`~repro.autoscale.ShardAutoscaler`.

    Hysteresis: a split fires at ``heap > max_shard_bytes`` and produces
    two children of ~``max/2`` bytes each; a merge fires only when the
    *combined* size of a shard and its partner is below
    ``merge_fraction * max_shard_bytes``.  With ``merge_fraction < 1``
    the children of a fresh split sum to ~``max`` > the merge threshold,
    so they can never immediately re-merge, and a fresh merge's survivor
    is below the threshold < ``max``, so it can never immediately
    re-split — the control loop cannot oscillate regardless of timing.
    The per-shard ``cooldown`` additionally spaces decisions out when
    the workload itself whipsaws across a threshold.
    """

    #: Control-loop sampling period.
    period: float = 1 * MS
    #: Byte capacity limits; ``None`` inherits the owning Quicksand's
    #: ``max_shard_bytes`` / ``min_shard_bytes``.
    max_shard_bytes: Optional[float] = None
    min_shard_bytes: Optional[float] = None
    #: Split a shard holding more than this many objects (off when None).
    max_shard_objects: Optional[int] = None
    #: Split a shard whose EWMA routed-call rate exceeds this many
    #: calls/second (off when None).  A shard above half this rate is
    #: also considered too hot to merge away.
    max_route_rate: Optional[float] = None
    #: Merge only when combined partner size < fraction * max (see the
    #: hysteresis note above; must be < 1 to exclude ping-pong).
    merge_fraction: float = 0.7
    #: Minimum spacing between structural decisions on the same shard.
    cooldown: float = 2 * MS
    #: EWMA time constant for the routed-call-rate estimate.
    rate_time_constant: float = 4 * MS
    #: Reshard operations allowed in flight per structure.
    max_concurrent: int = 2
    #: Consecutive failed/declined operations before the controller
    #: sheds to read-only decision logging.
    fault_shed_threshold: int = 3
    #: How long a shed lasts before the controller automatically
    #: resumes structural changes.
    shed_backoff: float = 20 * MS
    #: Freeze structural decisions while the failure detector suspects
    #: any machine (decisions are still evaluated and logged).
    freeze_on_suspect: bool = True

    def __post_init__(self):
        if self.period <= 0:
            raise ValueError("period must be positive")
        if not 0.0 < self.merge_fraction < 1.0:
            raise ValueError(
                f"merge_fraction must be in (0, 1) to rule out "
                f"split/merge ping-pong: {self.merge_fraction}")
        if self.max_shard_bytes is not None \
                and self.min_shard_bytes is not None \
                and self.max_shard_bytes <= self.min_shard_bytes:
            raise ValueError("max_shard_bytes must exceed min_shard_bytes")
        if self.max_shard_objects is not None and self.max_shard_objects < 2:
            raise ValueError("max_shard_objects must be >= 2")
        if self.max_route_rate is not None and self.max_route_rate <= 0:
            raise ValueError("max_route_rate must be positive")
        if self.cooldown < 0 or self.shed_backoff <= 0:
            raise ValueError("cooldown must be >= 0 and shed_backoff > 0")
        if self.rate_time_constant <= 0:
            raise ValueError("rate_time_constant must be positive")
        if self.max_concurrent < 1:
            raise ValueError("max_concurrent must be >= 1")
        if self.fault_shed_threshold < 1:
            raise ValueError("fault_shed_threshold must be >= 1")
