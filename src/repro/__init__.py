"""Quicksand reproduction: fungible applications via resource proclets.

Reproduces *Unleashing True Utility Computing with Quicksand* (HotOS '23)
on a deterministic discrete-event cluster simulator.  The public surface:

* :class:`Quicksand` — the runtime facade (spawn resource proclets, get
  sharded data structures, compute pools, flat storage);
* :class:`ClusterSpec` / :class:`MachineSpec` — describe the cluster;
* :class:`QuicksandConfig` — scheduler/split-merge/prefetch knobs;
* ``repro.apps`` — the paper's applications (filler, DNN pipeline);
* ``repro.experiments`` — harnesses regenerating Figures 1–3.
"""

from .cluster import (
    Cluster,
    ClusterSpec,
    GpuSpec,
    MachineSpec,
    NetworkSpec,
    OutOfMemory,
    Priority,
    StorageSpec,
    symmetric_cluster,
)
from .compute import ComputePool, filter_collect, for_each, map_collect, reduce
from .core import (
    ComputeAutoscaler,
    ComputeProclet,
    DistPtr,
    GpuProclet,
    MemoryProclet,
    PrefetchingReader,
    Quicksand,
    QuicksandConfig,
    ResourceKind,
    ResourceProclet,
    StorageProclet,
    Task,
    TaskSource,
)
from .ds import ShardedMap, ShardedQueue, ShardedSet, ShardedVector
from .runtime import (
    MigrationConfig,
    MigrationFailed,
    NuRuntime,
    Payload,
    Proclet,
    ProcletRef,
    ProcletStatus,
)
from .sim import Simulator
from .storage import FlatStorage, ShardedStore
from .trace import TraceEvent, Tracer
from .units import GiB, KiB, MS, MiB, SEC, US, gbps

__version__ = "0.1.0"

__all__ = [
    "Cluster",
    "ClusterSpec",
    "ComputeAutoscaler",
    "ComputePool",
    "ComputeProclet",
    "DistPtr",
    "FlatStorage",
    "GiB",
    "GpuProclet",
    "GpuSpec",
    "KiB",
    "MS",
    "MachineSpec",
    "MemoryProclet",
    "MiB",
    "MigrationConfig",
    "MigrationFailed",
    "NetworkSpec",
    "NuRuntime",
    "OutOfMemory",
    "Payload",
    "PrefetchingReader",
    "Priority",
    "Proclet",
    "ProcletRef",
    "ProcletStatus",
    "Quicksand",
    "QuicksandConfig",
    "ResourceKind",
    "ResourceProclet",
    "SEC",
    "ShardedMap",
    "ShardedQueue",
    "ShardedSet",
    "ShardedStore",
    "ShardedVector",
    "Simulator",
    "StorageProclet",
    "StorageSpec",
    "Task",
    "TaskSource",
    "TraceEvent",
    "Tracer",
    "US",
    "for_each",
    "filter_collect",
    "gbps",
    "map_collect",
    "reduce",
    "symmetric_cluster",
]
