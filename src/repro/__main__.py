"""``python -m repro`` — experiment CLI."""

import sys

from .cli import main

sys.exit(main())
