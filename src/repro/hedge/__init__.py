"""Request cloning & hedging with a closed-form PS oracle.

Two halves: :mod:`repro.hedge.clone` is the mechanism — a
first-response-wins coordinator over the proclet call path
(``runtime.invoke(..., clone_to=N, hedge_after=t)``) whose losers are
cancelled through the kernel's real timer-tombstone and fluid-cancel
machinery.  :mod:`repro.hedge.oracle` is the check — closed-form
M/G/1-PS mean-response-time predictions for synchronized cloning
(Pellegrini 2020), differentially compared against the simulated
:class:`repro.apps.CloneService` across an arrival-rate x clone-factor
x seed grid in CI.
"""

from .clone import CloneAttempt, CloneCall, CloneCancelled, CloneState
from .oracle import (CloneDivergence, Deterministic, Exponential, HyperExp,
                     ServiceDist, best_clone_factor, clone_mean_response,
                     clone_utilization, compare_cells, group_arrival_rate,
                     ps_mean_response, tolerance_for)

__all__ = [
    "CloneAttempt", "CloneCall", "CloneCancelled", "CloneState",
    "CloneDivergence", "Deterministic", "Exponential", "HyperExp",
    "ServiceDist", "best_clone_factor", "clone_mean_response",
    "clone_utilization", "compare_cells", "group_arrival_rate",
    "ps_mean_response", "tolerance_for",
]
