"""Closed-form processor-sharing predictions for request cloning.

The cloning reproducibility report (Pellegrini 2020, reproducing
"Modeling of Request Cloning in Cloud Server Systems using Processor
Sharing") gives the repro a second analytic oracle next to the
brute-force water-fill one: with *synchronized* cloning — the n PS
servers partitioned into n/c groups of c, every request cloned to all c
servers of one group, first-finished-wins with the losers cancelled on
the spot — each group behaves as a single M/G/1-PS queue.  The servers
of a group see identical request sets at identical rates, so a clone
set finishes everywhere at the virtual instant its fastest service draw
completes.  Each server is therefore an M/G/1-PS with

* arrival rate  ``lambda_g = arrival_rate * c / n``       (Poisson split)
* service time  ``S_min = min of c iid draws``            (synchronized)

and PS insensitivity collapses the mean response time to the classic

    ``E[T] = E[S_min] / (1 - lambda_g * E[S_min])``.

Everything here is the exact same mathematical object the fluid CPU
scheduler produces on a one-core machine with a single priority class
(each of k resident items gets ``cores/k`` — processor sharing), so the
simulation should match these formulas up to Monte-Carlo noise; the
differential suite in :mod:`repro.experiments.cloning` enforces that in
CI.  Whether cloning *helps* is the min-of-c trade: ``E[S_min]`` falls
with c (a lot, for high-variance service times) while the per-server
load factor ``c/n`` rises.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Union

__all__ = [
    "Exponential", "HyperExp", "Deterministic", "ServiceDist",
    "ps_mean_response", "group_arrival_rate", "clone_utilization",
    "clone_mean_response", "best_clone_factor", "tolerance_for",
    "CloneDivergence", "compare_cells",
]


@dataclass(frozen=True)
class Exponential:
    """Exponential service times with the given mean (M/M/·-PS)."""

    mean: float

    def __post_init__(self):
        if self.mean <= 0:
            raise ValueError("mean must be positive")

    @property
    def label(self) -> str:
        return f"exp({self.mean:g})"

    @property
    def scv(self) -> float:
        """Squared coefficient of variation (1 for exponential)."""
        return 1.0

    def mean_min_of(self, c: int) -> float:
        """E[min of c iid draws]: min of exponentials is exponential
        with the rates summed."""
        _check_clones(c)
        return self.mean / c

    def scv_min_of(self, c: int) -> float:
        """SCV of the min of c draws (still exponential: 1)."""
        _check_clones(c)
        return 1.0

    def sample(self, rng) -> float:
        return rng.expovariate(1.0 / self.mean)


@dataclass(frozen=True)
class HyperExp:
    """Two-branch hyperexponential: fast with probability ``p``, slow
    otherwise.  The high-variance case where cloning shines — most
    draws are fast, so the min of a few clones dodges the slow branch.
    """

    p: float
    mean_fast: float
    mean_slow: float

    def __post_init__(self):
        if not 0.0 < self.p < 1.0:
            raise ValueError("p must be in (0, 1)")
        if self.mean_fast <= 0 or self.mean_slow <= 0:
            raise ValueError("branch means must be positive")

    @property
    def label(self) -> str:
        return f"hyp({self.p:g};{self.mean_fast:g},{self.mean_slow:g})"

    @property
    def mean(self) -> float:
        return self.p * self.mean_fast + (1.0 - self.p) * self.mean_slow

    @property
    def scv(self) -> float:
        """Squared coefficient of variation, ``E[S^2]/E[S]^2 - 1``."""
        second = 2.0 * (self.p * self.mean_fast ** 2
                        + (1.0 - self.p) * self.mean_slow ** 2)
        return second / self.mean ** 2 - 1.0

    def _min_moments(self, c: int):
        """(E[min], E[min^2]) of c iid draws, conditioning on how many
        of the c clones drew the fast branch: k fast + (c-k) slow draws
        give an exponential min with rate ``k*mu1 + (c-k)*mu2``."""
        _check_clones(c)
        mu1 = 1.0 / self.mean_fast
        mu2 = 1.0 / self.mean_slow
        q = 1.0 - self.p
        first = second = 0.0
        for k in range(c + 1):
            weight = math.comb(c, k) * self.p ** k * q ** (c - k)
            rate = k * mu1 + (c - k) * mu2
            first += weight / rate
            second += weight * 2.0 / rate ** 2
        return first, second

    def mean_min_of(self, c: int) -> float:
        """E[min of c iid draws]."""
        return self._min_moments(c)[0]

    def scv_min_of(self, c: int) -> float:
        """SCV of the min of c draws — cloning trims the slow branch,
        so variability (and Monte-Carlo noise) collapses with c."""
        first, second = self._min_moments(c)
        return second / first ** 2 - 1.0

    def sample(self, rng) -> float:
        branch_mean = (self.mean_fast if rng.random() < self.p
                       else self.mean_slow)
        return rng.expovariate(1.0 / branch_mean)


@dataclass(frozen=True)
class Deterministic:
    """Constant service times — the cloning lower bound: min-of-c of a
    constant is the constant, so clones only add load (cloning strictly
    hurts; useful as a negative control)."""

    value: float

    def __post_init__(self):
        if self.value <= 0:
            raise ValueError("value must be positive")

    @property
    def label(self) -> str:
        return f"det({self.value:g})"

    @property
    def mean(self) -> float:
        return self.value

    @property
    def scv(self) -> float:
        return 0.0

    def mean_min_of(self, c: int) -> float:
        _check_clones(c)
        return self.value

    def scv_min_of(self, c: int) -> float:
        _check_clones(c)
        return 0.0

    def sample(self, rng) -> float:
        return self.value


ServiceDist = Union[Exponential, HyperExp, Deterministic]


def _check_clones(c: int) -> None:
    if not isinstance(c, int) or c < 1:
        raise ValueError(f"clone factor must be a positive int, got {c!r}")


# -- closed forms -----------------------------------------------------------

def ps_mean_response(arrival_rate: float, mean_service: float) -> float:
    """M/G/1-PS mean response time: ``E[S] / (1 - rho)``.

    PS is insensitive to the service distribution beyond its mean, which
    is exactly why the cloned system stays closed-form.  Returns ``inf``
    at or beyond saturation.
    """
    if arrival_rate < 0 or mean_service <= 0:
        raise ValueError("need arrival_rate >= 0 and mean_service > 0")
    rho = arrival_rate * mean_service
    if rho >= 1.0:
        return math.inf
    return mean_service / (1.0 - rho)


def group_arrival_rate(arrival_rate: float, servers: int,
                       clone_factor: int) -> float:
    """Per-server arrival rate under synchronized clone-to-c routing."""
    _check_clones(clone_factor)
    if servers < 1 or servers % clone_factor != 0:
        raise ValueError(
            f"clone factor {clone_factor} must divide the server count "
            f"{servers} (synchronized cloning partitions servers into "
            f"groups of c)")
    return arrival_rate * clone_factor / servers


def clone_utilization(arrival_rate: float, servers: int, clone_factor: int,
                      dist: ServiceDist) -> float:
    """Per-server utilization ``rho = lambda_g * E[S_min]``."""
    lam_g = group_arrival_rate(arrival_rate, servers, clone_factor)
    return lam_g * dist.mean_min_of(clone_factor)


def clone_mean_response(arrival_rate: float, servers: int, clone_factor: int,
                        dist: ServiceDist) -> float:
    """Predicted mean response time for synchronized clone-to-c.

    ``E[T](c) = E[S_min(c)] / (1 - (lambda*c/n) * E[S_min(c)])``; ``inf``
    when cloning pushes the per-server load past saturation.
    """
    lam_g = group_arrival_rate(arrival_rate, servers, clone_factor)
    return ps_mean_response(lam_g, dist.mean_min_of(clone_factor))


def best_clone_factor(arrival_rate: float, servers: int,
                      dist: ServiceDist) -> int:
    """The clone factor (among divisors of *servers*) minimizing the
    predicted mean response time."""
    candidates = [c for c in range(1, servers + 1) if servers % c == 0]
    return min(candidates,
               key=lambda c: clone_mean_response(arrival_rate, servers,
                                                 c, dist))


# -- differential comparison ------------------------------------------------

def tolerance_for(rho: float, requests: int, scv: float = 1.0) -> float:
    """Relative tolerance for comparing a simulated mean against the
    closed form.

    The simulated mean is a Monte-Carlo estimate whose relative
    standard error (i) shrinks like ``1/sqrt(n)``, (ii) grows with the
    service-time variability *of the effective (min-of-c) service
    distribution* — pass ``dist.scv_min_of(c)`` as *scv* — and (iii)
    blows up like ``1/(1-rho)`` near saturation, where response times
    are strongly autocorrelated through the shared queue (regenerative
    cycles lengthen, so the effective sample size collapses).  The
    multiplier 10 was calibrated against the seed grid in
    :mod:`repro.experiments.cloning`: observed worst-case errors were
    0.2-4.7% for exponential cells (9k-23k requests) and 0.1-4.2% for
    hyperexponential (scv 5.5) cells at 70k-98k requests, leaving the
    band 2-4x above the worst observed cell — wide enough that
    seed-to-seed noise does not flake CI, tight enough that a modeling
    error (wrong formula, wrong routing, PS violated) trips it
    immediately (see docs/cloning.md for the full calibration table).
    """
    if requests <= 0 or rho >= 1.0:
        return math.inf
    noise = 10.0 * math.sqrt(max(scv, 1.0) * max(rho, 0.0) / requests) \
        / (1.0 - rho)
    return 0.02 + noise


@dataclass(frozen=True)
class CloneDivergence:
    """One grid cell whose simulated mean left the oracle's band."""

    cell: str
    simulated: float
    predicted: float
    tolerance: float

    @property
    def error(self) -> float:
        if self.predicted == 0:
            return math.inf
        return abs(self.simulated - self.predicted) / self.predicted

    def __str__(self) -> str:
        return (f"{self.cell}: simulated={self.simulated:.6g} "
                f"predicted={self.predicted:.6g} "
                f"(err={self.error:.1%} > tol={self.tolerance:.1%})")


def compare_cells(cells) -> List[CloneDivergence]:
    """Diff simulated grid cells against the closed-form predictions.

    Each *cell* is a mapping with ``cell`` (label), ``mean`` (simulated
    mean response), ``predicted`` (closed form) and ``tolerance``
    (relative band, from :func:`tolerance_for`) — the dicts produced by
    :func:`repro.experiments.cloning.run_cell`.  Returns the divergences
    (empty list = every cell inside its band).
    """
    out: List[CloneDivergence] = []
    for cell in cells:
        predicted = cell["predicted"]
        simulated = cell["mean"]
        tol = cell["tolerance"]
        if not math.isfinite(predicted):
            continue  # saturated cell: no finite prediction to pin
        if abs(simulated - predicted) > tol * predicted:
            out.append(CloneDivergence(cell=cell["cell"],
                                       simulated=simulated,
                                       predicted=predicted,
                                       tolerance=tol))
    return out
