"""First-response-wins request cloning over the proclet call path.

``NuRuntime.invoke(..., clone_to=N, hedge_after=t)`` routes through a
:class:`CloneCall` coordinator instead of a single ``_invoke_proc``
process.  The coordinator launches up to N attempts of the same method
call — all at once (``clone_to`` alone), staggered by a hedge timer
(``hedge_after``), or strictly sequentially for non-retryable calls —
and settles on the first attempt to complete:

* the winner's value becomes the call's value;
* every live loser is cancelled *through the real kernel machinery*:
  its active CPU work items are removed from their fluid schedulers
  (capacity returns at the cancellation instant, and the items are
  deregistered from the owner proclet so an in-flight migration cannot
  resurrect them), the heap/wheel timer it is parked on is tombstoned
  via :meth:`Simulator.cancel`, and the attempt process is interrupted
  with :class:`CloneCancelled`;
* a loser that finished in the same virtual instant as the winner (the
  cancellation race) is simply recorded as a late completion — the
  decision event is already triggered, so the outcome is resolved by
  deterministic ``(when, priority, seq)`` event order, never wall time.

Retries and hedges *compose instead of multiplying*: all attempts share
one :class:`CloneState`, whose ``retries`` counter is the attempt index
handed to ``RecoveryManager.retry_delay`` — the recovery budget caps
transparent retries across the whole clone set, not per clone.  The
shared ``executions`` counter (bumped just before a method body starts)
is what lets non-retryable clones guarantee at-most-once execution:
``retryable=False`` forces sequential failover, and a failed attempt
whose body had already started surfaces its error instead of launching
the next clone.

Bytes already on the wire are not recalled: a loser's in-flight fabric
transfer drains on its own (you cannot un-send an RPC); only its CPU
work and timers are reclaimed.
"""

from __future__ import annotations

from typing import Any, List, Optional

from ..runtime.errors import RuntimeFault

__all__ = ["CloneCancelled", "CloneState", "CloneAttempt", "CloneCall"]


class CloneCancelled(RuntimeFault):
    """Interrupt cause thrown into losing clone attempts."""


class CloneState:
    """Bookkeeping shared by every attempt of one cloned call."""

    __slots__ = ("retries", "executions")

    def __init__(self):
        #: Transparent-retry count across *all* clones — the index handed
        #: to ``RecoveryManager.retry_delay`` so the recovery budget is a
        #: per-call budget, not a per-clone one.
        self.retries = 0
        #: Method-body executions started across all clones (at-most-once
        #: accounting for ``retryable=False``).
        self.executions = 0


class CloneAttempt:
    """One launched attempt of a cloned call."""

    __slots__ = ("index", "process", "work_items", "launched_at",
                 "exec_mark", "won", "cancelled")

    def __init__(self, index: int, launched_at: float, exec_mark: int):
        self.index = index
        self.process = None
        #: FluidItems the attempt's method body started via ``ctx.cpu``
        #: (collected through the Context work-item scope).
        self.work_items: List = []
        self.launched_at = launched_at
        #: ``CloneState.executions`` at launch; a failure with the
        #: counter advanced past this mark means the body started.
        self.exec_mark = exec_mark
        self.won = False
        self.cancelled = False


class CloneCall:
    """Coordinator process for one ``clone_to``/``hedge_after`` call."""

    def __init__(self, runtime, ref, method: str, args, kwargs, *,
                 caller_machine=None, caller_proclet_id=None,
                 priority=None, req_bytes: float = 0.0,
                 retryable: bool = True, clone_to: int = 2,
                 hedge_after: Optional[float] = None):
        self.runtime = runtime
        self.sim = runtime.sim
        self.ref = ref
        self.method = method
        self.args = args
        self.kwargs = kwargs
        self.caller_machine = caller_machine
        self.caller_proclet_id = caller_proclet_id
        self.priority = priority
        self.req_bytes = req_bytes
        self.retryable = retryable
        self.clone_to = clone_to
        self.hedge_after = hedge_after
        self.state = CloneState()
        self.attempts: List[CloneAttempt] = []
        self.winner: Optional[int] = None
        self.decided_at: Optional[float] = None
        self.failures = 0
        self.hedges_fired = 0
        self.losers_cancelled = 0
        self.late_completions = 0
        self._decided = self.sim.event()
        self._hedge_timer = None
        self._span = None
        self.process = None

    # -- lifecycle --------------------------------------------------------
    def start(self):
        """Spawn the coordinator; returns its Process (the call event)."""
        self.runtime._register_clone_call(self)
        self.process = self.sim.process(
            self._run(), name=f"clone:{self.ref.name}.{self.method}")
        return self.process

    def _run(self):
        tr = self.sim.tracer
        if tr is not None:
            self._span = tr.begin(
                "hedge", f"{self.ref.name}.{self.method}",
                track=f"hedge:{self.ref.name}", clones=self.clone_to,
                hedge_after=self.hedge_after, retryable=self.retryable)
        # Launch policy: parallel fan-out needs at-least-once semantics
        # (retryable); hedged and non-retryable calls start with one
        # attempt and add more on the hedge timer / on safe failover.
        initial = (self.clone_to
                   if self.retryable and self.hedge_after is None else 1)
        for _ in range(initial):
            self._launch()
        if self.hedge_after is not None:
            self._arm_hedge()
        try:
            result = yield self._decided
        except BaseException:
            if tr is not None:
                tr.end(self._span, outcome="failed",
                       attempts=len(self.attempts),
                       executions=self.state.executions)
            raise
        finally:
            self._disarm_hedge()
        if tr is not None:
            tr.end(self._span, outcome="won", winner=self.winner,
                   attempts=len(self.attempts),
                   retries=self.state.retries,
                   executions=self.state.executions)
        return result

    # -- attempt management ----------------------------------------------
    def _launch(self) -> CloneAttempt:
        att = CloneAttempt(index=len(self.attempts),
                           launched_at=self.sim.now,
                           exec_mark=self.state.executions)
        self.attempts.append(att)
        runtime = self.runtime
        gen = runtime._invoke_proc(
            self.ref, self.method, self.args, self.kwargs,
            self.caller_machine, self.caller_proclet_id, self.priority,
            self.req_bytes, self.retryable, clone_state=self.state,
            work_items=att.work_items)
        att.process = self.sim.process(
            gen, name=f"clone{att.index}:{self.ref.name}.{self.method}")
        runtime.clone_stats["clones_launched"] += 1
        if runtime.metrics is not None:
            runtime.metrics.count("hedge.clones_launched")
        att.process.subscribe(lambda event, a=att: self._on_attempt(a, event))
        return att

    def _on_attempt(self, att: CloneAttempt, event) -> None:
        if event.ok:
            if self._decided.triggered:
                # Cancellation race: this loser completed in the same
                # virtual instant the winner was decided.  The decision
                # already stands (deterministic event order); just count.
                self.late_completions += 1
                self.runtime.clone_stats["late_completions"] += 1
            else:
                self._decide(att, event.value)
        elif not att.cancelled and not self._decided.triggered:
            self.failures += 1
            if self._may_failover(att):
                self._launch()
                if self.hedge_after is not None:
                    # Restart the hedge clock relative to the failover.
                    self._disarm_hedge()
                    self._arm_hedge()
            elif all(a.process.triggered for a in self.attempts):
                self._decided.fail(event.value)
        self._maybe_settle()

    def _may_failover(self, att: CloneAttempt) -> bool:
        if len(self.attempts) >= self.clone_to:
            return False
        if self.retryable:
            return True
        # Non-retryable: failover only when the failed attempt provably
        # never started executing the method body (at-most-once).
        # Attempts run sequentially in this mode, so the executions
        # delta since launch is attributable to this attempt alone.
        return self.state.executions == att.exec_mark

    def _decide(self, winner: CloneAttempt, value: Any) -> None:
        winner.won = True
        self.winner = winner.index
        self.decided_at = self.sim.now
        runtime = self.runtime
        runtime.clone_stats["calls_won"] += 1
        if runtime.metrics is not None:
            runtime.metrics.count("hedge.calls_won")
        self._decided.succeed(value)
        for att in self.attempts:
            if att is not winner:
                self._cancel_attempt(att)
        self._disarm_hedge()

    def _cancel_attempt(self, att: CloneAttempt) -> None:
        proc = att.process
        if proc.triggered:
            return  # already finished on its own — nothing to reclaim
        att.cancelled = True
        sim = self.sim
        # 1. Reclaim CPU work: remove the loser's fluid items from their
        #    schedulers (capacity back this instant) and deregister them
        #    from the owner proclet so a migration in flight cannot
        #    reattach them at the destination.
        for item in att.work_items:
            if item.active:
                sched = item._sched
                if sched is not None:
                    sched.cancel(item)
            owner = item.owner
            if owner is not None:
                owner._active_cpu.discard(item)
        # 2. Tombstone the timer the attempt is parked on (retry backoff,
        #    call-overhead or network-hop delay) through the real
        #    cancellation machinery — the heap/wheel entry is reclaimed,
        #    not leaked.  Shared events (migration gates, resource
        #    completions) are left alone: interrupt() detaches this
        #    process from them without disturbing other waiters.
        target = proc.target
        if target is not None and type(target).__name__ == "Timeout":
            sim.cancel(target)
        # 3. Kill the attempt process.
        proc.interrupt(CloneCancelled(
            f"clone {att.index} of {self.ref.name}.{self.method} lost"))
        self.losers_cancelled += 1
        runtime = self.runtime
        runtime.clone_stats["losers_cancelled"] += 1
        if runtime.metrics is not None:
            runtime.metrics.count("hedge.losers_cancelled")
        tr = sim.tracer
        if tr is not None:
            tr.instant("hedge", f"cancel clone {att.index}",
                       parent=self._span)

    # -- hedge timer ------------------------------------------------------
    def _arm_hedge(self) -> None:
        if self._decided.triggered or len(self.attempts) >= self.clone_to:
            return
        self._hedge_timer = self.sim.timeout(self.hedge_after)
        self._hedge_timer.subscribe(self._on_hedge_timer)

    def _on_hedge_timer(self, _event) -> None:
        self._hedge_timer = None
        if self._decided.triggered or len(self.attempts) >= self.clone_to:
            return
        self.hedges_fired += 1
        self.runtime.clone_stats["hedges_fired"] += 1
        if self.runtime.metrics is not None:
            self.runtime.metrics.count("hedge.hedges_fired")
        tr = self.sim.tracer
        if tr is not None:
            tr.instant("hedge", f"hedge clone {len(self.attempts)}",
                       parent=self._span)
        self._launch()
        self._arm_hedge()

    def _disarm_hedge(self) -> None:
        timer = self._hedge_timer
        self._hedge_timer = None
        if timer is not None and not timer.processed:
            self.sim.cancel(timer)

    # -- settlement -------------------------------------------------------
    @property
    def decided(self) -> bool:
        return self._decided.triggered

    @property
    def settled(self) -> bool:
        """Decision made and every attempt process finished."""
        return (self._decided.triggered
                and all(a.process.triggered for a in self.attempts))

    def _maybe_settle(self) -> None:
        if self.settled:
            self.runtime._unregister_clone_call(self)

    def __repr__(self) -> str:
        state = ("settled" if self.settled
                 else "decided" if self.decided else "racing")
        return (f"<CloneCall {self.ref.name}.{self.method} "
                f"x{self.clone_to} {state}>")
