"""Virtual-time failure detection: heartbeats, suspicion, confirmation.

The detector is the control-plane half of the recovery subsystem.  A
single DES process probes every machine each ``heartbeat_interval``; a
down machine accumulates missed heartbeats and walks the

    ``ALIVE -> SUSPECTED -> DEAD``

state machine.  *Suspected* machines are excluded from placement (the
global scheduler stops targeting them before fail-stop is confirmed —
a wrongly suspected machine merely receives no new proclets for a few
heartbeats); only a *confirmed* death triggers recovery.  A restored
machine snaps back to ``ALIVE`` on its next good heartbeat.

Heartbeats are modeled as control-plane probes: they advance virtual
time but consume no NIC bandwidth, matching how the simulator treats
other control traffic (scheduler stat collection, split decisions).

Probing an up machine that is already ``ALIVE`` with zero misses is a
no-op, so at 1000 machines the naive every-machine sweep spends almost
all of its time confirming what it already knows.  When the detector is
given a runtime (the :class:`~repro.ft.RecoveryManager` wires this), it
keeps a *watch set* instead: machine ids enter it from the runtime's
failure hook and leave once a probe finds them up and ``ALIVE`` again,
so each tick probes only machines whose answer could differ from last
tick's.  The watch set is iterated in machine-id order — the same
relative order the full sweep visits them — so transitions, listener
calls, and metrics fire identically either way.
"""

from __future__ import annotations

import enum
from typing import Callable, Dict, Generator, List, Optional, Set

from .config import RecoveryConfig


class MachineHealth(enum.Enum):
    ALIVE = "alive"
    SUSPECTED = "suspected"
    DEAD = "dead"


class FailureDetector:
    """Heartbeat/timeout failure detector over a simulated cluster."""

    def __init__(self, cluster, config: RecoveryConfig = RecoveryConfig(),
                 metrics=None, runtime=None):
        self.cluster = cluster
        self.sim = cluster.sim
        self.config = config
        self.metrics = metrics
        #: Watch set of machine ids whose next probe could do something
        #: (down, or up but not yet back to ALIVE).  ``None`` without a
        #: runtime to hook: failures then only surface via the full
        #: sweep, so every tick must probe every machine.
        self._watch: Optional[Set[int]] = None
        if runtime is not None:
            self._watch = {m.id for m in cluster.machines if not m.up}
            self._by_id = {m.id: m for m in cluster.machines}
            runtime.on_machine_failure(self._note_failure)
        self._missed: Dict[int, int] = {}       # machine id -> misses
        self._state: Dict[int, MachineHealth] = {}
        self._down_since: Dict[int, float] = {}
        self._spans: Dict[int, object] = {}      # open ft-detect spans
        self.suspects = 0
        self.confirms = 0
        self.recoveries = 0   # machines seen coming back ALIVE
        #: Machines currently in SUSPECTED (not yet confirmed dead, not
        #: yet back alive) — maintained on transitions so O(1) callers
        #: (the shard autoscaler's freeze gate) need no sweep.
        self.suspected_count = 0
        self._suspect_listeners: List[Callable] = []
        self._confirm_listeners: List[Callable] = []
        self._alive_listeners: List[Callable] = []
        self._process = self.sim.process(self._loop(), name="ft-detector")

    # -- queries -------------------------------------------------------------
    def state(self, machine) -> MachineHealth:
        return self._state.get(machine.id, MachineHealth.ALIVE)

    def is_suspected(self, machine) -> bool:
        """True while placement must avoid *machine* (suspected or
        confirmed dead)."""
        return self.state(machine) is not MachineHealth.ALIVE

    def eligible(self, machine) -> bool:
        """Placement health gate: may new proclets target *machine*?"""
        return self.state(machine) is MachineHealth.ALIVE

    def suspected_machines(self) -> List:
        return [m for m in self.cluster.machines if self.is_suspected(m)]

    def any_suspected(self) -> bool:
        """True while at least one machine sits in the SUSPECTED window
        (verdict uncertain: neither confirmed dead nor back alive).
        Confirmed-dead machines do NOT count — freezing on them forever
        would never unfreeze a consumer."""
        return self.suspected_count > 0

    # -- listeners ------------------------------------------------------------
    def on_suspect(self, fn: Callable) -> None:
        self._suspect_listeners.append(fn)

    def on_confirm(self, fn: Callable) -> None:
        """Subscribe ``fn(machine)`` to confirmed deaths — this is the
        trigger the :class:`~repro.ft.RecoveryManager` recovers on."""
        self._confirm_listeners.append(fn)

    def on_alive(self, fn: Callable) -> None:
        self._alive_listeners.append(fn)

    # -- the probe loop --------------------------------------------------------
    def _note_failure(self, machine, _lost=None) -> None:
        self._watch.add(machine.id)

    def _loop(self) -> Generator:
        timeout = self.sim.timeout
        interval = self.config.heartbeat_interval
        watch = self._watch
        while True:
            yield timeout(interval)
            if watch is None:
                for machine in self.cluster.machines:
                    self._probe(machine)
                continue
            if not watch:
                continue
            # Machine-id order == cluster order: transitions fire in the
            # same relative order the full sweep would produce.
            for mid in sorted(watch):
                machine = self._by_id[mid]
                self._probe(machine)
                if machine.up:
                    # Probed up: now ALIVE with zero misses — the state
                    # the sweep's no-op branch maintains for everyone.
                    watch.discard(mid)

    def _probe(self, machine) -> None:
        mid = machine.id
        state = self._state.get(mid, MachineHealth.ALIVE)
        if machine.up:
            if state is not MachineHealth.ALIVE:
                self._transition_alive(machine, state)
            self._missed[mid] = 0
            return
        missed = self._missed.get(mid, 0) + 1
        self._missed[mid] = missed
        self._down_since.setdefault(mid, self.sim.now)
        if state is MachineHealth.ALIVE \
                and missed >= self.config.suspect_after:
            self._transition_suspected(machine)
        elif state is MachineHealth.SUSPECTED \
                and missed >= self.config.confirm_after:
            self._transition_dead(machine)

    # -- transitions -----------------------------------------------------------
    def _transition_suspected(self, machine) -> None:
        self._state[machine.id] = MachineHealth.SUSPECTED
        self.suspects += 1
        self.suspected_count += 1
        if self.metrics is not None:
            self.metrics.count("ft.suspects")
        tr = self.sim.tracer
        if tr is not None:
            self._spans[machine.id] = tr.begin(
                "ft-detect", f"detect {machine.name}",
                track=f"machine:{machine.name}",
                missed=self._missed[machine.id])
        for fn in self._suspect_listeners:
            fn(machine)

    def _transition_dead(self, machine) -> None:
        self._state[machine.id] = MachineHealth.DEAD
        self.confirms += 1
        self.suspected_count -= 1
        if self.metrics is not None:
            self.metrics.count("ft.confirms")
            down = self._down_since.get(machine.id)
            if down is not None:
                self.metrics.observe("ft.detect_latency",
                                     self.sim.now - down)
        tr = self.sim.tracer
        if tr is not None:
            tr.end(self._spans.pop(machine.id, None), outcome="confirmed")
        for fn in self._confirm_listeners:
            fn(machine)

    def _transition_alive(self, machine, previous: MachineHealth) -> None:
        self._state[machine.id] = MachineHealth.ALIVE
        self._down_since.pop(machine.id, None)
        if previous is MachineHealth.SUSPECTED:
            self.suspected_count -= 1
        self.recoveries += 1
        if self.metrics is not None:
            self.metrics.count("ft.machines_back")
        tr = self.sim.tracer
        if tr is not None:
            # Only a SUSPECTED machine still has an open detect span; a
            # restore after confirmation closed it already.
            tr.end(self._spans.pop(machine.id, None),
                   outcome="false-positive")
        for fn in self._alive_listeners:
            fn(machine, previous)

    def __repr__(self) -> str:
        return (f"<FailureDetector suspects={self.suspects} "
                f"confirms={self.confirms} back={self.recoveries}>")
