"""The recovery manager: policies, checkpoints, standbys, self-healing.

One :class:`RecoveryManager` per :class:`~repro.core.Quicksand` (created
by ``qs.enable_recovery()``) owns the whole fault-tolerance control
loop:

* a :class:`~repro.ft.detector.FailureDetector` walks crashed machines
  through suspected -> confirmed-dead (placement avoids suspected
  machines via the policy's health gate);
* per-proclet :class:`~repro.ft.config.RecoveryPolicy` registrations
  drive periodic checkpoint copies (NIC + peer-DRAM costs through the
  fluid engine) and hot-standby write mirroring;
* on confirmed death, lost proclets are respawned through the existing
  placement machinery (same id — outstanding refs transparently rebind),
  their state restored per policy, and ``ProcletLost``-blocked callers
  are woken by the runtime's budgeted transparent retry;
* when post-crash capacity cannot host a recovering proclet, registered
  lower-priority proclets are shed to make room.

Modeling note (see ``docs/recovery.md``): CHECKPOINT restores from
*genuinely captured* snapshots, so its bounded data loss is real.
REPLICATE charges mirroring costs continuously but reads the promoted
content from the dead proclet's simulation object (a standby that
mirrored every write holds exactly that state); LINEAGE re-derives
state by replaying its log through real invocations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Generator, List, Optional, Set, Tuple

from ..cluster import Machine, OutOfMemory, Priority
from ..runtime import (DeadProclet, InvalidPlacement, MachineFailed, Proclet,
                       ProcletRef, ProcletStatus)
from .config import RecoveryConfig, RecoveryPolicy
from .detector import FailureDetector
from .lineage import LineageLog

#: Heap-byte tolerance for convergence checks (footprints are floats).
_BYTE_EPS = 1.0


@dataclass
class _Protection:
    """Registration record for one protected proclet id."""

    policy: RecoveryPolicy
    factory: Callable[[], Proclet]
    priority: Priority
    lineage: Optional[LineageLog]


@dataclass
class _Snapshot:
    """One stored checkpoint: state + where its bytes are held."""

    state: Any
    nbytes: float
    peer: Machine
    peer_incarnation: int
    taken_at: float

    def valid(self) -> bool:
        return self.peer.up and self.peer.incarnation == \
            self.peer_incarnation


class StandbyProclet(Proclet):
    """Hot-standby ballast mirroring a REPLICATE primary's heap.

    A real (spawned, located, DRAM-charged) proclet, so every existing
    accounting invariant covers standby memory for free.
    """

    def __init__(self, primary_name: str = ""):
        super().__init__()
        self.primary_name = primary_name


class RecoveryManager:
    """Self-healing control loop over a Quicksand runtime."""

    def __init__(self, qs, config: RecoveryConfig = RecoveryConfig()):
        self.qs = qs
        self.runtime = qs.runtime
        self.sim = qs.sim
        self.metrics = qs.metrics
        self.config = config
        self.detector = FailureDetector(qs.cluster, config,
                                        metrics=qs.metrics,
                                        runtime=qs.runtime)
        self._specs: Dict[int, _Protection] = {}
        # Crash bookkeeping, filled synchronously at fail_machine time:
        self._corpses: Dict[int, Proclet] = {}
        # Pids with an in-flight restore: the split/merge controller
        # must not merge away a transiently-empty incarnation that a
        # replay or checkpoint install is still refilling.
        self._restoring: Set[int] = set()
        self._crash_time: Dict[int, float] = {}
        self._lost_host: Dict[int, Machine] = {}
        self._death_state: Dict[int, Tuple[Any, float]] = {}
        # CHECKPOINT: pid -> stored snapshot / in-flight reservation.
        self._snapshots: Dict[int, _Snapshot] = {}
        self._pending: Dict[int, Tuple[Machine, float, int]] = {}
        #: Authoritative total of checkpoint bytes currently reserved on
        #: live peers — the byte-conservation invariant cross-checks the
        #: per-machine view against this.
        self.checkpoint_bytes_held = 0.0
        # REPLICATE: primary pid -> standby ref, and the reverse map.
        self._standbys: Dict[int, ProcletRef] = {}
        self._standby_of: Dict[int, int] = {}
        self._dirty: Dict[int, float] = {}
        self._last_heap: Dict[int, float] = {}
        # Outcomes.
        self.recoveries: Dict[str, int] = {}
        self.failed_recoveries = 0
        self.sheds = 0
        #: Convergence violations (recovered state != expected state);
        #: the chaos invariant checker fails the run on any entry.
        self.convergence_errors: List[str] = []

        self.runtime.recovery = self
        self.runtime.on_machine_failure(self._on_machine_failure)
        self.runtime.on_heap_change(self._on_heap_change)
        self.detector.on_confirm(self._on_confirmed_dead)

    # -- registration ---------------------------------------------------------
    def protect(self, ref: ProcletRef, policy: RecoveryPolicy,
                factory: Optional[Callable[[], Proclet]] = None,
                priority: Priority = Priority.NORMAL,
                lineage: Optional[LineageLog] = None) -> "RecoveryManager":
        """Register *ref* for recovery under *policy*.

        *factory* builds the empty replacement incarnation (default: the
        proclet's class with no arguments).  LINEAGE requires a
        :class:`LineageLog` the application records mutations into.
        *priority* orders shedding: when post-crash capacity cannot host
        a recovering proclet, strictly lower-priority registrations are
        shed to make room.
        """
        proclet = self.runtime.get_proclet(ref.proclet_id)
        if policy is RecoveryPolicy.LINEAGE and lineage is None:
            raise ValueError("LINEAGE protection needs a LineageLog")
        spec = _Protection(policy=policy,
                           factory=factory or type(proclet),
                           priority=priority, lineage=lineage)
        self._specs[ref.proclet_id] = spec
        if policy is RecoveryPolicy.CHECKPOINT:
            self.sim.process(self._checkpoint_loop(ref.proclet_id),
                             name=f"ft-ckpt:{proclet.name}")
        elif policy is RecoveryPolicy.REPLICATE:
            self._arm_standby(ref.proclet_id, proclet)
            self.sim.process(self._mirror_loop(ref.proclet_id),
                             name=f"ft-mirror:{proclet.name}")
        return self

    def unprotect(self, proclet_id: int) -> None:
        """Drop the registration (checkpoint/mirror loops exit on their
        next tick; held checkpoint bytes are released)."""
        self._specs.pop(proclet_id, None)
        self._drop_snapshot(proclet_id)
        standby = self._standbys.pop(proclet_id, None)
        if standby is not None:
            self._standby_of.pop(standby.proclet_id, None)
            if self.runtime._proclets.get(standby.proclet_id) is not None:
                self.runtime.destroy(standby)
        self._dirty.pop(proclet_id, None)
        self._last_heap.pop(proclet_id, None)

    def covers(self, proclet_id: int) -> bool:
        spec = self._specs.get(proclet_id)
        return spec is not None and spec.policy is not RecoveryPolicy.NONE

    def policy_of(self, proclet_id: int) -> RecoveryPolicy:
        spec = self._specs.get(proclet_id)
        return spec.policy if spec is not None else RecoveryPolicy.NONE

    # -- transparent-retry support (called by NuRuntime._invoke_proc) --------
    def retry_delay(self, proclet_id: int, attempt: int,
                    exc: BaseException) -> Optional[float]:
        """Backoff before the next transparent retry of a call that hit
        a lost proclet, or None to surface the failure (uncovered target
        or exhausted budget)."""
        if not self.covers(proclet_id):
            return None
        config = self.config
        if attempt >= config.retry_budget:
            return None
        delay = config.retry_backoff * \
            config.retry_backoff_multiplier ** attempt
        if config.retry_jitter > 0.0:
            rng = self.sim.random.stream("ft.retry")
            delay *= 1.0 + config.retry_jitter * rng.random()
        return delay

    # -- placement health / accounting (consumed by scheduler + chaos) -------
    def eligible(self, machine: Machine) -> bool:
        return self.detector.eligible(machine)

    def reserved_on(self, machine: Machine) -> float:
        """Bytes of *machine*'s DRAM held by stored or in-flight
        checkpoint snapshots (for the memory-conservation invariant).
        Standby heaps are ordinary proclet footprints and need no term.
        """
        if not machine.up:
            return 0.0
        total = 0.0
        for peer, nbytes, inc in self._pending.values():
            if peer is machine and inc == machine.incarnation:
                total += nbytes
        for snap in self._snapshots.values():
            if snap.peer is machine and \
                    snap.peer_incarnation == machine.incarnation:
                total += snap.nbytes
        return total

    # -- crash bookkeeping (synchronous, from fail_machine) -------------------
    def _on_machine_failure(self, machine: Machine,
                            lost: List[Proclet]) -> None:
        now = self.sim.now
        for proclet in lost:
            pid = proclet.id
            primary = self._standby_of.pop(pid, None)
            if primary is not None:
                # A standby died; the mirror loop re-arms a fresh one.
                if self._standbys.get(primary) is not None and \
                        self._standbys[primary].proclet_id == pid:
                    del self._standbys[primary]
                continue
            self._corpses[pid] = proclet
            self._crash_time[pid] = now
            self._lost_host[pid] = machine
            spec = self._specs.get(pid)
            if spec is not None and spec.policy is RecoveryPolicy.REPLICATE:
                # Promotion content oracle: a standby that mirrored every
                # write holds exactly the death-time state.
                self._death_state[pid] = proclet.ft_capture()
        # Checkpoint bytes stored on the crashed machine are gone.
        for pid, snap in list(self._snapshots.items()):
            if snap.peer is machine:
                del self._snapshots[pid]
                self.checkpoint_bytes_held -= snap.nbytes
        for pid, (peer, nbytes, _inc) in list(self._pending.items()):
            if peer is machine:
                del self._pending[pid]
                self.checkpoint_bytes_held -= nbytes

    # -- recovery (triggered by detector confirmation) ------------------------
    def _on_confirmed_dead(self, machine: Machine) -> None:
        pids = sorted(pid for pid, host in self._lost_host.items()
                      if host is machine and self.covers(pid))
        if pids:
            self.sim.process(self._recover_proc(machine, pids),
                             name=f"ft-recover:{machine.name}")

    def _recover_proc(self, machine: Machine,
                      pids: List[int]) -> Generator:
        for pid in pids:
            spec = self._specs.get(pid)
            if spec is None or not self.runtime.is_lost(pid):
                continue  # unprotected meanwhile, or already recovered
            self._restoring.add(pid)
            try:
                yield from self._recover_one(pid, spec)
            except (MachineFailed, OutOfMemory, DeadProclet):
                # The chosen host (or a restore peer) died mid-recovery,
                # or filled up while the restore copy was in flight; a
                # new crash re-queues this pid for the next confirm.
                self.failed_recoveries += 1
                if self.metrics is not None:
                    self.metrics.count("ft.failed_recoveries")
            finally:
                self._restoring.discard(pid)
                self._poke_splitmerge(pid)

    def restoring(self, proclet_id: int) -> bool:
        """True while *proclet_id*'s restore is still in flight."""
        return proclet_id in self._restoring

    def _poke_splitmerge(self, pid: int) -> None:
        """Re-run the split/merge sizing check it sat out while
        restoring (the controller skips ``restoring`` pids)."""
        controller = getattr(self.qs, "shard_controller", None)
        proclet = self.runtime._proclets.get(pid)
        if controller is not None and proclet is not None:
            controller._on_heap_change(proclet)

    def _recover_one(self, pid: int, spec: _Protection) -> Generator:
        config = self.config
        policy = spec.policy
        corpse = self._corpses.get(pid)
        name = corpse.name if corpse is not None else f"recovered#{pid}"
        tr = self.sim.tracer
        span = None
        if tr is not None:
            span = tr.begin("ft-restore", f"restore {name}",
                            track=f"proclet:{name}", policy=policy.value)
        yield self.sim.timeout(config.restart_overhead)

        fresh = spec.factory()
        restore_bytes, snap, standby = self._restore_plan(pid, spec)
        machine = self._pick_machine(fresh, restore_bytes, spec, standby)
        if machine is None:
            self.failed_recoveries += 1
            if self.metrics is not None:
                self.metrics.count("ft.failed_recoveries")
            if tr is not None:
                tr.end(span, outcome="no-capacity")
            return None

        if standby is not None and standby.machine is machine:
            # Promote in place: free the mirrored ballast, take over the
            # standby's machine (no state moves — it already lives here).
            self._standby_of.pop(standby.id, None)
            self._standbys.pop(pid, None)
            self.runtime.destroy(ProcletRef(self.runtime, standby.id,
                                            standby.name))
        ref = self.runtime.respawn(fresh, machine, pid, name=name)

        if policy is RecoveryPolicy.CHECKPOINT and snap is not None:
            if snap.peer is not machine:
                # Gate the incarnation while the snapshot is on the
                # wire: a transparently retried write landing before the
                # restore would be overwritten (or collide with) the
                # snapshot install.  Blocked callers resume — and see
                # restored state — once the gate opens.
                gate = self.sim.event()
                fresh._status = ProcletStatus.MIGRATING
                fresh._migration_gate = gate
                try:
                    yield self.runtime.fabric.transfer(
                        snap.peer, machine, snap.nbytes,
                        name=f"ft-restore:{name}")
                finally:
                    if fresh._status is ProcletStatus.MIGRATING:
                        fresh._status = ProcletStatus.RUNNING
                    if fresh._migration_gate is gate:
                        fresh._migration_gate = None
                    if not gate.triggered:
                        gate.succeed()
            if self.runtime._proclets.get(pid) is not fresh:
                # The new host crashed while the snapshot was on the
                # wire (a transfer only fails with its *source*; the
                # destination dying just wastes the copy).  Restoring
                # onto the corpse would charge a wiped DRAM ledger.
                raise MachineFailed(f"{name} died again mid-restore")
            fresh.ft_restore(snap.state)
            self._check_convergence(fresh, snap.nbytes, policy)
            if corpse is not None and self.metrics is not None:
                self.metrics.observe(
                    "ft.data_loss_bytes",
                    max(0.0, corpse.heap_bytes - snap.nbytes))
        elif policy is RecoveryPolicy.REPLICATE:
            state, nbytes = self._death_state.pop(pid, (None, 0.0))
            if standby is not None and state is not None:
                fresh.ft_restore(state)
                self._check_convergence(fresh, nbytes, policy)
                if self.metrics is not None:
                    self.metrics.observe("ft.data_loss_bytes", 0.0)
            # else: standby was lost too — empty respawn (RESTART-grade).
            self._arm_standby(pid, fresh)
        elif policy is RecoveryPolicy.LINEAGE:
            replay_span = None
            if tr is not None:
                replay_span = tr.begin("ft-replay", f"replay {name}",
                                       parent=span, track=f"proclet:{name}")
            yield from spec.lineage.replay(self.runtime, ref)
            if tr is not None:
                tr.end(replay_span,
                       ops=len(spec.lineage.ops_for(pid)))
            if self.runtime._proclets.get(pid) is fresh:
                self.convergence_errors.extend(spec.lineage.verify(fresh))
            # else: this incarnation died mid-replay; the recovery that
            # replaced it owns the authoritative replay + verify.
        # RESTART: nothing to restore.

        self._corpses.pop(pid, None)
        self._lost_host.pop(pid, None)
        crash_t = self._crash_time.pop(pid, None)
        self.recoveries[policy.value] = \
            self.recoveries.get(policy.value, 0) + 1
        if self.metrics is not None:
            self.metrics.count("ft.recoveries")
            self.metrics.count(f"ft.recoveries.{policy.value}")
            if crash_t is not None:
                self.metrics.observe("ft.mttr", self.sim.now - crash_t)
        if tr is not None:
            tr.end(span, machine=machine.name,
                   heap=int(fresh.heap_bytes))
        return ref

    def _restore_plan(self, pid, spec):
        """What will be restored, and how many heap bytes it needs."""
        snap = None
        standby_p = None
        restore_bytes = 0.0
        if spec.policy is RecoveryPolicy.CHECKPOINT:
            snap = self._snapshots.get(pid)
            if snap is not None and not snap.valid():
                self._drop_snapshot(pid)
                snap = None
            if snap is not None:
                restore_bytes = snap.nbytes
        elif spec.policy is RecoveryPolicy.REPLICATE:
            ref = self._standbys.get(pid)
            if ref is not None:
                standby_p = self.runtime._proclets.get(ref.proclet_id)
            if standby_p is not None:
                _state, nbytes = self._death_state.get(pid, (None, 0.0))
                restore_bytes = nbytes
        elif spec.policy is RecoveryPolicy.LINEAGE:
            corpse = self._corpses.get(pid)
            if corpse is not None:
                restore_bytes = corpse.heap_bytes
        return restore_bytes, snap, standby_p

    def _pick_machine(self, fresh: Proclet, restore_bytes: float,
                      spec: _Protection,
                      standby: Optional[Proclet]) -> Optional[Machine]:
        if standby is not None:
            # Promotion frees the standby's mirrored ballast in place,
            # so its machine can host the restored heap by construction.
            return standby.machine
        need = fresh.footprint + restore_bytes
        machine = self._try_place(fresh, need)
        if machine is None:
            self._shed_for(need, spec.priority)
            machine = self._try_place(fresh, need)
        return machine

    def _try_place(self, fresh: Proclet, need: float) -> Optional[Machine]:
        from ..core.resource import ResourceKind

        kind = getattr(fresh, "kind", ResourceKind.MEMORY)
        if kind is ResourceKind.COMPUTE:
            try:
                return self.qs._place(fresh)
            except InvalidPlacement:
                return None
        return self.qs.placement.best_for_memory(need)

    def _shed_for(self, need: float, priority: Priority) -> None:
        """Destroy strictly lower-priority registered proclets until
        some machine could fit *need* bytes (post-crash load shedding)."""
        victims = sorted(
            (pid for pid, spec in self._specs.items()
             if spec.priority > priority
             and self.runtime._proclets.get(pid) is not None),
            key=lambda pid: (-self._specs[pid].priority,
                             -self.runtime._proclets[pid].footprint),
        )
        for pid in victims:
            if self.qs.placement.best_for_memory(need) is not None:
                return
            victim = self.runtime._proclets[pid]
            self.runtime.tracer.emit(
                "ft", f"shed {victim.name} (priority "
                f"{self._specs[pid].priority.name.lower()}) to make room")
            self.unprotect(pid)
            self.runtime.destroy(ProcletRef(self.runtime, pid,
                                            victim.name))
            self.sheds += 1
            if self.metrics is not None:
                self.metrics.count("ft.sheds")

    def _check_convergence(self, fresh: Proclet, expected_bytes: float,
                           policy: RecoveryPolicy) -> None:
        if abs(fresh.heap_bytes - expected_bytes) > _BYTE_EPS:
            self.convergence_errors.append(
                f"{fresh.name}: {policy.value} recovery restored "
                f"{fresh.heap_bytes:.1f} B, expected "
                f"{expected_bytes:.1f} B")

    # -- CHECKPOINT machinery ---------------------------------------------------
    def _checkpoint_loop(self, pid: int) -> Generator:
        config = self.config
        while True:
            yield self.sim.timeout(config.checkpoint_interval)
            spec = self._specs.get(pid)
            if spec is None or spec.policy is not RecoveryPolicy.CHECKPOINT:
                return
            proclet = self.runtime._proclets.get(pid)
            if proclet is None:
                if self.runtime.is_lost(pid):
                    continue  # awaiting recovery; resume checkpointing after
                return  # destroyed for good
            if proclet._status is not ProcletStatus.RUNNING:
                continue  # mid-migration/split; catch the next interval
            state, nbytes = proclet.ft_capture()
            if state is None or nbytes <= 0.0:
                continue
            peer = self.qs.placement.best_for_memory(
                nbytes, exclude=(proclet.machine,))
            if peer is None:
                if self.metrics is not None:
                    self.metrics.count("ft.checkpoint.skipped")
                continue
            yield from self._copy_snapshot(pid, proclet, state, nbytes,
                                           peer)

    def _copy_snapshot(self, pid: int, proclet: Proclet, state,
                       nbytes: float, peer: Machine) -> Generator:
        try:
            peer.memory.reserve(nbytes)
        except OutOfMemory:
            if self.metrics is not None:
                self.metrics.count("ft.checkpoint.skipped")
            return
        self._pending[pid] = (peer, nbytes, peer.incarnation)
        self.checkpoint_bytes_held += nbytes
        tr = self.sim.tracer
        span = None
        if tr is not None:
            span = tr.begin("ft-checkpoint", f"checkpoint {proclet.name}",
                            track=f"proclet:{proclet.name}",
                            bytes=int(nbytes), peer=peer.name)
        src = proclet.machine
        try:
            if src is not peer:
                yield self.runtime.fabric.transfer(
                    src, peer, nbytes, name=f"ft-ckpt:{proclet.name}")
        except MachineFailed:
            # Source or peer died mid-copy; reconcile the reservation
            # against the peer's incarnation (crash wiped it already).
            entry = self._pending.pop(pid, None)
            if entry is not None:
                self.checkpoint_bytes_held -= nbytes
                if peer.up and peer.incarnation == entry[2]:
                    peer.memory.release(nbytes)
            if tr is not None:
                tr.end(span, outcome="failed")
            return
        entry = self._pending.pop(pid, None)
        if entry is None:
            # The peer crashed mid-copy (reservation pruned by the
            # failure hook); nothing committed.
            if tr is not None:
                tr.end(span, outcome="peer-died")
            return
        self._drop_snapshot(pid)  # release the previous snapshot's bytes
        self._snapshots[pid] = _Snapshot(
            state=state, nbytes=nbytes, peer=peer,
            peer_incarnation=entry[2], taken_at=self.sim.now)
        # _pending already added these bytes to the held total; storing
        # the snapshot keeps them held, so no adjustment here.
        if self.metrics is not None:
            self.metrics.count("ft.checkpoints")
            self.metrics.count("ft.checkpoint.bytes", nbytes)
        if tr is not None:
            tr.end(span)

    def _drop_snapshot(self, pid: int) -> None:
        snap = self._snapshots.pop(pid, None)
        if snap is None:
            return
        self.checkpoint_bytes_held -= snap.nbytes
        if snap.valid():
            snap.peer.memory.release(snap.nbytes)

    # -- REPLICATE machinery ----------------------------------------------------
    def _arm_standby(self, pid: int, primary: Proclet) -> None:
        standby = StandbyProclet(primary_name=primary.name)
        peer = self.qs.placement.best_for_memory(
            primary.footprint + standby.BASE_FOOTPRINT,
            exclude=(primary.machine,))
        if peer is None:
            if self.metrics is not None:
                self.metrics.count("ft.standby.unplaced")
            return  # the mirror loop retries on its next tick
        ref = self.runtime.spawn(standby, peer,
                                 name=f"{primary.name}.standby")
        self._standbys[pid] = ref
        self._standby_of[ref.proclet_id] = pid
        # The full current heap is dirty: the first mirror sync pays the
        # initial copy.
        self._dirty[pid] = primary.heap_bytes
        self._last_heap[pid] = primary.heap_bytes
        if self.metrics is not None:
            self.metrics.count("ft.standbys")

    def _mirror_loop(self, pid: int) -> Generator:
        config = self.config
        while True:
            yield self.sim.timeout(config.mirror_interval)
            spec = self._specs.get(pid)
            if spec is None or spec.policy is not RecoveryPolicy.REPLICATE:
                return
            primary = self.runtime._proclets.get(pid)
            if primary is None:
                if self.runtime.is_lost(pid):
                    continue  # recovery re-arms the standby
                return
            ref = self._standbys.get(pid)
            standby = (self.runtime._proclets.get(ref.proclet_id)
                       if ref is not None else None)
            if standby is None:
                self._arm_standby(pid, primary)
                continue
            dirty = self._dirty.get(pid, 0.0)
            if dirty > 0.0 and primary.machine is not standby.machine:
                try:
                    yield self.runtime.fabric.transfer(
                        primary.machine, standby.machine, dirty,
                        name=f"ft-mirror:{primary.name}")
                except MachineFailed:
                    continue  # an endpoint died mid-sync; re-assess
                if self.metrics is not None:
                    self.metrics.count("ft.mirror.bytes", dirty)
            self._dirty[pid] = max(0.0, self._dirty.get(pid, 0.0) - dirty)
            # Size-sync the standby's mirrored ballast.
            primary = self.runtime._proclets.get(pid)
            standby = self.runtime._proclets.get(ref.proclet_id)
            if primary is None or standby is None:
                continue
            diff = primary.heap_bytes - standby.heap_bytes
            try:
                if diff > 0:
                    standby.heap_alloc(diff)
                elif diff < 0:
                    standby.heap_free(-diff)
            except OutOfMemory:
                if self.metrics is not None:
                    self.metrics.count("ft.mirror.stalled")

    def _on_heap_change(self, proclet: Proclet) -> None:
        pid = proclet.id
        if pid not in self._last_heap or pid in self._standby_of:
            return
        if self.runtime._proclets.get(pid) is not proclet:
            return
        delta = abs(proclet.heap_bytes - self._last_heap[pid])
        self._dirty[pid] = self._dirty.get(pid, 0.0) + delta
        self._last_heap[pid] = proclet.heap_bytes

    # -- reporting ----------------------------------------------------------------
    def stats(self) -> Dict[str, float]:
        out: Dict[str, float] = {
            "suspects": self.detector.suspects,
            "confirms": self.detector.confirms,
            "failed_recoveries": self.failed_recoveries,
            "sheds": self.sheds,
            "checkpoint_bytes_held": self.checkpoint_bytes_held,
            "convergence_errors": len(self.convergence_errors),
        }
        for policy, count in sorted(self.recoveries.items()):
            out[f"recoveries.{policy}"] = count
        return out

    def __repr__(self) -> str:
        total = sum(self.recoveries.values())
        return (f"<RecoveryManager protected={len(self._specs)} "
                f"recovered={total} failed={self.failed_recoveries} "
                f"sheds={self.sheds}>")
