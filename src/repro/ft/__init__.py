"""Fault tolerance: failure detection and proclet recovery policies.

The runtime alone gives fail-stop semantics: a machine crash kills its
proclets and callers see :class:`~repro.runtime.errors.ProcletLost`.
This package adds the recovery half (§5 argues granular proclets make
fault isolation *and* recovery cheap): a virtual-time heartbeat
:class:`FailureDetector`, per-proclet :class:`RecoveryPolicy` choices
(restart / checkpoint / hot replica / lineage replay), and a
:class:`RecoveryManager` that re-places lost proclets through the
normal scheduler machinery and transparently retries interrupted calls.

Everything here is opt-in via ``Quicksand.enable_recovery()``; without
it, trajectories are bit-identical to builds predating this package.
"""

from .config import RecoveryConfig, RecoveryPolicy
from .detector import FailureDetector, MachineHealth
from .lineage import LineageLog
from .manager import RecoveryManager, StandbyProclet

__all__ = [
    "FailureDetector",
    "LineageLog",
    "MachineHealth",
    "RecoveryConfig",
    "RecoveryManager",
    "RecoveryPolicy",
    "StandbyProclet",
]
