"""Lineage logs: re-derive lost state by replaying upstream inputs.

Ray-style recovery for append/put-shaped state (``ds.queue`` /
``ds.vector`` shards): instead of checkpointing bytes, the application
records the *mutations* that built a shard's state; after a crash the
recovery manager respawns the shard empty and replays the log through
ordinary invocations — paying the replay's CPU and wire costs through
the fluid engine, exactly like the original writes did.

Record mutations at *apply* time (when the write's completion event
succeeds), not at submit time: a write that was still in flight when
the machine died is not part of the lost state — it is re-driven by
the caller's transparent retry instead, and double-recording it would
make the replayed state diverge from what was actually lost.
:meth:`LineageLog.recording_put` packages that pattern.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple


class LineageLog:
    """Ordered per-proclet log of state-building invocations."""

    def __init__(self):
        # proclet id -> [(method, args, kwargs, req_bytes), ...]
        self._ops: Dict[int, List[Tuple]] = {}
        self.recorded = 0
        self.replayed = 0

    def record(self, proclet_id: int, method: str, *args,
               req_bytes: float = 0.0, **kwargs) -> None:
        """Append one applied mutation to *proclet_id*'s log."""
        self._ops.setdefault(proclet_id, []).append(
            (method, args, kwargs, req_bytes))
        self.recorded += 1

    def recording_put(self, runtime, ref, key, nbytes: float,
                      value: Any = None):
        """Issue ``mp_put`` through *runtime* and log it iff it applied.

        Returns the invocation event; the log entry is appended from the
        event's completion callback, so in-flight-at-crash writes are
        never recorded (their redo belongs to the caller's retry).
        """
        ev = runtime.invoke(ref, "mp_put", key, nbytes, value,
                            req_bytes=nbytes)

        def _on_done(event) -> None:
            if event.ok:
                self.record(ref.proclet_id, "mp_put", key, nbytes, value,
                            req_bytes=nbytes)

        ev.subscribe(_on_done)
        return ev

    def ops_for(self, proclet_id: int) -> List[Tuple]:
        return list(self._ops.get(proclet_id, ()))

    def forget(self, proclet_id: int) -> None:
        self._ops.pop(proclet_id, None)

    def replay(self, runtime, ref):
        """Replay *ref*'s log against its (freshly respawned)
        incarnation; a generator to drive as a sim process.

        Ops replay sequentially — lineage re-derivation is ordered by
        construction — and each pays its normal invocation cost.  An op
        rejected with :class:`~repro.runtime.errors.WrongShard` is
        dropped from the log: a split moved that key (and its bytes) to
        a sibling shard after the op was recorded, so it is no longer
        part of this shard's lost state.
        """
        from ..runtime.errors import WrongShard

        ops = self._ops.get(ref.proclet_id, [])
        for op in list(ops):
            method, args, kwargs, req_bytes = op
            try:
                yield runtime.invoke(ref, method, *args,
                                     req_bytes=req_bytes, **kwargs)
            except WrongShard:
                ops.remove(op)
                continue
            self.replayed += 1

    def verify(self, proclet) -> List[str]:
        """Check that every logged ``mp_put`` landed in *proclet* with
        its final logged size; returns a list of divergences (empty =
        converged).  Immune to concurrent post-replay writes of *new*
        keys, unlike comparing raw heap byte totals.
        """
        expected: Dict[Any, float] = {}
        for method, args, _kwargs, _req in self.ops_for(proclet.id):
            if method == "mp_put":
                key, nbytes = args[0], args[1]
                expected[key] = float(nbytes)
        problems = []
        objects = getattr(proclet, "_objects", {})
        lo = getattr(proclet, "range_lo", None)
        hi = getattr(proclet, "range_hi", None)
        for key, nbytes in expected.items():
            # A key split away mid-replay belongs to a sibling shard now.
            if (lo is not None and key < lo) \
                    or (hi is not None and not key < hi):
                continue
            entry = objects.get(key)
            if entry is None:
                problems.append(f"{proclet.name}: lineage key {key!r} "
                                f"missing after replay")
            elif abs(entry[0] - nbytes) > 1e-6:
                problems.append(
                    f"{proclet.name}: lineage key {key!r} has "
                    f"{entry[0]:.0f} B, log says {nbytes:.0f} B")
        return problems

    def __repr__(self) -> str:
        return (f"<LineageLog proclets={len(self._ops)} "
                f"recorded={self.recorded} replayed={self.replayed}>")
