"""Recovery policies and tunables for the fault-tolerance subsystem."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..units import MS, US


class RecoveryPolicy(enum.Enum):
    """What the runtime does for a proclet lost to a machine crash.

    ``NONE``
        Today's fail-stop semantics: the proclet stays dead, callers see
        :class:`~repro.runtime.errors.ProcletLost`, redo logic is the
        application's policy.  Trajectories are bit-identical to runs
        without :mod:`repro.ft`.
    ``RESTART``
        Respawn an empty incarnation from the registered factory.  All
        state is lost; the id (and every outstanding ref) stays valid.
    ``CHECKPOINT``
        Periodic asynchronous heap snapshots to a peer machine (NIC and
        peer-DRAM costs through the fluid engine); restore from the last
        snapshot with data loss bounded by the checkpoint interval.
    ``REPLICATE``
        Hot standby on a peer machine mirroring state writes; on crash
        the primary is promoted onto the standby's machine with zero
        data loss.
    ``LINEAGE``
        Respawn empty, then re-derive state by replaying logged upstream
        inputs (Ray-style) through ordinary invocations.
    """

    NONE = "none"
    RESTART = "restart"
    CHECKPOINT = "checkpoint"
    REPLICATE = "replicate"
    LINEAGE = "lineage"


@dataclass(frozen=True)
class RecoveryConfig:
    """Knobs for one :class:`~repro.ft.RecoveryManager`.

    Defaults are sized so that, with the default retry budget, a
    transparently retried call comfortably outlives detection plus
    restore of its target (detection confirms after
    ``confirm_after * heartbeat_interval`` of virtual time; the retry
    envelope sums to well over 100 ms).
    """

    #: Failure-detector probe period (virtual seconds).
    heartbeat_interval: float = 2 * MS
    #: Missed heartbeats before a machine is *suspected* (placement
    #: stops targeting it, but nothing is recovered yet).
    suspect_after: int = 2
    #: Missed heartbeats before the death is *confirmed* and recovery
    #: of the lost proclets begins.  Must be > suspect_after.
    confirm_after: int = 4
    #: Period of asynchronous heap snapshots under CHECKPOINT.
    checkpoint_interval: float = 50 * MS
    #: Period of mirrored-write synchronization under REPLICATE.
    mirror_interval: float = 10 * MS
    #: Control-plane cost of respawning one proclet.
    restart_overhead: float = 100 * US
    #: Transparent-retry budget for calls that hit a lost proclet.
    retry_budget: int = 8
    #: First retry delay; each further retry multiplies it.
    retry_backoff: float = 500 * US
    retry_backoff_multiplier: float = 2.0
    #: Fraction of the current backoff added as seeded jitter (drawn
    #: from the ``ft.retry`` stream; keeps replays deterministic while
    #: desynchronizing concurrent retriers).
    retry_jitter: float = 0.5

    def __post_init__(self):
        if self.heartbeat_interval <= 0:
            raise ValueError("heartbeat_interval must be positive")
        if self.suspect_after < 1:
            raise ValueError(f"suspect_after must be >= 1: "
                             f"{self.suspect_after}")
        if self.confirm_after <= self.suspect_after:
            raise ValueError(
                f"confirm_after ({self.confirm_after}) must exceed "
                f"suspect_after ({self.suspect_after})")
        if self.checkpoint_interval <= 0 or self.mirror_interval <= 0:
            raise ValueError("checkpoint/mirror intervals must be positive")
        if self.restart_overhead < 0:
            raise ValueError("restart_overhead must be non-negative")
        if self.retry_budget < 0:
            raise ValueError(f"retry_budget must be >= 0: "
                             f"{self.retry_budget}")
        if self.retry_backoff < 0 or self.retry_jitter < 0:
            raise ValueError("retry backoff and jitter must be "
                             "non-negative")
        if self.retry_backoff_multiplier < 1.0:
            raise ValueError("retry_backoff_multiplier must be >= 1")
