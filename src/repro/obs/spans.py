"""Span-based tracing in virtual time.

Where :mod:`repro.trace` logs flat control-plane decisions, this module
records *intervals*: a :class:`Span` has a start and end in virtual
time, a category, an owning track (machine, proclet, scheduler), and a
parent — so a migration nests under the scheduler round that triggered
it and its checkpoint/transfer/commit phases nest under the migration.

The tracer attaches to a :class:`~repro.sim.Simulator` as
``sim.tracer``.  Every instrumentation site in the runtime follows the
same pattern::

    tr = sim.tracer
    if tr is not None:
        span = tr.begin("migration", name, parent=parent, ...)

so with tracing off (``sim.tracer is None``, the default) the cost is
one attribute read and a branch — nothing allocates, nothing is
recorded, and ``benchmarks/bench_kernel.py`` numbers are unaffected.

Tracing must never perturb the simulation: the tracer schedules no
events, draws no randomness, and only reads ``sim.now``.  A traced run
therefore takes the exact same trajectory as an untraced one, and two
same-seed traced runs produce identical spans (see :meth:`digest`).
"""

from __future__ import annotations

import hashlib
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional


class Span:
    """One traced interval of virtual time."""

    __slots__ = ("sid", "parent_id", "category", "name", "track",
                 "start", "end", "args")

    def __init__(self, sid: int, parent_id: Optional[int], category: str,
                 name: str, track: str, start: float,
                 args: Dict[str, Any]):
        self.sid = sid
        self.parent_id = parent_id
        self.category = category
        self.name = name
        self.track = track
        self.start = start
        self.end: Optional[float] = None
        self.args = args

    @property
    def closed(self) -> bool:
        return self.end is not None

    @property
    def duration(self) -> float:
        """Virtual seconds covered (0.0 while still open)."""
        return 0.0 if self.end is None else self.end - self.start

    def canonical(self) -> str:
        """Stable one-line serialization (digest input).

        Floats are rendered with ``repr`` so the line is bit-faithful to
        the virtual timestamps; args are sorted by key.
        """
        args = ",".join(f"{k}={self.args[k]!r}" for k in sorted(self.args))
        return (f"{self.sid}|{self.parent_id}|{self.category}|{self.name}|"
                f"{self.track}|{self.start!r}|{self.end!r}|{args}")

    def __repr__(self) -> str:
        end = f"{self.end:.6f}" if self.end is not None else "open"
        return (f"<Span #{self.sid} {self.category}:{self.name!r} "
                f"[{self.start:.6f}, {end}] track={self.track}>")


class SpanTracer:
    """Records spans against one simulator's virtual clock.

    Constructing a tracer attaches it as ``sim.tracer``; the
    instrumentation sites throughout the runtime then start recording.
    ``max_spans`` bounds memory on very long runs — past the cap new
    spans are counted in :attr:`dropped` instead of recorded.
    """

    def __init__(self, sim, label: str = "", max_spans: int = 500_000):
        self.sim = sim
        self.label = label
        self.max_spans = max_spans
        self.spans: List[Span] = []
        self.dropped = 0
        self._open = 0
        self._next_sid = 0
        # Synchronous nesting stack: regions push here so spans begun
        # inside (including by code several calls down) parent onto them.
        self._stack: List[Span] = []
        sim.tracer = self

    # -- recording ----------------------------------------------------------
    @property
    def current(self) -> Optional[Span]:
        """Innermost open region (default parent for new spans)."""
        return self._stack[-1] if self._stack else None

    def begin(self, category: str, name: str,
              parent: Optional[Span] = None, track: str = "",
              **args) -> Optional[Span]:
        """Open a span at the current virtual time.

        *parent* defaults to the innermost active region.  Returns None
        (and counts a drop) past the ``max_spans`` cap — ``end`` accepts
        None so call sites need no extra guard.
        """
        if len(self.spans) >= self.max_spans:
            self.dropped += 1
            return None
        if parent is None:
            parent = self.current
        span = Span(self._next_sid,
                    parent.sid if parent is not None else None,
                    category, name, track or "main", self.sim.now, args)
        self._next_sid += 1
        self.spans.append(span)
        self._open += 1
        return span

    def end(self, span: Optional[Span], **args) -> None:
        """Close *span* at the current virtual time (no-op on None, and
        idempotent on an already-closed span)."""
        if span is None or span.end is not None:
            return
        span.end = self.sim.now
        if args:
            span.args.update(args)
        self._open -= 1

    def instant(self, category: str, name: str,
                parent: Optional[Span] = None, track: str = "",
                **args) -> Optional[Span]:
        """A zero-duration span (scheduler decisions, fault injections)."""
        span = self.begin(category, name, parent=parent, track=track, **args)
        self.end(span)
        return span

    @contextmanager
    def region(self, category: str, name: str, track: str = "",
               **args) -> Iterator[Optional[Span]]:
        """Span covering a *synchronous* section, pushed on the nesting
        stack so everything begun inside parents onto it.

        Only for sections that cannot yield virtual time — processes that
        suspend must carry their span explicitly (the stack is global and
        interleaved processes would corrupt it).
        """
        span = self.begin(category, name, track=track, **args)
        if span is not None:
            self._stack.append(span)
        try:
            yield span
        finally:
            if span is not None:
                self._stack.pop()
            self.end(span)

    def finish(self) -> "SpanTracer":
        """Close every still-open span at the current virtual time.

        Called at end-of-run: lifecycle spans of proclets alive at the
        horizon (and fault windows never healed) are legitimately open
        until here.  Idempotent.
        """
        if self._open:
            for span in self.spans:
                if span.end is None:
                    span.end = self.sim.now
                    span.args["unclosed"] = True
            self._open = 0
        del self._stack[:]
        return self

    def detach(self) -> "SpanTracer":
        """Stop recording: detach from the simulator (and finish)."""
        self.finish()
        if self.sim.tracer is self:
            self.sim.tracer = None
        return self

    # -- inspection ---------------------------------------------------------
    def __len__(self) -> int:
        return len(self.spans)

    @property
    def open_count(self) -> int:
        """Spans begun but not yet ended."""
        return self._open

    def by_category(self, category: str) -> List[Span]:
        return [s for s in self.spans if s.category == category]

    def categories(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for s in self.spans:
            out[s.category] = out.get(s.category, 0) + 1
        return out

    def children_of(self, span: Span) -> List[Span]:
        return [s for s in self.spans if s.parent_id == span.sid]

    def digest(self) -> str:
        """sha256 over the canonical serialization of every span.

        Same seed ⇒ same digest (the determinism acceptance check, same
        idiom as the chaos replay digest); any change to span structure,
        timing, or args changes it.
        """
        h = hashlib.sha256()
        for span in self.spans:
            h.update(span.canonical().encode())
            h.update(b"\n")
        h.update(f"dropped={self.dropped}\n".encode())
        return h.hexdigest()

    def __repr__(self) -> str:
        return (f"<SpanTracer {self.label!r} spans={len(self.spans)} "
                f"open={self._open} dropped={self.dropped}>")


class Capture:
    """Collects the tracers attached while a :func:`capture` is active."""

    def __init__(self, max_spans: int = 500_000):
        self.max_spans = max_spans
        self.tracers: List[SpanTracer] = []

    def _attach(self, sim) -> None:
        tracer = SpanTracer(sim, label=f"sim{len(self.tracers)}",
                            max_spans=self.max_spans)
        self.tracers.append(tracer)

    def digest(self) -> str:
        """Combined digest over every captured simulator, in creation
        order (itself deterministic for a deterministic driver)."""
        h = hashlib.sha256()
        for tracer in self.tracers:
            h.update(tracer.digest().encode())
            h.update(b"\n")
        return h.hexdigest()

    @property
    def spans(self) -> List[Span]:
        return [s for tr in self.tracers for s in tr.spans]


@contextmanager
def capture(max_spans: int = 500_000) -> Iterator[Capture]:
    """Attach a :class:`SpanTracer` to every Simulator built inside the
    block (experiments construct their own simulators, so tracing hooks
    in at construction time)::

        with capture() as cap:
            result = run_fig1(Fig1Config(duration=0.06))
        print(cap.digest())

    Tracers are finished (all spans closed) on exit; nesting captures is
    not supported (the inner one wins for its duration).
    """
    from ..sim import simulator as _simulator

    cap = Capture(max_spans=max_spans)
    prev = _simulator.get_tracer_factory()
    _simulator.set_tracer_factory(cap._attach)
    try:
        yield cap
    finally:
        _simulator.set_tracer_factory(prev)
        for tracer in cap.tracers:
            tracer.finish()
