"""Exporters for :class:`~repro.obs.SpanTracer` traces.

Two human-facing formats plus the machine-checkable digest:

* :func:`chrome_trace` — Chrome ``trace_event`` JSON (the "JSON Array
  with metadata" flavour), loadable in Perfetto / ``chrome://tracing``.
  Virtual seconds map to microseconds; each simulator becomes a *pid*
  and each span track (machine, proclet, scheduler) a *tid*.
* :func:`flame_profile` — a plain-text, collapsed-stack-style profile
  of virtual time by category path, grouped per track.  *Self* time is
  a span's duration minus the time covered by its children, so the
  totals per track add up instead of double-counting nested phases.

Exporters only read spans — they can be run repeatedly, on live or
finished tracers, without affecting the trace or the simulation.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from .spans import Capture, Span, SpanTracer

#: trace_event timestamps are integer-ish microseconds.
_US = 1e6


def _tracer_list(source) -> List[SpanTracer]:
    if isinstance(source, SpanTracer):
        return [source]
    if isinstance(source, Capture):
        return source.tracers
    return list(source)


def chrome_trace(source, label: str = "repro") -> dict:
    """Render *source* (a SpanTracer, Capture, or iterable of tracers)
    as a Chrome ``trace_event`` dict — ``json.dump`` it to a file and
    load that in Perfetto.

    Spans become complete ("ph": "X") events; open spans are closed at
    the tracer's current virtual time for display purposes only (the
    trace itself is not modified).  Metadata ("ph": "M") events name
    processes and threads.
    """
    events: List[dict] = []
    for pid, tracer in enumerate(_tracer_list(source)):
        pname = tracer.label or f"sim{pid}"
        events.append({
            "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
            "args": {"name": pname},
        })
        tids: Dict[str, int] = {}
        for span in tracer.spans:
            tid = tids.get(span.track)
            if tid is None:
                tid = tids[span.track] = len(tids) + 1
                events.append({
                    "ph": "M", "name": "thread_name", "pid": pid,
                    "tid": tid, "args": {"name": span.track},
                })
            end = span.end if span.end is not None else tracer.sim.now
            args = dict(span.args)
            args["sid"] = span.sid
            if span.parent_id is not None:
                args["parent"] = span.parent_id
            events.append({
                "ph": "X",
                "name": span.name,
                "cat": span.category,
                "pid": pid,
                "tid": tid,
                "ts": span.start * _US,
                "dur": (end - span.start) * _US,
                "args": args,
            })
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"source": label, "clock": "virtual"},
    }


def write_chrome_trace(source, path: str, label: str = "repro") -> dict:
    """:func:`chrome_trace` + write to *path*; returns the dict."""
    doc = chrome_trace(source, label=label)
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=1)
        fh.write("\n")
    return doc


def _category_path(span: Span, by_sid: Dict[int, Span]) -> str:
    """``parentcat;childcat`` chain for the collapsed-stack profile."""
    parts = [span.category]
    cur = span
    while cur.parent_id is not None:
        cur = by_sid[cur.parent_id]
        parts.append(cur.category)
    return ";".join(reversed(parts))


def flame_totals(tracer: SpanTracer) -> Dict[str, Dict[str, float]]:
    """Self-time by (track, category-path), in virtual seconds.

    Self time is a span's duration minus the portions covered by its
    children (clamped at zero — phases may legitimately extend past a
    parent closed early by a failure path), so summing a track's paths
    recovers its total traced time without double counting.
    """
    by_sid = {s.sid: s for s in tracer.spans}
    child_time: Dict[int, float] = {}
    now = tracer.sim.now
    for span in tracer.spans:
        if span.parent_id is not None:
            end = span.end if span.end is not None else now
            child_time[span.parent_id] = (
                child_time.get(span.parent_id, 0.0) + (end - span.start))
    totals: Dict[str, Dict[str, float]] = {}
    for span in tracer.spans:
        end = span.end if span.end is not None else now
        self_time = max(0.0, (end - span.start)
                        - child_time.get(span.sid, 0.0))
        path = _category_path(span, by_sid)
        track = totals.setdefault(span.track, {})
        track[path] = track.get(path, 0.0) + self_time
    return totals


def flame_profile(source, top: Optional[int] = None) -> str:
    """Plain-text flamegraph-style profile: per track (machine, proclet,
    scheduler), category paths sorted by descending self virtual time.

    One line per path, collapsed-stack style (``a;b;c  <seconds>``), so
    the output also feeds standard flamegraph tooling.  *top* limits the
    paths shown per track.
    """
    lines: List[str] = []
    for tracer in _tracer_list(source):
        title = tracer.label or "sim"
        lines.append(f"== {title}: virtual time by category "
                     f"({len(tracer.spans)} spans"
                     + (f", {tracer.dropped} dropped" if tracer.dropped
                        else "") + ") ==")
        totals = flame_totals(tracer)
        for track in sorted(totals):
            lines.append(f"-- {track} --")
            paths = sorted(totals[track].items(),
                           key=lambda kv: (-kv[1], kv[0]))
            if top is not None:
                paths = paths[:top]
            for path, secs in paths:
                lines.append(f"  {path:<48s} {secs * 1e3:12.4f} ms")
        lines.append("")
    return "\n".join(lines)
