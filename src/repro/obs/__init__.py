"""repro.obs — span-based tracing & profiling in virtual time.

The observability layer for the reproduction: attach a
:class:`SpanTracer` to a :class:`~repro.sim.Simulator` (or wrap a whole
experiment in :func:`capture`) and the runtime records structured,
parent-linked spans for proclet lifecycle, migration phases, scheduler
rounds, split/merge, and chaos fault windows.  Export with
:func:`chrome_trace` (Perfetto) or :func:`flame_profile` (text), and
pin determinism with :meth:`SpanTracer.digest`.

See ``docs/observability.md`` for the span taxonomy and formats.
"""

from .export import (chrome_trace, flame_profile, flame_totals,
                     write_chrome_trace)
from .spans import Capture, Span, SpanTracer, capture

__all__ = [
    "Span",
    "SpanTracer",
    "Capture",
    "capture",
    "chrome_trace",
    "write_chrome_trace",
    "flame_profile",
    "flame_totals",
]
