"""Recovery experiments: kill a machine mid-Fig.-2 and measure the cost.

Two questions, per the robustness milestone:

1. **Bounded slowdown** — run the Fig. 2 preprocessing workload on the
   4-way imbalanced configuration, crash the data-heavy machine halfway
   through, and check that under CHECKPOINT or REPLICATE protection the
   run still *completes*, with a completion-time ratio over the
   unkilled baseline that stays under a small constant (the golden
   tests pin the ceiling).

2. **Policy ablation** — the overhead-vs-data-loss trade-off of every
   :class:`~repro.ft.RecoveryPolicy` on the same kill schedule: NONE
   loses whatever lived on the victim, RESTART recovers capacity but
   not bytes, CHECKPOINT bounds loss by its snapshot interval,
   REPLICATE and LINEAGE lose nothing but pay mirroring/replay.

The driver here deliberately does *not* reuse
:class:`repro.apps.dnn.preprocess.BatchSource`: its ``outstanding``
accounting assumes chunk functions run to completion, so a worker dying
mid-chunk would leak a count and deadlock its ``done`` event.  Instead
each chunk is submitted as an ordinary pool task under a virtual-time
watchdog and resubmitted if it fails or stalls — at-least-once chunk
execution with per-image dedup, which is exactly the redo discipline a
real job would need on top of fail-stop workers.
"""

from __future__ import annotations

import collections
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..apps.dnn.images import DatasetSpec, load_dataset
from ..cluster import Priority
from ..core import Quicksand, QuicksandConfig
from ..core.computeproclet import ComputeProclet, Task
from ..core.memproclet import MemoryProclet
from ..ds.queue import QueueShardProclet
from ..ft import LineageLog, RecoveryConfig, RecoveryManager, RecoveryPolicy
from ..units import KiB, MiB
from .fig2_imbalance import FOUR_WAY_CONFIG, cluster_for

#: Scaled-down Fig. 2 dataset: same shape, ~500 MiB / 40 CPU-seconds,
#: so the kill run leaves the three small survivors (1 GiB + slack
#: each) enough DRAM to re-host the victim's shards *and* their
#: checkpoints/standbys.
RECOVERY_DATASET = DatasetSpec(count=2000, mean_bytes=256 * KiB,
                               mean_cpu=0.02)

#: Bytes pushed to the output queue per preprocessed image.
_OUTPUT_BYTES = 64 * KiB

#: Virtual seconds a chunk may stall before its driver resubmits it.
_WATCHDOG = 2.0

#: Resubmissions per chunk before the driver abandons it (only the
#: unprotected NONE run ever gets near this).
_MAX_ATTEMPTS = 12

#: Hard virtual-time horizon for one run; a run that is not done by
#: then has deadlocked and the experiment raises.
_HORIZON = 120.0


@dataclass(frozen=True)
class RecoveryRow:
    """Measurements of one (policy, kill schedule) run."""

    policy: str                  # "baseline" or a RecoveryPolicy value
    killed: Optional[str]        # victim machine name, None = no kill
    completion_time: float       # virtual s, preprocessing window only
    images_total: int
    images_done: int             # distinct images preprocessed
    images_redone: int           # duplicate executions (redo cost)
    chunks_resubmitted: int
    chunks_abandoned: int
    recoveries: int
    failed_recoveries: int
    call_retries: int
    mttr: float                  # mean virtual-s confirm->recovered, 0 if none
    checkpoint_bytes: float
    mirror_bytes: float
    data_loss_bytes: float       # manager-observed restore shortfall

    @property
    def images_lost(self) -> int:
        return self.images_total - self.images_done


def _protect_shards(manager: RecoveryManager, vector, queue,
                    policy: RecoveryPolicy,
                    lineage: Optional[LineageLog]) -> None:
    """Vector shards get the policy under test; queue shards carry only
    transient in-flight batches, so RESTART (capacity, not bytes) is
    always the right call for them."""
    # The routing-table index proclet carries only bookkeeping bytes,
    # rebuilt host-side as shards come and go: RESTART is exact for it.
    manager.protect(vector.index_ref, RecoveryPolicy.RESTART,
                    factory=MemoryProclet, priority=Priority.HIGH)
    for shard in vector.shards:
        owner = vector

        def make_shard(owner=owner):
            p = MemoryProclet()
            p.shard_owner = owner
            return p

        manager.protect(shard.ref, policy, factory=make_shard,
                        priority=Priority.HIGH, lineage=lineage)
    for ref in queue.shards:  # a ShardedQueue holds bare refs
        def make_qshard(owner=queue):
            p = QueueShardProclet()
            p.shard_owner = owner
            return p

        manager.protect(ref, RecoveryPolicy.RESTART,
                        factory=make_qshard, priority=Priority.HIGH)


def _synthesize_lineage(vector) -> LineageLog:
    """Build the dataset's lineage post-load from shard contents.

    The bulk loader is outside the measured window, so instead of
    instrumenting it we reconstruct the equivalent op log — the
    application-level statement "every input image can be re-derived
    from the source dataset", which is precisely Ray-style lineage.
    """
    log = LineageLog()
    for shard in vector.shards:
        proclet = shard.proclet
        for key in list(proclet._keys):
            nbytes, value = proclet._objects[key]
            log.record(proclet.id, "mp_put", key, nbytes, value,
                       req_bytes=nbytes)
    return log


def run_recovery_fig2(policy: Optional[str] = None,
                      kill_at: Optional[float] = None,
                      victim: int = 0,
                      machines: Optional[List[Tuple[float, float]]] = None,
                      dataset: Optional[DatasetSpec] = None,
                      seed: int = 0,
                      workers: Optional[int] = None,
                      chunk_elems: Optional[int] = None,
                      recovery_config: Optional[RecoveryConfig] = None,
                      ) -> RecoveryRow:
    """One kill-mid-preprocessing run; returns its :class:`RecoveryRow`.

    ``policy=None`` runs without the recovery subsystem at all (the
    baseline path, byte-identical to the plain Fig. 2 machinery);
    any :class:`RecoveryPolicy` value enables it.  ``kill_at`` is
    virtual seconds after preprocessing starts (None = never).
    """
    if machines is None:
        machines = FOUR_WAY_CONFIG[1]
    if dataset is None:
        dataset = RECOVERY_DATASET
    qs = Quicksand(cluster_for(machines, seed),
                   config=QuicksandConfig(enable_global_scheduler=False))
    sim = qs.sim
    manager = None
    pol = None
    if policy is not None:
        pol = RecoveryPolicy(policy)
        cfg = recovery_config or RecoveryConfig(retry_budget=12)
        manager = qs.enable_recovery(cfg)

    vector = qs.sharded_vector(name="images")
    out_queue = qs.sharded_queue(name="batches", initial_shards=2)
    sim.run(until_event=load_dataset(qs, vector, dataset))

    lineage = None
    if pol is RecoveryPolicy.LINEAGE:
        lineage = _synthesize_lineage(vector)
    if manager is not None:
        _protect_shards(manager, vector, out_queue, pol, lineage)

    if workers is None:
        workers = max(1, int(qs.cluster.total_cores))
    pool = qs.compute_pool(name="preproc", parallelism=1,
                           initial_members=workers)
    if manager is not None:
        def make_member():
            p = ComputeProclet(parallelism=pool.parallelism)
            p.on_task_done = pool._on_task_done
            p.shard_owner = pool
            return p

        for ref in pool.members:
            manager.protect(ref, RecoveryPolicy.RESTART,
                            factory=make_member, priority=Priority.NORMAL)

    n = len(vector)
    if chunk_elems is None:
        chunk_elems = max(1, n // (workers * 2))
    chunks = collections.deque(
        (lo, min(lo + chunk_elems, n)) for lo in range(0, n, chunk_elems))
    attempts = collections.Counter()
    processed: set = set()
    stats = {"redone": 0, "resubmitted": 0, "abandoned": 0}

    def chunk_fn(lo: int, hi: int):
        def fn(ctx, _task):
            reader = vector.reader(lo, hi)
            while True:
                batch = yield from reader.next_batch(ctx)
                if batch is None:
                    return
                for key, cpu_cost in batch:
                    yield ctx.cpu(cpu_cost)
                    if key in processed:
                        stats["redone"] += 1
                        continue
                    processed.add(key)
                    yield out_queue.push(("batch", key), _OUTPUT_BYTES,
                                         ctx=ctx)
        return fn

    def driver():
        while chunks:
            lo, hi = chunks.popleft()
            task = Task(key=(lo, hi), fn=chunk_fn(lo, hi))
            done = pool.submit(task)
            try:
                yield sim.any_of([done, sim.timeout(_WATCHDOG)])
            except Exception:
                pass  # a failed chunk is handled like a stalled one
            if done.triggered and done.ok:
                continue
            attempts[(lo, hi)] += 1
            if attempts[(lo, hi)] >= _MAX_ATTEMPTS:
                stats["abandoned"] += 1
                continue
            stats["resubmitted"] += 1
            chunks.append((lo, hi))

    draining = [True]

    def drainer():
        while draining[0]:
            batch = yield out_queue.pop()
            if batch is None:
                return

    for _ in range(4):
        sim.process(drainer(), name="recovery-drain")

    t1 = sim.now
    victim_machine = qs.cluster.machines[victim]
    if kill_at is not None:
        sim.call_at(t1 + kill_at,
                    lambda: qs.runtime.fail_machine(victim_machine))
    drivers = [sim.process(driver(), name=f"recovery-driver{i}")
               for i in range(workers)]
    all_done = sim.all_of(drivers)
    sim.run(until_event=all_done, until=t1 + _HORIZON)
    if not all_done.triggered:
        raise RuntimeError(
            f"recovery run (policy={policy}, kill_at={kill_at}) did not "
            f"finish within {_HORIZON} virtual seconds")
    completion = sim.now - t1
    draining[0] = False

    if manager is not None:
        qs.metrics.record_recovery_stats(manager)
    mttr_samples = qs.metrics.samples("ft.mttr")
    loss_samples = qs.metrics.samples("ft.data_loss_bytes")
    return RecoveryRow(
        policy=pol.value if pol is not None else "baseline",
        killed=victim_machine.name if kill_at is not None else None,
        completion_time=completion,
        images_total=n,
        images_done=len(processed),
        images_redone=stats["redone"],
        chunks_resubmitted=stats["resubmitted"],
        chunks_abandoned=stats["abandoned"],
        recoveries=(sum(manager.recoveries.values())
                    if manager is not None else 0),
        failed_recoveries=(manager.failed_recoveries
                           if manager is not None else 0),
        call_retries=int(qs.metrics.counter("ft.call_retries").total),
        mttr=(sum(mttr_samples) / len(mttr_samples)
              if mttr_samples else 0.0),
        checkpoint_bytes=qs.metrics.counter("ft.checkpoint.bytes").total,
        mirror_bytes=qs.metrics.counter("ft.mirror.bytes").total,
        data_loss_bytes=sum(loss_samples),
    )


def run_recovery_ablation(seed: int = 0,
                          kill_at: float = 0.4) -> List[RecoveryRow]:
    """The headline table: unkilled baseline, then the same kill under
    every recovery policy."""
    rows = [run_recovery_fig2(policy=None, kill_at=None, seed=seed)]
    for pol in ("none", "restart", "checkpoint", "replicate", "lineage"):
        rows.append(run_recovery_fig2(policy=pol, kill_at=kill_at,
                                      seed=seed))
    return rows


def report(rows: List[RecoveryRow]) -> str:
    """Render the ablation as the REPORT.md table."""
    base = next((r for r in rows if r.killed is None), rows[0])
    lines = [
        "Recovery ablation: kill m0 mid-preprocessing "
        "(4-way imbalanced, scaled Fig. 2 dataset)",
        "",
        f"{'policy':<12} {'kill':<5} {'time(s)':>8} {'ratio':>6} "
        f"{'done':>6} {'lost':>6} {'redone':>7} {'recov':>6} "
        f"{'MTTR(ms)':>9} {'ckpt(MiB)':>10} {'mirror(MiB)':>12} "
        f"{'loss(MiB)':>10}",
    ]
    for r in rows:
        ratio = (r.completion_time / base.completion_time
                 if base.completion_time > 0 else float("inf"))
        lines.append(
            f"{r.policy:<12} {('yes' if r.killed else 'no'):<5} "
            f"{r.completion_time:>8.3f} {ratio:>6.2f} "
            f"{r.images_done:>6d} {r.images_lost:>6d} "
            f"{r.images_redone:>7d} {r.recoveries:>6d} "
            f"{r.mttr * 1e3:>9.2f} {r.checkpoint_bytes / MiB:>10.1f} "
            f"{r.mirror_bytes / MiB:>12.1f} "
            f"{r.data_loss_bytes / MiB:>10.1f}")
    lines += [
        "",
        "Reading: NONE detects but cannot repair (data on the victim is "
        "gone);",
        "RESTART restores capacity only; CHECKPOINT bounds loss by its "
        "snapshot",
        "interval; REPLICATE/LINEAGE lose nothing and trade mirroring "
        "bytes vs",
        "replay compute.  'ratio' is completion time over the unkilled "
        "baseline.",
    ]
    return "\n".join(lines)
