"""FIG1 — reproduce Figure 1: millisecond-granularity work migration.

Two machines each run a phased HIGH-priority app (10 ms all-cores burst,
10 ms idle), anti-phased so exactly one machine is busy at any instant.
A fungible filler app of small compute proclets migrates to whichever
machine is idle; a static filler (migration disabled) is the classic-
cloud baseline that can only ever use one machine's idle half.

Paper claims reproduced:
* the filler migrates between machines in **under 1 ms**;
* rapid migration harvests both machines' idle windows, roughly
  **doubling goodput** over the static placement.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from ..apps import FillerApp, PhasedApp
from ..cluster import ClusterSpec, MachineSpec
from ..core import Quicksand, QuicksandConfig
from ..metrics import Summary
from ..units import GiB, MS, US
from .common import fmt_series, fmt_table


@dataclass(frozen=True)
class Fig1Config:
    """Parameters of the Fig. 1 experiment."""

    cores: float = 8.0
    dram_bytes: float = 4 * GiB
    burst: float = 10 * MS
    filler_proclets: int = 8
    work_unit: float = 100 * US
    warmup: float = 20 * MS
    duration: float = 200 * MS
    fungible: bool = True
    seed: int = 0


@dataclass
class Fig1Result:
    """Measurements of one Fig. 1 run."""

    config: Fig1Config
    mean_goodput_cores: float
    goodput_timeline: List[Tuple[float, float]] = field(repr=False,
                                                        default_factory=list)
    migrations: int = 0
    migration_latency: Summary = field(default_factory=lambda: Summary.of([]))
    units_done: float = 0.0

    @property
    def goodput_fraction_of_one_machine(self) -> float:
        return self.mean_goodput_cores / self.config.cores


def run_fig1(config: Fig1Config = Fig1Config()) -> Fig1Result:
    """Run one Fig. 1 configuration (fungible or static)."""
    spec = ClusterSpec(
        machines=[
            MachineSpec(name="m0", cores=config.cores,
                        dram_bytes=config.dram_bytes),
            MachineSpec(name="m1", cores=config.cores,
                        dram_bytes=config.dram_bytes),
        ],
        seed=config.seed,
    )
    qs_config = QuicksandConfig(
        enable_local_scheduler=config.fungible,
        enable_global_scheduler=False,
        enable_split_merge=False,
    )
    qs = Quicksand(spec, config=qs_config)
    m0, m1 = qs.machines

    # Anti-phased antagonists: m0 bursts on [0,10), m1 on [10,20), ...
    PhasedApp(m0, burst=config.burst, idle=config.burst,
              phase_offset=0.0).start()
    PhasedApp(m1, burst=config.burst, idle=config.burst,
              phase_offset=config.burst).start()

    # The filler starts on the machine that is idle first (m1).
    filler = FillerApp(qs, proclets=config.filler_proclets,
                       work_unit=config.work_unit, machine=m1)

    qs.run(until=config.warmup)
    t0 = qs.sim.now
    qs.run(until=t0 + config.duration)
    t1 = qs.sim.now

    return Fig1Result(
        config=config,
        mean_goodput_cores=filler.goodput_cores(t0, t1),
        goodput_timeline=filler.goodput_timeline(t0, t1, bucket=1 * MS),
        migrations=filler.total_migrations(),
        migration_latency=Summary.of(
            qs.metrics.samples("runtime.migration.latency")),
        units_done=filler.units_done,
    )


def run_fig1_both(seed: int = 0,
                  duration: float = 200 * MS) -> Tuple[Fig1Result,
                                                       Fig1Result]:
    """Fungible vs. static, same workload and seed."""
    fungible = run_fig1(Fig1Config(fungible=True, seed=seed,
                                   duration=duration))
    static = run_fig1(Fig1Config(fungible=False, seed=seed,
                                 duration=duration))
    return fungible, static


def report(fungible: Fig1Result, static: Fig1Result) -> str:
    """Paper-comparable summary of the Fig. 1 reproduction."""
    rows = [
        ("fungible (Quicksand)",
         f"{fungible.mean_goodput_cores:.2f}",
         f"{fungible.goodput_fraction_of_one_machine * 100:.1f}%",
         fungible.migrations,
         f"{fungible.migration_latency.p50 * 1e3:.3f}",
         f"{fungible.migration_latency.p99 * 1e3:.3f}"),
        ("static (classic cloud)",
         f"{static.mean_goodput_cores:.2f}",
         f"{static.goodput_fraction_of_one_machine * 100:.1f}%",
         static.migrations, "-", "-"),
    ]
    table = fmt_table(
        ["filler", "goodput [cores]", "vs 1 machine", "migrations",
         "mig p50 [ms]", "mig p99 [ms]"],
        rows,
    )
    speedup = (fungible.mean_goodput_cores
               / max(static.mean_goodput_cores, 1e-9))
    from ..viz import step_plot

    lines = [
        "FIG1 — filler goodput under anti-phased HIGH-priority bursts",
        table,
        f"fungible/static goodput ratio: {speedup:.2f}x "
        "(paper: ~2x, migration <1 ms)",
        step_plot(fungible.goodput_timeline, height=8,
                  label="goodput [cores] per 1 ms bucket (fungible):"),
        "raw timeline:",
        fmt_series(fungible.goodput_timeline, max_rows=25),
    ]
    return "\n".join(lines)


def main() -> None:  # pragma: no cover - CLI entry
    fungible, static = run_fig1_both()
    print(report(fungible, static))


if __name__ == "__main__":  # pragma: no cover
    main()
