"""Experiment harnesses regenerating every figure/table of the paper,
plus the ablations from DESIGN.md."""

from . import (
    ablations,
    autoscale,
    cloning,
    fig1_filler,
    fig2_imbalance,
    fig3_gpu_adapt,
    recovery,
    serving,
    sweep_burst,
)
from .autoscale import (
    AutoscaleRow,
    run_autoscale_fig2,
    run_autoscale_grid,
)
from .cloning import run_cloning, run_cloning_exec
from .fig1_filler import Fig1Config, Fig1Result, run_fig1, run_fig1_both
from .fig2_imbalance import Fig2Row, run_fig2, run_fig2_config
from .fig3_gpu_adapt import Fig3Config, Fig3Result, run_fig3
from .recovery import RecoveryRow, run_recovery_ablation, run_recovery_fig2
from .serving import run_serving, run_serving_exec
from .sweep_burst import SweepPoint, run_sweep

__all__ = [
    "AutoscaleRow",
    "Fig1Config",
    "Fig1Result",
    "Fig2Row",
    "Fig3Config",
    "Fig3Result",
    "ablations",
    "autoscale",
    "cloning",
    "fig1_filler",
    "fig2_imbalance",
    "fig3_gpu_adapt",
    "recovery",
    "RecoveryRow",
    "run_recovery_ablation",
    "run_recovery_fig2",
    "SweepPoint",
    "run_autoscale_fig2",
    "run_autoscale_grid",
    "run_fig1",
    "run_fig1_both",
    "run_fig2",
    "run_fig2_config",
    "run_cloning",
    "run_cloning_exec",
    "run_fig3",
    "run_serving",
    "run_serving_exec",
    "run_sweep",
    "serving",
    "sweep_burst",
]
