"""Shared utilities for the experiment harnesses."""

from __future__ import annotations

from typing import List, Sequence, Tuple


def fmt_table(headers: Sequence[str], rows: List[Sequence]) -> str:
    """Render an ASCII table (the experiments print paper-style rows)."""
    cells = [[str(h) for h in headers]] + [
        [str(c) for c in row] for row in rows
    ]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]

    def line(row):
        return " | ".join(c.ljust(w) for c, w in zip(row, widths))

    sep = "-+-".join("-" * w for w in widths)
    out = [line(cells[0]), sep]
    out.extend(line(r) for r in cells[1:])
    return "\n".join(out)


def fmt_series(series: List[Tuple[float, float]], t_scale: float = 1e3,
               t_unit: str = "ms", v_fmt: str = "{:.2f}",
               max_rows: int = 50) -> str:
    """Render a (time, value) series, downsampling long ones.

    Downsampling keeps both endpoints: the last sample is where a trace
    settles (the equilibrium tail), and truncating it silently misled
    printed traces for any series longer than *max_rows*.
    """
    if len(series) > max_rows:
        step = (len(series) - 1) / (max_rows - 1)
        series = [series[round(i * step)] for i in range(max_rows)]
    return "\n".join(
        f"  t={t * t_scale:9.3f} {t_unit}  {v_fmt.format(v)}"
        for t, v in series
    )


def equilibrium_latency(trace: List[Tuple[float, int]], toggle_time: float,
                        target: int, hold: float = 0.005) -> float:
    """Time from *toggle_time* until the traced value reaches *target*
    and holds it for at least *hold* seconds.

    Returns ``inf`` when equilibrium is never reached.  This is the
    measurement behind Fig. 3's "10-15 ms to reach new equilibriums".
    """
    reached = None
    for t, v in trace:
        if t < toggle_time:
            continue
        if v == target:
            if reached is None:
                reached = t
            elif t - reached >= hold:
                return reached - toggle_time
        else:
            reached = None
    if reached is not None:
        return reached - toggle_time
    return float("inf")
