"""FIG3 — reproduce Figure 3: rapid adaptation to changing GPU resources.

The streaming DNN pipeline trains on an emulated-GPU pool whose
availability alternates between four and eight GPUs every 200 ms.  The
Quicksand compute autoscaler (§3.3) splits/merges preprocessing compute
proclets to track the consumption rate; the paper reports new equilibria
reached in **10–15 ms**.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from ..apps.dnn import GpuAvailabilityDriver, StreamingPipeline
from ..cluster import ClusterSpec, GpuSpec, MachineSpec
from ..core import Quicksand, QuicksandConfig
from ..metrics import Summary
from ..units import GiB, MS
from .common import equilibrium_latency, fmt_series, fmt_table


@dataclass(frozen=True)
class Fig3Config:
    """Parameters of the Fig. 3 experiment."""

    cpu_machines: int = 2
    cores_per_machine: float = 16.0
    dram_bytes: float = 8 * GiB
    gpu_low: int = 4
    gpu_high: int = 8
    gpu_batch_time: float = 10 * MS
    toggle_period: float = 200 * MS
    cpu_per_batch: float = 10 * MS
    duration: float = 1.6
    seed: int = 0
    #: False switches the autoscaler to pure queue signals (ABL-SIGNAL:
    #: slower, dithers ±1, but needs no cooperation from the trainer).
    use_declared_demand: bool = True

    @property
    def members_per_gpu(self) -> float:
        """Compute proclets needed to feed one GPU at steady state."""
        return self.cpu_per_batch / self.gpu_batch_time


@dataclass
class Fig3Result:
    config: Fig3Config
    member_trace: List[Tuple[float, int]] = field(repr=False,
                                                  default_factory=list)
    toggles: List[Tuple[float, int]] = field(default_factory=list)
    equilibrium_latencies: List[float] = field(default_factory=list)
    batches_trained: int = 0
    gpu_idle_fraction: float = 0.0

    @property
    def latency_summary(self) -> Summary:
        reached = [x for x in self.equilibrium_latencies
                   if x != float("inf")]
        return Summary.of(reached)

    @property
    def adaptation_success_rate(self) -> float:
        if not self.equilibrium_latencies:
            return 0.0
        ok = sum(1 for x in self.equilibrium_latencies
                 if x != float("inf"))
        return ok / len(self.equilibrium_latencies)


def run_fig3(config: Fig3Config = Fig3Config()) -> Fig3Result:
    machines = [
        MachineSpec(name=f"cpu{i}", cores=config.cores_per_machine,
                    dram_bytes=config.dram_bytes)
        for i in range(config.cpu_machines)
    ]
    machines.append(MachineSpec(
        name="gpubox", cores=8, dram_bytes=config.dram_bytes,
        gpus=GpuSpec(count=config.gpu_high,
                     batch_time=config.gpu_batch_time),
    ))
    qs = Quicksand(
        ClusterSpec(machines=machines, seed=config.seed),
        config=QuicksandConfig(enable_global_scheduler=False),
    )
    gpu_machine = qs.machine("gpubox")

    pipeline = StreamingPipeline(
        qs, gpu_machine, cpu_per_batch=config.cpu_per_batch,
        initial_members=int(config.gpu_high * config.members_per_gpu),
        max_members=int(config.gpu_high * config.members_per_gpu * 2),
        use_declared_demand=config.use_declared_demand,
    )
    driver = GpuAvailabilityDriver(gpu_machine, low=config.gpu_low,
                                   high=config.gpu_high,
                                   period=config.toggle_period)
    pipeline.start()
    driver.start()

    t0 = qs.sim.now
    batches0 = pipeline.trainer.batches_trained
    qs.run(until=t0 + config.duration)
    driver.stop()

    trace = [
        (t, actual)
        for t, _desired, actual in pipeline.preprocess.autoscaler.decisions
    ]
    latencies = []
    # Skip the first entry (initial level, not a toggle).
    for toggle_t, level in driver.toggle_times[1:]:
        target = int(level * config.members_per_gpu)
        if toggle_t + config.toggle_period > t0 + config.duration:
            break  # not enough trailing trace to judge equilibrium
        latencies.append(equilibrium_latency(trace, toggle_t, target))

    # GPU utilization = trained GPU-seconds / available GPU-seconds,
    # where availability integrates the toggled capacity over the run.
    capacity_integral = 0.0
    events = [(t, lvl) for t, lvl in driver.toggle_times if t <= t0 +
              config.duration] + [(t0 + config.duration, 0)]
    for (t_a, lvl), (t_b, _next) in zip(events, events[1:]):
        capacity_integral += max(0.0, (t_b - max(t_a, t0))) * lvl
    trained = pipeline.trainer.batches_trained - batches0
    util = (trained * config.gpu_batch_time / capacity_integral
            if capacity_integral > 0 else 0.0)

    return Fig3Result(
        config=config,
        member_trace=trace,
        toggles=driver.toggle_times,
        equilibrium_latencies=latencies,
        batches_trained=pipeline.trainer.batches_trained,
        gpu_idle_fraction=max(0.0, 1.0 - util),
    )


def report(result: Fig3Result) -> str:
    cfg = result.config
    s = result.latency_summary
    rows = [(f"{t * 1e3:.0f}", lvl,
             int(lvl * cfg.members_per_gpu),
             (f"{lat * 1e3:.1f}" if lat != float("inf") else "never"))
            for (t, lvl), lat in zip(result.toggles[1:],
                                     result.equilibrium_latencies)]
    table = fmt_table(
        ["toggle at [ms]", "GPUs", "target proclets",
         "equilibrium in [ms]"],
        rows,
    )
    lines = [
        "FIG3 — compute-proclet scaling under 4<->8 GPU alternation",
        table,
        (f"equilibrium latency: p50={s.p50 * 1e3:.1f} ms "
         f"p90={s.p90 * 1e3:.1f} ms (paper: 10-15 ms)"),
        f"adaptation success rate: "
        f"{result.adaptation_success_rate * 100:.0f}%",
        f"batches trained: {result.batches_trained}, "
        f"GPU idle fraction: {result.gpu_idle_fraction * 100:.1f}%",
        _member_plot(result),
        "raw trace:",
        fmt_series([(t, float(v)) for t, v in result.member_trace],
                   v_fmt="{:.0f}", max_rows=25),
    ]
    return "\n".join(lines)


def _member_plot(result: Fig3Result) -> str:
    from ..viz import step_plot

    return step_plot(
        [(t, float(v)) for t, v in result.member_trace],
        height=8, label="compute proclets over time (the Fig. 3 y-axis):",
    )


def main() -> None:  # pragma: no cover - CLI entry
    print(report(run_fig3()))


if __name__ == "__main__":  # pragma: no cover
    main()
