"""EXT-SWEEP — where does millisecond fungibility stop paying?

An extension experiment beyond the paper's figures, probing its central
quantitative claim: "make use of resources even if they are transiently
available on a server for *only a few milliseconds*."

We sweep the phased antagonist's burst period from sub-millisecond to
tens of milliseconds and measure the fungible filler's goodput.  With
~0.2 ms migrations, harvesting pays for periods comfortably above the
migration time and collapses toward the static baseline as the idle
windows approach the migration latency — the crossover the paper's
mechanism implies but never plots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..apps import FillerApp, PhasedApp
from ..cluster import ClusterSpec, MachineSpec
from ..core import Quicksand, QuicksandConfig
from ..units import GiB, MS, US
from .common import fmt_table

DEFAULT_BURSTS = (0.5 * MS, 1 * MS, 2 * MS, 5 * MS, 10 * MS, 20 * MS)


@dataclass
class SweepPoint:
    burst: float
    fungible_goodput_cores: float
    static_goodput_cores: float
    migrations: int

    @property
    def gain(self) -> float:
        return (self.fungible_goodput_cores
                / max(self.static_goodput_cores, 1e-9))


def _run_one(burst: float, fungible: bool, duration: float,
             seed: int = 0) -> tuple:
    spec = ClusterSpec(machines=[
        MachineSpec(name="m0", cores=8, dram_bytes=2 * GiB),
        MachineSpec(name="m1", cores=8, dram_bytes=2 * GiB),
    ], seed=seed)
    qs = Quicksand(spec, config=QuicksandConfig(
        enable_local_scheduler=fungible,
        enable_global_scheduler=False,
        enable_split_merge=False,
        # React well within one idle window, whatever its size.
        starvation_patience=max(50 * US, burst / 50.0),
        migration_cooldown=max(200 * US, burst / 10.0),
    ))
    m0, m1 = qs.machines
    PhasedApp(m0, burst=burst, idle=burst).start()
    PhasedApp(m1, burst=burst, idle=burst, phase_offset=burst).start()
    filler = FillerApp(qs, proclets=8, work_unit=min(100 * US, burst / 20),
                       machine=m1)
    warmup = 2 * burst
    qs.run(until=warmup)
    t0 = qs.sim.now
    qs.run(until=t0 + duration)
    return filler.goodput_cores(t0, qs.sim.now), filler.total_migrations()


def run_cell(burst: float, fungible: bool, duration: float,
             seed: int) -> Dict[str, float]:
    """One grid cell as a picklable, cacheable task (see ``repro.exec``).

    Returns plain data so results hash canonically and survive the
    worker boundary; :func:`run_sweep` reassembles them into
    :class:`SweepPoint` rows."""
    goodput, migrations = _run_one(burst, fungible, duration, seed)
    return {"burst": burst, "fungible": bool(fungible),
            "goodput_cores": goodput, "migrations": migrations}


def build_specs(bursts: List[float] = DEFAULT_BURSTS,
                periods_per_run: int = 12, seed: int = 0) -> list:
    """RunSpecs for the sweep grid, two cells (fungible/static) per
    burst period.  Per-cell seeds are derived from named streams, so a
    cell's seed depends only on its coordinates — not on grid order or
    on which worker executes it."""
    from ..exec import RunSpec, derive_seed

    specs = []
    for burst in bursts:
        duration = max(40 * MS, periods_per_run * 2 * burst)
        for fungible in (True, False):
            mode = "fungible" if fungible else "static"
            stream = f"sweep.burst={burst!r}.{mode}"
            specs.append(RunSpec(run_cell, {
                "burst": burst,
                "fungible": fungible,
                "duration": duration,
                "seed": derive_seed(seed, stream),
            }, name=stream))
    return specs


def points_from_cells(cells: List[Dict[str, float]]) -> List[SweepPoint]:
    """Pair up fungible/static cells (in grid order) into SweepPoints."""
    by_key = {(c["burst"], c["fungible"]): c for c in cells}
    bursts = []
    for cell in cells:
        if cell["burst"] not in bursts:
            bursts.append(cell["burst"])
    return [
        SweepPoint(
            burst=burst,
            fungible_goodput_cores=by_key[(burst, True)]["goodput_cores"],
            static_goodput_cores=by_key[(burst, False)]["goodput_cores"],
            migrations=by_key[(burst, True)]["migrations"],
        )
        for burst in bursts
    ]


def run_sweep_exec(bursts: List[float] = DEFAULT_BURSTS,
                   periods_per_run: int = 12, seed: int = 0,
                   jobs: int = 1,
                   cache=None) -> Tuple[List[SweepPoint], "ExecReport"]:
    """The sweep through the execution engine: returns (points, report).

    ``jobs=1`` with no cache is bit-identical to the historical serial
    path; ``jobs=N`` fans cells out across worker processes; a cache
    makes re-runs of an unchanged grid pure disk reads."""
    from ..exec import run_specs

    specs = build_specs(bursts, periods_per_run, seed)
    report = run_specs(specs, jobs=jobs, cache=cache)
    return points_from_cells(report.values()), report


def run_sweep(bursts: List[float] = DEFAULT_BURSTS,
              periods_per_run: int = 12, seed: int = 0, jobs: int = 1,
              cache=None) -> List[SweepPoint]:
    """Measure fungible vs static goodput at each burst period."""
    points, _report = run_sweep_exec(bursts, periods_per_run, seed,
                                     jobs=jobs, cache=cache)
    return points


def report(points: List[SweepPoint]) -> str:
    rows = [(f"{p.burst * 1e3:g}", f"{p.fungible_goodput_cores:.2f}",
             f"{p.static_goodput_cores:.2f}", f"{p.gain:.2f}x",
             p.migrations)
            for p in points]
    table = fmt_table(
        ["burst [ms]", "fungible [cores]", "static [cores]", "gain",
         "migrations"],
        rows,
    )
    return "\n".join([
        "EXT-SWEEP — filler goodput vs burst period (8-core machines,",
        "~0.2 ms migrations):",
        table,
        "expected shape: gain ~2x for bursts >> migration latency,",
        "degrading toward 1x as idle windows shrink to the migration time",
    ])


def main() -> None:  # pragma: no cover - CLI entry
    print(report(run_sweep()))


if __name__ == "__main__":  # pragma: no cover
    main()
