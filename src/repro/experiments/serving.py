"""SERVING — multi-tenant SLO conformance, fungible vs static carve-up.

The paper's §1 pitch as a head-to-head: the same tenant population
(staggered diurnal traces, reservation mismatch, seeded bursts — see
:func:`repro.apps.serving.default_tenants`) runs once on a fungible
Quicksand cluster under the tenant-aware serving scheduler and once on
a statically partitioned cluster sized by reservation weight.  Every
``mode x seed`` grid cell goes through :mod:`repro.exec`, so the grid
is cacheable, parallelizable, and digest-deterministic: ``--jobs 4``
and ``--jobs 1`` must produce bit-identical cells, which CI pins.

Figure shape (printed by :func:`report`): per-mode goodput, p99/p999
response time, cluster utilization, and the fungible:static goodput
ratio — the golden tests pin that ratio >= 1.3 at equal p99 SLO.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Optional, Sequence, Tuple

from ..units import MS
from .common import fmt_table

DEFAULT_MACHINES = 24
DEFAULT_CORES = 2.0
DEFAULT_TENANTS = 8
DEFAULT_DURATION = 2.0
DEFAULT_WARMUP = 0.25
DEFAULT_SEEDS = (0, 1, 2)
MODES = ("fungible", "static")
#: The headline claim the golden suite pins: fungible goodput is at
#: least this multiple of the static baseline on the canonical grid.
GOODPUT_RATIO_FLOOR = 1.3


def run_serving_cell(mode: str, seed: int,
                     machines: int = DEFAULT_MACHINES,
                     cores: float = DEFAULT_CORES,
                     tenants: Optional[Tuple] = None,
                     n_tenants: int = DEFAULT_TENANTS,
                     duration: float = DEFAULT_DURATION,
                     warmup: float = DEFAULT_WARMUP) -> Dict:
    """One grid cell as a picklable, cacheable task (see ``repro.exec``).

    Returns plain data (per-tenant and cluster-level goodput/latency)
    so results hash canonically and survive the worker boundary.
    """
    from ..apps.serving import ServingScenario, default_tenants

    if tenants is None:
        tenants = default_tenants(n_tenants)
    scenario = ServingScenario(tenants, machines=machines, cores=cores,
                               mode=mode, seed=seed, duration=duration,
                               warmup=warmup)
    scenario.run()
    r = scenario.results()
    starved = scenario.check_no_starvation()
    return {
        "cell": f"serving.{mode}.seed={seed}",
        "mode": mode,
        "seed": seed,
        "machines": machines,
        "offered": r["offered"],
        "slo_ok": r["slo_ok"],
        "goodput": r["goodput"],
        "p99": r["p99"],
        "p999": r["p999"],
        "utilization": r["utilization"],
        "migrations": r["migrations"],
        "scale_ups": r["scale_ups"],
        "scale_downs": r["scale_downs"],
        "starvation_violations": starved,
        "tenants": [
            {"tenant": s["tenant"], "goodput": s["goodput"],
             "p99": s["p99"], "rejected": s["rejected"],
             "replicas": s["replicas"]}
            for s in r["tenants"]
        ],
    }


def build_specs(seeds: Sequence[int] = DEFAULT_SEEDS,
                machines: int = DEFAULT_MACHINES,
                cores: float = DEFAULT_CORES,
                n_tenants: int = DEFAULT_TENANTS,
                duration: float = DEFAULT_DURATION,
                warmup: float = DEFAULT_WARMUP, seed: int = 0) -> list:
    """RunSpecs for the mode x seed grid.

    Per-cell seeds come from named streams keyed on the cell's
    coordinates — independent of grid order and of which worker runs
    the cell, so serial and parallel runs are bit-identical.  Both
    modes of one seed share the derived seed (same cluster, same
    traces); only the resource model differs.
    """
    from ..exec import RunSpec, derive_seed

    specs = []
    for s in seeds:
        cell_seed = derive_seed(seed, f"serving.seed={s}")
        for mode in MODES:
            specs.append(RunSpec(run_serving_cell, {
                "mode": mode,
                "seed": cell_seed,
                "machines": machines,
                "cores": cores,
                "n_tenants": n_tenants,
                "duration": duration,
                "warmup": warmup,
            }, name=f"serving.{mode}.seed={s}"))
    return specs


def run_serving_exec(seeds: Sequence[int] = DEFAULT_SEEDS,
                     machines: int = DEFAULT_MACHINES,
                     cores: float = DEFAULT_CORES,
                     n_tenants: int = DEFAULT_TENANTS,
                     duration: float = DEFAULT_DURATION,
                     warmup: float = DEFAULT_WARMUP, seed: int = 0,
                     jobs: int = 1, cache=None):
    """The grid through the execution engine: (cells, report)."""
    from ..exec import run_specs

    specs = build_specs(seeds, machines, cores, n_tenants, duration,
                        warmup, seed)
    report_ = run_specs(specs, jobs=jobs, cache=cache)
    return list(report_.values()), report_


def run_serving(seeds: Sequence[int] = DEFAULT_SEEDS, jobs: int = 1,
                cache=None, seed: int = 0, **kwargs) -> List[Dict]:
    cells, _report = run_serving_exec(seeds, seed=seed, jobs=jobs,
                                      cache=cache, **kwargs)
    return cells


def by_mode(cells: List[Dict]) -> Dict[str, List[Dict]]:
    out: Dict[str, List[Dict]] = {mode: [] for mode in MODES}
    for cell in cells:
        out[cell["mode"]].append(cell)
    return out


def goodput_ratio(cells: List[Dict]) -> float:
    """Mean fungible goodput over mean static goodput (the headline)."""
    split = by_mode(cells)
    if not split["fungible"] or not split["static"]:
        raise ValueError("need cells from both modes")
    fung = sum(c["goodput"] for c in split["fungible"]) \
        / len(split["fungible"])
    stat = sum(c["goodput"] for c in split["static"]) \
        / len(split["static"])
    return fung / stat if stat > 0 else float("inf")


def cells_digest(cells: List[Dict]) -> str:
    """Deterministic digest of the grid results (CI pins serial ==
    parallel with this)."""
    from ..exec.spec import canonical

    blob = repr(canonical(cells)).encode()
    return hashlib.sha256(blob).hexdigest()


def report(cells: List[Dict]) -> str:
    rows = []
    for cell in cells:
        rows.append((
            cell["mode"], cell["seed"] & 0xFFFF, cell["offered"],
            f"{cell['goodput']:.3f}",
            f"{cell['p99'] / MS:.1f}", f"{cell['p999'] / MS:.1f}",
            f"{cell['utilization']:.2f}",
            cell["migrations"], cell["scale_ups"],
            len(cell["starvation_violations"]),
        ))
    table = fmt_table(
        ["mode", "seed", "offered", "goodput", "p99 [ms]", "p999 [ms]",
         "util", "migr", "scale+", "starved"],
        rows,
    )
    ratio = goodput_ratio(cells)
    split = by_mode(cells)
    fung_p99 = max(c["p99"] for c in split["fungible"])
    stat_p99 = max(c["p99"] for c in split["static"])
    verdict = ("PASS" if ratio >= GOODPUT_RATIO_FLOOR else
               f"BELOW the {GOODPUT_RATIO_FLOOR:g}x floor")
    return "\n".join([
        "SERVING — multi-tenant SLO conformance, fungible Quicksand vs "
        "static VM carve-up:",
        table,
        f"goodput ratio (fungible/static): {ratio:.3f} [{verdict}]; "
        f"worst p99 fungible {fung_p99 / MS:.1f} ms vs static "
        f"{stat_p99 / MS:.1f} ms",
    ])


def main() -> None:  # pragma: no cover - CLI entry
    print(report(run_serving()))


if __name__ == "__main__":  # pragma: no cover
    main()
