"""Ablation experiments for the design choices DESIGN.md calls out.

These do not correspond to a figure in the paper — they substantiate the
individual claims its argument rests on:

* ABL-PREFETCH — §4: "preprocessing images from remote memory proclets
  is as fast as preprocessing local images" (prefetch on vs off);
* ABL-GRAN — §3.3: migration latency grows with proclet size, which is
  why shards must stay granular;
* ABL-SPLIT — §3.3: the max-shard-size rule keeps migration fast during
  unbounded ingest;
* ABL-COUPLED — §2: Nu-style hybrid proclets cannot combine resources
  split across machines ("it may be impossible to fit proclets in either
  machine");
* ABL-TWOLEVEL — §5: fast local decisions are what absorb 10 ms-scale
  spikes; a slow global pass alone reacts too late.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..apps.dnn import BatchPipeline, DatasetSpec
from ..cluster import ClusterSpec, MachineSpec, OutOfMemory
from ..core import Quicksand, QuicksandConfig
from ..runtime import Proclet
from ..units import GiB, KiB, MS, MiB, US
from .common import fmt_table
from .fig1_filler import Fig1Config, run_fig1
from .fig2_imbalance import PAPER_CONFIGS, cluster_for


# -- ABL-PREFETCH --------------------------------------------------------------

@dataclass
class PrefetchAblationResult:
    with_prefetch_s: float
    without_prefetch_s: float

    @property
    def slowdown(self) -> float:
        return self.without_prefetch_s / self.with_prefetch_s


def run_prefetch_ablation(records: int = 10_000,
                          record_bytes: float = 4 * KiB,
                          cpu_per_record: float = 20e-6,
                          workers: int = 8) -> PrefetchAblationResult:
    """§4's "remote is as fast as local" claim, isolated.

    A compute-light scan over small records stored on the *other*
    machine — the regime where per-element RPC latency actually bites.
    "Without prefetch" iterates element-at-a-time synchronously
    (chunk=1, depth=0); "with" uses the iterator's batched, pipelined
    reads (chunk=32, depth=4).  The paper's image workload has so much
    CPU per byte that even synchronous reads would hide; this scan is
    where the §3.2 iterator hints earn their keep.
    """
    from ..compute import for_each

    def run(chunk: int, depth: int) -> float:
        qs = Quicksand(ClusterSpec(machines=[
            MachineSpec(name="cpuside", cores=workers, dram_bytes=1 * GiB),
            MachineSpec(name="memside", cores=1, dram_bytes=8 * GiB),
        ]), config=QuicksandConfig(enable_local_scheduler=False,
                                   enable_global_scheduler=False,
                                   enable_split_merge=False))
        memside = qs.machine("memside")
        vec = qs.sharded_vector(name="records",
                                initial_machine=memside)

        def loader():
            # Sequential ingest: bulk-loading with one outstanding write
            # (submitting all N at once would create N concurrent fluid
            # items and quadratic reassignment cost in the kernel).
            for _ in range(records):
                yield vec.append(None, record_bytes)

        qs.sim.run(until_event=qs.sim.process(loader(), name="load"))
        pool = qs.compute_pool(name="scan", initial_members=workers,
                               machine=qs.machine("cpuside"))
        t0 = qs.sim.now
        done = for_each(pool, vec, work=cpu_per_record,
                        task_elems=records // workers,
                        reader_chunk=chunk, reader_depth=depth)
        qs.sim.run(until_event=done)
        return qs.sim.now - t0

    return PrefetchAblationResult(
        with_prefetch_s=run(chunk=32, depth=4),
        without_prefetch_s=run(chunk=1, depth=0),
    )


# -- ABL-GRAN ----------------------------------------------------------------------

class _StateHolder(Proclet):
    def __init__(self, nbytes: float):
        super().__init__()
        self._nbytes = nbytes

    def on_start(self, ctx):
        if self._nbytes:
            ctx.alloc(self._nbytes)


def run_migration_granularity(
        sizes: Optional[List[float]] = None) -> List[Tuple[float, float]]:
    """Migration latency vs proclet heap size: (bytes, seconds) points."""
    if sizes is None:
        sizes = [64 * KiB, 1 * MiB, 10 * MiB, 100 * MiB, 1 * GiB]
    qs = Quicksand(ClusterSpec(machines=[
        MachineSpec(name="a", cores=8, dram_bytes=4 * GiB),
        MachineSpec(name="b", cores=8, dram_bytes=4 * GiB),
    ]), config=QuicksandConfig(enable_local_scheduler=False,
                               enable_global_scheduler=False,
                               enable_split_merge=False))
    a, b = qs.machines
    points = []
    for size in sizes:
        ref = qs.runtime.spawn(_StateHolder(size), a)
        qs.sim.run(until=qs.sim.now + 1 * MS)
        latency = qs.sim.run(until_event=qs.runtime.migrate(ref, b))
        points.append((size, latency))
        qs.runtime.destroy(ref)
    return points


# -- ABL-SPLIT ----------------------------------------------------------------------

@dataclass
class SplitAblationResult:
    with_split_max_shard_bytes: float
    with_split_migration_s: float
    without_split_shard_bytes: float
    without_split_migration_s: float


def run_split_ablation(total_bytes: float = 256 * MiB) -> SplitAblationResult:
    """Ingest with/without the §3.3 split rule; migrate the biggest shard."""

    def run(enable_split: bool) -> Tuple[float, float]:
        qs = Quicksand(ClusterSpec(machines=[
            MachineSpec(name="a", cores=8, dram_bytes=4 * GiB),
            MachineSpec(name="b", cores=8, dram_bytes=4 * GiB),
        ]), config=QuicksandConfig(enable_local_scheduler=False,
                                   enable_global_scheduler=False,
                                   enable_split_merge=enable_split))
        vec = qs.sharded_vector(name="ingest")
        n = int(total_bytes / (256 * KiB))

        def loader():
            for _ in range(n):
                yield vec.append(None, 256 * KiB)

        qs.sim.run(until_event=qs.sim.process(loader(), name="load"))
        qs.sim.run(until=qs.sim.now + 0.3)
        biggest = max(vec.shards, key=lambda s: s.proclet.heap_bytes)
        dst = next(m for m in qs.machines
                   if m is not biggest.ref.machine)
        latency = qs.sim.run(
            until_event=qs.runtime.migrate(biggest.ref, dst))
        return biggest.proclet.heap_bytes, latency

    with_bytes, with_lat = run(True)
    without_bytes, without_lat = run(False)
    return SplitAblationResult(
        with_split_max_shard_bytes=with_bytes,
        with_split_migration_s=with_lat,
        without_split_shard_bytes=without_bytes,
        without_split_migration_s=without_lat,
    )


# -- ABL-COUPLED ----------------------------------------------------------------------

@dataclass
class HybridAblationResult:
    """Fitting a workload as hybrid vs resource proclets on the
    both-unbalanced machine pair."""

    hybrid_placed: int
    hybrid_failed: int
    decoupled_placed: int
    decoupled_failed: int


def run_hybrid_ablation(units: int = 40,
                        unit_memory: float = 256 * MiB,
                        unit_threads: int = 1) -> HybridAblationResult:
    """§2's stranding argument, made concrete.

    A workload of *units*, each needing 1 thread + 256 MiB.  Machine A
    has cores but almost no DRAM; machine B has DRAM but few cores.
    Hybrid (Nu-style) units must find both on ONE machine and mostly
    fail; decoupled units place their memory on B and compute on A.
    """
    def make_qs():
        return Quicksand(ClusterSpec(machines=[
            MachineSpec(name="cpuheavy", cores=40, dram_bytes=1 * GiB),
            MachineSpec(name="memheavy", cores=6, dram_bytes=12 * GiB),
        ]), config=QuicksandConfig(enable_local_scheduler=False,
                                   enable_global_scheduler=False,
                                   enable_split_merge=False))

    # Hybrid: memory+compute bundled; must fit the memory on the same
    # machine that has a free core.
    qs = make_qs()
    hybrid_placed = hybrid_failed = 0
    cores_left = {m.name: m.cpu.cores for m in qs.machines}
    for _ in range(units):
        placed = False
        for m in qs.machines:
            if cores_left[m.name] >= unit_threads \
                    and m.memory.can_fit(unit_memory):
                m.memory.reserve(unit_memory)
                cores_left[m.name] -= unit_threads
                placed = True
                break
        if placed:
            hybrid_placed += 1
        else:
            hybrid_failed += 1

    # Decoupled: memory proclets and compute proclets place independently.
    qs = make_qs()
    decoupled_placed = decoupled_failed = 0
    cores_left = {m.name: m.cpu.cores for m in qs.machines}
    for _ in range(units):
        mem_target = qs.placement.best_for_memory(unit_memory)
        cpu_target = next(
            (m for m in sorted(qs.machines,
                               key=lambda x: -cores_left[x.name])
             if cores_left[m.name] >= unit_threads),
            None,
        )
        if mem_target is not None and cpu_target is not None:
            mem_target.memory.reserve(unit_memory)
            cores_left[cpu_target.name] -= unit_threads
            decoupled_placed += 1
        else:
            decoupled_failed += 1

    return HybridAblationResult(
        hybrid_placed=hybrid_placed,
        hybrid_failed=hybrid_failed,
        decoupled_placed=decoupled_placed,
        decoupled_failed=decoupled_failed,
    )


# -- ABL-TWOLEVEL ----------------------------------------------------------------------

@dataclass
class TwoLevelAblationResult:
    local_goodput_cores: float
    global_only_goodput_cores: float
    none_goodput_cores: float


def run_two_level_ablation(duration: float = 0.2) -> TwoLevelAblationResult:
    """Fig. 1 workload under different scheduler levels.

    The global scheduler's 50 ms cadence cannot catch 10 ms bursts; only
    the local fast path fills them (§5's argument for two levels).
    """
    def run(local: bool, global_: bool) -> float:
        config = Fig1Config(fungible=True, duration=duration)
        # Patch the scheduler switches through a custom run.
        from ..apps import FillerApp, PhasedApp

        spec = ClusterSpec(machines=[
            MachineSpec(name="m0", cores=config.cores,
                        dram_bytes=config.dram_bytes),
            MachineSpec(name="m1", cores=config.cores,
                        dram_bytes=config.dram_bytes),
        ])
        qs = Quicksand(spec, config=QuicksandConfig(
            enable_local_scheduler=local,
            enable_global_scheduler=global_,
            enable_split_merge=False,
        ))
        m0, m1 = qs.machines
        PhasedApp(m0, burst=config.burst, idle=config.burst).start()
        PhasedApp(m1, burst=config.burst, idle=config.burst,
                  phase_offset=config.burst).start()
        filler = FillerApp(qs, proclets=config.filler_proclets,
                           work_unit=config.work_unit, machine=m1)
        qs.run(until=config.warmup)
        t0 = qs.sim.now
        qs.run(until=t0 + duration)
        return filler.goodput_cores(t0, qs.sim.now)

    return TwoLevelAblationResult(
        local_goodput_cores=run(local=True, global_=False),
        global_only_goodput_cores=run(local=False, global_=True),
        none_goodput_cores=run(local=False, global_=False),
    )


# -- grid + report --------------------------------------------------------------------

#: The ablation grid, in report order.  Each entry is an independent
#: module-level callable — exactly the shape ``repro.exec`` fans out.
ABLATIONS = (
    ("prefetch", run_prefetch_ablation),
    ("granularity", run_migration_granularity),
    ("split", run_split_ablation),
    ("hybrid", run_hybrid_ablation),
    ("twolevel", run_two_level_ablation),
)


def build_specs() -> list:
    from ..exec import RunSpec

    return [RunSpec(fn, {}, name=f"ablation.{name}")
            for name, fn in ABLATIONS]


def run_ablation_grid(jobs: int = 1, cache=None):
    """Run every ablation through the execution engine.

    Returns ``(results_by_name, ExecReport)`` with results in the
    registry's (stable) order."""
    from ..exec import run_specs

    report = run_specs(build_specs(), jobs=jobs, cache=cache)
    names = [name for name, _fn in ABLATIONS]
    return dict(zip(names, report.values())), report


def format_report(results) -> str:
    pf = results["prefetch"]
    gran = results["granularity"]
    sp = results["split"]
    hy = results["hybrid"]
    tl = results["twolevel"]
    lines = ["ABLATIONS"]
    lines.append(
        f"ABL-PREFETCH  with={pf.with_prefetch_s:.2f}s "
        f"without={pf.without_prefetch_s:.2f}s "
        f"slowdown={pf.slowdown:.2f}x"
    )
    lines.append("ABL-GRAN  migration latency vs heap size:")
    lines.append(fmt_table(
        ["heap", "latency [ms]"],
        [(f"{int(b / KiB)} KiB", f"{t * 1e3:.3f}") for b, t in gran],
    ))
    lines.append(
        f"ABL-SPLIT  with-split shard={sp.with_split_max_shard_bytes / MiB:.0f} MiB "
        f"mig={sp.with_split_migration_s * 1e3:.2f} ms; "
        f"without shard={sp.without_split_shard_bytes / MiB:.0f} MiB "
        f"mig={sp.without_split_migration_s * 1e3:.2f} ms"
    )
    lines.append(
        f"ABL-COUPLED  hybrid placed {hy.hybrid_placed}, "
        f"stranded {hy.hybrid_failed}; decoupled placed "
        f"{hy.decoupled_placed}, stranded {hy.decoupled_failed}"
    )
    lines.append(
        f"ABL-TWOLEVEL  local={tl.local_goodput_cores:.2f} cores, "
        f"global-only={tl.global_only_goodput_cores:.2f}, "
        f"none={tl.none_goodput_cores:.2f}"
    )
    return "\n".join(lines)


def report_all(jobs: int = 1, cache=None) -> str:  # pragma: no cover
    results, _report = run_ablation_grid(jobs=jobs, cache=cache)
    return format_report(results)


def main() -> None:  # pragma: no cover - CLI entry
    print(report_all())


if __name__ == "__main__":  # pragma: no cover
    main()
