"""Traced experiment runs: fast-scale figure runs under span capture.

Backs ``python -m repro trace <experiment>``: each runner executes one
experiment (at a reduced scale suited to interactive tracing) inside an
:func:`repro.obs.capture` block and returns a :class:`TracedRun` bundling
the experiment's result with the captured spans, ready to export or
digest.  Runs are pure functions of ``(experiment, seed)``, so two
invocations with the same arguments produce identical trace digests —
the property the CI trace-smoke step pins.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict

from ..obs import Capture, capture, chrome_trace, flame_profile
from ..units import MS, MiB


@dataclass
class TracedRun:
    """One traced experiment: its result plus the captured spans."""

    experiment: str
    seed: int
    result: Any
    spans: Capture

    def digest(self) -> str:
        """Deterministic sha256 over every captured span."""
        return self.spans.digest()

    def chrome(self) -> dict:
        """Chrome ``trace_event`` document (Perfetto-loadable)."""
        return chrome_trace(self.spans, label=f"{self.experiment}"
                                              f"[seed={self.seed}]")

    def profile(self, top: int = 8) -> str:
        """Plain-text virtual-time-by-category profile."""
        return flame_profile(self.spans, top=top)

    def span_count(self) -> int:
        return sum(len(tr) for tr in self.spans.tracers)


def _trace_fig1(seed: int) -> Any:
    from .fig1_filler import Fig1Config, run_fig1

    return run_fig1(Fig1Config(duration=60 * MS, fungible=True, seed=seed))


def _trace_fig2(seed: int) -> Any:
    from ..apps.dnn import DatasetSpec
    from .fig2_imbalance import PAPER_CONFIGS, run_fig2

    dataset = DatasetSpec(count=240, mean_bytes=1 * MiB, mean_cpu=0.1)
    configs = [c for c in PAPER_CONFIGS
               if c[0] in ("baseline", "both-unbalanced")]
    return run_fig2(dataset=dataset, configs=configs, seed=seed)


def _trace_fig3(seed: int) -> Any:
    from .fig3_gpu_adapt import Fig3Config, run_fig3

    return run_fig3(Fig3Config(duration=0.5, seed=seed))


def _trace_chaos(seed: int) -> Any:
    from ..chaos import ChaosConfig, run_chaos

    return run_chaos(ChaosConfig(seed=seed, duration=0.5))


RUNNERS: Dict[str, Callable[[int], Any]] = {
    "fig1": _trace_fig1,
    "fig2": _trace_fig2,
    "fig3": _trace_fig3,
    "chaos": _trace_chaos,
}


def run_traced(experiment: str, seed: int = 0,
               max_spans: int = 500_000) -> TracedRun:
    """Run *experiment* (``fig1``/``fig2``/``fig3``/``chaos``) at trace
    scale with span capture enabled and return the :class:`TracedRun`."""
    runner = RUNNERS.get(experiment)
    if runner is None:
        raise ValueError(
            f"unknown experiment {experiment!r}; "
            f"choose from {sorted(RUNNERS)}")
    with capture(max_spans=max_spans) as cap:
        result = runner(seed)
    return TracedRun(experiment=experiment, seed=seed, result=result,
                     spans=cap)
