"""FIG2 — reproduce Figure 2: combining imbalanced resources.

The paper fixes total resources (46 cores, 13 GiB) and splits them across
two machines in three imbalanced ways; a Quicksand preprocessing pipeline
should match the single-machine baseline within a few percent:

|                 | Machine 1            | Machine 2            | Time   |
|-----------------|----------------------|----------------------|--------|
| Baseline        | 46 cores, 13 GiB     | —                    | 26.1 s |
| CPU-unbalanced  | 6 cores, 6.5 GiB     | 40 cores, 6.5 GiB    | 26.4 s |
| Mem-unbalanced  | 23 cores, 1 GiB      | 23 cores, 12 GiB     | 26.6 s |
| Both-unbalanced | 6 cores, 12 GiB      | 40 cores, 1 GiB      | 26.5 s |

Mechanisms under test: memory proclets spread data to wherever DRAM is
free, compute proclets land where cores are free, and the prefetcher
hides remote reads (§4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..apps.dnn import BatchPipeline, DatasetSpec
from ..cluster import ClusterSpec, MachineSpec
from ..core import Quicksand, QuicksandConfig
from ..units import GiB
from .common import fmt_table

#: DRAM the runtime itself needs per machine (proclet footprints, queue
#: headroom) on top of the dataset.
_SLACK = 0.25 * GiB

#: The paper's four configurations: (name, [(cores, dram_gib), ...]).
PAPER_CONFIGS: List[Tuple[str, List[Tuple[float, float]]]] = [
    ("baseline", [(46, 13.0)]),
    ("cpu-unbalanced", [(6, 6.5), (40, 6.5)]),
    ("mem-unbalanced", [(23, 1.0), (23, 12.0)]),
    ("both-unbalanced", [(6, 12.0), (40, 1.0)]),
]

#: The paper's measured times, for side-by-side reporting.
PAPER_TIMES = {
    "baseline": 26.1,
    "cpu-unbalanced": 26.4,
    "mem-unbalanced": 26.6,
    "both-unbalanced": 26.5,
}

#: EXT-SCALE: the same totals shattered across FOUR machines (not in the
#: paper, which stops at two) — generality check for the mechanism.
FOUR_WAY_CONFIG = ("4way-unbalanced",
                   [(6, 10.0), (20, 1.0), (10, 1.0), (10, 1.0)])


@dataclass
class Fig2Row:
    """One row of the Fig. 2 table."""

    name: str
    machines: str
    time_s: float
    paper_time_s: float
    shard_machines: Dict[str, int] = field(default_factory=dict)
    worker_machines: Dict[str, int] = field(default_factory=dict)

    @property
    def slowdown_vs_paper_baseline_shape(self) -> float:
        return self.time_s / PAPER_TIMES["baseline"]


def cluster_for(machines: List[Tuple[float, float]],
                seed: int = 0) -> ClusterSpec:
    """Build the ClusterSpec for one Fig. 2 configuration."""
    return ClusterSpec(
        machines=[
            MachineSpec(name=f"m{i}", cores=cores,
                        dram_bytes=dram_gib * GiB + _SLACK)
            for i, (cores, dram_gib) in enumerate(machines)
        ],
        seed=seed,
    )


def run_fig2_config(name: str, machines: List[Tuple[float, float]],
                    dataset: Optional[DatasetSpec] = None,
                    seed: int = 0) -> Fig2Row:
    """Run the preprocessing pipeline on one machine configuration."""
    if dataset is None:
        dataset = DatasetSpec()
    qs = Quicksand(cluster_for(machines, seed),
                   config=QuicksandConfig(enable_global_scheduler=False))
    pipeline = BatchPipeline(qs, dataset=dataset)
    result = pipeline.run()
    return Fig2Row(
        name=name,
        machines=" + ".join(f"{int(c)}c/{g:g}GiB" for c, g in machines),
        time_s=result.preprocess_time,
        paper_time_s=PAPER_TIMES.get(name, float("nan")),
        shard_machines=result.shard_machines,
        worker_machines=result.worker_machines,
    )


def run_fig2(dataset: Optional[DatasetSpec] = None,
             configs=None, seed: int = 0) -> List[Fig2Row]:
    """Run all (or the chosen) Fig. 2 configurations."""
    rows = []
    for name, machines in (configs or PAPER_CONFIGS):
        rows.append(run_fig2_config(name, machines, dataset, seed))
    return rows


def report(rows: List[Fig2Row]) -> str:
    baseline = next((r for r in rows if r.name == "baseline"), rows[0])
    table_rows = []
    for r in rows:
        ratio = r.time_s / baseline.time_s
        paper_ratio = r.paper_time_s / baseline.paper_time_s
        table_rows.append((
            r.name, r.machines,
            f"{r.time_s:.2f}", f"{r.paper_time_s:.1f}",
            f"{ratio:.3f}", f"{paper_ratio:.3f}",
        ))
    table = fmt_table(
        ["config", "machines", "time [s]", "paper [s]",
         "vs baseline", "paper vs baseline"],
        table_rows,
    )
    lines = [
        "FIG2 — DNN preprocessing with imbalanced two-machine splits",
        table,
        "placement (shards / workers per machine):",
    ]
    for r in rows:
        lines.append(f"  {r.name:17s} shards={r.shard_machines} "
                     f"workers={r.worker_machines}")
    lines.append(
        "expected shape: every split within a few % of the baseline "
        "(paper: 26.1 -> 26.4/26.6/26.5 s)"
    )
    return "\n".join(lines)


def main() -> None:  # pragma: no cover - CLI entry
    print(report(run_fig2()))


if __name__ == "__main__":  # pragma: no cover
    main()
