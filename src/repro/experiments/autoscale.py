"""AUTOSCALE — hand-tuned shard control vs the fault-tolerant autoscaler.

Two questions, per the robustness milestone:

1. **Parity** — on the Fig. 2 preprocessing pipeline, replacing the
   legacy heap-change :class:`~repro.core.splitmerge.ShardSizeController`
   with the sampling :class:`~repro.autoscale.ShardAutoscaler` must not
   slow completion beyond a small constant (the golden tests pin the
   1.25x ceiling from the issue).  Both controllers share their size
   predicates (:mod:`repro.autoscale.policy`), so any gap is pure
   reaction latency — the autoscaler sees an oversized shard at its next
   sampling tick rather than on the very allocation that crossed the
   line.

2. **Robustness** — a chaos fault grid (crash/partition schedules x
   seeds x recovery policies) with ``autoscale=True`` must complete with
   every invariant holding — including the reshard-integrity checks
   that run after *every* simulator event — and with digests stable
   across replays.  The grid fans out through :mod:`repro.exec`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..apps.dnn import BatchPipeline, DatasetSpec
from ..core import Quicksand, QuicksandConfig
from ..units import KiB
from .common import fmt_table
from .fig2_imbalance import PAPER_CONFIGS, cluster_for

#: Scaled-down Fig. 2 dataset for the comparison runs (same shape as
#: the recovery experiments' dataset: enough churn to force splits).
AUTOSCALE_DATASET = DatasetSpec(count=2000, mean_bytes=256 * KiB,
                                mean_cpu=0.02)

#: Default chaos fault grid for ``run_autoscale_grid``.
DEFAULT_GRID_SEEDS = (1, 2, 3, 5, 7)
DEFAULT_GRID_POLICIES = (None, "restart", "checkpoint")


@dataclass(frozen=True)
class AutoscaleRow:
    """One Fig. 2 configuration run under both controllers."""

    name: str
    legacy_time: float          # virtual s, hand-tuned controller
    autoscale_time: float       # virtual s, ShardAutoscaler
    legacy_splits: int
    autoscale_splits: int
    decisions: int              # autoscaler decision-log length
    final_state: str            # autoscaler state at completion

    @property
    def ratio(self) -> float:
        return self.autoscale_time / self.legacy_time


def _run_pipeline(machines, dataset: DatasetSpec, seed: int,
                  autoscale: bool):
    qs = Quicksand(cluster_for(machines, seed),
                   config=QuicksandConfig(enable_global_scheduler=False))
    autoscaler = qs.enable_autoscaler() if autoscale else None
    pipeline = BatchPipeline(qs, dataset=dataset)
    result = pipeline.run()
    return qs, autoscaler, result


def run_autoscale_config(name: str, machines,
                         dataset: Optional[DatasetSpec] = None,
                         seed: int = 0) -> AutoscaleRow:
    """One Fig. 2 configuration, hand-tuned vs autoscaled."""
    dataset = dataset or AUTOSCALE_DATASET
    qs_legacy, _, legacy = _run_pipeline(machines, dataset, seed,
                                         autoscale=False)
    qs_auto, autoscaler, auto = _run_pipeline(machines, dataset, seed,
                                              autoscale=True)
    return AutoscaleRow(
        name=name,
        legacy_time=legacy.preprocess_time,
        autoscale_time=auto.preprocess_time,
        legacy_splits=qs_legacy.splits,
        autoscale_splits=qs_auto.splits,
        decisions=len(autoscaler.decisions),
        final_state=autoscaler.state,
    )


def run_autoscale_fig2(dataset: Optional[DatasetSpec] = None,
                       configs=None, seed: int = 0) -> List[AutoscaleRow]:
    """The parity comparison over the Fig. 2 machine configurations."""
    rows = []
    for name, machines in (configs or PAPER_CONFIGS):
        rows.append(run_autoscale_config(name, machines, dataset, seed))
    return rows


def run_autoscale_grid(seeds: Sequence[int] = DEFAULT_GRID_SEEDS,
                       policies=DEFAULT_GRID_POLICIES,
                       duration: float = 0.4, jobs: int = 1,
                       cache: Optional[str] = None) -> Tuple[List[dict],
                                                             object]:
    """The chaos fault grid with the autoscaler on: (rows, ExecReport).

    Every cell runs the full invariant battery (reshard integrity
    included) after every simulator event; a violation raises inside
    the worker and fails the grid.
    """
    from ..chaos import run_chaos_summary
    from ..exec import RunSpec, run_specs

    specs = [
        RunSpec(run_chaos_summary,
                {"seed": seed, "duration": duration, "autoscale": True,
                 "recovery_policy": policy},
                name=f"autoscale.chaos.seed={seed}"
                     + (f".rec={policy}" if policy else ""))
        for policy in policies
        for seed in seeds
    ]
    report = run_specs(specs, jobs=jobs, cache=cache)
    return list(report.values()), report


def report(rows: List[AutoscaleRow], grid: Optional[List[dict]] = None,
           ) -> str:
    table = fmt_table(
        ["config", "hand-tuned [s]", "autoscaled [s]", "ratio",
         "splits (legacy/auto)", "decisions", "state"],
        [(r.name, f"{r.legacy_time:.2f}", f"{r.autoscale_time:.2f}",
          f"{r.ratio:.3f}", f"{r.legacy_splits}/{r.autoscale_splits}",
          str(r.decisions), r.final_state)
         for r in rows],
    )
    lines = [
        "AUTOSCALE — hand-tuned shard controller vs ShardAutoscaler",
        table,
        "expected shape: every ratio <= 1.25 (reaction latency only; "
        "both controllers share their size predicates)",
    ]
    if grid:
        lines.append("")
        lines.append(f"chaos grid: {len(grid)} cells, all invariants held")
        for row in grid:
            lines.append(
                f"  seed {row['seed']:>3}: "
                f"splits={row['reshard_splits']} "
                f"merges={row['reshard_merges']} "
                f"aborts={row['reshard_aborts']} "
                f"sheds={row['autoscale_sheds']} "
                f"checks={row['invariant_checks']} "
                f"digest={row['digest'][:16]}...")
    return "\n".join(lines)


def main() -> None:  # pragma: no cover - CLI entry
    print(report(run_autoscale_fig2()))


if __name__ == "__main__":  # pragma: no cover
    main()
