"""CLONING — request cloning vs load, pinned to the PS closed form.

The tail-latency half of the utilization argument: a fleet of one-core
PS servers running :class:`repro.apps.CloneService`, swept over an
arrival-rate x clone-factor x seed grid for two service-time
distributions (exponential, and a high-variance hyperexponential where
cloning shines).  Every cell is differentially compared against the
closed-form M/G/1-PS cloning prediction from
:mod:`repro.hedge.oracle` — agreement between the simulated fleet and
an independently derived formula is the correctness guarantee, enforced
in CI the same way the chaos water-fill oracle is.

Figure shape (printed by :func:`report`): mean and p99 response time vs
per-server load for clone factors 1/2/3.  Under exponential service
times cloning helps outright (min-of-c collapses the mean); under
deterministic service times it can only hurt — both shapes fall out of
the same formula.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Optional, Tuple

from ..cluster import Cluster, symmetric_cluster
from ..hedge.oracle import (Exponential, HyperExp, ServiceDist,
                            clone_mean_response, clone_utilization,
                            compare_cells, tolerance_for)
from ..units import MS, MiB
from .common import fmt_table

#: Canonical grid: six one-core servers so clone factors 1/2/3 all
#: divide the fleet, 1 ms mean service time either exponential or
#: hyperexponential (90% fast at 0.5 ms, 10% slow at 5.5 ms — same
#: mean, squared CV ~= 8).
DEFAULT_SERVERS = 6
DEFAULT_LOADS = (0.3, 0.5, 0.7)
DEFAULT_CLONES = (1, 2, 3)
DIST_EXP = Exponential(mean=1 * MS)
DIST_HYPER = HyperExp(p=0.9, mean_fast=0.5 * MS, mean_slow=5.5 * MS)
DEFAULT_DURATION = 6.0
DEFAULT_WARMUP = 0.5


def run_cell(load: float, clone_factor: int, dist: ServiceDist,
             seed: int, servers: int = DEFAULT_SERVERS,
             duration: float = DEFAULT_DURATION,
             warmup: float = DEFAULT_WARMUP) -> Dict:
    """One grid cell as a picklable, cacheable task (see ``repro.exec``).

    *load* is the per-server utilization the *un-cloned* system would
    run at; the arrival rate is ``load * servers / E[S]`` so a row of
    clone factors shares one arrival process and the cloning cost shows
    up as the predicted utilization shift.  Returns plain data (plus
    the closed-form prediction and its tolerance band) so results hash
    canonically and survive the worker boundary.
    """
    from ..apps import CloneService

    dist_mean = dist.mean
    arrival_rate = load * servers / dist_mean
    cluster = Cluster(symmetric_cluster(servers, cores=1,
                                        dram_bytes=256 * MiB, seed=seed))
    service = CloneService(cluster.machines, arrival_rate, dist,
                           clone_factor=clone_factor, name="cloning")
    service.start()
    cluster.run(until=duration)
    summary = service.latency_summary(since=warmup)
    rho = clone_utilization(arrival_rate, servers, clone_factor, dist)
    predicted = clone_mean_response(arrival_rate, servers, clone_factor,
                                    dist)
    return {
        "cell": f"{dist.label}.load={load:g}.c={clone_factor}.seed={seed}",
        "dist": dist.label,
        "load": load,
        "clone_factor": clone_factor,
        "seed": seed,
        "rho": rho,
        "requests": summary.count,
        "mean": summary.mean,
        "p50": summary.p50,
        "p99": summary.p99,
        "predicted": predicted,
        "tolerance": tolerance_for(rho, summary.count,
                                   dist.scv_min_of(clone_factor)),
        "clones_launched": service.clones_launched,
        "clones_cancelled": service.clones_cancelled,
        "failed_requests": service.failed_requests,
    }


def build_specs(loads=DEFAULT_LOADS, clones=DEFAULT_CLONES,
                dists: Tuple[ServiceDist, ...] = (DIST_EXP, DIST_HYPER),
                seeds=(0,), servers: int = DEFAULT_SERVERS,
                duration: float = DEFAULT_DURATION,
                warmup: float = DEFAULT_WARMUP, seed: int = 0) -> list:
    """RunSpecs for the cloning grid.

    Per-cell seeds come from named streams keyed on the cell's
    coordinates — independent of grid order and of which worker runs
    the cell, so serial and parallel runs are bit-identical.

    High-variance cells run 4x longer: a cell whose effective
    (min-of-c) service SCV exceeds 2 converges ~sqrt(scv) slower, so it
    gets proportionally more virtual time to stay inside the same
    relative tolerance (calibration in docs/cloning.md)."""
    from ..exec import RunSpec, derive_seed

    specs = []
    for dist in dists:
        for load in loads:
            for c in clones:
                cell_duration = duration * (4.0 if dist.scv_min_of(c) > 2.0
                                            else 1.0)
                for s in seeds:
                    stream = (f"cloning.{dist.label}.load={load!r}"
                              f".c={c}.seed={s}")
                    specs.append(RunSpec(run_cell, {
                        "load": load,
                        "clone_factor": c,
                        "dist": dist,
                        "seed": derive_seed(seed, stream),
                        "servers": servers,
                        "duration": cell_duration,
                        "warmup": warmup,
                    }, name=stream))
    return specs


def run_cloning_exec(loads=DEFAULT_LOADS, clones=DEFAULT_CLONES,
                     dists: Tuple[ServiceDist, ...] = (DIST_EXP,
                                                       DIST_HYPER),
                     seeds=(0,), servers: int = DEFAULT_SERVERS,
                     duration: float = DEFAULT_DURATION,
                     warmup: float = DEFAULT_WARMUP, seed: int = 0,
                     jobs: int = 1, cache=None):
    """The grid through the execution engine: (cells, report)."""
    from ..exec import run_specs

    specs = build_specs(loads, clones, dists, seeds, servers, duration,
                        warmup, seed)
    report_ = run_specs(specs, jobs=jobs, cache=cache)
    return list(report_.values()), report_


def run_cloning(loads=DEFAULT_LOADS, clones=DEFAULT_CLONES,
                dists: Tuple[ServiceDist, ...] = (DIST_EXP, DIST_HYPER),
                seeds=(0,), jobs: int = 1, cache=None,
                seed: int = 0) -> List[Dict]:
    cells, _report = run_cloning_exec(loads, clones, dists, seeds,
                                      seed=seed, jobs=jobs, cache=cache)
    return cells


def differential(cells: List[Dict]):
    """Diff every simulated cell against the closed form; returns the
    list of :class:`repro.hedge.CloneDivergence` (empty = pass)."""
    return compare_cells(cells)


def cells_digest(cells: List[Dict]) -> str:
    """Deterministic digest of the grid results (CI pins serial ==
    parallel with this)."""
    from ..exec.spec import canonical

    blob = repr(canonical(cells)).encode()
    return hashlib.sha256(blob).hexdigest()


def report(cells: List[Dict]) -> str:
    rows = []
    for cell in cells:
        err = (abs(cell["mean"] - cell["predicted"]) / cell["predicted"]
               if cell["predicted"] > 0 else float("inf"))
        rows.append((
            cell["dist"], f"{cell['load']:g}", cell["clone_factor"],
            f"{cell['rho']:.2f}", cell["requests"],
            f"{cell['mean'] / MS:.3f}", f"{cell['predicted'] / MS:.3f}",
            f"{err:.1%}", f"{cell['tolerance']:.0%}",
            f"{cell['p99'] / MS:.2f}",
        ))
    table = fmt_table(
        ["service dist", "load", "c", "rho", "requests", "mean [ms]",
         "oracle [ms]", "err", "tol", "p99 [ms]"],
        rows,
    )
    divergences = differential(cells)
    verdict = ("all cells within the oracle's band" if not divergences
               else "\n".join(str(d) for d in divergences))
    return "\n".join([
        f"CLONING — response time vs load for clone factors, "
        f"{DEFAULT_SERVERS} one-core PS servers:",
        table,
        f"differential vs closed-form M/G/1-PS cloning oracle: {verdict}",
    ])


def main() -> None:  # pragma: no cover - CLI entry
    print(report(run_cloning()))


if __name__ == "__main__":  # pragma: no cover
    main()
