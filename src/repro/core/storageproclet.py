"""Storage proclets: persistent-data proclets (capacity + IOPS).

Implements the ``ReadObject(id)`` / ``WriteObject(id)`` API of §3.1.
Object bytes live on the hosting machine's :class:`StorageDevice` — the
proclet's DRAM heap holds only its index — so a storage proclet is cheap
to account for in memory while consuming the device's capacity and IOPS.
The flat-storage abstraction (:mod:`repro.storage`) spreads many storage
proclets across devices to aggregate both sub-resources (§3.2, §5).
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

from ..runtime import Payload
from ..units import US
from .resource import ResourceKind, ResourceProclet

#: DRAM index entry per stored object.
_INDEX_BYTES = 64.0
_OP_CPU = 0.3 * US


class StorageProclet(ResourceProclet):
    """Keyed object store over one machine's storage device."""

    kind = ResourceKind.STORAGE

    def __init__(self):
        super().__init__()
        self._objects: Dict[Any, Tuple[float, Any]] = {}
        self.reads = 0
        self.writes = 0

    def _device(self):
        dev = self.machine.storage
        if dev is None:
            raise RuntimeError(
                f"{self.name}: machine {self.machine.name} has no storage"
            )
        return dev

    @property
    def object_count(self) -> int:
        return len(self._objects)

    @property
    def stored_bytes(self) -> float:
        return sum(nbytes for nbytes, _v in self._objects.values())

    # -- proclet methods ------------------------------------------------------
    def sp_write(self, ctx, key, nbytes: float, value: Any = None):
        """WriteObject: reserve device capacity and pay the I/O."""
        if nbytes < 0:
            raise ValueError(f"negative object size: {nbytes}")
        yield ctx.cpu(_OP_CPU)
        device = self._device()
        old = self._objects.get(key)
        if old is not None:
            device.release(old[0])
            self.heap_free(_INDEX_BYTES)
        device.reserve(nbytes)
        ctx.alloc(_INDEX_BYTES)
        yield from device.write(nbytes, priority=int(ctx.priority))
        self._objects[key] = (float(nbytes), value)
        self.writes += 1

    def sp_read(self, ctx, key):
        """ReadObject: pay the device I/O; remote callers also pay the wire."""
        yield ctx.cpu(_OP_CPU)
        entry = self._objects.get(key)
        if entry is None:
            raise KeyError(f"{self.name}: no object {key!r}")
        nbytes, value = entry
        yield from self._device().read(nbytes, priority=int(ctx.priority))
        self.reads += 1
        return Payload(value, nbytes=nbytes)

    def sp_delete(self, ctx, key):
        yield ctx.cpu(_OP_CPU)
        entry = self._objects.pop(key, None)
        if entry is None:
            raise KeyError(f"{self.name}: no object {key!r}")
        self._device().release(entry[0])
        self.heap_free(_INDEX_BYTES)
        return entry[0]

    def sp_contains(self, ctx, key):
        yield ctx.cpu(_OP_CPU)
        return key in self._objects

    def sp_stats(self, ctx):
        yield ctx.cpu(_OP_CPU)
        return {
            "objects": len(self._objects),
            "stored_bytes": self.stored_bytes,
            "device_free": self._device().free,
        }
