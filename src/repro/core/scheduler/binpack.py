"""Bin-packing placement planner (§3.3's granular-allocation argument).

The paper argues granular proclets "reduce the complexity for the
scheduler to binpack proclets onto machines [POP, 39]".  This module
provides the packing pass the global scheduler can run instead of its
greedy pairwise rebalance: a *sticky* first-fit-decreasing plan that
keeps every proclet where it is unless its bin is over capacity, then
emits the minimal set of moves to make everything fit.

Pure functions over snapshots — no simulator coupling — so the planner
is directly unit-testable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Tuple


@dataclass(frozen=True)
class PackItem:
    """One schedulable item: a proclet's demand on a single resource."""

    key: Hashable
    size: float
    current_bin: Hashable

    def __post_init__(self):
        if self.size < 0:
            raise ValueError(f"negative size for {self.key!r}")


@dataclass(frozen=True)
class Move:
    """One migration the plan requires."""

    key: Hashable
    src: Hashable
    dst: Hashable


def plan_packing(items: List[PackItem],
                 capacities: Dict[Hashable, float],
                 headroom: float = 0.9) -> List[Move]:
    """Sticky first-fit-decreasing.

    Items stay in their current bin while it remains under
    ``capacity * headroom``; overflow items (largest first) move to the
    bin with the most remaining room.  Returns only the moves (empty
    when everything already fits).  Items whose current bin is unknown
    are treated as unplaced and always assigned.

    Raises ``ValueError`` if the total demand cannot fit even at full
    capacity — the caller should surface that as cluster overload rather
    than thrash.
    """
    if not 0.0 < headroom <= 1.0:
        raise ValueError(f"headroom must be in (0, 1]: {headroom}")
    total = sum(item.size for item in items)
    room = sum(capacities.values())
    if total > room:
        raise ValueError(
            f"demand {total:g} exceeds total capacity {room:g}"
        )

    used: Dict[Hashable, float] = {b: 0.0 for b in capacities}
    # Pass 1: sticky placement — keep items that fit where they are.
    # Larger items claim their spot first so eviction picks small ones.
    overflow: List[PackItem] = []
    for item in sorted(items, key=lambda it: -it.size):
        binid = item.current_bin
        if binid in capacities and (
                used[binid] + item.size <= capacities[binid] * headroom):
            used[binid] += item.size
            continue
        overflow.append(item)

    # Pass 2: place overflow, largest first, into the roomiest bin.
    moves: List[Move] = []
    for item in overflow:
        best: Optional[Hashable] = None
        best_room = -1.0
        for binid, cap in capacities.items():
            r = cap * headroom - used[binid]
            if r >= item.size and r > best_room:
                best, best_room = binid, r
        if best is None:
            # Retry ignoring headroom: correctness over comfort.
            for binid, cap in capacities.items():
                r = cap - used[binid]
                if r >= item.size and r > best_room:
                    best, best_room = binid, r
        if best is None:
            # Aggregate demand fits but this item does not (fragmented
            # bins): leave it where it is — best-effort beats thrash.
            if item.current_bin in used:
                used[item.current_bin] += item.size
            continue
        used[best] += item.size
        if best != item.current_bin:
            moves.append(Move(key=item.key, src=item.current_bin,
                              dst=best))
    return moves


def pack_quality(items: List[PackItem],
                 capacities: Dict[Hashable, float]) -> Tuple[float, float]:
    """(max, mean) bin utilization of the *current* placement."""
    used: Dict[Hashable, float] = {b: 0.0 for b in capacities}
    for item in items:
        if item.current_bin in used:
            used[item.current_bin] += item.size
    utils = [used[b] / capacities[b] for b in capacities if capacities[b]]
    if not utils:
        return 0.0, 0.0
    return max(utils), sum(utils) / len(utils)
