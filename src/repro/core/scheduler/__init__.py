"""Two-level Quicksand scheduling: fast local reactions + slow global
rebalancing (§5 of the paper)."""

from .affinity import AffinityTracker
from .binpack import Move, PackItem, pack_quality, plan_packing
from .global_ import GlobalScheduler
from .local import LocalScheduler
from .machine_index import MachineIndex
from .placement import PlacementPolicy

__all__ = [
    "AffinityTracker",
    "GlobalScheduler",
    "LocalScheduler",
    "MachineIndex",
    "Move",
    "PackItem",
    "PlacementPolicy",
    "pack_quality",
    "plan_packing",
]
