"""Communication-affinity tracking (§5, "How can we maintain locality?").

The runtime reports every proclet-to-proclet invocation; this tracker
keeps exponentially-decayed call counts per (caller, callee) pair.  The
global scheduler consults it to colocate chatty proclets when resources
permit, trading a little placement freedom for much less RPC traffic.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple


class AffinityTracker:
    """Decayed remote-call counts between proclet pairs."""

    def __init__(self, sim, half_life: float = 0.1):
        if half_life <= 0:
            raise ValueError(f"half_life must be positive: {half_life}")
        self.sim = sim
        self.half_life = half_life
        # (caller_id, callee_id) -> (decayed_count, last_update_time)
        self._edges: Dict[Tuple[int, int], Tuple[float, float]] = {}
        self.total_remote_calls = 0
        self.total_local_calls = 0

    def record(self, caller_id: Optional[int], callee_id: int,
               remote: bool) -> None:
        """Register one invocation (called from the runtime hook)."""
        if remote:
            self.total_remote_calls += 1
        else:
            self.total_local_calls += 1
        if caller_id is None or not remote:
            return  # only remote chatter argues for colocation
        key = (caller_id, callee_id)
        now = self.sim.now
        count, last = self._edges.get(key, (0.0, now))
        self._edges[key] = (self._decayed(count, last, now) + 1.0, now)

    def weight(self, caller_id: int, callee_id: int) -> float:
        """Current decayed remote-call count for the pair."""
        entry = self._edges.get((caller_id, callee_id))
        if entry is None:
            return 0.0
        count, last = entry
        return self._decayed(count, last, self.sim.now)

    def hottest_edges(self, top: int = 10) -> List[Tuple[int, int, float]]:
        """The most chattering proclet pairs, for colocation decisions."""
        now = self.sim.now
        scored = [
            (a, b, self._decayed(count, last, now))
            for (a, b), (count, last) in self._edges.items()
        ]
        scored.sort(key=lambda e: -e[2])
        return scored[:top]

    def _decayed(self, count: float, last: float, now: float) -> float:
        dt = now - last
        if dt <= 0:
            return count
        return count * (0.5 ** (dt / self.half_life))
