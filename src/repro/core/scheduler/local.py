"""Fast per-machine scheduling reactions (§5: "fast local decisions to
absorb usage spikes").

One :class:`LocalScheduler` watches each machine:

* **CPU starvation** — when a rate reassignment leaves NORMAL-priority
  proclet work with zero rate (a HIGH-priority antagonist grabbed the
  cores), the proclet is migrated to a machine with idle cores after a
  short patience window.  This is the Fig. 1 mechanism: the filler app's
  proclets hop machines in under a millisecond when the phased
  high-priority app bursts.
* **Memory pressure** — when DRAM use crosses the high watermark, the
  largest memory proclets are evicted to the machine with the most free
  DRAM.
"""

from __future__ import annotations

from typing import Set

from ...cluster import Machine
from ...runtime import MigrationFailed, ProcletStatus
from ..config import QuicksandConfig
from ..pressure import StarvationTracker
from ..resource import ResourceKind, ResourceProclet


class LocalScheduler:
    """Per-machine fast reaction loop (event-driven, no polling)."""

    def __init__(self, qs, machine: Machine, config: QuicksandConfig):
        self.qs = qs
        self.machine = machine
        self.config = config
        self.starvation = StarvationTracker(qs.sim)
        self._checks_pending: Set[int] = set()
        self._cooldown_until: dict = {}  # proclet_id -> time
        self.migrations_triggered = 0
        self.evictions_triggered = 0
        machine.cpu.add_observer(self._on_cpu_reassign)
        machine.memory.add_watermark(config.memory_watermark,
                                     self._on_memory_pressure)

    # -- CPU starvation path ------------------------------------------------
    def _on_cpu_reassign(self, sched) -> None:
        now = self.qs.sim.now
        seen: Set[int] = set()
        for item in sched.items:
            owner = item.owner
            if not isinstance(owner, ResourceProclet):
                continue
            if owner.id is None or owner.machine is not self.machine:
                continue
            pid = owner.id
            if pid in seen:
                continue
            seen.add(pid)
            starved = all(
                it.starved for it in owner._active_cpu
            ) if owner._active_cpu else False
            self.starvation.observe(pid, starved and item.starved)
            if (starved and item.starved and pid not in self._checks_pending
                    and now >= self._cooldown_until.get(pid, 0.0)):
                self._checks_pending.add(pid)
                self.qs.sim.call_in(self.config.starvation_patience,
                                    self._check_starved, pid)

    def _check_starved(self, pid: int) -> None:
        self._checks_pending.discard(pid)
        proclet = self.qs.runtime._proclets.get(pid)
        if proclet is None or proclet.status is not ProcletStatus.RUNNING:
            return
        if proclet.machine is not self.machine:
            return  # already moved
        if not self.starvation.is_starved(pid, self.config.starvation_patience):
            if self.starvation.is_starving_now(pid):
                # Starved, but not yet past the patience window (a
                # later observation reset the clock): check again.
                self._checks_pending.add(pid)
                self.qs.sim.call_in(self.config.starvation_patience,
                                    self._check_starved, pid)
            return
        dst = self.qs.placement.best_for_compute(exclude=(self.machine,))
        if dst is None:
            # Nowhere better; re-arm so we try again if starvation persists.
            self._checks_pending.add(pid)
            self.qs.sim.call_in(self.config.starvation_patience,
                                self._check_starved, pid)
            return
        self._start_migration(proclet, dst, reason="cpu-starvation")

    # -- memory pressure path -----------------------------------------------------
    def _on_memory_pressure(self, memory) -> None:
        # Runs synchronously inside an allocation; defer actual work.
        self.qs.sim.call_in(0.0, self._evict_for_memory)

    def _evict_for_memory(self) -> None:
        memory = self.machine.memory
        if memory.pressure < self.config.memory_watermark:
            return
        candidates = [
            p for p in self.qs.runtime.proclets_on(self.machine)
            if isinstance(p, ResourceProclet)
            and p.kind is ResourceKind.MEMORY
            and p.status is ProcletStatus.RUNNING
            and self.qs.sim.now >= self._cooldown_until.get(p.id, 0.0)
        ]
        if not candidates:
            return
        victim = max(candidates, key=lambda p: p.footprint)
        dst = self.qs.placement.best_for_memory(victim.footprint,
                                                exclude=(self.machine,))
        if dst is None:
            return
        # Only evict when the destination is meaningfully better off.
        advantage = dst.memory.free - victim.footprint - memory.free
        if advantage < self.config.memory_hysteresis_bytes:
            return
        self.evictions_triggered += 1
        self._start_migration(victim, dst, reason="memory-pressure")

    # -- shared ----------------------------------------------------------------------
    def _start_migration(self, proclet, dst: Machine, reason: str) -> None:
        self.migrations_triggered += 1
        self._cooldown_until[proclet.id] = (
            self.qs.sim.now + self.config.migration_cooldown
        )
        self.starvation.clear(proclet.id)
        if self.qs.metrics is not None:
            self.qs.metrics.count(f"sched.local.migrations.{reason}")
        self.qs.runtime.tracer.emit(
            "sched-local", f"{reason}: {proclet.name} "
            f"{self.machine.name}->{dst.name}",
        )
        tr = self.qs.sim.tracer
        if tr is not None:
            # region() so the migration span (whose parent is captured
            # synchronously inside migrate()) nests under this decision.
            with tr.region("sched-local", f"{reason}: {proclet.name}",
                           track=f"machine:{self.machine.name}",
                           dst=dst.name):
                ev = self.qs.runtime.migrate(proclet, dst)
        else:
            ev = self.qs.runtime.migrate(proclet, dst)
        ev.subscribe(self._on_migration_done)

    @staticmethod
    def _on_migration_done(event) -> None:
        if not event.ok and isinstance(event.value, MigrationFailed):
            # Destination filled up meanwhile; the proclet stays put and
            # a later pressure signal will retry.  Swallow the failure.
            return
        if not event.ok:
            raise event.value
