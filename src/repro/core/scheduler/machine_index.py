"""Bucketed machine index: placement argmax without linear scans.

At thousand-machine scale the placement policy's "scan every machine"
loops dominate control-plane cost: every spawn walks the whole cluster
reading DRAM headroom or idle cores, and every global-scheduler round
re-derives the eligible-machine list and per-machine planned demand from
scratch.  This index maintains three event-driven views instead:

* **log2 buckets** over each machine's free DRAM and its planned-CPU
  bound (``cores - planned``).  A bucket ``e`` holds machines whose
  value lies in ``[2**(e-1), 2**e)`` — bucket ranges are disjoint, so
  scanning buckets in descending order and stopping at the first one
  that yields a qualified candidate (memory), or once a bucket's upper
  bound cannot beat the best score seen (compute), returns *exactly*
  the machine the linear scan would have: same maximum, same
  smallest-id tie-break (machine ids are cluster-list positions).
* a **planned-demand cache** per machine, updated from locator place /
  move / remove notifications — integer thread counts, so the cached
  sum is exact, never drifting from the per-proclet recount.
* a cached **eligible-machine list**, invalidated by machine failure /
  restore hooks and by failure-detector health transitions.

The index changes *cost*, never *choice*: every query reads live
machine state for the candidates it actually inspects, and the bucket
structure only prunes machines that provably cannot win.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Tuple

from ...cluster import Machine

#: Bucket for values <= 0 (a full machine, a failed machine's cores).
#: Strictly below every log2 bucket so descending scans see it last.
_ZERO_BUCKET = -(1 << 30)


def _bucket_key(value: float) -> int:
    """Log2 bucket index: ``value`` in ``[2**(e-1), 2**e)`` maps to ``e``."""
    if value <= 0.0:
        return _ZERO_BUCKET
    return math.frexp(value)[1]


#: Load-ratio bucket width: ratios quantized to 1/32 steps.  Ratios are
#: bounded (pressure by 1.0, planned/cores by modest overcommit), so
#: uniform buckets beat log2 ones here — equal values always share a
#: bucket, which is what makes the extreme queries exact.
_RATIO_STEP = 32.0


def _ratio_key(ratio: float) -> int:
    """Uniform bucket index for a load ratio (pressure, planned/cores)."""
    if ratio <= 0.0:
        return 0
    return int(ratio * _RATIO_STEP)


class MachineIndex:
    """Event-driven machine buckets backing :class:`PlacementPolicy`
    and :meth:`Quicksand.eligible_machines`."""

    def __init__(self, cluster, runtime):
        self.cluster = cluster
        self.runtime = runtime
        machines = cluster.machines
        #: Exact planned CPU demand (sum of hosted proclets' integer
        #: ``parallelism``) per machine id.
        self._planned: Dict[int, float] = {m.id: 0.0 for m in machines}
        # Free-DRAM buckets.
        self._mem_key: Dict[int, int] = {}
        self._mem_buckets: Dict[int, set] = {}
        # Planned-bound (cores - planned) buckets.
        self._cpu_key: Dict[int, int] = {}
        self._cpu_buckets: Dict[int, set] = {}
        # Load-ratio buckets (global-scheduler extremes): DRAM pressure
        # and planned-CPU ratio (planned / cores), kept alongside the
        # argmax buckets from the same event hooks.
        self._pres_key: Dict[int, int] = {}
        self._pres_buckets: Dict[int, set] = {}
        self._ratio_key_of: Dict[int, int] = {}
        self._ratio_buckets: Dict[int, set] = {}
        for m in machines:
            self._bucket_insert(self._mem_buckets, self._mem_key, m,
                                _bucket_key(m.memory.free))
            self._bucket_insert(self._cpu_buckets, self._cpu_key, m,
                                _bucket_key(m.cpu.cores))
            self._bucket_insert(self._pres_buckets, self._pres_key, m,
                                _ratio_key(m.memory.pressure))
            self._bucket_insert(self._ratio_buckets, self._ratio_key_of, m,
                                _ratio_key(0.0))
            m.memory.add_listener(
                lambda _mem, machine=m: self._rebucket_mem(machine))
        # Cached (health_fn, machines) eligible list; None = stale.
        self._eligible: Optional[Tuple[Optional[Callable],
                                       Tuple[Machine, ...]]] = None
        #: The health callable whose transitions we observe (the
        #: recovery manager's ``eligible``); any other callable bypasses
        #: the cache because we cannot see its state changes.
        self._tracked_health: Optional[Callable[[Machine], bool]] = None
        #: CPU-scheduler identity -> machine (stable across fail/restore:
        #: a crash resizes the scheduler, never replaces it), for mapping
        #: the simulator's pending-flush list back to machines.
        self._machine_by_cpu_sched: Dict[int, Machine] = {
            id(m.cpu.sched): m for m in machines}

    # -- bucket plumbing -----------------------------------------------------
    @staticmethod
    def _bucket_insert(buckets: Dict[int, set], keys: Dict[int, int],
                       machine: Machine, key: int) -> None:
        keys[machine.id] = key
        members = buckets.get(key)
        if members is None:
            buckets[key] = {machine}
        else:
            members.add(machine)

    @staticmethod
    def _bucket_move(buckets: Dict[int, set], keys: Dict[int, int],
                     machine: Machine, key: int) -> None:
        old = keys[machine.id]
        if old == key:
            return
        members = buckets[old]
        members.discard(machine)
        if not members:
            del buckets[old]
        MachineIndex._bucket_insert(buckets, keys, machine, key)

    def _rebucket_mem(self, machine: Machine) -> None:
        self._bucket_move(self._mem_buckets, self._mem_key, machine,
                          _bucket_key(machine.memory.free))
        self._bucket_move(self._pres_buckets, self._pres_key, machine,
                          _ratio_key(machine.memory.pressure))

    def _rebucket_cpu(self, machine: Machine) -> None:
        bound = machine.cpu.cores - self._planned[machine.id]
        self._bucket_move(self._cpu_buckets, self._cpu_key, machine,
                          _bucket_key(bound))
        self._bucket_move(self._ratio_buckets, self._ratio_key_of, machine,
                          _ratio_key(self._cpu_ratio(machine)))

    def _cpu_ratio(self, machine: Machine) -> float:
        """Planned CPU commitment per core (a crashed machine's cores
        are 0; its ratio pins to 0 and health filtering excludes it)."""
        cores = machine.cpu.cores
        return self._planned[machine.id] / cores if cores > 0 else 0.0

    # -- event hooks ---------------------------------------------------------
    def on_location_change(self, proclet_id: int,
                           src: Optional[Machine],
                           dst: Optional[Machine]) -> None:
        """Locator listener: keep planned demand exact across spawn /
        migrate / destroy / crash."""
        proclet = self.runtime._proclets.get(proclet_id)
        if proclet is None:
            return
        par = getattr(proclet, "parallelism", 0) or 0
        if not par:
            return
        if src is not None:
            self._planned[src.id] -= par
            self._rebucket_cpu(src)
        if dst is not None:
            self._planned[dst.id] += par
            self._rebucket_cpu(dst)

    def on_machine_failure(self, machine: Machine, _lost=None) -> None:
        """Runtime failure listener: the machine's cores are gone (its
        DRAM wipe already rebucketed memory via the ledger listener)."""
        self._rebucket_cpu(machine)
        self._eligible = None

    def on_machine_restore(self, machine: Machine) -> None:
        self._rebucket_cpu(machine)
        self._eligible = None

    def track_health(self, health: Optional[Callable]) -> None:
        """Declare *health* observable: its transitions invalidate the
        eligible cache (wire the detector's suspect/confirm/alive
        listeners to :meth:`invalidate_eligible` alongside this)."""
        self._tracked_health = health
        self._eligible = None

    def invalidate_eligible(self, *_args, **_kwargs) -> None:
        self._eligible = None

    # -- queries -------------------------------------------------------------
    def planned(self, machine: Machine) -> float:
        """Cached planned CPU demand of *machine* (exact)."""
        return self._planned[machine.id]

    def dirty_cpu_machines(self) -> List[Machine]:
        """Machines whose CPU scheduler has a pending dirty flush, in
        cluster (machine-id) order.

        Every dirty scheduler sits on the simulator's pending-flush
        list (``_mark_dirty`` either flushes immediately or enqueues),
        so the placement pre-flush — which must replicate the linear
        scan's flush visit order before the bucketed argmax does its
        pure reads — costs O(dirty at this instant), not O(fleet).
        """
        by_sched = self._machine_by_cpu_sched
        dirty = []
        for sched in self.cluster.sim._pending_flushes:
            if sched._dirty:
                machine = by_sched.get(id(sched))
                if machine is not None:
                    dirty.append(machine)
        dirty.sort(key=lambda m: m.id)
        return dirty

    def eligible(self, health: Optional[Callable]) -> List[Machine]:
        """Machines that are up and pass *health*, cached between
        invalidating events.  An untracked health callable falls back to
        a fresh scan — correctness never depends on seeing its state."""
        if health is not None and health is not self._tracked_health:
            return [m for m in self.cluster.machines if m.up and health(m)]
        cached = self._eligible
        if cached is not None and cached[0] is health:
            return list(cached[1])
        machines = [m for m in self.cluster.machines
                    if m.up and (health is None or health(m))]
        self._eligible = (health, tuple(machines))
        return machines

    def best_for_memory(self, nbytes: float, skip: set,
                        healthy: Callable[[Machine], bool]) \
            -> Optional[Machine]:
        """Exact replacement for the linear most-free-DRAM scan.

        The first (descending) bucket containing a qualified candidate
        holds the global maximum: every lower bucket's values are
        strictly smaller.  Within the bucket, ties keep the smallest
        machine id — identical to first-wins in cluster-list order.
        """
        best, best_free = None, -1.0
        for key in sorted(self._mem_buckets, reverse=True):
            for m in self._mem_buckets[key]:
                if m in skip or not healthy(m):
                    continue
                free = m.memory.free
                if free < nbytes:
                    continue
                if free > best_free or (free == best_free
                                        and m.id < best.id):
                    best, best_free = m, free
            if best is not None:
                return best
        return None

    # -- load extremes (global-scheduler rounds) -----------------------------
    @staticmethod
    def _extreme(buckets: Dict[int, set], value_of, healthy,
                 lowest: bool) -> Tuple[Optional[Machine], float]:
        """Exact min/max of *value_of* over healthy machines.

        Equal values always share a bucket (uniform quantization), so
        the first bucket — scanning ascending for the minimum,
        descending for the maximum — that contains a healthy machine
        holds the global extreme.  Tie-breaks mirror the stable
        full-fleet sort this replaces: the minimum keeps the smallest
        machine id (first in cluster order), the maximum the largest
        (last in cluster order).
        """
        for key in sorted(buckets, reverse=not lowest):
            best, best_val = None, 0.0
            for m in buckets[key]:
                if not healthy(m):
                    continue
                val = value_of(m)
                if (best is None
                        or (val < best_val if lowest else val > best_val)
                        or (val == best_val
                            and (m.id < best.id if lowest
                                 else m.id > best.id))):
                    best, best_val = m, val
            if best is not None:
                return best, best_val
        return None, 0.0

    def pressure_extremes(self, healthy: Callable[[Machine], bool]) \
            -> Tuple[Optional[Machine], float, Optional[Machine], float]:
        """``(least, its pressure, most, its pressure)`` over healthy
        machines — the memory-rebalance round's endpoints, without the
        per-round full-fleet pressure sort."""
        low, low_p = self._extreme(self._pres_buckets,
                                   lambda m: m.memory.pressure, healthy,
                                   lowest=True)
        high, high_p = self._extreme(self._pres_buckets,
                                     lambda m: m.memory.pressure, healthy,
                                     lowest=False)
        return low, low_p, high, high_p

    def cpu_ratio_extremes(self, healthy: Callable[[Machine], bool]) \
            -> Tuple[Optional[Machine], float, Optional[Machine], float]:
        """``(least, its ratio, most, its ratio)`` of planned CPU per
        core over healthy machines — the compute-rebalance round's
        endpoints, off the exact planned-demand cache."""
        low, low_r = self._extreme(self._ratio_buckets, self._cpu_ratio,
                                   healthy, lowest=True)
        high, high_r = self._extreme(self._ratio_buckets, self._cpu_ratio,
                                     healthy, lowest=False)
        return low, low_r, high, high_r

    def best_for_compute(self, priority, skip: set,
                         healthy: Callable[[Machine], bool]) \
            -> Tuple[Optional[Machine], float]:
        """Exact replacement for the linear idle-cores scan.

        Buckets are keyed on the planned bound ``cores - planned``, an
        upper bound for the actual score ``min(free_cores, bound)``.
        Scanning buckets in descending order can stop once a bucket's
        upper edge cannot reach the best score seen — everything below
        is strictly worse, so no equal-score smaller-id candidate can
        hide there.  Within a bucket the same bound prunes per machine,
        *before* the (fluid-engine) ``free_cores`` query: a machine
        whose bound cannot beat the best score — strictly smaller, or
        equal with a larger id (score <= bound, so at best it ties and
        loses the tie-break) — is skipped on two dict reads.  In a
        homogeneous fleet, where one bucket holds every idle machine,
        that turns the expected expensive-query count from O(bucket)
        into O(log bucket) without changing any choice.  Returns
        ``(machine, score)`` with the caller applying the
        minimum-headroom threshold.
        """
        planned = self._planned
        best, best_free = None, 0.0
        for key in sorted(self._cpu_buckets, reverse=True):
            if key == _ZERO_BUCKET or math.ldexp(1.0, key) <= best_free:
                break
            for m in self._cpu_buckets[key]:
                bound = m.cpu.cores - planned[m.id]
                if bound < best_free or (bound == best_free
                                         and best is not None
                                         and m.id > best.id):
                    continue
                if m in skip or not healthy(m):
                    continue
                free = m.cpu.free_cores(priority)
                if bound < free:
                    free = bound
                if free > best_free or (best is not None
                                        and free == best_free
                                        and m.id < best.id):
                    best, best_free = m, free
        return best, best_free
