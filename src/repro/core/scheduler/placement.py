"""Placement scoring: which machine should host a resource proclet?

Because resource proclets are specialized, placement reduces to scoring
machines on a *single* resource axis — precisely the simplification the
paper is after (§3.1): memory proclets go where DRAM is free, compute
proclets where cores are idle, with no need to co-satisfy both on one
machine.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Tuple

from ...cluster import Cluster, Machine, Priority


class PlacementPolicy:
    """Greedy best-fit placement over live cluster state.

    The real system would consult a (slightly stale) controller view;
    our simulated control plane reads live state, which DESIGN.md lists
    as an approximation — the experiments' dynamics are dominated by
    migration and data-path costs, not by control-plane staleness.
    """

    def __init__(self, cluster: Cluster, runtime=None):
        self.cluster = cluster
        self.runtime = runtime
        #: Optional health gate (wired to the failure detector by
        #: ``Quicksand.enable_recovery``): machines it rejects — e.g.
        #: *suspected* but not yet confirmed dead — receive no new
        #: placements, even while ``machine.up`` still reads True to the
        #: data plane.
        self.health: Optional[Callable[[Machine], bool]] = None
        #: Optional :class:`MachineIndex` (wired by ``Quicksand``): when
        #: present, the memory/compute argmax queries run over log2
        #: buckets instead of a full linear scan, and planned compute
        #: demand comes from the index's exact cache.  ``None`` keeps
        #: the original scans (standalone-policy tests, partial wiring).
        self.index = None

    def attach_runtime(self, runtime) -> None:
        """Give the policy visibility into hosted proclets (for planned
        compute demand)."""
        self.runtime = runtime

    def _healthy(self, machine: Machine) -> bool:
        return machine.up and (self.health is None or self.health(machine))

    # -- memory --------------------------------------------------------------
    def best_for_memory(self, nbytes: float,
                        exclude: Iterable[Machine] = ()) -> Optional[Machine]:
        """Machine with the most free DRAM that fits *nbytes*."""
        skip = set(exclude)
        if self.index is not None:
            return self.index.best_for_memory(nbytes, skip, self._healthy)
        best, best_free = None, -1.0
        for m in self.cluster.machines:
            if m in skip or not self._healthy(m):
                continue
            free = m.memory.free
            if free >= nbytes and free > best_free:
                best, best_free = m, free
        return best

    def memory_headroom(self, machine: Machine) -> float:
        return machine.memory.free

    # -- compute --------------------------------------------------------------
    def best_for_compute(self, threads: float = 1.0,
                         priority: Priority = Priority.NORMAL,
                         exclude: Iterable[Machine] = ()) \
            -> Optional[Machine]:
        """Machine with the most idle cores at *priority*.

        Returns ``None`` when no machine has meaningful idle capacity —
        the §3.3 rule that compute proclets split "only if there are
        enough CPU resources in the cluster".
        """
        skip = set(exclude)
        if self.index is not None:
            # Reading free_cores flushes a dirty fluid scheduler, and a
            # flush schedules events (seq numbers!), so the indexed path
            # must replicate the linear scan's flush visit order exactly
            # before the bucket scan does its pure reads.  The index
            # finds the dirty schedulers on the simulator's pending-
            # flush list — O(dirty), not O(fleet).
            for m in self.index.dirty_cpu_machines():
                if m in skip or not self._healthy(m):
                    continue
                sched = m.cpu.sched
                if sched._dirty:
                    sched._flush()
            best, best_free = self.index.best_for_compute(
                priority, skip, self._healthy)
        else:
            best, best_free = None, 0.0
            for m in self.cluster.machines:
                if m in skip or not self._healthy(m):
                    continue
                free = m.cpu.free_cores(priority)
                # Also subtract *planned* demand: compute proclets
                # already hosted here will use their worker threads even
                # if they are momentarily idle — without this, a burst
                # of spawns lands every member on the same machine.
                free = min(free, m.cpu.cores - self._planned_demand(m))
                if free > best_free:
                    best, best_free = m, free
        # Require at least half a core of headroom to be worth it.
        if best is not None and best_free < min(0.5, threads * 0.5):
            return None
        return best

    def _planned_demand(self, machine: Machine) -> float:
        if self.index is not None:
            return self.index.planned(machine)
        if self.runtime is None:
            return 0.0
        total = 0.0
        for proclet in self.runtime.proclets_on(machine):
            total += getattr(proclet, "parallelism", 0) or 0
        return total

    def total_free_cores(self, priority: Priority = Priority.NORMAL) -> float:
        return sum(m.cpu.free_cores(priority)
                   for m in self.cluster.machines if m.up)

    # -- gpu ---------------------------------------------------------------------
    def best_for_gpu(self) -> Optional[Machine]:
        """Machine with the most idle GPUs."""
        best, best_free = None, -1.0
        for m in self.cluster.machines:
            if m.gpus is None or not self._healthy(m):
                continue
            free = m.gpus.sched.free_capacity()
            if free > best_free:
                best, best_free = m, free
        return best

    # -- storage -------------------------------------------------------------------
    def best_for_storage(self, nbytes: float) -> Optional[Machine]:
        """Machine whose storage device has the most free capacity."""
        best, best_free = None, -1.0
        for m in self.cluster.machines:
            if m.storage is None or not self._healthy(m):
                continue
            free = m.storage.free
            if free >= nbytes and free > best_free:
                best, best_free = m, free
        return best

    def storage_machines(self) -> Tuple[Machine, ...]:
        return tuple(m for m in self.cluster.machines
                     if m.storage is not None)
