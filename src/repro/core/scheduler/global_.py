"""Slow cluster-wide rebalancing (§5: "slow global decisions that
reflect long-term shifts in usage").

Every ``global_interval`` the global scheduler:

1. rebalances compute: moves compute proclets from machines whose
   NORMAL-priority CPU demand exceeds capacity toward machines with idle
   cores;
2. rebalances memory: moves shards from DRAM-pressured machines toward
   machines with headroom;
3. colocates chatty proclet pairs reported by the affinity tracker, when
   capacity permits.

All actions go through the same migration mechanism the local scheduler
uses; the two levels differ only in cadence and in the breadth of state
they consult.
"""

from __future__ import annotations

from typing import Generator, List, Optional

from ...runtime import MigrationFailed, ProcletStatus
from ..config import QuicksandConfig
from ..resource import ResourceKind, ResourceProclet


class GlobalScheduler:
    """Periodic cluster-wide placement refinement."""

    def __init__(self, qs, config: QuicksandConfig):
        self.qs = qs
        self.config = config
        self.rounds = 0
        self.moves = 0
        self._process = qs.sim.process(self._loop(), name="global-sched")

    def _loop(self) -> Generator:
        while True:
            yield self.qs.sim.timeout(self.config.global_interval)
            self.rounds += 1
            tr = self.qs.sim.tracer
            if tr is not None:
                # The round body is synchronous (migrations it starts are
                # spawned, not awaited), so a region cleanly scopes it:
                # every migration requested inside nests under the round.
                with tr.region("sched-global", f"round#{self.rounds}",
                               track="sched:global",
                               strategy=self.config.global_strategy):
                    self._round()
            else:
                self._round()

    def _round(self) -> None:
        if self.config.global_strategy == "binpack":
            self._rebalance_by_packing()
        else:
            self._rebalance_compute()
            self._rebalance_memory()
        self._colocate_by_affinity()

    # -- binpack strategy (§3.3 / POP) -----------------------------------------
    def _rebalance_by_packing(self) -> None:
        from .binpack import PackItem, plan_packing

        machines = self.qs.eligible_machines()
        by_name = {m.name: m for m in machines}

        def apply_plan(items, capacities):
            try:
                moves = plan_packing(items, capacities,
                                     headroom=self.config.binpack_headroom)
            except ValueError:
                return  # cluster genuinely overloaded; nothing sane to do
            for move in moves[:self.config.binpack_max_moves]:
                proclet = self.qs.runtime._proclets.get(move.key)
                if (proclet is None
                        or proclet.status is not ProcletStatus.RUNNING):
                    continue
                self._move(proclet, by_name[move.dst],
                           reason="global-binpack")

        mem_items = []
        cpu_items = []
        for m in machines:
            for p in self.qs.runtime.proclets_on(m):
                if not isinstance(p, ResourceProclet):
                    continue
                if p.status is not ProcletStatus.RUNNING:
                    continue
                if p.kind is ResourceKind.MEMORY:
                    mem_items.append(PackItem(key=p.id, size=p.footprint,
                                              current_bin=m.name))
                elif p.kind is ResourceKind.COMPUTE:
                    cpu_items.append(PackItem(
                        key=p.id,
                        size=float(getattr(p, "parallelism", 1)),
                        current_bin=m.name))
        apply_plan(mem_items,
                   {m.name: m.memory.capacity for m in machines})
        apply_plan(cpu_items, {m.name: m.cpu.cores for m in machines})

    # -- compute balance -----------------------------------------------------
    def _rebalance_compute(self) -> None:
        """Move one compute proclet from the most to the least planned-
        committed machine (planned CPU per core, off the machine index's
        exact cache — no per-round sweep over every machine's run
        queue).  Planned demand counts hosted compute proclets' worker
        threads whether or not they are mid-task at this instant, which
        is the signal placement already packs against."""
        index = self.qs.machine_index
        healthy = self.qs.placement._healthy
        low, low_ratio, high, high_ratio = index.cpu_ratio_extremes(healthy)
        if high is None or low is high:
            return
        if high_ratio - low_ratio < self.config.cpu_imbalance_threshold:
            return
        if low.cpu.free_cores() < 1.0:
            return
        victim = self._pick_compute_victim(high)
        if victim is not None:
            self._move(victim, low, reason="global-cpu")

    def _pick_compute_victim(self, machine) -> Optional[ResourceProclet]:
        candidates: List[ResourceProclet] = [
            p for p in self.qs.runtime.proclets_on(machine)
            if isinstance(p, ResourceProclet)
            and p.kind is ResourceKind.COMPUTE
            and p.status is ProcletStatus.RUNNING
        ]
        if not candidates:
            return None
        # Smallest heap first: cheapest to move.
        return min(candidates, key=lambda p: p.footprint)

    # -- memory balance --------------------------------------------------------
    def _rebalance_memory(self) -> None:
        index = self.qs.machine_index
        healthy = self.qs.placement._healthy
        low, low_p, high, high_p = index.pressure_extremes(healthy)
        if high is None or low is high:
            return
        if high_p - low_p < self.config.memory_imbalance_threshold:
            return
        candidates = [
            p for p in self.qs.runtime.proclets_on(high)
            if isinstance(p, ResourceProclet)
            and p.kind is ResourceKind.MEMORY
            and p.status is ProcletStatus.RUNNING
            and low.memory.can_fit(p.footprint)
        ]
        if not candidates:
            return
        victim = max(candidates, key=lambda p: p.footprint)
        self._move(victim, low, reason="global-memory")

    # -- affinity colocation ------------------------------------------------------
    def _colocate_by_affinity(self) -> None:
        for caller_id, callee_id, weight in \
                self.qs.affinity.hottest_edges(top=5):
            if weight < self.config.affinity_threshold:
                break
            caller = self.qs.runtime._proclets.get(caller_id)
            callee = self.qs.runtime._proclets.get(callee_id)
            if caller is None or callee is None:
                continue
            if caller.machine is callee.machine:
                continue
            if (caller.status is not ProcletStatus.RUNNING
                    or callee.status is not ProcletStatus.RUNNING):
                continue
            # Move the smaller endpoint to the bigger one's machine if it
            # fits without creating memory pressure there.
            mover, target = sorted((caller, callee),
                                   key=lambda p: p.footprint)[0], None
            target = callee.machine if mover is caller else caller.machine
            mem = target.memory
            if (mem.used + mover.footprint) / mem.capacity \
                    >= self.config.memory_watermark:
                continue
            self._move(mover, target, reason="global-affinity")
            return  # at most one colocation per round

    # -- shared -------------------------------------------------------------------------
    def _move(self, proclet, dst, reason: str) -> None:
        self.moves += 1
        if self.qs.metrics is not None:
            self.qs.metrics.count(f"sched.{reason}.moves")
        self.qs.runtime.tracer.emit(
            "sched-global", f"{reason}: {proclet.name} -> {dst.name}",
        )
        ev = self.qs.runtime.migrate(proclet, dst)
        ev.subscribe(self._swallow_migration_failure)

    @staticmethod
    def _swallow_migration_failure(event) -> None:
        if not event.ok and not isinstance(event.value, MigrationFailed):
            raise event.value
