"""GPU proclets: the accelerator-consuming proclet kind.

Mirrors the paper's own methodology (§4): GPUs are emulated as a fixed
per-batch delay, so a GPU proclet simply occupies one of its machine's
GPUs for ``batch_time`` per training batch.  The interesting dynamics —
the consumption rate doubling when GPUs go from four to eight — emerge
from the :class:`repro.cluster.GpuPool` capacity, which Fig. 3's harness
perturbs at runtime.
"""

from __future__ import annotations

from .resource import ResourceKind, ResourceProclet


class GpuProclet(ResourceProclet):
    """Trains batches on the hosting machine's GPU pool."""

    kind = ResourceKind.GPU

    def __init__(self):
        super().__init__()
        self.batches_trained = 0

    def _pool(self):
        pool = self.machine.gpus
        if pool is None:
            raise RuntimeError(
                f"{self.name}: machine {self.machine.name} has no GPUs"
            )
        return pool

    def gp_train(self, ctx, batch_key=None):
        """Train on one batch; occupies one GPU for its batch time."""
        item = self._pool().train_batch(name=f"{self.name}.batch")
        yield item.done
        self.batches_trained += 1
        return batch_key

    def gp_service_rate(self, ctx):
        """Current achievable batches/second (scheduler signal)."""
        yield ctx.cpu(1e-7)
        return self._pool().service_rate
