"""Quicksand core: resource proclets, split/merge, two-level scheduling."""

from .computeproclet import ComputeProclet, Task, TaskSource
from .config import QuicksandConfig
from .gpuproclet import GpuProclet
from .memproclet import DistPtr, MemoryProclet
from .prefetch import PrefetchingReader
from .pressure import RateEstimator, StarvationTracker
from .quicksand import Quicksand
from .resource import ResourceKind, ResourceProclet
from .scheduler import (
    AffinityTracker,
    GlobalScheduler,
    LocalScheduler,
    PlacementPolicy,
)
from .splitmerge import ComputeAutoscaler, ShardSizeController
from .storageproclet import StorageProclet

__all__ = [
    "AffinityTracker",
    "ComputeAutoscaler",
    "ComputeProclet",
    "DistPtr",
    "GlobalScheduler",
    "GpuProclet",
    "LocalScheduler",
    "MemoryProclet",
    "PlacementPolicy",
    "PrefetchingReader",
    "Quicksand",
    "QuicksandConfig",
    "RateEstimator",
    "ResourceKind",
    "ResourceProclet",
    "ShardSizeController",
    "StarvationTracker",
    "StorageProclet",
    "Task",
    "TaskSource",
]
