"""Tunable knobs of the Quicksand layer, in one place."""

from __future__ import annotations

from dataclasses import dataclass

from ..units import MS, MiB, US


@dataclass(frozen=True)
class QuicksandConfig:
    """Configuration of schedulers, split/merge, and prefetching.

    Defaults are calibrated to the paper's regime: sub-millisecond
    migrations, ~millisecond-scale reactions, 10–15 ms re-equilibration.
    """

    # -- shard sizing (§3.3: max size from a target migration latency) ----
    #: Split a memory shard beyond this many bytes (~1.3 ms to migrate
    #: at 100 Gbit/s, keeping migrations within the paper's "few ms").
    max_shard_bytes: float = 16 * MiB
    #: Merge a shard below this many bytes into its neighbour.
    min_shard_bytes: float = 1 * MiB
    #: Fixed control cost of a split or merge operation.
    split_overhead: float = 100 * US

    # -- local (fast) scheduler ----------------------------------------------
    #: How long a proclet must be CPU-starved before we migrate it.
    starvation_patience: float = 200 * US
    #: Minimum time between migrations of the same proclet.
    migration_cooldown: float = 2 * MS
    #: DRAM fraction that triggers memory-pressure eviction.
    memory_watermark: float = 0.92
    #: Required free-memory advantage at the destination before evicting.
    memory_hysteresis_bytes: float = 32 * MiB

    # -- global (slow) scheduler ---------------------------------------------
    global_interval: float = 50 * MS
    #: "greedy" = pairwise most/least-loaded rebalance; "binpack" = the
    #: §3.3-cited sticky first-fit-decreasing packing pass.
    global_strategy: str = "greedy"
    #: Target bin fill for the binpack strategy.
    binpack_headroom: float = 0.9
    #: Moves the binpack pass may issue per round (bounds churn).
    binpack_max_moves: int = 4
    #: Normal-priority CPU demand/capacity imbalance that triggers a move.
    cpu_imbalance_threshold: float = 0.25
    #: Memory-pressure imbalance that triggers a shard move.
    memory_imbalance_threshold: float = 0.25
    #: Decayed remote-call count beyond which colocation is considered.
    affinity_threshold: float = 50.0

    # -- compute autoscaling (§3.3 / Fig. 3) -----------------------------------
    #: Controller sampling period.
    autoscale_period: float = 1 * MS
    #: EWMA time constant for rate estimation.
    rate_time_constant: float = 4 * MS
    #: Queue-length band (in batches) the controller tolerates.
    queue_setpoint: float = 8.0
    #: Cooldown between scaling actions.
    autoscale_cooldown: float = 2 * MS

    # -- routed-call retry (ShardedBase.call_routed) ---------------------------
    #: Delay before re-attempting a routed call whose shard was lost to
    #: a machine failure; doubles per attempt (seeded jitter below).
    #: The default 0 keeps the historical immediate re-attempts and
    #: bit-identical trajectories.
    route_retry_backoff: float = 0.0
    route_retry_multiplier: float = 2.0
    #: Fraction of the current backoff added as seeded jitter (drawn
    #: from the ``ds.route.backoff`` stream); only consulted when
    #: ``route_retry_backoff`` > 0.
    route_retry_jitter: float = 0.5

    # -- prefetching ---------------------------------------------------------------
    prefetch_depth: int = 4
    prefetch_chunk: int = 32

    # -- feature switches (for ablations) -----------------------------------------
    enable_local_scheduler: bool = True
    enable_global_scheduler: bool = True
    enable_split_merge: bool = True

    def __post_init__(self):
        if self.max_shard_bytes <= self.min_shard_bytes:
            raise ValueError("max_shard_bytes must exceed min_shard_bytes")
        if not 0.0 < self.memory_watermark <= 1.0:
            raise ValueError("memory_watermark must be in (0, 1]")
        if self.autoscale_period <= 0 or self.global_interval <= 0:
            raise ValueError("scheduler periods must be positive")
        if self.global_strategy not in ("greedy", "binpack"):
            raise ValueError(
                f"unknown global_strategy: {self.global_strategy!r}"
            )
        if self.route_retry_backoff < 0 or self.route_retry_jitter < 0:
            raise ValueError("route retry knobs must be non-negative")
        if self.route_retry_multiplier < 1.0:
            raise ValueError("route_retry_multiplier must be >= 1")
