"""Pressure signals: how Quicksand notices resources running out.

§5 of the paper: "Queueing delay could be one such signal to detect idle
cores, but more techniques are needed for memory, storage, etc."  We use:

* CPU — *starvation*: a fluid work item whose assigned rate is zero is
  exactly a thread sitting in a runqueue accruing queueing delay;
* memory — high-watermark crossings on the DRAM ledger;
* queues — exponentially-weighted production/consumption rates, driving
  the compute autoscaler.
"""

from __future__ import annotations

import math
from typing import Optional


class RateEstimator:
    """EWMA event-rate estimator over virtual time.

    ``update(t, count)`` feeds *count* events observed since the last
    update; :meth:`rate` reads the smoothed events/second.
    """

    def __init__(self, time_constant: float, initial: float = 0.0):
        if time_constant <= 0:
            raise ValueError(f"time_constant must be positive: {time_constant}")
        self.time_constant = time_constant
        self._rate = initial
        self._last: Optional[float] = None

    def update(self, now: float, count: float) -> float:
        """Fold in *count* events since the previous update."""
        if self._last is None:
            self._last = now
            return self._rate
        dt = now - self._last
        self._last = now
        if dt <= 0:
            return self._rate
        instantaneous = count / dt
        alpha = 1.0 - math.exp(-dt / self.time_constant)
        self._rate += alpha * (instantaneous - self._rate)
        return self._rate

    @property
    def rate(self) -> float:
        return self._rate

    def reset(self, rate: float = 0.0) -> None:
        self._rate = rate
        self._last = None


class StarvationTracker:
    """Tracks how long each proclet has been CPU-starved.

    The local scheduler feeds it observations from the fluid scheduler's
    rate reassignments and asks "has this proclet been starved for longer
    than the patience threshold?"
    """

    def __init__(self, sim):
        self.sim = sim
        self._starved_since: dict = {}  # proclet_id -> time

    def observe(self, proclet_id: int, starved: bool) -> None:
        if starved:
            self._starved_since.setdefault(proclet_id, self.sim.now)
        else:
            self._starved_since.pop(proclet_id, None)

    def starved_for(self, proclet_id: int) -> float:
        since = self._starved_since.get(proclet_id)
        if since is None:
            return 0.0
        return self.sim.now - since

    def is_starved(self, proclet_id: int, patience: float) -> bool:
        # Small relative slack: the check timer fires at exactly
        # `patience` after the observation, and float addition can land
        # an ulp short.
        return self.starved_for(proclet_id) >= patience * (1.0 - 1e-9)

    def is_starving_now(self, proclet_id: int) -> bool:
        return proclet_id in self._starved_since

    def clear(self, proclet_id: int) -> None:
        self._starved_since.pop(proclet_id, None)
