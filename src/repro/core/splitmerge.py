"""Adaptive proclet splitting and merging (§3.3).

Two controllers:

* :class:`ShardSizeController` keeps memory proclets granular: whenever a
  registered shard's heap crosses ``max_shard_bytes`` it asks the owning
  sharded data structure to split it; shards that shrink below
  ``min_shard_bytes`` are merged into a neighbour.  Bounding shard size
  bounds migration latency — the paper's stated reason for the rule.

* :class:`ComputeAutoscaler` matches a compute pool's production rate to
  a downstream consumer (Fig. 3): it samples queue flow every
  ``autoscale_period``, estimates production/consumption rates with
  EWMAs, and splits or merges compute proclets to reach the implied
  proclet count.  With the default constants a 2x consumption step
  re-equilibrates in 10–15 ms, the number the paper reports.
"""

from __future__ import annotations

import math
from typing import Dict, Generator, Optional, Set

from .config import QuicksandConfig
from .pressure import RateEstimator
from .resource import ResourceKind


class ShardSizeController:
    """Watches registered shards and keeps their sizes in band.

    .. deprecated::
        This heap-change-driven path is superseded by the
        :class:`repro.autoscale.ShardAutoscaler` control loop, which
        adds hysteresis bands, routed-load signals, detector-driven
        freezing, and the crash-safe two-phase reshard protocol.  The
        controller remains the default for compatibility (its
        trajectories are pinned by golden digests) and now shares its
        size thresholds with the autoscaler via
        :mod:`repro.autoscale.policy`, so both paths provably make the
        same size decisions.  ``Quicksand.enable_autoscaler()`` detaches
        it.
    """

    def __init__(self, qs):
        self.qs = qs
        self.config: QuicksandConfig = qs.config
        self._owners: Dict[int, object] = {}  # proclet_id -> sharded DS
        self._busy: Set[int] = set()
        self._detached = False
        self.splits_requested = 0
        self.merges_requested = 0
        qs.runtime.on_heap_change(self._on_heap_change)

    def detach(self) -> None:
        """Permanently stop reacting to heap changes (the enable hook
        for the replacement autoscaler calls this; there is no way to
        remove the runtime's heap listener, so the hook stays registered
        as a no-op)."""
        self._detached = True
        self._owners.clear()
        self._busy.clear()

    def register(self, shard_ref, ds) -> None:
        """Track *shard_ref* on behalf of sharded structure *ds*.

        *ds* must provide ``split_shard_by_id`` / ``merge_shard_by_id`` /
        ``wants_merge`` (see :class:`repro.ds.ShardedBase`).
        """
        self._owners[shard_ref.proclet_id] = ds
        # A shard created by a split may itself be born oversized (writes
        # kept landing while the parent was being divided): check now.
        self._on_heap_change(shard_ref.proclet)

    def unregister(self, shard_ref) -> None:
        self._owners.pop(shard_ref.proclet_id, None)
        self._busy.discard(shard_ref.proclet_id)

    def _on_heap_change(self, proclet) -> None:
        if self._detached:
            return
        ds = self._owners.get(proclet.id)
        if ds is None or proclet.id in self._busy:
            return
        from ..runtime import ProcletStatus

        if proclet.status is not ProcletStatus.RUNNING:
            # An op (split/merge/migration) already holds this proclet's
            # gate; retrying now would spin at the current timestamp.
            # Whoever holds the gate re-checks on completion.
            return
        recovery = self.qs.runtime.recovery
        if recovery is not None and recovery.restoring(proclet.id):
            # Mid-restore the shard looks transiently empty (a lineage
            # replay refills it write by write); merging it away now
            # would destroy the incarnation being recovered.  The
            # manager re-pokes this hook when the restore completes.
            return
        from ..autoscale import policy

        if policy.oversized(proclet.heap_bytes, self.config.max_shard_bytes):
            self._busy.add(proclet.id)
            self.splits_requested += 1
            self.qs.sim.call_in(0.0, self._run_split, proclet.id, ds)
        elif (policy.undersized(proclet.heap_bytes,
                                self.config.min_shard_bytes)
              and ds.wants_merge(proclet.id)):
            self._busy.add(proclet.id)
            self.merges_requested += 1
            self.qs.sim.call_in(0.0, self._run_merge, proclet.id, ds)

    def _run_split(self, proclet_id: int, ds) -> None:
        ev = ds.split_shard_by_id(proclet_id)
        if ev is None:
            self._busy.discard(proclet_id)
            return
        ev.subscribe(lambda e: self._done(proclet_id, e))

    def _run_merge(self, proclet_id: int, ds) -> None:
        ev = ds.merge_shard_by_id(proclet_id)
        if ev is None:
            self._busy.discard(proclet_id)
            return
        ev.subscribe(lambda e: self._done(proclet_id, e))

    def _done(self, proclet_id: int, event) -> None:
        """A split/merge finished: re-check, since many writes may have
        landed while we were busy and the shard can still be oversized.

        Only re-check when the op actually did something — a declined op
        (value ``None``: shard unsplittable, nowhere to place, ...) would
        otherwise retrigger itself forever at the same timestamp.  The
        next real heap change re-evaluates declined shards naturally.
        """
        self._busy.discard(proclet_id)
        if not event.ok or event.value is None:
            return
        proclet = self.qs.runtime._proclets.get(proclet_id)
        if proclet is not None:
            self._on_heap_change(proclet)


class ComputeAutoscaler:
    """Matches compute-pool output to a downstream consumption rate.

    Parameters
    ----------
    pool:
        A :class:`repro.compute.ComputePool` to scale.
    queue:
        A :class:`repro.ds.ShardedQueue` sitting between the pool
        (producer) and the consumer; its push/pop counters provide the
        rate signals.
    nominal_task_rate:
        Expected tasks/second of one pool member at full speed; used to
        bootstrap before measurements accumulate.
    """

    def __init__(self, qs, pool, queue, nominal_task_rate: float,
                 min_members: int = 1, max_members: Optional[int] = None,
                 demand_fn=None, confirm_samples: int = 3):
        if nominal_task_rate <= 0:
            raise ValueError("nominal_task_rate must be positive")
        if confirm_samples < 1:
            raise ValueError("confirm_samples must be >= 1")
        self.qs = qs
        self.pool = pool
        self.queue = queue
        #: Optional declared-demand signal: a callable returning the
        #: consumer's current demand in tasks/second.  This models §4's
        #: "after learning of a change in GPU resources" — the trainer
        #: reports its achievable consumption rate, and the controller
        #: reacts once the change has been confirmed for a few samples.
        #: Without it the controller falls back to pure queue signals
        #: (waits + measured pops), which converge but dither by ±1.
        self.demand_fn = demand_fn
        self.confirm_samples = confirm_samples
        self._demand_history = []
        self.config: QuicksandConfig = qs.config
        self.nominal_task_rate = nominal_task_rate
        self.min_members = min_members
        self.max_members = max_members
        tc = self.config.rate_time_constant
        self.production = RateEstimator(tc)
        self.consumption = RateEstimator(tc)
        self._last_pushed = 0
        self._last_popped = 0
        self._last_waits = 0
        self._waits_delta = 0
        self._cooldown_until = 0.0
        self.scale_ups = 0
        self.scale_downs = 0
        self.decisions = []  # (time, desired, actual) trace for Fig. 3
        self._stopped = False
        self._process = qs.sim.process(self._loop(), name="autoscaler")

    def stop(self) -> None:
        self._stopped = True

    @property
    def members(self) -> int:
        """Producing members including splits already in flight."""
        return self.pool.effective_size

    def _loop(self) -> Generator:
        period = self.config.autoscale_period
        while not self._stopped:
            yield self.qs.sim.timeout(period)
            now = self.qs.sim.now
            pushed, popped = self.queue.pushed, self.queue.popped
            self.production.update(now, pushed - self._last_pushed)
            self.consumption.update(now, popped - self._last_popped)
            self._last_pushed, self._last_popped = pushed, popped
            waits = self.queue.waits
            self._waits_delta = waits - self._last_waits
            self._last_waits = waits
            self._decide(now)

    def _desired_members(self) -> int:
        """Members implied by the *measured* consumption rate.

        Only meaningful while the queue is non-empty (then pops reflect
        the consumer's true demand); when the consumer is starving the
        wait signal below takes over instead.  Capacity per member uses
        the *nominal* task rate: dividing a lagging production EWMA by a
        just-changed member count is exactly the noise source that sends
        feedback controllers into limit cycles.
        """
        cons = self.consumption.rate
        if cons <= 0:
            return self.members
        return max(self.min_members,
                   min(self.max_members or 10**9,
                       math.ceil(cons / self.nominal_task_rate - 0.05)))

    def _decide(self, now: float) -> None:
        if self.demand_fn is not None:
            self._decide_declared(now)
            return
        desired = self._desired_members()
        actual = self.members
        self.decisions.append((now, desired, actual))
        if now < self._cooldown_until:
            return
        backlog = self.queue.length
        setpoint = self.config.queue_setpoint

        # Consumer starving: it blocked on an empty queue since the last
        # sample.  Measured consumption == production in this regime, so
        # the true demand is unknown; step up multiplicatively until the
        # waits stop (reaches any demand in O(log) cooldown periods).
        starving = self._waits_delta > 0 and backlog < setpoint
        if starving:
            step = max(1, math.ceil(actual / 2))
            if self.max_members is not None:
                step = min(step, self.max_members - actual)
            if step <= 0:
                return
            added = self.pool.grow(step)
            if added:
                self.scale_ups += added
                self._cooldown_until = now + self.config.autoscale_cooldown
            return

        # Producers outrunning the consumer: the backlog confirms it and
        # the measured consumption rate is trustworthy.  Merge toward the
        # implied count, at most two per cooldown: scaling down has no
        # deadline (only efficiency), and gentle steps avoid overshooting
        # into a starve-grow limit cycle.
        if backlog > 2 * setpoint and desired < actual:
            removed = self.pool.shrink(min(actual - desired, 2))
            if removed:
                self.scale_downs += removed
                self._cooldown_until = now + self.config.autoscale_cooldown

    def _decide_declared(self, now: float) -> None:
        """Scaling against a declared consumer-demand rate (Fig. 3).

        The demand reading must hold steady for ``confirm_samples``
        periods before the controller acts — a real deployment cannot
        distinguish a step change from jitter on one sample.
        """
        demand = float(self.demand_fn())
        desired = max(self.min_members,
                      min(self.max_members or 10**9,
                          math.ceil(demand / self.nominal_task_rate
                                    - 0.05)))
        actual = self.members
        self.decisions.append((now, desired, actual))
        self._demand_history.append(desired)
        if len(self._demand_history) > self.confirm_samples:
            self._demand_history.pop(0)
        confirmed = (len(self._demand_history) == self.confirm_samples
                     and len(set(self._demand_history)) == 1)
        if not confirmed or now < self._cooldown_until:
            return
        if desired > actual:
            added = self.pool.grow(desired - actual)
            if added:
                self.scale_ups += added
                self._cooldown_until = now + self.config.autoscale_cooldown
                self.qs.runtime.tracer.emit(
                    "autoscale", f"grow +{added} (declared demand)",
                    desired=desired, actual=actual)
        elif desired < actual:
            removed = self.pool.shrink(actual - desired)
            if removed:
                self.scale_downs += removed
                self._cooldown_until = now + self.config.autoscale_cooldown
                self.qs.runtime.tracer.emit(
                    "autoscale", f"shrink -{removed} (declared demand)",
                    desired=desired, actual=actual)

    def member_count_series(self):
        """(time, members) trace — the Fig. 3 y-axis."""
        return [(t, actual) for t, _d, actual in self.decisions]
