"""Compute proclets: granular executors specialized to consume CPU.

A compute proclet owns a task queue and ``parallelism`` worker threads;
its heap stays nearly empty (§3.2: "the heaps within each shard are left
empty, except for any objects temporarily allocated by threads"), which
is what makes it cheap to migrate and split.  Oversized compute proclets
split by dividing their task queue (§3.3); undersized ones merge.

Tasks either carry a plain CPU cost or a generator ``fn(ctx, task)`` for
work that touches other proclets (reading images from memory proclets,
pushing results into a sharded queue, ...).
"""

from __future__ import annotations

import collections
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, List, Optional

from ..runtime import Payload, ProcletRef
from ..units import US
from .resource import ResourceKind, ResourceProclet

#: Per-task dispatch overhead (queue pop, accounting).
_DISPATCH_CPU = 0.5 * US
#: Nominal wire size of a queued task descriptor.
TASK_WIRE_BYTES = 256.0


@dataclass
class Task:
    """One schedulable unit of compute work."""

    work: float = 0.0
    key: Any = None
    fn: Optional[Callable] = None   # generator fn(ctx, task) -> result
    done: Any = None                # Event, attached by the submitter
    meta: dict = field(default_factory=dict)

    def __post_init__(self):
        if self.work < 0:
            raise ValueError(f"negative task work: {self.work}")


class TaskSource:
    """Protocol for streaming task producers (pull model).

    ``pull`` is a generator receiving the worker's ctx; it returns the
    next :class:`Task` or ``None`` when the stream is exhausted.
    """

    def pull(self, ctx):  # pragma: no cover - interface
        raise NotImplementedError
        yield  # make it a generator


class ComputeProclet(ResourceProclet):
    """Task executor specialized to consume CPU cycles."""

    kind = ResourceKind.COMPUTE

    def __init__(self, parallelism: int = 1,
                 source: Optional[TaskSource] = None):
        super().__init__()
        if parallelism < 1:
            raise ValueError(f"parallelism must be >= 1: {parallelism}")
        self.parallelism = int(parallelism)
        self.source = source
        self._queue: Deque[Task] = collections.deque()
        self._stopped = False
        self._wakeups: List = []  # events of idle workers
        self._live_workers = 0
        self._stop_event = None  # fires when all workers have exited
        self.tasks_done = 0
        self.busy_workers = 0
        #: Optional callback(proclet, task, result) after each task.
        self.on_task_done: Optional[Callable] = None

    # -- introspection ------------------------------------------------------
    @property
    def queue_length(self) -> int:
        return len(self._queue)

    @property
    def idle(self) -> bool:
        return self.busy_workers == 0 and not self._queue

    def self_ref(self) -> ProcletRef:
        return ProcletRef(self._runtime, self._id, self._name)

    # -- lifecycle -------------------------------------------------------------
    def on_start(self, ctx):
        ref = self.self_ref()
        self._live_workers = self.parallelism
        for wid in range(self.parallelism):
            # Never transparently retried: a respawned incarnation's own
            # on_start restarts its worker loops, so a retry would stack
            # duplicate workers onto the new incarnation.
            self._runtime.invoke(ref, "cp_worker", wid,
                                 caller_machine=self.machine,
                                 priority=ctx.priority, retryable=False)

    def request_stop(self):
        """Stop accepting work; returns an event that fires once every
        worker has finished its in-flight task and exited."""
        self._stop_event = self._runtime.sim.event()
        self._stopped = True
        self._wake_all()
        if self._live_workers == 0 and not self._stop_event.triggered:
            self._stop_event.succeed()
        return self._stop_event

    # -- proclet methods ---------------------------------------------------------
    def cp_submit(self, ctx, task: Task):
        """Enqueue one task (wakes an idle worker)."""
        yield ctx.cpu(_DISPATCH_CPU)
        self._enqueue(task)

    def cp_submit_many(self, ctx, tasks: List[Task]):
        yield ctx.cpu(_DISPATCH_CPU * max(1, len(tasks)))
        for task in tasks:
            self._enqueue(task)

    def cp_stop(self, ctx):
        """Stop accepting work; idle workers exit, queue drains first."""
        yield ctx.cpu(_DISPATCH_CPU)
        self._stopped = True
        self._wake_all()

    def cp_extract_half(self, ctx):
        """Give away the back half of the queue (split mechanism, §3.3).

        Returns the extracted tasks; wire cost is proportional to the
        number of task descriptors.
        """
        yield ctx.cpu(_DISPATCH_CPU)
        n = len(self._queue) // 2
        extracted = [self._queue.pop() for _ in range(n)]
        extracted.reverse()
        return Payload(extracted, nbytes=TASK_WIRE_BYTES * len(extracted))

    def cp_drain(self, ctx):
        """Give away the entire pending queue (merge mechanism, §3.3)."""
        yield ctx.cpu(_DISPATCH_CPU)
        extracted = list(self._queue)
        self._queue.clear()
        return Payload(extracted, nbytes=TASK_WIRE_BYTES * len(extracted))

    def cp_stats(self, ctx):
        yield ctx.cpu(_DISPATCH_CPU)
        return {
            "queue": len(self._queue),
            "busy": self.busy_workers,
            "done": self.tasks_done,
        }

    # -- the worker loop --------------------------------------------------------
    def cp_worker(self, ctx, wid: int):
        try:
            yield from self._worker_loop(ctx, wid)
        finally:
            self._live_workers -= 1
            if (self._live_workers == 0 and self._stop_event is not None
                    and not self._stop_event.triggered):
                self._stop_event.succeed()

    def _worker_loop(self, ctx, wid: int):
        while True:
            task = self._next_task()
            if task is None:
                if self._stopped:
                    return
                if self.source is not None:
                    pulled = yield from self.source.pull(ctx)
                    if pulled is None:
                        return  # stream exhausted
                    task = pulled
                else:
                    wakeup = ctx.sim.event()
                    self._wakeups.append(wakeup)
                    yield wakeup
                    continue
            self.busy_workers += 1
            try:
                yield ctx.cpu(_DISPATCH_CPU)
                if task.fn is not None:
                    result = yield from task.fn(ctx, task)
                elif task.work > 0:
                    yield ctx.cpu(task.work)
                    result = None
                else:
                    result = None
            finally:
                self.busy_workers -= 1
            self.tasks_done += 1
            if task.done is not None and not task.done.triggered:
                task.done.succeed(result)
            if self.on_task_done is not None:
                self.on_task_done(self, task, result)

    # -- internals ------------------------------------------------------------------
    def _next_task(self) -> Optional[Task]:
        if self._queue:
            return self._queue.popleft()
        return None

    def _enqueue(self, task: Task) -> None:
        self._queue.append(task)
        self._wake_one()

    def _wake_one(self) -> None:
        while self._wakeups:
            ev = self._wakeups.pop()
            if not ev.triggered:
                ev.succeed()
                return

    def _wake_all(self) -> None:
        wakeups, self._wakeups = self._wakeups, []
        for ev in wakeups:
            if not ev.triggered:
                ev.succeed()
