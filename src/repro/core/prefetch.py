"""Prefetching reader for cross-shard iteration (§3.2, §4).

Sequential scans over sharded data structures announce their access
pattern, so the reader can issue batch reads (``mp_get_range``) for the
next chunks while the current one is being processed.  With enough depth
the per-element remote-access cost is fully overlapped with compute —
the §4 claim that "preprocessing images from remote memory proclets is
as fast as preprocessing local images".
"""

from __future__ import annotations

import collections
from typing import Any, Deque, Generator, List, Tuple

from ..runtime import DeadProclet
from ..runtime.errors import WrongShard


class PrefetchingReader:
    """Pipelined batch reader over a key range of a sharded structure.

    Parameters
    ----------
    ds:
        The sharded structure; must expose ``shard_covering(key) ->
        (shard_ref, range_end)`` for routing.
    lo, hi:
        Key range to scan (``lo`` inclusive, ``hi`` exclusive).
    chunk:
        Elements per batch read.
    depth:
        Number of batch reads kept in flight.  ``depth=0`` disables
        prefetching (each batch is fetched synchronously) — the
        ABL-PREFETCH ablation.
    """

    def __init__(self, ds, lo: int, hi: int, chunk: int = 32,
                 depth: int = 4):
        if chunk < 1:
            raise ValueError(f"chunk must be >= 1: {chunk}")
        if depth < 0:
            raise ValueError(f"depth must be >= 0: {depth}")
        self.ds = ds
        self.lo = lo
        self.hi = hi
        self.chunk = chunk
        self.depth = depth
        self._next_issue = lo
        self._inflight: Deque = collections.deque()
        self.batches_read = 0
        self.elements_read = 0

    @property
    def exhausted(self) -> bool:
        return self._next_issue >= self.hi and not self._inflight

    def _issue_one(self, ctx) -> None:
        """Issue the next batch read (clamped at shard boundaries)."""
        start = self._next_issue
        shard_ref, range_end = self.ds.shard_covering(start)
        end = min(start + self.chunk, self.hi, range_end)
        assert end > start, "shard routing returned an empty range"
        self._next_issue = end
        ev = ctx.call(shard_ref, "mp_get_range", start, end)
        self._inflight.append((ev, start, end))

    def _top_up(self, ctx, target_depth: int) -> None:
        while (len(self._inflight) < target_depth
               and self._next_issue < self.hi):
            self._issue_one(ctx)

    def next_batch(self, ctx) -> Generator:
        """Yield-from helper: returns the next ``[(key, value), ...]``
        batch, or ``None`` when the range is exhausted."""
        if self.depth > 0:
            self._top_up(ctx, self.depth)
        elif not self._inflight and self._next_issue < self.hi:
            self._issue_one(ctx)  # unpipelined fallback
        if not self._inflight:
            return None
        ev, start, end = self._inflight.popleft()
        try:
            batch: List[Tuple[int, Any]] = yield ev
        except (DeadProclet, WrongShard):
            # The shard split/merged after this read was issued; re-fetch
            # the window against the refreshed routing (possibly now
            # spanning several shards).
            batch = yield from self._refetch(ctx, start, end)
        # Refill the pipeline immediately so reads overlap our caller's
        # compute on this batch.
        if self.depth > 0:
            self._top_up(ctx, self.depth)
        self.batches_read += 1
        self.elements_read += len(batch)
        return batch

    def _refetch(self, ctx, start, end) -> Generator:
        out: List[Tuple[int, Any]] = []
        cursor = start
        attempts = 0
        while cursor < end:
            attempts += 1
            if attempts > 32:
                raise RuntimeError(
                    f"prefetch refetch of [{start}, {end}) did not "
                    "stabilize after 32 attempts"
                )
            shard_ref, range_end = self.ds.shard_covering(cursor)
            stop = min(end, range_end)
            try:
                part = yield ctx.call(shard_ref, "mp_get_range",
                                      cursor, stop)
            except (DeadProclet, WrongShard):
                continue  # routing moved again; re-route this cursor
            out.extend(part)
            cursor = stop
        return out
