"""Resource proclets: proclets specialized to one resource type.

This is Quicksand's central idea (§3.1).  Nu's *hybrid* proclets bundle
CPU and memory, so a proclet needing both cannot exploit a machine pair
where one has idle CPU and the other idle DRAM.  Quicksand splits the
proclet taxonomy by resource: memory proclets hold data and burn almost
no CPU; compute proclets burn CPU over a near-empty heap; storage
proclets wrap persistent capacity+IOPS; GPU proclets wrap accelerators.
The scheduler can then map each kind onto whichever machine has that
resource idle.
"""

from __future__ import annotations

import enum

from ..runtime import Proclet


class ResourceKind(enum.Enum):
    """The resource a proclet is specialized to consume."""

    COMPUTE = "compute"
    MEMORY = "memory"
    STORAGE = "storage"
    GPU = "gpu"
    #: Nu-style proclet bundling compute+memory; kept as the baseline the
    #: paper argues against (§2, ABL-COUPLED in DESIGN.md).
    HYBRID = "hybrid"


class ResourceProclet(Proclet):
    """Base class for all Quicksand resource proclets."""

    kind: ResourceKind = ResourceKind.HYBRID

    def __init__(self):
        super().__init__()
        #: Set by the facade when the proclet belongs to a sharded
        #: structure, so controllers can find the owner on size changes.
        self.shard_owner = None

    @property
    def is_memory(self) -> bool:
        return self.kind is ResourceKind.MEMORY

    @property
    def is_compute(self) -> bool:
        return self.kind is ResourceKind.COMPUTE
