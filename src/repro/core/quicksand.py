"""The Quicksand runtime facade — the library's main entry point.

Wires together the Nu substrate, resource proclets, the two-level
scheduler, split/merge, and the high-level data structures::

    from repro import Quicksand, ClusterSpec, MachineSpec, GiB

    qs = Quicksand(ClusterSpec(machines=[
        MachineSpec(name="a", cores=16, dram_bytes=8 * GiB),
        MachineSpec(name="b", cores=16, dram_bytes=8 * GiB),
    ]))
    vec = qs.sharded_vector(name="images")
    pool = qs.compute_pool(name="workers")
    ...
    qs.run(until=10.0)
"""

from __future__ import annotations

from typing import Generator, List, Optional, Tuple, Union

from ..cluster import Cluster, ClusterSpec, Machine, Priority
from ..runtime import (
    MigrationConfig,
    NuRuntime,
    Proclet,
    ProcletRef,
    ProcletStatus,
)
from ..runtime.errors import InvalidPlacement
from .computeproclet import TASK_WIRE_BYTES, ComputeProclet, TaskSource
from .config import QuicksandConfig
from .gpuproclet import GpuProclet
from .memproclet import MemoryProclet
from .resource import ResourceKind, ResourceProclet
from .scheduler import (
    AffinityTracker,
    GlobalScheduler,
    LocalScheduler,
    MachineIndex,
    PlacementPolicy,
)
from .storageproclet import StorageProclet


class Quicksand:
    """Quicksand: fungible applications over a simulated cluster."""

    def __init__(self, spec_or_cluster: Union[ClusterSpec, Cluster],
                 config: QuicksandConfig = QuicksandConfig(),
                 migration_config: MigrationConfig = MigrationConfig()):
        self.cluster = (spec_or_cluster
                        if isinstance(spec_or_cluster, Cluster)
                        else Cluster(spec_or_cluster))
        self.config = config
        self.runtime = NuRuntime(self.cluster, migration_config)
        self.sim = self.cluster.sim
        self.metrics = self.cluster.metrics
        self.placement = PlacementPolicy(self.cluster)
        self.placement.attach_runtime(self.runtime)
        #: Bucketed machine views (free DRAM, planned compute, eligible
        #: list) so placement argmax and scheduler scans stay O(buckets)
        #: rather than O(machines) at thousand-machine scale.
        self.machine_index = MachineIndex(self.cluster, self.runtime)
        self.placement.index = self.machine_index
        self.runtime.locator.add_listener(
            self.machine_index.on_location_change)
        self.runtime.on_machine_failure(self.machine_index.on_machine_failure)
        self.runtime.on_machine_restore(self.machine_index.on_machine_restore)
        self.affinity = AffinityTracker(self.sim)
        self.runtime.on_invocation(self.affinity.record)
        self.local_schedulers: List[LocalScheduler] = []
        if config.enable_local_scheduler:
            self.local_schedulers = [
                LocalScheduler(self, m, config)
                for m in self.cluster.machines
            ]
        self.global_scheduler: Optional[GlobalScheduler] = (
            GlobalScheduler(self, config)
            if config.enable_global_scheduler else None
        )
        from .splitmerge import ShardSizeController

        self.shard_controller: Optional[ShardSizeController] = (
            ShardSizeController(self) if config.enable_split_merge else None
        )
        #: The attached repro.ft.RecoveryManager (enable_recovery), or
        #: None: fail-stop semantics, no detector/heartbeat processes.
        self.recovery = None
        #: The attached repro.autoscale.ShardAutoscaler
        #: (enable_autoscaler), or None: shard sizing stays with the
        #: legacy heap-change controller above.
        self.autoscaler = None
        self.splits = 0
        self.merges = 0

    # -- fault tolerance ---------------------------------------------------------
    def enable_recovery(self, config=None):
        """Attach the :mod:`repro.ft` subsystem and return its
        :class:`~repro.ft.RecoveryManager`.

        Starts the heartbeat failure detector, gates placement off
        *suspected* machines, and turns on transparent call retry for
        proclets registered via ``manager.protect()``.  Without this
        call, nothing from :mod:`repro.ft` runs and trajectories are
        bit-identical to builds predating it.
        """
        if self.recovery is not None:
            raise RuntimeError("recovery is already enabled")
        from ..ft import RecoveryConfig, RecoveryManager

        manager = RecoveryManager(self, config or RecoveryConfig())
        self.recovery = manager
        self.placement.health = manager.eligible
        # The detector's health verdicts only change on suspect/confirm/
        # alive transitions, so the eligible-machine cache can subscribe
        # to exactly those and stay valid in between.
        self.machine_index.track_health(manager.eligible)
        detector = manager.detector
        detector.on_suspect(self.machine_index.invalidate_eligible)
        detector.on_confirm(self.machine_index.invalidate_eligible)
        detector.on_alive(self.machine_index.invalidate_eligible)
        return manager

    def eligible_machines(self) -> List[Machine]:
        """Machines placement may target: up, and (with recovery
        enabled) not currently suspected by the failure detector."""
        return self.machine_index.eligible(self.placement.health)

    # -- shard autoscaling -------------------------------------------------------
    def enable_autoscaler(self, config=None):
        """Attach the :mod:`repro.autoscale` control loop and return its
        :class:`~repro.autoscale.ShardAutoscaler`.

        Detaches the deprecated heap-change-driven
        :class:`~repro.core.splitmerge.ShardSizeController` — exactly
        one controller may own shard sizing.  Child-shard placement in
        the autoscaler's reshard protocol goes through
        ``placement.best_for_memory`` and is therefore health-gated
        whenever :meth:`enable_recovery` is active.  Without this call,
        nothing from :mod:`repro.autoscale` runs and trajectories are
        bit-identical to builds predating it.
        """
        if self.autoscaler is not None:
            raise RuntimeError("autoscaler is already enabled")
        from ..autoscale import ShardAutoscaler

        if self.shard_controller is not None:
            self.shard_controller.detach()
            self.shard_controller = None
        self.autoscaler = ShardAutoscaler(self, config)
        return self.autoscaler

    # -- spawning resource proclets --------------------------------------------
    def spawn(self, proclet: Proclet, machine: Optional[Machine] = None,
              name: str = "") -> ProcletRef:
        """Place *proclet*, choosing a machine by its resource kind when
        none is given."""
        if machine is None:
            machine = self._place(proclet)
        return self.runtime.spawn(proclet, machine, name=name)

    def _place(self, proclet: Proclet) -> Machine:
        kind = getattr(proclet, "kind", ResourceKind.HYBRID)
        if kind is ResourceKind.MEMORY:
            m = self.placement.best_for_memory(proclet.footprint)
        elif kind is ResourceKind.COMPUTE:
            m = self.placement.best_for_compute(
                getattr(proclet, "parallelism", 1))
            if m is None:
                # No idle cores anywhere: fall back to the eligible
                # machine with the least planned+actual CPU commitment.
                live = self.eligible_machines()
                m = max(
                    live,
                    key=lambda x: min(
                        x.cpu.free_cores(),
                        x.cpu.cores - self.placement._planned_demand(x),
                    ),
                ) if live else None
        elif kind is ResourceKind.GPU:
            m = self.placement.best_for_gpu()
        elif kind is ResourceKind.STORAGE:
            m = self.placement.best_for_storage(0.0)
        else:
            m = self.placement.best_for_memory(proclet.footprint)
        if m is None:
            raise InvalidPlacement(
                f"no machine can host {type(proclet).__name__} "
                f"(footprint {proclet.footprint:.0f} B)"
            )
        return m

    def spawn_memory(self, machine: Optional[Machine] = None,
                     name: str = "") -> ProcletRef:
        return self.spawn(MemoryProclet(), machine, name=name)

    def spawn_compute(self, parallelism: int = 1,
                      source: Optional[TaskSource] = None,
                      machine: Optional[Machine] = None,
                      name: str = "") -> ProcletRef:
        return self.spawn(ComputeProclet(parallelism, source), machine,
                          name=name)

    def spawn_gpu(self, machine: Optional[Machine] = None,
                  name: str = "") -> ProcletRef:
        return self.spawn(GpuProclet(), machine, name=name)

    def spawn_storage(self, machine: Optional[Machine] = None,
                      name: str = "") -> ProcletRef:
        return self.spawn(StorageProclet(), machine, name=name)

    # -- split / merge primitives (§3.3) -------------------------------------------
    def split_memory(self, ref: ProcletRef,
                     dst: Optional[Machine] = None):
        """Split a memory proclet into two byte-balanced halves.

        Returns a process event whose value is ``(split_key, new_ref)``,
        or ``None`` when the split could not proceed (proclet busy, or no
        DRAM anywhere for the new half).
        """
        proclet = self.runtime.get_proclet(ref.proclet_id)
        op_box: dict = {}
        ev = self.sim.process(self._split_memory_proc(proclet, dst, op_box),
                              name=f"split:{proclet.name}")
        # Settle the ledger op when the process settles.  Registered
        # before any structure's completion subscriber, so op closure
        # and table publication land within the same event delivery —
        # the invariant checker never sees them apart.
        ev.subscribe(lambda e: self._settle_reshard_op(op_box, e))
        return ev

    def _settle_reshard_op(self, op_box: dict, event) -> None:
        """Close a legacy split/merge's ledger op from its completion
        event (the op protects the mid-handoff child from the orphan
        invariant until the owning structure publishes it)."""
        op = op_box.get("op")
        if op is None or not op.active:
            return
        ledger = self.runtime.reshard_ledger
        if event.ok and event.value is not None:
            ledger.complete(op)
        else:
            ledger.abort(op, "declined" if event.ok else repr(event.value))

    def _split_memory_proc(self, src: MemoryProclet,
                           dst: Optional[Machine],
                           op_box: Optional[dict] = None) -> Generator:
        if src.status is not ProcletStatus.RUNNING or src.object_count < 2:
            return None
        op = self.runtime.reshard_ledger.begin(
            "split", src.shard_owner, src.id, driver="legacy")
        if op_box is not None:
            op_box["op"] = op
        tr = self.sim.tracer
        span = None
        if tr is not None:
            span = tr.begin("split", f"split {src.name}",
                            track=f"proclet:{src.name}", kind="memory")
        gate = self._block(src)
        yield self.sim.timeout(self.config.split_overhead)

        if src.object_count < 2:
            # The decision went stale while we waited: deletes or a
            # competing split shrank the shard below two keys.  Abort
            # rather than split an un-splittable proclet.
            self._unblock(src, gate)
            if tr is not None:
                tr.end(span, outcome="stale")
            return None
        split_key = src.split_point()
        items, nbytes = src.extract_upper(split_key)
        new = MemoryProclet()
        new.shard_owner = src.shard_owner
        if dst is None:
            dst = self.placement.best_for_memory(nbytes + new.BASE_FOOTPRINT)
        if dst is None or not dst.memory.can_fit(nbytes + new.BASE_FOOTPRINT):
            src.install(items)  # undo: nowhere to put the upper half
            self._unblock(src, gate)
            if tr is not None:
                tr.end(span, outcome="no-room")
            return None
        new_ref = self.runtime.spawn(new, dst, name=f"{src.name}.hi")
        self.runtime.reshard_ledger.add_child(op, new_ref.proclet_id)
        if dst is not src.machine:
            yield self.cluster.fabric.transfer(src.machine, dst, nbytes,
                                               name=f"split:{src.name}")
        new.install(items)
        self._unblock(src, gate)
        self.splits += 1
        if self.metrics is not None:
            self.metrics.count("quicksand.splits.memory")
        self.runtime.tracer.emit(
            "split", f"{src.name} at {split_key!r} -> {new.name}",
            moved_bytes=int(nbytes), dst=dst.name,
        )
        if tr is not None:
            tr.end(span, moved_bytes=int(nbytes), dst=dst.name,
                   new=new.name)
        return split_key, new_ref

    def merge_memory(self, dst_ref: ProcletRef, src_ref: ProcletRef):
        """Merge *src* into *dst* (adjacent shards); destroys *src*.

        Returns a process event: ``True`` on success, ``None`` if either
        proclet was busy or the destination cannot absorb the bytes.
        """
        dst_p = self.runtime.get_proclet(dst_ref.proclet_id)
        src_p = self.runtime.get_proclet(src_ref.proclet_id)
        op_box: dict = {}
        ev = self.sim.process(
            self._merge_memory_proc(dst_p, src_p, src_ref, op_box),
            name=f"merge:{src_p.name}->{dst_p.name}",
        )
        ev.subscribe(lambda e: self._settle_reshard_op(op_box, e))
        return ev

    def _merge_memory_proc(self, dst_p: MemoryProclet, src_p: MemoryProclet,
                           src_ref: ProcletRef,
                           op_box: Optional[dict] = None) -> Generator:
        if dst_p is src_p:
            return None  # self-merge would destroy the survivor
        if (dst_p.status is not ProcletStatus.RUNNING
                or src_p.status is not ProcletStatus.RUNNING):
            return None
        if not dst_p.machine.memory.can_fit(src_p.heap_bytes):
            return None
        op = self.runtime.reshard_ledger.begin(
            "merge", src_p.shard_owner, src_p.id, driver="legacy")
        self.runtime.reshard_ledger.add_child(op, dst_p.id)
        if op_box is not None:
            op_box["op"] = op
        tr = self.sim.tracer
        span = None
        if tr is not None:
            span = tr.begin("merge", f"merge {src_p.name} -> {dst_p.name}",
                            track=f"proclet:{dst_p.name}", kind="memory")
        src_gate = self._block(src_p)
        dst_gate = self._block(dst_p)
        yield self.sim.timeout(self.config.split_overhead)

        items, nbytes = src_p.extract_all()
        if dst_p.machine is not src_p.machine:
            yield self.cluster.fabric.transfer(src_p.machine, dst_p.machine,
                                               nbytes,
                                               name=f"merge:{src_p.name}")
        dst_p.install(items)
        self._unblock(dst_p, dst_gate)
        self._unblock(src_p, src_gate)
        self.runtime.destroy(src_ref)
        self.merges += 1
        if self.metrics is not None:
            self.metrics.count("quicksand.merges.memory")
        self.runtime.tracer.emit(
            "merge", f"{src_p.name} -> {dst_p.name}",
            moved_bytes=int(nbytes),
        )
        if tr is not None:
            tr.end(span, moved_bytes=int(nbytes))
        return True

    def split_compute(self, ref: ProcletRef,
                      dst: Optional[Machine] = None):
        """Split a compute proclet by dividing its task queue (§3.3).

        Honors the paper's rule that splits happen "only if there are
        enough CPU resources in the cluster": returns ``None`` when no
        machine has idle cores.  The event value is the new proclet's ref.
        """
        proclet = self.runtime.get_proclet(ref.proclet_id)
        return self.sim.process(self._split_compute_proc(proclet, dst),
                                name=f"split:{proclet.name}")

    def _split_compute_proc(self, src: ComputeProclet,
                            dst: Optional[Machine]) -> Generator:
        if src.status is not ProcletStatus.RUNNING:
            return None
        if dst is None:
            dst = self.placement.best_for_compute(src.parallelism)
        if dst is None:
            return None  # no CPU headroom anywhere
        tr = self.sim.tracer
        span = None
        if tr is not None:
            span = tr.begin("split", f"split {src.name}",
                            track=f"proclet:{src.name}", kind="compute")
        gate = self._block(src)
        yield self.sim.timeout(self.config.split_overhead)

        new = ComputeProclet(parallelism=src.parallelism, source=src.source)
        new.shard_owner = src.shard_owner
        new.on_task_done = src.on_task_done
        new_ref = self.runtime.spawn(new, dst, name=f"{src.name}.split")

        n = len(src._queue) // 2
        if n > 0:
            moved = [src._queue.pop() for _ in range(n)]
            moved.reverse()
            if dst is not src.machine:
                yield self.cluster.fabric.transfer(
                    src.machine, dst, TASK_WIRE_BYTES * n,
                    name=f"split:{src.name}",
                )
            for task in moved:
                new._enqueue(task)
        self._unblock(src, gate)
        self.splits += 1
        if self.metrics is not None:
            self.metrics.count("quicksand.splits.compute")
        self.runtime.tracer.emit(
            "split", f"{src.name} queue-division -> {new.name}",
            moved_tasks=n, dst=dst.name,
        )
        if tr is not None:
            tr.end(span, moved_tasks=n, dst=dst.name, new=new.name)
        return new_ref

    def merge_compute(self, dst_ref: ProcletRef, src_ref: ProcletRef):
        """Merge compute proclet *src* into *dst*: move its pending tasks,
        stop its workers, destroy it once drained (§3.3)."""
        dst_p = self.runtime.get_proclet(dst_ref.proclet_id)
        src_p = self.runtime.get_proclet(src_ref.proclet_id)
        return self.sim.process(
            self._merge_compute_proc(dst_p, src_p, src_ref),
            name=f"merge:{src_p.name}->{dst_p.name}",
        )

    def _merge_compute_proc(self, dst_p: ComputeProclet,
                            src_p: ComputeProclet,
                            src_ref: ProcletRef) -> Generator:
        if dst_p is src_p:
            return None  # self-merge would destroy the survivor
        if (dst_p.status is not ProcletStatus.RUNNING
                or src_p.status is not ProcletStatus.RUNNING):
            return None
        tr = self.sim.tracer
        span = None
        if tr is not None:
            span = tr.begin("merge", f"merge {src_p.name} -> {dst_p.name}",
                            track=f"proclet:{dst_p.name}", kind="compute")
        yield self.sim.timeout(self.config.split_overhead)
        pending = list(src_p._queue)
        src_p._queue.clear()
        stopped = src_p.request_stop()
        if pending:
            if dst_p.machine is not src_p.machine:
                yield self.cluster.fabric.transfer(
                    src_p.machine, dst_p.machine,
                    TASK_WIRE_BYTES * len(pending),
                    name=f"merge:{src_p.name}",
                )
            for task in pending:
                dst_p._enqueue(task)
        yield stopped  # workers finish their in-flight tasks
        self.runtime.destroy(src_ref)
        self.merges += 1
        if self.metrics is not None:
            self.metrics.count("quicksand.merges.compute")
        if tr is not None:
            tr.end(span, moved_tasks=len(pending))
        return True

    # -- invocation gates used by split/merge ----------------------------------------
    @staticmethod
    def _block(proclet: ResourceProclet):
        """Block new invocations (reuses the migration gate mechanism)."""
        proclet._status = ProcletStatus.MIGRATING
        proclet._migration_gate = proclet._runtime.sim.event()
        tr = proclet._runtime.sim.tracer
        if tr is not None:
            proclet._gate_span = tr.begin(
                "gate", f"gated:{proclet.name}", parent=proclet._span,
                track=f"proclet:{proclet.name}")
        return proclet._migration_gate

    @staticmethod
    def _unblock(proclet: ResourceProclet, gate) -> None:
        proclet._status = ProcletStatus.RUNNING
        proclet._migration_gate = None
        gate.succeed()
        tr = proclet._runtime.sim.tracer
        if tr is not None:
            tr.end(proclet._gate_span)
            proclet._gate_span = None

    # -- high-level abstractions -----------------------------------------------------
    def sharded_vector(self, name: str = "vector", **kwargs):
        from ..ds import ShardedVector

        return ShardedVector(self, name=name, **kwargs)

    def sharded_map(self, name: str = "map", **kwargs):
        from ..ds import ShardedMap

        return ShardedMap(self, name=name, **kwargs)

    def sharded_set(self, name: str = "set", **kwargs):
        from ..ds import ShardedSet

        return ShardedSet(self, name=name, **kwargs)

    def sharded_queue(self, name: str = "queue", **kwargs):
        from ..ds import ShardedQueue

        return ShardedQueue(self, name=name, **kwargs)

    def compute_pool(self, name: str = "pool", **kwargs):
        from ..compute import ComputePool

        return ComputePool(self, name=name, **kwargs)

    def flat_storage(self, name: str = "storage", **kwargs):
        from ..storage import FlatStorage

        return FlatStorage(self, name=name, **kwargs)

    # -- execution ----------------------------------------------------------------------
    def run(self, until=None, until_event=None):
        return self.sim.run(until=until, until_event=until_event)

    def machine(self, name_or_id) -> Machine:
        return self.cluster.machine(name_or_id)

    @property
    def machines(self) -> List[Machine]:
        return self.cluster.machines

    def __repr__(self) -> str:
        return (f"<Quicksand {len(self.cluster.machines)} machines, "
                f"{self.runtime.proclet_count} proclets, "
                f"t={self.sim.now:.4f}s>")
