"""Memory proclets: granular containers of in-memory data.

A memory proclet stores keyed objects and charges their bytes against the
hosting machine's DRAM.  It is the unit of memory placement and
migration: sharded data structures (:mod:`repro.ds`) partition their
contents into many memory proclets so the scheduler can spread data over
whatever DRAM exists in the cluster and move it in well under a
millisecond (§3.1, §3.3).

Objects are addressed by sortable keys (ints for vectors, arbitrary
ordered keys for maps); range queries power the batch reads used by the
prefetcher.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..runtime import Payload, ProcletRef
from ..runtime.errors import WrongShard
from ..units import US
from .resource import ResourceKind, ResourceProclet

#: CPU cost of one object lookup/insert inside a memory proclet.
_OP_CPU = 0.2 * US


@dataclass(frozen=True)
class DistPtr:
    """A distributed pointer (the ``NewPtr<T>`` of §3.1).

    Valid across proclets and machines; dereference with :meth:`deref`
    from any execution context.
    """

    shard: ProcletRef
    key: Any

    def deref(self, ctx):
        """Read the pointee; returns a completion event with the value."""
        return ctx.call(self.shard, "mp_get", self.key)

    def store(self, ctx, value, nbytes: float):
        """Overwrite the pointee (re-sizing its allocation)."""
        return ctx.call(self.shard, "mp_put", self.key, nbytes, value,
                        req_bytes=nbytes)


class MemoryProclet(ResourceProclet):
    """Object store specialized to consume DRAM."""

    kind = ResourceKind.MEMORY

    def __init__(self):
        super().__init__()
        self._objects: Dict[Any, Tuple[float, Any]] = {}
        self._keys: List[Any] = []  # sorted, for range ops and splits
        # Authoritative key range when part of a sharded structure
        # (None = unbounded).  Enforced at execution time: an invocation
        # routed before a concurrent split/merge re-ranged this shard
        # gets WrongShard and the client retries with fresh routing.
        self.range_lo: Optional[Any] = None
        self.range_hi: Optional[Any] = None

    def _check_range(self, key) -> None:
        if self.range_lo is not None and key < self.range_lo:
            raise WrongShard(
                f"{self.name}: key {key!r} below range "
                f"[{self.range_lo!r}, {self.range_hi!r})"
            )
        if self.range_hi is not None and not key < self.range_hi:
            raise WrongShard(
                f"{self.name}: key {key!r} beyond range "
                f"[{self.range_lo!r}, {self.range_hi!r})"
            )

    # -- introspection (simulation-side) -----------------------------------
    @property
    def object_count(self) -> int:
        return len(self._objects)

    @property
    def keys(self) -> List[Any]:
        return list(self._keys)

    def key_range(self) -> Tuple[Any, Any]:
        if not self._keys:
            raise ValueError(f"{self.name}: empty proclet has no key range")
        return self._keys[0], self._keys[-1]

    # -- proclet methods (invoked through refs) ------------------------------
    def mp_put(self, ctx, key, nbytes: float, value: Any = None):
        """Insert or overwrite one object.

        Returns True for an insert, False for an overwrite — callers
        tracking collection sizes must use this rather than comparing
        object counts, which race with concurrent splits.
        """
        yield ctx.cpu(_OP_CPU)
        self._check_range(key)
        old = self._objects.get(key)
        if old is not None:
            self.heap_free(old[0])
        else:
            bisect.insort(self._keys, key)
        ctx.alloc(nbytes)
        self._objects[key] = (float(nbytes), value)
        return old is None

    def mp_get(self, ctx, key):
        """Read one object; remote callers pay for its bytes on the wire."""
        yield ctx.cpu(_OP_CPU)
        self._check_range(key)
        entry = self._objects.get(key)
        if entry is None:
            raise KeyError(f"{self.name}: no object {key!r}")
        nbytes, value = entry
        return Payload(value, nbytes=nbytes)

    def mp_contains(self, ctx, key):
        yield ctx.cpu(_OP_CPU)
        self._check_range(key)
        return key in self._objects

    def mp_delete(self, ctx, key):
        """Remove one object, returning its size."""
        yield ctx.cpu(_OP_CPU)
        self._check_range(key)
        entry = self._objects.pop(key, None)
        if entry is None:
            raise KeyError(f"{self.name}: no object {key!r}")
        idx = bisect.bisect_left(self._keys, key)
        del self._keys[idx]
        self.heap_free(entry[0])
        return entry[0]

    def mp_get_range(self, ctx, lo, hi):
        """Batch-read objects with ``lo <= key < hi`` (prefetch path).

        Returns ``[(key, value), ...]``; the wire cost is the sum of the
        objects' sizes, paid as one bulk transfer — this is why
        prefetching hides remote-access latency so well (§4).
        """
        yield ctx.cpu(_OP_CPU * max(1, self._count_in_range(lo, hi)))
        # The whole requested window must be covered by this shard.
        self._check_range(lo)
        if self.range_hi is not None and not hi <= self.range_hi:
            raise WrongShard(
                f"{self.name}: range [{lo!r}, {hi!r}) beyond shard end "
                f"{self.range_hi!r}"
            )
        i = bisect.bisect_left(self._keys, lo)
        j = bisect.bisect_left(self._keys, hi)
        out = []
        total = 0.0
        for key in self._keys[i:j]:
            nbytes, value = self._objects[key]
            out.append((key, value))
            total += nbytes
        return Payload(out, nbytes=total)

    def mp_stats(self, ctx):
        """Size snapshot used by controllers."""
        yield ctx.cpu(_OP_CPU)
        return {
            "objects": len(self._objects),
            "heap_bytes": self.heap_bytes,
        }

    def _count_in_range(self, lo, hi) -> int:
        i = bisect.bisect_left(self._keys, lo)
        j = bisect.bisect_left(self._keys, hi)
        return j - i

    # -- split/merge primitives (driven by the facade, §3.3) -------------------
    def split_point(self) -> Any:
        """Key splitting the heap into two byte-balanced halves."""
        if len(self._keys) < 2:
            raise ValueError(f"{self.name}: too small to split")
        target = self.heap_bytes / 2.0
        acc = 0.0
        for key in self._keys:
            acc += self._objects[key][0]
            if acc >= target:
                idx = self._keys.index(key)
                # Never split off an empty half.
                idx = min(max(idx, 0), len(self._keys) - 2)
                return self._keys[idx + 1]
        return self._keys[-1]

    def extract_upper(self, split_key) -> Tuple[List[Tuple[Any, float, Any]],
                                                float]:
        """Remove and return all objects with ``key >= split_key``.

        Returns ``(items, total_bytes)`` where items are
        ``(key, nbytes, value)`` tuples.  Heap accounting is adjusted
        here; the caller charges the transfer and installs the items in
        the new shard.
        """
        idx = bisect.bisect_left(self._keys, split_key)
        moved_keys = self._keys[idx:]
        del self._keys[idx:]
        items = []
        total = 0.0
        for key in moved_keys:
            nbytes, value = self._objects.pop(key)
            items.append((key, nbytes, value))
            total += nbytes
        if total > 0:
            self.heap_free(total)
        return items, total

    def extract_all(self) -> Tuple[List[Tuple[Any, float, Any]], float]:
        """Remove and return every object (the giving end of a merge)."""
        items = [(key, *self._objects[key]) for key in self._keys]
        total = sum(nbytes for _k, nbytes, _v in items)
        self._objects.clear()
        self._keys.clear()
        if total > 0:
            self.heap_free(total)
        return items, total

    # -- fault-tolerance hooks (repro.ft) --------------------------------------
    def ft_capture(self):
        """Snapshot every object plus the shard's key range.

        Non-destructive (unlike :meth:`extract_all`): the proclet keeps
        serving while the checkpoint engine copies the snapshot out.
        """
        items = [(key, *self._objects[key]) for key in self._keys]
        state = {"items": items, "range": (self.range_lo, self.range_hi)}
        return state, self.heap_bytes

    def ft_restore(self, state) -> None:
        """Rebuild objects and key range from an :meth:`ft_capture`
        snapshot (charges this incarnation's DRAM via install)."""
        self.range_lo, self.range_hi = state["range"]
        self.install(list(state["items"]))

    def install(self, items: List[Tuple[Any, float, Any]]) -> float:
        """Bulk-insert items (the receiving end of a split/merge).

        Returns the total bytes installed (already charged to this
        proclet's heap).
        """
        total = sum(nbytes for _k, nbytes, _v in items)
        if total > 0:
            self.heap_alloc(total)
        for key, nbytes, value in items:
            if key in self._objects:
                raise ValueError(f"{self.name}: duplicate key {key!r}")
            bisect.insort(self._keys, key)
            self._objects[key] = (nbytes, value)
        return total
