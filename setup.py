"""Setup shim for legacy editable installs (offline environment lacks the
``wheel`` package, so PEP 517 editable builds are unavailable)."""

from setuptools import setup

setup()
