#!/usr/bin/env python
"""Map-reduce word count over sharded data structures.

Shows that the abstractions are general beyond the paper's DNN case
study: documents live in a sharded vector; a compute pool runs a parallel
reduce with per-task partial dictionaries; results fold into one count.

Run:  python examples/analytics_wordcount.py
"""

from repro import ClusterSpec, GiB, MachineSpec, Quicksand
from repro.apps import WordCountJob


def main():
    qs = Quicksand(ClusterSpec(machines=[
        MachineSpec(name="m0", cores=8, dram_bytes=4 * GiB),
        MachineSpec(name="m1", cores=8, dram_bytes=4 * GiB),
    ]))
    job = WordCountJob(qs, documents=500, words_per_doc=80,
                       vocabulary=20, pool_members=4)
    t0 = qs.sim.now
    counts = qs.run(until_event=job.run())
    elapsed = qs.sim.now - t0

    top = sorted(counts.items(), key=lambda kv: -kv[1])[:5]
    print(f"counted {sum(counts.values())} words across "
          f"{len(job.vector)} documents in {elapsed * 1e3:.1f} ms "
          f"(virtual time)")
    print("top words:")
    for word, n in top:
        print(f"  {word:10s} {n}")
    assert counts == job.expected, "distributed count must match oracle"
    print("distributed result matches the sequential oracle ✓")


if __name__ == "__main__":
    main()
