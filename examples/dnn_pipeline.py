#!/usr/bin/env python
"""The paper's §4 case study: a DNN training input pipeline.

Builds the full pipeline — synthetic images in a sharded vector, a
compute pool preprocessing them (with cross-shard prefetching), a sharded
queue, and emulated GPUs — on a deliberately *imbalanced* pair of
machines: one has the CPUs, the other has the DRAM.  Quicksand places
memory proclets on the memory-rich machine and compute proclets on the
CPU-rich one, and the pipeline runs as fast as a single machine with the
combined resources would.

Run:  python examples/dnn_pipeline.py
"""

from repro import ClusterSpec, GiB, MachineSpec, Quicksand, QuicksandConfig
from repro.apps.dnn import BatchPipeline, DatasetSpec
from repro.units import MiB


def run(machines, label: str) -> float:
    qs = Quicksand(
        ClusterSpec(machines=machines),
        config=QuicksandConfig(enable_global_scheduler=False),
    )
    # 1.2 GiB of images, 120 CPU-seconds of preprocessing.
    dataset = DatasetSpec(count=1200, mean_bytes=1 * MiB, mean_cpu=0.1)
    pipeline = BatchPipeline(qs, dataset=dataset)
    result = pipeline.run()

    print(f"{label}:")
    print(f"  preprocess time: {result.preprocess_time:.2f} s "
          f"(ideal: {dataset.total_cpu / 46:.2f} s on 46 cores)")
    print(f"  image shards per machine:  {result.shard_machines}")
    print(f"  compute workers per machine: {result.worker_machines}")
    print(f"  remote/local proclet calls: "
          f"{result.remote_calls}/{result.local_calls}")
    return result.preprocess_time


def main():
    ideal = run(
        [MachineSpec(name="m0", cores=46, dram_bytes=2.5 * GiB)],
        "single machine with ALL resources (baseline)",
    )
    split = run(
        [
            MachineSpec(name="cpu-heavy", cores=40, dram_bytes=0.35 * GiB),
            MachineSpec(name="mem-heavy", cores=6, dram_bytes=2.15 * GiB),
        ],
        "both-unbalanced split (cpu on one machine, memory on the other)",
    )
    print(f"\nslowdown from splitting the resources: {split / ideal:.3f}x "
          "(the paper's point: ~1.0x)")


if __name__ == "__main__":
    main()
