#!/usr/bin/env python
"""An elastic in-memory cache that consumes only the memory utility.

The paper's opening example: a Lambda user running an in-memory cache
pays for CPU they never use, because the cloud bundles resources.  On
Quicksand the cache is pure memory proclets — it takes DRAM wherever
DRAM is free, follows memory pressure across machines, and costs
(almost) zero CPU.

Run:  python examples/elastic_cache.py
"""

from repro import ClusterSpec, GiB, MachineSpec, MiB, Quicksand
from repro.apps import ElasticCache
from repro.units import KiB


def main():
    qs = Quicksand(ClusterSpec(machines=[
        MachineSpec(name="m0", cores=8, dram_bytes=2 * GiB),
        MachineSpec(name="m1", cores=8, dram_bytes=2 * GiB),
    ]))
    cache = ElasticCache(qs, budget_bytes=64 * MiB, shards=4)

    # Fill with a 100-key working set; CLOCK eviction keeps the budget.
    for i in range(200):
        qs.run(until_event=cache.put(f"obj-{i % 100}", i, 1 * MiB))
    qs.run(until=qs.sim.now + 0.05)  # eviction settles

    rng = qs.sim.random.stream("traffic")
    for _ in range(500):
        qs.run(until_event=cache.get(f"obj-{rng.randrange(100)}"))

    print(f"cache budget: 64 MiB, used: {cache.used_bytes / MiB:.1f} MiB")
    print(f"hit rate over 500 lookups: {cache.hit_rate * 100:.1f}%")
    print(f"evictions so far: {cache.evictions}")
    machines = {}
    for m in cache.shard_machines():
        machines[m.name] = machines.get(m.name, 0) + 1
    print(f"shards per machine: {machines}")

    # CPU footprint: essentially nothing — the point of the example.
    cpu_used = sum(m.cpu.sched.served_integral for m in qs.machines)
    print(f"total CPU consumed by the cache: {cpu_used * 1e3:.2f} "
          f"core-milliseconds over {qs.sim.now:.3f}s of serving")


if __name__ == "__main__":
    main()
