#!/usr/bin/env python
"""Harvesting millisecond-scale idle CPU with a fungible filler app.

Recreates the paper's motivating experiment (Fig. 1) interactively: two
machines run anti-phased high-priority bursts; a filler of granular
compute proclets hops between them to soak up the idle halves.  Compare
the `fungible` and `static` goodput lines — the whole paper in one
number.

Run:  python examples/filler_harvest.py
"""

from repro import ClusterSpec, GiB, MachineSpec, Quicksand, QuicksandConfig
from repro.apps import FillerApp, PhasedApp
from repro.units import MS, US


def run(fungible: bool) -> tuple:
    qs = Quicksand(
        ClusterSpec(machines=[
            MachineSpec(name="m0", cores=8, dram_bytes=2 * GiB),
            MachineSpec(name="m1", cores=8, dram_bytes=2 * GiB),
        ]),
        config=QuicksandConfig(
            enable_local_scheduler=fungible,  # the fungibility switch
            enable_global_scheduler=False,
            enable_split_merge=False,
        ),
    )
    m0, m1 = qs.machines

    # Anti-phased HIGH-priority bursts: one machine is always saturated,
    # the other always idle.
    PhasedApp(m0, burst=10 * MS, idle=10 * MS).start()
    PhasedApp(m1, burst=10 * MS, idle=10 * MS, phase_offset=10 * MS).start()

    filler = FillerApp(qs, proclets=8, work_unit=100 * US, machine=m1)

    qs.run(until=0.020)          # warm-up
    t0 = qs.sim.now
    qs.run(until=t0 + 0.200)     # measured window
    goodput = filler.goodput_cores(t0, qs.sim.now)
    return goodput, filler.total_migrations(), qs


def main():
    fungible_goodput, migrations, qs = run(fungible=True)
    static_goodput, _zero, _qs2 = run(fungible=False)

    lat = qs.metrics.samples("runtime.migration.latency")
    print("filler goodput over 200 ms (8-core machines):")
    print(f"  fungible: {fungible_goodput:.2f} cores "
          f"({migrations} migrations, "
          f"median latency {sorted(lat)[len(lat) // 2] * 1e3:.2f} ms)")
    print(f"  static:   {static_goodput:.2f} cores (no migration)")
    print(f"  -> fungibility harvested "
          f"{fungible_goodput / static_goodput:.2f}x more idle CPU")


if __name__ == "__main__":
    main()
