#!/usr/bin/env python
"""Quickstart: spin up a simulated cluster, use the Quicksand API.

Covers the core concepts in ~60 lines:
  * describe a cluster with ClusterSpec / MachineSpec;
  * create the Quicksand runtime;
  * store data in a sharded map (memory proclets, auto-split);
  * run computation on a compute pool (compute proclets);
  * watch a proclet migrate between machines.

Run:  python examples/quickstart.py
"""

from repro import (
    ClusterSpec,
    GiB,
    KiB,
    MachineSpec,
    Quicksand,
    Task,
)


def main():
    # -- 1. Describe and build the cluster -------------------------------
    spec = ClusterSpec(machines=[
        MachineSpec(name="alpha", cores=8, dram_bytes=4 * GiB),
        MachineSpec(name="beta", cores=8, dram_bytes=4 * GiB),
    ])
    qs = Quicksand(spec)
    print(f"cluster: {qs}")

    # -- 2. A sharded map over memory proclets ----------------------------
    kv = qs.sharded_map(name="users")
    for i in range(100):
        kv.put(f"user-{i:03d}", {"score": i}, nbytes=4 * KiB)
    qs.run(until=0.1)  # let the writes (and any shard splits) execute
    value = qs.run(until_event=kv.get("user-042"))
    print(f"users['user-042'] = {value}  "
          f"({kv.shard_count} shard(s), {len(kv)} entries)")

    # -- 3. A compute pool over compute proclets ---------------------------
    pool = qs.compute_pool(name="workers", initial_members=4)

    def job(ctx, task):
        yield ctx.cpu(0.005)             # 5 ms of CPU
        v = yield kv.get(task.key, ctx=ctx)  # location-transparent read
        return v["score"] * 2

    results = [pool.submit(Task(fn=job, key=f"user-{i:03d}"))
               for i in range(10)]
    total = sum(qs.run(until_event=ev) for ev in results)
    print(f"sum of doubled scores 0..9: {total}")

    # -- 4. Migrate a memory proclet between machines ----------------------
    shard = kv.shards[0].ref
    src = shard.machine
    dst = next(m for m in qs.machines if m is not src)
    latency = qs.run(until_event=qs.runtime.migrate(shard, dst))
    print(f"migrated shard {shard.name!r} {src.name} -> {dst.name} "
          f"in {latency * 1e6:.0f} us")

    # Reads still work, transparently, at the new location.
    value = qs.run(until_event=kv.get("user-000"))
    print(f"after migration users['user-000'] = {value}")


if __name__ == "__main__":
    main()
