#!/usr/bin/env python
"""Flat storage: aggregating capacity AND IOPS across machines.

Storage proclets expose ReadObject/WriteObject over per-machine devices;
the flat-storage abstraction hashes objects across all of them, so an
application sees one namespace with the sum of every device's capacity
and IOPS (§3.2, §5 of the paper).

Run:  python examples/flat_storage.py
"""

from repro import (
    ClusterSpec,
    GiB,
    KiB,
    MachineSpec,
    Quicksand,
    StorageSpec,
)


def build(n_machines: int) -> Quicksand:
    return Quicksand(ClusterSpec(machines=[
        MachineSpec(
            name=f"s{i}", cores=4, dram_bytes=2 * GiB,
            storage=StorageSpec(capacity_bytes=32 * GiB, iops=5_000),
        )
        for i in range(n_machines)
    ]))


def timed_io(qs: Quicksand, objects: int = 200) -> float:
    fs = qs.flat_storage(name="blobs")
    writes = [fs.write(f"obj-{i}", 64 * KiB, payload := None)
              for i in range(objects)]
    qs.run(until_event=qs.sim.all_of(writes))
    t0 = qs.sim.now
    reads = [fs.read(f"obj-{i}") for i in range(objects)]
    qs.run(until_event=qs.sim.all_of(reads))
    return qs.sim.now - t0


def main():
    for n in (1, 2, 4):
        qs = build(n)
        elapsed = timed_io(qs)
        fs_capacity = n * 32
        print(f"{n} machine(s): {fs_capacity} GiB total, "
              f"{n * 5000} IOPS aggregate -> "
              f"200 reads in {elapsed * 1e3:.1f} ms (virtual)")
    print("reads speed up with machine count: IOPS aggregate, not just "
          "capacity — the flat-storage claim of §3.2")


if __name__ == "__main__":
    main()
