#!/usr/bin/env python
"""Adaptive compute-proclet scaling against shifting GPU availability.

Recreates the paper's Fig. 3 scenario as an example: a streaming
preprocessing pool feeds emulated GPUs whose availability flips between
4 and 8 every 200 ms.  The Quicksand autoscaler splits/merges compute
proclets to track consumption, keeping the GPUs saturated without
wasting CPU.

Run:  python examples/gpu_autoscaling.py
"""

from repro import (
    ClusterSpec,
    GiB,
    GpuSpec,
    MachineSpec,
    Quicksand,
    QuicksandConfig,
)
from repro.apps.dnn import GpuAvailabilityDriver, StreamingPipeline
from repro.units import MS


def main():
    qs = Quicksand(
        ClusterSpec(machines=[
            MachineSpec(name="cpu0", cores=16, dram_bytes=8 * GiB),
            MachineSpec(name="cpu1", cores=16, dram_bytes=8 * GiB),
            MachineSpec(name="gpubox", cores=8, dram_bytes=8 * GiB,
                        gpus=GpuSpec(count=8, batch_time=10 * MS)),
        ]),
        config=QuicksandConfig(enable_global_scheduler=False),
    )
    gpubox = qs.machine("gpubox")
    pipeline = StreamingPipeline(qs, gpubox, cpu_per_batch=10 * MS,
                                 initial_members=8, max_members=16)
    driver = GpuAvailabilityDriver(gpubox, low=4, high=8, period=200 * MS)
    pipeline.start()
    driver.start()

    qs.run(until=1.0)
    driver.stop()
    pipeline.stop()

    print("GPU toggles and compute-proclet counts:")
    trace = pipeline.preprocess.autoscaler.member_count_series()
    for toggle_t, level in driver.toggle_times:
        # sample the member count shortly after each toggle settles
        after = [v for t, v in trace if t > toggle_t + 20 * MS]
        settled = after[0] if after else trace[-1][1]
        print(f"  t={toggle_t * 1e3:6.0f} ms  GPUs={level}  "
              f"compute proclets (20 ms later) = {settled}")
    print(f"batches trained: {pipeline.trainer.batches_trained}")
    print(f"splits: {qs.splits}, merges: {qs.merges}")


if __name__ == "__main__":
    main()
