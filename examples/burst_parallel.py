#!/usr/bin/env python
"""Burst parallelism: scale a job from 1 to every core in milliseconds.

The paper cites burst-parallel training [43] as a workload that needs
exactly this: short jobs that want the whole cluster *right now* and
nothing a moment later.  Compute-proclet splits are cheap enough to
harness four machines' worth of cores in a few milliseconds, run the
burst, and merge back down.

Run:  python examples/burst_parallel.py
"""

from repro import ClusterSpec, GiB, MachineSpec, Quicksand, Task
from repro.units import MS


def main():
    qs = Quicksand(ClusterSpec(machines=[
        MachineSpec(name=f"m{i}", cores=16, dram_bytes=8 * GiB)
        for i in range(4)
    ]))

    pool = qs.compute_pool(name="burst", parallelism=4, initial_members=1)

    # The burst: 256 tasks of 10 ms each = 2.56 CPU-seconds.
    # On one 4-thread member: ~640 ms.  On 64 cores: ~40 ms.
    tasks = [Task(work=10 * MS, done=qs.sim.event()) for _ in range(256)]
    t0 = qs.sim.now
    for t in tasks:
        pool.submit(t)

    # Scale out aggressively until the cluster says no (§3.3's rule:
    # split only while there is idle CPU somewhere).
    grow_t0 = qs.sim.now
    while pool.grow(4):
        qs.run(until=qs.sim.now + 1 * MS)
    qs.run(until=qs.sim.now + 2 * MS)
    scale_out_time = qs.sim.now - grow_t0
    peak_members = pool.size

    qs.run(until_event=qs.sim.all_of([t.done for t in tasks]))
    burst_time = qs.sim.now - t0

    # Scale back in: the burst is over, release the cores.
    pool.shrink(pool.size - 1)
    qs.run(until=qs.sim.now + 5 * MS)

    ideal = 256 * 10 * MS / 64  # perfectly parallel on 64 cores
    print(f"cluster: 4 machines x 16 cores")
    print(f"scaled 1 -> {peak_members} compute proclets "
          f"in {scale_out_time * 1e3:.1f} ms")
    print(f"burst of 2.56 CPU-seconds finished in "
          f"{burst_time * 1e3:.1f} ms "
          f"(ideal on 64 cores: {ideal * 1e3:.1f} ms)")
    print(f"after shrink: {pool.size} member(s), "
          f"{qs.splits} splits / {qs.merges} merges total")


if __name__ == "__main__":
    main()
