"""Ablation benchmarks for the design choices DESIGN.md calls out.

Each test regenerates one ablation and asserts its shape; see
DESIGN.md §3 for the mapping to paper claims.
"""

from repro.experiments.ablations import (
    run_hybrid_ablation,
    run_migration_granularity,
    run_prefetch_ablation,
    run_split_ablation,
    run_two_level_ablation,
)
from repro.units import KiB, MS, MiB

from .conftest import record_report


def test_prefetch_ablation(benchmark):
    """ABL-PREFETCH: iterator prefetching hides remote access (§4)."""
    result = benchmark.pedantic(run_prefetch_ablation, rounds=1,
                                iterations=1)
    assert result.slowdown > 1.3, (
        f"sync element reads should hurt; got {result.slowdown:.2f}x"
    )
    record_report(
        "ABL-PREFETCH",
        f"prefetched scan: {result.with_prefetch_s * 1e3:.1f} ms, "
        f"synchronous scan: {result.without_prefetch_s * 1e3:.1f} ms "
        f"-> {result.slowdown:.2f}x slowdown without prefetching",
    )
    benchmark.extra_info["slowdown"] = result.slowdown


def test_migration_granularity(benchmark):
    """ABL-GRAN: migration latency scales with heap size (§3.3)."""
    points = benchmark.pedantic(run_migration_granularity, rounds=1,
                                iterations=1)
    by_size = dict(points)
    # Small proclets: sub-millisecond.  10 MiB: ~1 ms (Nu's number).
    assert by_size[64 * KiB] < 0.5 * MS
    assert by_size[10 * MiB] < 3 * MS
    # Latency is monotonic in heap size and 1 GiB is >50x 1 MiB.
    latencies = [lat for _sz, lat in points]
    assert latencies == sorted(latencies)
    assert by_size[1024 * MiB] > 50 * by_size[1 * MiB]
    record_report(
        "ABL-GRAN",
        "\n".join(f"  heap {sz / MiB:8.2f} MiB -> {lat * 1e3:7.3f} ms"
                  for sz, lat in points),
    )


def test_split_keeps_granularity(benchmark):
    """ABL-SPLIT: the max-shard-size rule bounds migration time (§3.3)."""
    result = benchmark.pedantic(run_split_ablation, rounds=1, iterations=1)
    # With splitting: shards capped near the configured 16 MiB.
    assert result.with_split_max_shard_bytes <= 20 * MiB
    assert result.with_split_migration_s < 3 * MS
    # Without: one shard holds everything and migrates ~10x slower.
    assert result.without_split_shard_bytes > 200 * MiB
    assert (result.without_split_migration_s
            > 5 * result.with_split_migration_s)
    record_report(
        "ABL-SPLIT",
        f"with split rule: biggest shard "
        f"{result.with_split_max_shard_bytes / MiB:.0f} MiB migrates in "
        f"{result.with_split_migration_s * 1e3:.2f} ms; without: "
        f"{result.without_split_shard_bytes / MiB:.0f} MiB in "
        f"{result.without_split_migration_s * 1e3:.2f} ms",
    )


def test_hybrid_proclet_baseline(benchmark):
    """ABL-COUPLED: hybrid proclets strand resources (§2)."""
    result = benchmark.pedantic(run_hybrid_ablation, rounds=1, iterations=1)
    # Hybrid: the CPU-heavy machine runs out of DRAM after a few units,
    # the memory-heavy one out of cores — most units cannot place.
    assert result.hybrid_failed > result.hybrid_placed
    # Decoupled: everything places.
    assert result.decoupled_failed == 0
    assert result.decoupled_placed == 40
    record_report(
        "ABL-COUPLED",
        f"hybrid proclets: {result.hybrid_placed} placed / "
        f"{result.hybrid_failed} stranded; resource proclets: "
        f"{result.decoupled_placed} placed / "
        f"{result.decoupled_failed} stranded",
    )


def test_two_level_scheduling(benchmark):
    """ABL-TWOLEVEL: only the fast local path catches 10 ms bursts (§5)."""
    result = benchmark.pedantic(run_two_level_ablation, rounds=1,
                                iterations=1)
    # Local reactions harvest both machines; the 50 ms global cadence
    # cannot track a 10 ms square wave and does little better than none.
    assert result.local_goodput_cores > 6.0
    assert result.global_only_goodput_cores < 6.0
    assert result.none_goodput_cores < 5.0
    record_report(
        "ABL-TWOLEVEL",
        f"local={result.local_goodput_cores:.2f} cores, "
        f"global-only={result.global_only_goodput_cores:.2f}, "
        f"none={result.none_goodput_cores:.2f}",
    )


def test_signal_ablation_declared_vs_queue(benchmark):
    """ABL-SIGNAL: the §4 'learning of a change in GPU resources' signal
    vs pure queue-side inference.  Declared demand re-equilibrates in a
    few ms; queue signals still adapt (GPUs mostly saturated) but more
    slowly and with dithering — motivating the paper's explicit
    cross-stage signal."""
    from repro.experiments.fig3_gpu_adapt import Fig3Config, run_fig3

    def both():
        declared = run_fig3(Fig3Config(duration=0.9))
        inferred = run_fig3(Fig3Config(duration=0.9,
                                       use_declared_demand=False))
        return declared, inferred

    declared, inferred = benchmark.pedantic(both, rounds=1, iterations=1)
    assert declared.adaptation_success_rate == 1.0
    # Queue-signal control keeps the GPUs mostly fed even if its member
    # count never exactly parks on the target.
    assert inferred.gpu_idle_fraction < 0.35
    assert declared.gpu_idle_fraction < inferred.gpu_idle_fraction + 0.05
    record_report(
        "ABL-SIGNAL",
        f"declared demand: equilibrium p50="
        f"{declared.latency_summary.p50 * 1e3:.1f} ms, GPU idle "
        f"{declared.gpu_idle_fraction * 100:.1f}%; queue signals: GPU "
        f"idle {inferred.gpu_idle_fraction * 100:.1f}%",
    )
