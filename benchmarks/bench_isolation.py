"""EXT-ISOLATION benchmark: harvesting must not hurt the tenant.

Fig. 1's premise, quantified: a HIGH-priority latency-critical service
keeps its tail latency while a fungible filler saturates every leftover
cycle on the same machine.  This is what distinguishes Quicksand-style
harvesting from naive oversubscription.
"""

from repro.apps import FillerApp, LatencyService
from repro.units import US

from .conftest import record_report


def _run(with_filler: bool):
    from .conftest import full_scale  # noqa: F401 (parity of imports)
    from repro import ClusterSpec, GiB, MachineSpec, Quicksand
    from repro import QuicksandConfig

    qs = Quicksand(
        ClusterSpec(machines=[
            MachineSpec(name="m0", cores=8, dram_bytes=4 * GiB),
        ]),
        config=QuicksandConfig(enable_local_scheduler=False,
                               enable_global_scheduler=False,
                               enable_split_merge=False),
    )
    m0 = qs.machines[0]
    svc = LatencyService(m0, arrival_rate=4000.0, service_cpu=500 * US,
                         rng_stream="svc")
    svc.start()
    filler = (FillerApp(qs, proclets=8, work_unit=100 * US, machine=m0)
              if with_filler else None)
    qs.run(until=1.0)
    goodput = filler.goodput_cores(0.2, 1.0) if filler else 0.0
    return svc.latency_summary(), goodput


def test_isolation_under_harvesting(benchmark):
    def both():
        alone, _g = _run(with_filler=False)
        shared, goodput = _run(with_filler=True)
        return alone, shared, goodput

    alone, shared, goodput = benchmark.pedantic(both, rounds=1,
                                                iterations=1)
    # The tenant's tail is (nearly) untouched ...
    assert shared.p99 <= alone.p99 * 1.25 + 50e-6
    assert shared.p50 <= alone.p50 * 1.25 + 50e-6
    # ... while the filler soaks up most of the idle capacity
    # (offered service load is ~2 of 8 cores).
    assert goodput > 4.5
    record_report(
        "EXT-ISOLATION",
        f"service p50/p99 alone: {alone.p50 * 1e6:.0f}/"
        f"{alone.p99 * 1e6:.0f} us; with filler: "
        f"{shared.p50 * 1e6:.0f}/{shared.p99 * 1e6:.0f} us; "
        f"filler harvested {goodput:.1f} of ~6 idle cores",
    )
