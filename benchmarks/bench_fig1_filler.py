"""FIG1 benchmark: filler goodput under anti-phased HIGH bursts.

Regenerates Figure 1.  Shape assertions:
* the fungible filler migrates in well under 1 ms;
* its goodput approaches one full machine (>85% of 8 cores);
* the static baseline is pinned near 50%;
* fungible/static ratio is ~2x.
"""

from repro.experiments.fig1_filler import Fig1Config, run_fig1, report
from repro.units import MS

from .conftest import record_report

_DURATION = 100 * MS


def _fungible():
    return run_fig1(Fig1Config(fungible=True, duration=_DURATION))


def _static():
    return run_fig1(Fig1Config(fungible=False, duration=_DURATION))


def test_fig1_fungible_filler(benchmark):
    result = benchmark.pedantic(_fungible, rounds=1, iterations=1)
    # Migration latency: the paper's "<1 ms between machines".
    assert result.migrations > 0
    assert result.migration_latency.p99 < 1 * MS
    # Goodput: nearly one whole machine's worth, continuously.
    assert result.goodput_fraction_of_one_machine > 0.85
    benchmark.extra_info["goodput_cores"] = result.mean_goodput_cores
    benchmark.extra_info["migration_p50_ms"] = \
        result.migration_latency.p50 * 1e3


def test_fig1_static_baseline(benchmark):
    """ABL-STATIC: the classic cloud leaves ~50% idle (§2)."""
    result = benchmark.pedantic(_static, rounds=1, iterations=1)
    assert result.migrations == 0
    assert 0.40 < result.goodput_fraction_of_one_machine < 0.60
    benchmark.extra_info["goodput_cores"] = result.mean_goodput_cores


def test_fig1_fungible_vs_static(benchmark):
    def both():
        return _fungible(), _static()

    fungible, static = benchmark.pedantic(both, rounds=1, iterations=1)
    ratio = fungible.mean_goodput_cores / static.mean_goodput_cores
    assert ratio > 1.6, f"fungibility should ~double goodput, got {ratio:.2f}x"
    record_report("FIG1", report(fungible, static))
    benchmark.extra_info["fungible_over_static"] = ratio


def test_fig1_seed_robustness(benchmark):
    """The Fig. 1 shape must not depend on the seed."""

    def run_seeds():
        out = []
        for seed in (0, 1, 2):
            f = run_fig1(Fig1Config(fungible=True, duration=60 * MS,
                                    seed=seed))
            s = run_fig1(Fig1Config(fungible=False, duration=60 * MS,
                                    seed=seed))
            out.append((f.mean_goodput_cores, s.mean_goodput_cores))
        return out

    results = benchmark.pedantic(run_seeds, rounds=1, iterations=1)
    for fungible, static in results:
        assert fungible > 1.6 * static
