"""EXEC benchmark: parallel fan-out + result cache acceptance checks.

Pytest half: the unchanged-grid warm cache must serve >= 90% of cells
from disk (it serves 100%), and a parallel execution of the sweep grid
must be digest-identical to the serial one.

``python benchmarks/bench_exec.py`` half: measures the sweep wall time
at --jobs 1 vs --jobs 4 (reps interleaved so machine-load drift hits
both settings equally) and writes ``BENCH_exec.json`` with the core
count and methodology alongside the numbers.  The >= 2.5x speedup bar
only applies on machines with >= 4 cores; below 2 cores no speedup
verdict is recorded at all — only wall times and digest equality.
"""

import json
import os
import time

from repro.exec import ResultCache, run_specs
from repro.experiments.sweep_burst import build_specs, run_sweep_exec
from repro.units import MS

try:
    from .conftest import record_report
except ImportError:  # running as a script: python benchmarks/bench_exec.py
    def record_report(title: str, body: str) -> None:
        print(f"\n===== {title} =====\n{body}")

_BURSTS = [0.5 * MS, 1 * MS, 2 * MS, 5 * MS]


def test_warm_cache_skips_unchanged_grid(tmp_path, benchmark):
    specs = build_specs(bursts=_BURSTS, periods_per_run=6)
    cache = ResultCache(str(tmp_path / "cache"))
    cold = run_specs(specs, jobs=1, cache=cache)
    assert cold.misses == len(specs)

    warm = benchmark.pedantic(
        run_specs, args=(specs,), kwargs={"jobs": 1, "cache": cache},
        rounds=1, iterations=1,
    )
    assert warm.hit_rate >= 0.90
    assert warm.misses == 0
    assert warm.digest() == cold.digest()
    assert warm.wall_s < cold.wall_s
    record_report("EXEC-CACHE", (
        f"cold: {cold.misses} misses in {cold.wall_s:.2f}s\n"
        f"warm: {warm.hits}/{len(specs)} hits "
        f"({warm.hit_rate:.0%}) in {warm.wall_s:.2f}s"))


def test_parallel_sweep_digest_matches_serial(benchmark):
    kwargs = {"bursts": _BURSTS, "periods_per_run": 6}
    _points, serial = run_sweep_exec(jobs=1, **kwargs)
    _points, parallel = benchmark.pedantic(
        run_sweep_exec, kwargs=dict(kwargs, jobs=2), rounds=1, iterations=1,
    )
    assert parallel.digest() == serial.digest()
    assert parallel.kernel_totals() == serial.kernel_totals()
    record_report("EXEC-EQUIV", (
        f"serial digest   {serial.digest()[:16]}…\n"
        f"parallel digest {parallel.digest()[:16]}… (jobs=2, identical)"))


def main() -> None:  # pragma: no cover - measurement entry point
    cores = os.cpu_count() or 1
    kwargs = {"periods_per_run": 12}
    out = {
        "cores": cores,
        "bursts_ms": [b * 1e3 for b in _BURSTS],
        "methodology": (
            "3 reps per jobs setting, interleaved (1,4,1,4,...) so load "
            "drift hits both equally; wall_s is best-of-3; speedup verdict "
            "skipped when cores < 2 (a single-core box cannot measure "
            "parallel speedup, only digest equality)"),
    }
    best = {1: float("inf"), 4: float("inf")}
    digest = {}
    for _ in range(3):
        for jobs in (1, 4):
            t0 = time.perf_counter()
            _points, rep = run_sweep_exec(jobs=jobs, **kwargs)
            best[jobs] = min(best[jobs], time.perf_counter() - t0)
            digest[jobs] = rep.digest()
    for jobs in (1, 4):
        out[f"jobs{jobs}_wall_s"] = round(best[jobs], 3)
        out[f"jobs{jobs}_digest"] = digest[jobs]
        print(f"jobs={jobs}: {best[jobs]:.2f}s  digest={digest[jobs][:16]}…")
    assert out["jobs1_digest"] == out["jobs4_digest"], \
        "parallel sweep diverged from serial"
    if cores < 2:
        out["speedup"] = None
        out["speedup_verdict"] = f"skipped: {cores} core(s) < 2"
        print(f"(speedup verdict skipped on {cores} core(s): wall times "
              "recorded, digests checked)")
    else:
        out["speedup"] = round(out["jobs1_wall_s"] / out["jobs4_wall_s"], 2)
        print(f"speedup: {out['speedup']}x on {cores} cores")
        if cores >= 4:
            assert out["speedup"] >= 2.5, \
                f"expected >=2.5x on {cores} cores, got {out['speedup']}x"
            out["speedup_verdict"] = "ok (>=2.5x bar on >=4 cores)"
        else:
            out["speedup_verdict"] = (
                f"recorded as-is ({cores} cores: 2.5x bar needs >=4)")
    path = os.path.join(os.path.dirname(__file__), "..", "BENCH_exec.json")
    with open(os.path.abspath(path), "w") as fh:
        json.dump(out, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {os.path.abspath(path)}")


if __name__ == "__main__":  # pragma: no cover
    main()
