"""EXEC benchmark: parallel fan-out + result cache acceptance checks.

Pytest half: the unchanged-grid warm cache must serve >= 90% of cells
from disk (it serves 100%), and a parallel execution of the sweep grid
must be digest-identical to the serial one.

``python benchmarks/bench_exec.py`` half: measures the sweep wall time
at --jobs 1 vs --jobs 4 and writes ``BENCH_exec.json``.  The >= 2.5x
speedup bar only applies on machines with >= 4 cores — a single-core
runner records its honest (~1x) number and the assertion is skipped.
"""

import json
import os
import time

from repro.exec import ResultCache, run_specs
from repro.experiments.sweep_burst import build_specs, run_sweep_exec
from repro.units import MS

try:
    from .conftest import record_report
except ImportError:  # running as a script: python benchmarks/bench_exec.py
    def record_report(title: str, body: str) -> None:
        print(f"\n===== {title} =====\n{body}")

_BURSTS = [0.5 * MS, 1 * MS, 2 * MS, 5 * MS]


def test_warm_cache_skips_unchanged_grid(tmp_path, benchmark):
    specs = build_specs(bursts=_BURSTS, periods_per_run=6)
    cache = ResultCache(str(tmp_path / "cache"))
    cold = run_specs(specs, jobs=1, cache=cache)
    assert cold.misses == len(specs)

    warm = benchmark.pedantic(
        run_specs, args=(specs,), kwargs={"jobs": 1, "cache": cache},
        rounds=1, iterations=1,
    )
    assert warm.hit_rate >= 0.90
    assert warm.misses == 0
    assert warm.digest() == cold.digest()
    assert warm.wall_s < cold.wall_s
    record_report("EXEC-CACHE", (
        f"cold: {cold.misses} misses in {cold.wall_s:.2f}s\n"
        f"warm: {warm.hits}/{len(specs)} hits "
        f"({warm.hit_rate:.0%}) in {warm.wall_s:.2f}s"))


def test_parallel_sweep_digest_matches_serial(benchmark):
    kwargs = {"bursts": _BURSTS, "periods_per_run": 6}
    _points, serial = run_sweep_exec(jobs=1, **kwargs)
    _points, parallel = benchmark.pedantic(
        run_sweep_exec, kwargs=dict(kwargs, jobs=2), rounds=1, iterations=1,
    )
    assert parallel.digest() == serial.digest()
    assert parallel.kernel_totals() == serial.kernel_totals()
    record_report("EXEC-EQUIV", (
        f"serial digest   {serial.digest()[:16]}…\n"
        f"parallel digest {parallel.digest()[:16]}… (jobs=2, identical)"))


def main() -> None:  # pragma: no cover - measurement entry point
    cores = os.cpu_count() or 1
    kwargs = {"periods_per_run": 12}
    out = {"cores": cores, "bursts_ms": [b * 1e3 for b in _BURSTS]}
    for jobs in (1, 4):
        best = float("inf")
        digest = None
        for _ in range(3):
            t0 = time.perf_counter()
            _points, rep = run_sweep_exec(jobs=jobs, **kwargs)
            best = min(best, time.perf_counter() - t0)
            digest = rep.digest()
        out[f"jobs{jobs}_wall_s"] = round(best, 3)
        out[f"jobs{jobs}_digest"] = digest
        print(f"jobs={jobs}: {best:.2f}s  digest={digest[:16]}…")
    out["speedup"] = round(out["jobs1_wall_s"] / out["jobs4_wall_s"], 2)
    assert out["jobs1_digest"] == out["jobs4_digest"], \
        "parallel sweep diverged from serial"
    print(f"speedup: {out['speedup']}x on {cores} cores")
    if cores >= 4:
        assert out["speedup"] >= 2.5, \
            f"expected >=2.5x on {cores} cores, got {out['speedup']}x"
    else:
        print("(<4 cores: speedup bar not applicable, recording as-is)")
    path = os.path.join(os.path.dirname(__file__), "..", "BENCH_exec.json")
    with open(os.path.abspath(path), "w") as fh:
        json.dump(out, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {os.path.abspath(path)}")


if __name__ == "__main__":  # pragma: no cover
    main()
