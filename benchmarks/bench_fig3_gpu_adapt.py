"""FIG3 benchmark: adapting to GPU availability in ~10 ms.

Regenerates Figure 3: GPUs alternate 4 <-> 8 every 200 ms; the compute
autoscaler splits/merges preprocessing proclets to track consumption.

Shape assertions:
* every toggle re-equilibrates (100% adaptation success);
* equilibria are reached in the paper's "tens of milliseconds" regime
  (p90 < 20 ms; the paper reports 10-15 ms, our splits are cheaper);
* the proclet count actually alternates between the two targets;
* GPUs stay saturated (idle fraction < 10%).
"""

from repro.experiments.fig3_gpu_adapt import Fig3Config, report, run_fig3
from repro.units import MS


def _run():
    return run_fig3(Fig3Config(duration=1.2))


def test_fig3_gpu_adaptation(benchmark):
    from .conftest import record_report

    result = benchmark.pedantic(_run, rounds=1, iterations=1)

    assert result.adaptation_success_rate == 1.0
    summary = result.latency_summary
    assert summary.count >= 4
    assert summary.p90 < 20 * MS, (
        f"equilibrium p90 {summary.p90 * 1e3:.1f} ms; paper reports 10-15"
    )
    # Proclet count visits both equilibria (4 and 8 with the defaults).
    counts = {v for _t, v in result.member_trace}
    cfg = result.config
    assert int(cfg.gpu_low * cfg.members_per_gpu) in counts
    assert int(cfg.gpu_high * cfg.members_per_gpu) in counts
    # GPU saturation (the point of the exercise).
    assert result.gpu_idle_fraction < 0.10
    assert result.batches_trained > 0

    record_report("FIG3", report(result))
    benchmark.extra_info["equilibrium_p50_ms"] = summary.p50 * 1e3
    benchmark.extra_info["gpu_idle_fraction"] = result.gpu_idle_fraction


def test_fig3_no_autoscaling_starves_gpus(benchmark):
    """Counterfactual: freeze the pool at the low-GPU size; the 8-GPU
    phases must then starve (idle fraction far above the adaptive run)."""
    from repro.apps.dnn import GpuAvailabilityDriver, StreamingPipeline
    from repro.cluster import ClusterSpec, GpuSpec, MachineSpec
    from repro.core import Quicksand, QuicksandConfig
    from repro.units import GiB

    def run_frozen():
        qs = Quicksand(ClusterSpec(machines=[
            MachineSpec(name="cpu0", cores=16, dram_bytes=8 * GiB),
            MachineSpec(name="cpu1", cores=16, dram_bytes=8 * GiB),
            MachineSpec(name="gpubox", cores=8, dram_bytes=8 * GiB,
                        gpus=GpuSpec(count=8, batch_time=10 * MS)),
        ]), config=QuicksandConfig(enable_global_scheduler=False))
        gpubox = qs.machine("gpubox")
        pipeline = StreamingPipeline(qs, gpubox, cpu_per_batch=10 * MS,
                                     initial_members=4, max_members=4)
        pipeline.preprocess.autoscaler.stop()  # freeze at 4 members
        driver = GpuAvailabilityDriver(gpubox, low=4, high=8,
                                       period=200 * MS)
        pipeline.start()
        driver.start()
        t0 = qs.sim.now
        qs.run(until=t0 + 1.2)
        trained = pipeline.trainer.batches_trained
        # available gpu-seconds over alternating 8/4 phases
        capacity = 1.2 * (8 + 4) / 2 * (1 / (10 * MS)) * (10 * MS)
        return trained, trained * (10 * MS) / (1.2 * 6)

    trained, utilization = benchmark.pedantic(run_frozen, rounds=1,
                                              iterations=1)
    # 4 producers can feed at most 400 batches/s against a mean
    # consumption capacity of 600/s -> utilization near 2/3.
    assert utilization < 0.75
    benchmark.extra_info["frozen_utilization"] = utilization


def test_fig3_seed_robustness(benchmark):
    """Adaptation succeeds for every seed, not just the default."""

    def run_seeds():
        return [run_fig3(Fig3Config(duration=0.85, seed=seed))
                for seed in (1, 2)]

    results = benchmark.pedantic(run_seeds, rounds=1, iterations=1)
    for result in results:
        assert result.adaptation_success_rate == 1.0
        assert result.latency_summary.p90 < 20 * MS
