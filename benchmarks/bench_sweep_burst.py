"""EXT-SWEEP benchmark: fungibility gain vs burst period.

An extension beyond the paper's figures probing its headline claim
("resources transiently available for only a few milliseconds").
Shape assertions: near-2x gain at 10 ms bursts, monotone degradation as
the idle window shrinks toward the migration latency, and near-parity
when the window is only ~2x the migration time.
"""

from repro.experiments.sweep_burst import report, run_sweep
from repro.units import MS

from .conftest import record_report


def test_burst_period_sweep(benchmark):
    points = benchmark.pedantic(
        run_sweep,
        kwargs={"bursts": [0.5 * MS, 1 * MS, 2 * MS, 10 * MS],
                "periods_per_run": 10},
        rounds=1, iterations=1,
    )
    by_burst = {p.burst: p for p in points}
    # Long windows: the paper's ~2x.
    assert by_burst[10 * MS].gain > 1.8
    # Gains degrade monotonically as windows shrink.
    gains = [p.gain for p in sorted(points, key=lambda p: p.burst)]
    assert gains == sorted(gains)
    # At 0.5 ms windows (~2x the migration latency) the gain nearly
    # vanishes: the crossover where harvesting stops paying.
    assert by_burst[0.5 * MS].gain < 1.25
    record_report("EXT-SWEEP", report(points))
