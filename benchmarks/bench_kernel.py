"""Microbenchmarks for the DES/fluid kernel hot path.

Unlike the ``bench_fig*`` suites (which reproduce paper figures), this
file measures the *simulator itself*: how many events per second the
kernel sustains under the access patterns every experiment funnels
through — bursty submit/cancel churn, many-flow fair sharing, deep
priority stacks, and timer storms that stress the event heap.

Run directly::

    PYTHONPATH=src python benchmarks/bench_kernel.py [--quick] \
        [--json OUT.json] [--check BENCH_kernel.json]

``--check`` compares the measured events/sec against the committed
baseline (the ``after.quick`` section of ``BENCH_kernel.json``) and
exits non-zero on a regression beyond ``--tolerance`` (default 20%),
which is how CI gates kernel performance.

Only public scheduler/simulator API is used, so the suite runs
unchanged against older kernels — that is how the ``before`` numbers
in ``BENCH_kernel.json`` were captured.  (``parallel-sweep`` is the one
exception: it measures ``repro.exec`` itself and is skipped, not
failed, on kernels that predate it.)
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from collections import deque

from repro.sim import FluidScheduler, Simulator


def _heap_stats(sim: Simulator) -> dict:
    """Heap diagnostics, tolerating kernels that predate them."""
    stats = getattr(sim, "heap_stats", None)
    if callable(stats):
        return stats()
    return {"queued": len(sim._queue), "dead_entries": 0, "compactions": 0}


# ---------------------------------------------------------------------------
# Scenarios.  Each returns (ops, sim) where *ops* counts the scheduler
# mutations the scenario issued (the "useful work" denominator).
# ---------------------------------------------------------------------------

def _run_churn(quick: bool, traced: bool):
    """Bursty submit/cancel against a large standing population.

    Models proclet thread churn on a busy machine: every virtual
    instant a batch of high-priority items arrives and another batch is
    cancelled, on top of ~1.5k long-lived background holds.  This is
    the pattern the coalesced-reassignment path exists for.

    With ``traced`` a ``repro.obs`` span tracer is attached, so the
    scenario pays the *enabled*-path recording cost; without it the
    instrumentation sites take the disabled fast path (one attribute
    read + branch), which is what the 5% churn CI gate pins.
    """
    rounds = 40 if quick else 120
    batch = 32
    background = 1500
    sim = Simulator(seed=7)
    if traced:
        # Tolerate older kernels without repro.obs (the suite must run
        # unchanged against them to capture "before" numbers).
        try:
            from repro.obs import SpanTracer
        except ImportError:
            pass
        else:
            SpanTracer(sim, label="bench")
    sched = FluidScheduler(sim, 64.0, name="churn")
    ops = 0

    def driver():
        nonlocal ops
        for i in range(background):
            sched.hold(demand=1.0, priority=1, name=f"bg{i}")
        ops += background
        live = deque()
        for _ in range(rounds):
            for i in range(batch):
                live.append(sched.submit(work=50.0 + i, demand=2.0,
                                         priority=0, name="burst"))
            ops += batch
            while len(live) > batch // 2:
                it = live.popleft()
                if it.active:
                    sched.cancel(it)
                ops += 1
            yield sim.timeout(0.001)

    sim.process(driver())
    sim.run(until=1.0)
    return ops, sim


def scenario_churn(quick: bool):
    """Churn with tracing disabled (the default, gated configuration)."""
    return _run_churn(quick, traced=False)


def scenario_tracedchurn(quick: bool):
    """Churn with a span tracer attached: the enabled-path overhead."""
    return _run_churn(quick, traced=True)


def scenario_fairshare(quick: bool):
    """Waves of flows fair-sharing one capacity, with aggregate pollers.

    Models a NIC under heavy transfer load: arrivals come in bursts at
    one instant, completions rebalance everyone, and placement-style
    pollers read ``load``/``free_capacity`` far more often than rates
    change.  Tightened alongside the hot-loop pass: two pollers (one
    per placement tier) on a faster cadence and larger waves, so the
    dispatch loop — not the mutation rate — dominates.  Widened again
    with the vector core: each completion rebalances the whole wave,
    so per-item recompute cost is what this gate pins now.
    """
    waves = 6 if quick else 16
    per_wave = 320
    sim = Simulator(seed=11)
    sched = FluidScheduler(sim, 100.0, name="fair")
    ops = 0

    def poller(priority: int, period: float):
        acc = 0.0
        while True:
            acc += sched.load + sched.free_capacity(priority=priority)
            yield sim.timeout(period)

    def driver():
        nonlocal ops
        rng = sim.random.stream("fair")
        for w in range(waves):
            items = []
            for i in range(per_wave):
                items.append(sched.submit(
                    work=0.5 + rng.random() * 2.0,
                    demand=0.5 + rng.random() * 3.0,
                    priority=1, name=f"w{w}.{i}"))
            ops += per_wave
            # Let roughly half the wave drain before the next burst.
            yield items[per_wave // 2].done

    sim.process(poller(1, 0.0003))
    sim.process(poller(2, 0.0005))
    p = sim.process(driver())
    sim.run(until_event=p)
    sim.run(until=sim.now + 2.0)
    return ops, sim


def scenario_priostack(quick: bool):
    """Deep strict-priority stacks with preemption waves.

    A 12-level priority stack of holds; a priority-0 antagonist toggles
    on and off, rippling rate changes down the stack, while a local
    scheduler-style reader queries ``free_capacity`` at every level.
    """
    rounds = 60 if quick else 200
    levels = 12
    per_level = 40
    sim = Simulator(seed=13)
    sched = FluidScheduler(sim, 48.0, name="prio")
    ops = 0

    def driver():
        nonlocal ops
        for p in range(levels):
            for i in range(per_level):
                sched.hold(demand=0.25, priority=p + 1, name=f"p{p}.{i}")
        ops += levels * per_level
        probe = 0.0
        for _ in range(rounds):
            antagonist = sched.hold(demand=48.0, priority=0, name="ant")
            ops += 1
            yield sim.timeout(0.0002)
            for p in range(levels + 1):
                probe += sched.free_capacity(priority=p)
            sched.cancel(antagonist)
            ops += 1
            yield sim.timeout(0.0002)

    p = sim.process(driver())
    sim.run(until_event=p)
    return ops, sim


def scenario_timerstorm(quick: bool):
    """Completion-timer storms: superseded timers must not bloat the heap.

    Long flows whose rates are perturbed every 100µs by capacity jitter
    — each perturbation supersedes the pending completion timer.  A
    short-lived pulse item keeps real completions interleaved.  The
    flow count is sized so each perturbation's water-fill over the
    class — not the timer traffic — is the dominant cost.
    """
    rounds = 1500 if quick else 5000
    flows = 250
    sim = Simulator(seed=17)
    sched = FluidScheduler(sim, 10.0, name="storm")
    ops = 0

    def driver():
        nonlocal ops
        for i in range(flows):
            sched.submit(work=1.0e5, demand=1.0, priority=1, name=f"f{i}")
        ops += flows
        pulse = sched.submit(work=0.002, demand=4.0, priority=0, name="pulse")
        ops += 1
        for r in range(rounds):
            sched.set_capacity(9.5 if r % 2 else 10.0)
            ops += 1
            if pulse.done.triggered:
                pulse = sched.submit(work=0.002, demand=4.0, priority=0,
                                     name="pulse")
                ops += 1
            yield sim.timeout(0.0001)

    p = sim.process(driver())
    sim.run(until_event=p)
    return ops, sim


def scenario_heartbeats(quick: bool):
    """The heartbeat era: 1000 machines' probe loops plus churn.

    A failure detector heartbeats a 1000-machine fleet every 2 ms while
    a rolling failure walks machines through suspected -> dead ->
    restored and a steady trickle of applications keeps arriving.  The
    virtual timeline is almost all steady state — every probe round but
    the one watching the currently-down machine answers "still fine" —
    which is exactly what the incremental control plane prices: the
    detector's watch set makes the no-news round O(down machines)
    instead of O(fleet), the machine index answers each arrival's
    placement argmax and the churn loop's eligible-machine listing
    without linear scans, and the probe/ack timers live in the timer
    wheel.  The per-machine local schedulers and the global rebalancer
    are switched off so those subsystems' (kernel-independent) stat
    sweeps don't drown the paths under measurement.  Uses only public
    Quicksand API, so it runs unchanged on kernels that predate all
    three.
    """
    from repro import (ClusterSpec, GiB, MachineSpec, Quicksand,
                       QuicksandConfig)

    machines = 250 if quick else 1000
    seconds = 0.8 if quick else 3.0
    spec = ClusterSpec(machines=[
        MachineSpec(name=f"hb{i}", cores=float(8 << (i % 4)),
                    dram_bytes=float((2 << (i % 4)) * GiB))
        for i in range(machines)])
    qs = Quicksand(spec, QuicksandConfig(enable_local_scheduler=False,
                                         enable_global_scheduler=False,
                                         enable_split_merge=False))
    qs.enable_recovery()
    sim = qs.sim
    ops = 0

    def churn():
        # One machine down at a time, held past confirmation so the
        # detector walks the full ALIVE -> SUSPECTED -> DEAD -> ALIVE
        # cycle; 37 is coprime to the fleet sizes, so failures roll
        # across the whole fleet instead of revisiting a clique.
        nonlocal ops
        k = 0
        while True:
            machine = qs.cluster.machines[(k * 37) % machines]
            qs.runtime.fail_machine(machine)
            ops += 1
            yield sim.timeout(0.012)
            qs.runtime.restore_machine(machine)
            ops += 1
            qs.eligible_machines()
            ops += 1
            k += 1
            yield sim.timeout(0.008)

    def arrivals():
        nonlocal ops
        while True:
            qs.spawn_memory()
            ops += 1
            yield sim.timeout(0.005)

    sim.process(churn())
    sim.process(arrivals())
    sim.run(until=seconds)
    return ops, sim


def scenario_thousand_machines(quick: bool):
    """Placement churn at cluster scale.

    Spawns and destroys proclets against a heterogeneous cluster (the
    capacity spread keeps the load buckets populated the way a mixed
    fleet's are) while the global scheduler rebalances on its normal
    cadence.  Prices the control-plane scan paths — placement argmax,
    eligible-machine listing, planned-demand accounting — which the
    machine index turns from O(machines) linear scans into bucketed
    lookups.  Uses only public Quicksand API, so it runs unchanged on
    kernels that predate the index.
    """
    from repro import ClusterSpec, GiB, MachineSpec, Quicksand

    machines = 250 if quick else 1000
    rounds = 24 if quick else 48
    spec = ClusterSpec(machines=[
        MachineSpec(name=f"m{i}", cores=float(8 << (i % 4)),
                    dram_bytes=float((2 << (i % 4)) * GiB))
        for i in range(machines)])
    qs = Quicksand(spec)
    sim = qs.sim
    ops = 0

    def driver():
        nonlocal ops
        live = deque()
        for _ in range(rounds):
            for _ in range(6):
                live.append(qs.spawn_memory())
                ops += 1
            for _ in range(2):
                live.append(qs.spawn_compute(parallelism=2))
                ops += 1
            while len(live) > 48:
                qs.runtime.destroy(live.popleft())
                ops += 1
            qs.eligible_machines()
            ops += 1
            yield sim.timeout(0.002)

    p = sim.process(driver())
    sim.run(until_event=p)
    return ops, sim


def scenario_serving(quick: bool):
    """Multi-tenant serving at fleet scale: the tenant-aware scheduler's
    placement rounds at 250 (quick) / 1000 (full) machines.

    Every 20 ms round re-estimates per-tenant demand, water-fills the
    cluster, scales replica fleets through normal placement, and picks
    a migration off the machine index's bucketed ratio extremes — the
    exact control-plane path the serving experiment drives at 24
    machines, here priced at datacenter scale.  The request plane is
    held CONSTANT across scales (same tenants, same rates, long
    service times), so the quick (250 machines) vs full (1000)
    events/sec ratio isolates how round cost scales with fleet size:
    bucketed queries keep it near flat, while a linear per-round fleet
    scan would collapse it ~4x.  Skipped (ImportError) on kernels
    predating the serving scenario.
    """
    from repro.apps import ServingScenario, TenantSpec, TraceSpec

    machines = 250 if quick else 1000
    seconds = 0.5 if quick else 0.8
    n_tenants = 8
    service_mean = 0.05
    # ~30% of the QUICK cluster's capacity regardless of scale: the
    # full run adds machines, not load, so wall cost differences come
    # from the control plane.
    capacity = 250 * 2.0
    rate = 0.3 * capacity / (n_tenants * service_mean)
    tenants = tuple(
        TenantSpec(name=f"t{i}",
                   trace=TraceSpec(base_rate=rate, amplitude=0.8,
                                   phase=i / n_tenants),
                   service_mean=service_mean, slo_deadline=1.0,
                   weight=2.0 if i % 2 == 0 else 1.0)
        for i in range(n_tenants))
    scenario = ServingScenario(tenants, machines=machines, cores=2.0,
                               mode="fungible", seed=29,
                               duration=seconds, warmup=0.1)
    scenario.run()
    sched = scenario.scheduler
    ops = (sum(t.offered for t in scenario.tenants) + sched.rounds
           + sched.scale_ups + sched.scale_downs + sched.migrations)
    return ops, scenario.qs.sim


class _ExecStats:
    """Adapts an exec-engine report to the (ops, sim)-shaped harness:
    merged worker kernel counters stand in for one simulator's."""

    def __init__(self, report):
        self._totals = report.kernel_totals()
        self.processed_events = self._totals["events"]

    def heap_stats(self):
        return {
            "queued": 0,
            "dead_entries": 0,
            "compactions": self._totals["compactions"],
            "cancellations": self._totals["cancellations"],
            "tombstones_popped": self._totals["tombstones_popped"],
        }


def scenario_parallel_sweep(quick: bool):
    """A run grid fanned out through ``repro.exec``: measures the
    end-to-end events/sec of parallel execution itself — worker spawn,
    spec dispatch, result pickling — over miniature churn runs.

    Skipped (raises ImportError) on kernels that predate repro.exec;
    `--check` only gates scenarios present in the committed baseline.
    """
    from repro.exec import RunSpec, derive_seed, run_specs
    from repro.exec.tasks import kernel_churn_task

    cells = 6 if quick else 16
    rounds = 25 if quick else 50
    specs = [
        RunSpec(kernel_churn_task,
                {"seed": derive_seed(23, f"bench.cell{i}"),
                 "rounds": rounds},
                name=f"bench.cell{i}")
        for i in range(cells)
    ]
    report = run_specs(specs, jobs=2)
    return len(specs), _ExecStats(report)


SCENARIOS = {
    "churn": scenario_churn,
    "tracedchurn": scenario_tracedchurn,
    "fairshare": scenario_fairshare,
    "priostack": scenario_priostack,
    "timerstorm": scenario_timerstorm,
    "heartbeats": scenario_heartbeats,
    "thousand-machines": scenario_thousand_machines,
    "serving": scenario_serving,
    "parallel-sweep": scenario_parallel_sweep,
}


# ---------------------------------------------------------------------------
# Harness
# ---------------------------------------------------------------------------

def run_scenario(name: str, quick: bool, repeat: int = 1) -> dict:
    """Run *name*, best-of-*repeat* by events/sec.

    Wall-clock on shared machines is noisy in one direction only (load
    spikes slow us down); taking the best of a few repetitions measures
    what the kernel can do, which is the stable quantity a regression
    gate needs.
    """
    fn = SCENARIOS[name]
    best = None
    for _ in range(max(1, repeat)):
        t0 = time.perf_counter()
        ops, sim = fn(quick)
        wall = time.perf_counter() - t0
        events = sim.processed_events
        result = {
            "ops": ops,
            "events": events,
            "wall_s": round(wall, 4),
            "events_per_sec": round(events / wall, 1),
            "ops_per_sec": round(ops / wall, 1),
            "heap": _heap_stats(sim),
        }
        if best is None or result["events_per_sec"] > best["events_per_sec"]:
            best = result
    return best


def run_all(quick: bool, only=None, repeat: int = 1) -> dict:
    out = {}
    for name in SCENARIOS:
        if only and name not in only:
            continue
        try:
            out[name] = run_scenario(name, quick, repeat=repeat)
        except ImportError as exc:
            # parallel-sweep needs repro.exec; older kernels (used to
            # capture "before" numbers) predate it.
            print(f"{name:14s} SKIPPED ({exc})")
            continue
        r = out[name]
        print(f"{name:14s} events={r['events']:>8d} "
              f"wall={r['wall_s']:>8.3f}s "
              f"events/s={r['events_per_sec']:>10.0f} "
              f"ops/s={r['ops_per_sec']:>9.0f} heap={r['heap']}")
    return out


def check_against(results: dict, baseline_path: str, tolerance: float) -> int:
    with open(baseline_path) as fh:
        committed = json.load(fh)
    baseline = committed["after"]["quick"]
    failures = []
    for name, r in results.items():
        ref = baseline.get(name)
        if ref is None:
            continue
        floor = ref["events_per_sec"] * (1.0 - tolerance)
        if r["events_per_sec"] < floor:
            failures.append(
                f"{name}: {r['events_per_sec']:.0f} events/s < "
                f"{floor:.0f} (baseline {ref['events_per_sec']:.0f} "
                f"- {tolerance:.0%})")
    if failures:
        print("KERNEL PERF REGRESSION:")
        for f in failures:
            print("  " + f)
        return 1
    print(f"kernel perf OK (within {tolerance:.0%} of committed baseline)")
    return 0


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help="reduced problem sizes (CI smoke run)")
    ap.add_argument("--json", metavar="PATH",
                    help="write results as JSON to PATH")
    ap.add_argument("--check", metavar="BASELINE",
                    help="compare against committed BENCH_kernel.json")
    ap.add_argument("--tolerance", type=float, default=0.2,
                    help="allowed fractional regression for --check")
    ap.add_argument("--scenario", action="append",
                    help="run only the named scenario (repeatable)")
    ap.add_argument("--repeat", type=int, default=None,
                    help="best-of-N repetitions per scenario "
                         "(default: 3 with --check, else 1)")
    args = ap.parse_args(argv)

    if args.scenario:
        unknown = [s for s in args.scenario if s not in SCENARIOS]
        if unknown:
            ap.error(f"unknown scenario(s): {', '.join(unknown)} "
                     f"(choose from: {', '.join(SCENARIOS)})")
    if args.check and not os.path.exists(args.check):
        ap.error(f"baseline file not found: {args.check}")

    repeat = args.repeat if args.repeat is not None else (
        3 if args.check else 1)
    results = run_all(args.quick, only=args.scenario, repeat=repeat)
    if args.json:
        with open(args.json, "w") as fh:
            json.dump({"quick": args.quick, "scenarios": results}, fh,
                      indent=2, sort_keys=True)
            fh.write("\n")
    if args.check:
        return check_against(results, args.check, args.tolerance)
    return 0


if __name__ == "__main__":
    sys.exit(main())
