"""FIG2 benchmark: combining imbalanced resources across two machines.

Regenerates the Fig. 2 table.  Default runs a 10x-reduced dataset (same
byte/CPU *ratios*, so every relative number is preserved); set
``REPRO_FULL_SCALE=1`` for the paper's exact scale (baseline ≈ 26 s of
virtual time; our full-scale run measured 26.40/26.42/26.44/26.46 s vs
the paper's 26.1/26.4/26.6/26.5 s).

Shape assertions: every imbalanced split lands within 5% of the
single-machine baseline, and placement goes the way §4 describes
(shards to DRAM-rich machines, workers to core-rich machines).
"""

import pytest

from repro.apps.dnn import DatasetSpec
from repro.experiments.fig2_imbalance import (
    PAPER_CONFIGS,
    report,
    run_fig2_config,
)
from repro.units import MiB

from .conftest import full_scale, record_report

_ROWS = {}


def _dataset() -> DatasetSpec:
    if full_scale():
        return DatasetSpec()  # 12k x 1 MiB x 0.1 s = the paper's regime
    return DatasetSpec(count=1200, mean_bytes=1 * MiB, mean_cpu=0.1)


def _ideal_time(dataset: DatasetSpec) -> float:
    return dataset.total_cpu / 46.0


def _run(name):
    machines = dict(PAPER_CONFIGS)[name]
    row = run_fig2_config(name, machines, dataset=_dataset())
    _ROWS[name] = row
    return row


@pytest.mark.parametrize("name", [n for n, _m in PAPER_CONFIGS])
def test_fig2_config(name, benchmark):
    row = benchmark.pedantic(_run, args=(name,), rounds=1, iterations=1)
    ideal = _ideal_time(_dataset())
    # Sanity bound against the perfectly-parallel lower bound; the tight
    # claim (each split within 5% of the measured baseline) is asserted
    # below once all four rows exist.
    assert row.time_s < ideal * 1.15, (
        f"{name}: {row.time_s:.2f}s vs ideal {ideal:.2f}s"
    )
    benchmark.extra_info["preprocess_s"] = row.time_s
    benchmark.extra_info["vs_ideal"] = row.time_s / ideal

    if name == "mem-unbalanced":
        # Nearly all image shards must sit on the 12 GiB machine.
        on_big = row.shard_machines.get("m1", 0)
        assert on_big > 0.9 * sum(row.shard_machines.values())
    if name in ("cpu-unbalanced", "both-unbalanced"):
        # Most workers must sit on the 40-core machine.
        on_beefy = row.worker_machines.get("m1", 0)
        assert on_beefy >= 40
    if name == "both-unbalanced":
        # ... while the data sits on the other one.
        on_memheavy = row.shard_machines.get("m0", 0)
        assert on_memheavy > 0.9 * sum(row.shard_machines.values())

    if len(_ROWS) == len(PAPER_CONFIGS):
        ordered = [_ROWS[n] for n, _m in PAPER_CONFIGS if n in _ROWS]
        record_report("FIG2", report(ordered))
        baseline = _ROWS["baseline"].time_s
        for other in ordered[1:]:
            assert other.time_s < baseline * 1.05, (
                f"{other.name} should match the baseline within 5%"
            )


def test_fig2_four_way_extension(benchmark):
    """EXT-SCALE: the paper splits resources across two machines; the
    mechanism should not care — four-way shattering (one memory-heavy
    6-core node + three CPU nodes with 1 GiB each) must still match."""
    from repro.experiments.fig2_imbalance import FOUR_WAY_CONFIG

    name, machines = FOUR_WAY_CONFIG
    row = benchmark.pedantic(
        run_fig2_config,
        args=(name, machines),
        kwargs={"dataset": _dataset()},
        rounds=1, iterations=1,
    )
    ideal = _ideal_time(_dataset())
    assert row.time_s < ideal * 1.15, (
        f"4-way: {row.time_s:.2f}s vs ideal {ideal:.2f}s"
    )
    # Data concentrates on the memory-heavy node.
    assert row.shard_machines.get("m0", 0) > \
        0.7 * sum(row.shard_machines.values())
    record_report(
        "EXT-SCALE",
        f"4-way split {row.machines}: {row.time_s:.2f}s vs ideal "
        f"{ideal:.2f}s (shards={row.shard_machines}, "
        f"workers={row.worker_machines})",
    )
