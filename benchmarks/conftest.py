"""Benchmark harness configuration.

Every benchmark regenerates one figure/table of the paper (or one
ablation from DESIGN.md) and asserts its *shape* — who wins, by roughly
what factor — rather than absolute numbers.  Summaries print at the end
of the run so `pytest benchmarks/ --benchmark-only` doubles as the
reproduction report.

Set ``REPRO_FULL_SCALE=1`` to run Fig. 2 at the paper's full dataset
size (~12 GiB of synthetic images; a few minutes of wall time) instead
of the 10x-reduced default that preserves every ratio.
"""

import os

import pytest

_REPORT_LINES = []


def record_report(title: str, body: str) -> None:
    _REPORT_LINES.append(f"\n===== {title} =====\n{body}")


def full_scale() -> bool:
    return os.environ.get("REPRO_FULL_SCALE", "") == "1"


@pytest.hookimpl(trylast=True)
def pytest_terminal_summary(terminalreporter):
    if _REPORT_LINES:
        terminalreporter.write_line("")
        terminalreporter.write_line(
            "================ paper reproduction report ================")
        for chunk in _REPORT_LINES:
            for line in chunk.splitlines():
                terminalreporter.write_line(line)
