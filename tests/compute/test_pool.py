"""Tests for the distributed thread pool (ComputePool)."""

import pytest

from repro import Task
from repro.cluster import Priority
from repro.units import MS

from ..conftest import make_qs


@pytest.fixture
def qs():
    return make_qs(enable_local_scheduler=False,
                   enable_global_scheduler=False,
                   enable_split_merge=False)


class TestSubmission:
    def test_run_simple_work(self, qs):
        pool = qs.compute_pool(name="p")
        done = pool.run(0.01)
        qs.sim.run(until_event=done)
        assert pool.total_done == 1

    def test_submit_fn(self, qs):
        pool = qs.compute_pool()
        seen = []

        def fn(ctx, task):
            yield ctx.cpu(0.001)
            seen.append(task.key)
            return "ok"

        result = qs.sim.run(until_event=pool.submit_fn(fn, key="job"))
        assert result == "ok"
        assert seen == ["job"]

    def test_tasks_balance_across_members(self, qs):
        pool = qs.compute_pool(initial_members=2, parallelism=1)
        for _ in range(10):
            pool.run(1.0)
        qs.sim.run(until=0.01)
        queues = [ref.proclet.queue_length for ref in pool.members]
        assert abs(queues[0] - queues[1]) <= 1

    def test_validation(self, qs):
        with pytest.raises(ValueError):
            qs.compute_pool(initial_members=0)


class TestGrowShrink:
    def test_grow_adds_member_on_idle_machine(self, qs):
        pool = qs.compute_pool(initial_members=1, parallelism=4)
        for _ in range(20):
            pool.run(1.0)
        qs.sim.run(until=5 * MS)
        assert pool.grow(1) == 1
        assert pool.effective_size == 2
        qs.sim.run(until=qs.sim.now + 10 * MS)
        assert pool.size == 2
        machines = {ref.machine.name for ref in pool.members}
        assert len(machines) == 2  # placed apart

    def test_grow_denied_when_no_cpu(self, qs):
        for m in qs.machines:
            m.cpu.hold(threads=m.cpu.cores, priority=Priority.HIGH)
        pool = qs.compute_pool(initial_members=1)
        assert pool.grow(1) == 0
        assert pool.effective_size == 1

    def test_shrink_merges_and_keeps_completing(self, qs):
        pool = qs.compute_pool(initial_members=2, parallelism=1)
        events = [pool.run(0.02) for _ in range(10)]
        qs.sim.run(until=5 * MS)
        assert pool.shrink(1) == 1
        assert pool.size == 1
        qs.sim.run(until_event=qs.sim.all_of(events))
        assert pool.total_done == 10

    def test_shrink_never_below_one(self, qs):
        pool = qs.compute_pool(initial_members=2)
        assert pool.shrink(5) == 1
        assert pool.size == 1

    def test_grow_then_work_speeds_up(self, qs):
        """More members -> more throughput (the Fig. 3 lever)."""

        def run_workload(members):
            qs_local = make_qs(enable_local_scheduler=False,
                               enable_global_scheduler=False,
                               enable_split_merge=False)
            pool = qs_local.compute_pool(initial_members=members,
                                         parallelism=2)
            events = [pool.run(0.05) for _ in range(32)]
            qs_local.sim.run(until_event=qs_local.sim.all_of(events))
            return qs_local.sim.now

        slow = run_workload(1)
        fast = run_workload(4)
        assert fast < slow / 2

    def test_stop_all(self, qs):
        pool = qs.compute_pool(initial_members=2)
        done = pool.run(0.01)
        qs.sim.run(until_event=done)
        qs.sim.run(until_event=pool.stop())
