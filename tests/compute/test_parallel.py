"""Tests for the parallel map/reduce/filter APIs over sharded vectors."""

import pytest

from repro import filter_collect, for_each, map_collect, reduce
from repro.units import KiB, MiB

from ..conftest import make_qs


@pytest.fixture
def qs():
    return make_qs(max_shard_bytes=1 * MiB, min_shard_bytes=64 * KiB,
                   enable_local_scheduler=False,
                   enable_global_scheduler=False)


@pytest.fixture
def loaded(qs):
    vec = qs.sharded_vector(name="data")
    events = [vec.append(i * i, 16 * KiB) for i in range(100)]
    qs.sim.run(until_event=qs.sim.all_of(events))
    qs.sim.run(until=qs.sim.now + 0.05)
    pool = qs.compute_pool(initial_members=2, parallelism=2)
    return vec, pool


class TestForEach:
    def test_visits_every_element(self, qs, loaded):
        vec, pool = loaded
        done = for_each(pool, vec, work=1e-5, task_elems=25)
        qs.sim.run(until_event=done)
        assert pool.total_done == 4  # 100 elements / 25 per task

    def test_emit_pushes_to_queue(self, qs, loaded):
        vec, pool = loaded
        q = qs.sharded_queue(name="out")

        def emit(ctx, key, value):
            yield q.push((key, value), 1 * KiB, ctx=ctx)

        qs.sim.run(until_event=for_each(pool, vec, work=1e-6, emit=emit))
        assert q.pushed == 100

    def test_work_callable(self, qs, loaded):
        vec, pool = loaded
        t0 = qs.sim.now
        qs.sim.run(until_event=for_each(
            pool, vec, work=lambda k, v: 1e-4, lo=0, hi=10))
        # 10 elements x 0.1ms spread over workers: at least 0.2ms
        assert qs.sim.now - t0 >= 2e-4

    def test_range_restriction(self, qs, loaded):
        vec, pool = loaded
        count = {"n": 0}

        def emit(ctx, key, value):
            count["n"] += 1
            return
            yield  # pragma: no cover

        qs.sim.run(until_event=for_each(pool, vec, work=0.0, emit=emit,
                                        lo=10, hi=30))
        assert count["n"] == 20


class TestMapCollect:
    def test_collects_transformed_values(self, qs, loaded):
        vec, pool = loaded
        ev = map_collect(pool, vec, work=1e-6,
                         transform=lambda k, v: v + 1, hi=10)
        result = qs.sim.run(until_event=ev)
        assert result == [(i, i * i + 1) for i in range(10)]

    def test_identity_when_no_transform(self, qs, loaded):
        vec, pool = loaded
        result = qs.sim.run(until_event=map_collect(pool, vec, 0.0, hi=5))
        assert result == [(i, i * i) for i in range(5)]


class TestReduce:
    def test_sum(self, qs, loaded):
        vec, pool = loaded
        ev = reduce(pool, vec, work=1e-6,
                    fold=lambda acc, k, v: acc + v, initial=0)
        total = qs.sim.run(until_event=ev)
        assert total == sum(i * i for i in range(100))

    def test_partial_combination_order_independent(self, qs, loaded):
        vec, pool = loaded
        ev = reduce(pool, vec, work=0.0,
                    fold=lambda acc, k, v: max(acc, v), initial=-1,
                    task_elems=7)
        assert qs.sim.run(until_event=ev) == 99 * 99


class TestFilter:
    def test_keeps_matching(self, qs, loaded):
        vec, pool = loaded
        ev = filter_collect(pool, vec, work=1e-6,
                            predicate=lambda k, v: v % 2 == 0, hi=10)
        result = qs.sim.run(until_event=ev)
        assert result == [(i, i * i) for i in range(10) if (i * i) % 2 == 0]
