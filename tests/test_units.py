"""Tests for unit helpers and RNG streams."""

import pytest

from repro.sim import RandomStreams
from repro.units import (
    GiB,
    KiB,
    MS,
    MiB,
    US,
    fmt_bytes,
    fmt_time,
    gbps,
)


class TestUnits:
    def test_byte_units(self):
        assert KiB == 1024
        assert MiB == 1024 * KiB
        assert GiB == 1024 * MiB

    def test_gbps(self):
        assert gbps(8.0) == pytest.approx(1e9)
        assert gbps(100.0) == pytest.approx(12.5e9)

    @pytest.mark.parametrize("n,expect", [
        (512, "512 B"),
        (2 * KiB, "2.00 KiB"),
        (3 * MiB, "3.00 MiB"),
        (1.5 * GiB, "1.50 GiB"),
    ])
    def test_fmt_bytes(self, n, expect):
        assert fmt_bytes(n) == expect

    @pytest.mark.parametrize("t,needle", [
        (2.5, "2.500 s"),
        (3 * MS, "ms"),
        (7 * US, "us"),
        (5e-9, "ns"),
    ])
    def test_fmt_time(self, t, needle):
        assert needle in fmt_time(t)


class TestRandomStreams:
    def test_streams_are_deterministic(self):
        a = RandomStreams(seed=1).stream("x").random()
        b = RandomStreams(seed=1).stream("x").random()
        assert a == b

    def test_streams_differ_by_name(self):
        rs = RandomStreams(seed=1)
        assert rs.stream("a").random() != rs.stream("b").random()

    def test_streams_differ_by_seed(self):
        a = RandomStreams(seed=1).stream("x").random()
        b = RandomStreams(seed=2).stream("x").random()
        assert a != b

    def test_stream_identity_cached(self):
        rs = RandomStreams()
        assert rs.stream("x") is rs["x"]

    def test_stream_independence(self):
        """Draws on one stream must not perturb another."""
        rs1 = RandomStreams(seed=5)
        seq_quiet = [rs1.stream("target").random() for _ in range(5)]

        rs2 = RandomStreams(seed=5)
        noisy = rs2.stream("noise")
        out = []
        for _ in range(5):
            noisy.random()  # interleaved draws on another stream
            out.append(rs2.stream("target").random())
        assert out == seq_quiet
