"""Unit tests for the closed-form PS cloning oracle."""

import math
import random

import pytest

from repro.hedge import (
    CloneDivergence,
    Deterministic,
    Exponential,
    HyperExp,
    best_clone_factor,
    clone_mean_response,
    clone_utilization,
    compare_cells,
    group_arrival_rate,
    ps_mean_response,
    tolerance_for,
)


class TestDistributions:
    def test_exponential_min_of_c(self):
        # Min of c iid exponentials: rates add.
        d = Exponential(mean=2.0)
        assert d.mean == 2.0
        assert d.mean_min_of(1) == 2.0
        assert d.mean_min_of(4) == pytest.approx(0.5)
        assert d.scv == 1.0
        assert d.scv_min_of(3) == 1.0

    def test_deterministic_min_is_identity(self):
        # The cloning lower bound: min of a constant is the constant.
        d = Deterministic(value=3.0)
        assert d.mean_min_of(1) == 3.0
        assert d.mean_min_of(5) == 3.0
        assert d.scv == 0.0

    def test_hyperexp_mean_and_scv(self):
        d = HyperExp(p=0.9, mean_fast=0.5, mean_slow=5.5)
        assert d.mean == pytest.approx(0.9 * 0.5 + 0.1 * 5.5)
        # E[S^2] = 2(p m1^2 + q m2^2); scv = E[S^2]/E[S]^2 - 1.
        second = 2 * (0.9 * 0.5 ** 2 + 0.1 * 5.5 ** 2)
        assert d.scv == pytest.approx(second / d.mean ** 2 - 1.0)
        assert d.scv > 5  # genuinely high-variance

    def test_hyperexp_min_collapses_the_slow_branch(self):
        d = HyperExp(p=0.9, mean_fast=0.5, mean_slow=5.5)
        means = [d.mean_min_of(c) for c in (1, 2, 3, 4)]
        assert means == sorted(means, reverse=True)
        # With two clones the slow-slow draw has probability 0.01, so
        # E[min] collapses well below the single-draw mean.
        assert d.mean_min_of(2) < 0.5 * d.mean
        # ... and so does the variability.
        assert d.scv_min_of(2) < d.scv

    def test_hyperexp_min_of_one_matches_base_moments(self):
        d = HyperExp(p=0.7, mean_fast=1.0, mean_slow=10.0)
        assert d.mean_min_of(1) == pytest.approx(d.mean)
        assert d.scv_min_of(1) == pytest.approx(d.scv)

    def test_hyperexp_min_against_monte_carlo(self):
        # The conditioning formula vs brute force.
        d = HyperExp(p=0.8, mean_fast=1.0, mean_slow=8.0)
        rng = random.Random(42)
        n = 20000
        draws = [min(d.sample(rng) for _ in range(3)) for _ in range(n)]
        assert sum(draws) / n == pytest.approx(d.mean_min_of(3), rel=0.05)

    def test_sampling_matches_means(self):
        rng = random.Random(7)
        for d in (Exponential(mean=2.0),
                  HyperExp(p=0.9, mean_fast=0.5, mean_slow=5.5),
                  Deterministic(value=1.5)):
            n = 20000
            mean = sum(d.sample(rng) for _ in range(n)) / n
            assert mean == pytest.approx(d.mean, rel=0.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            Exponential(mean=0.0)
        with pytest.raises(ValueError):
            HyperExp(p=1.0, mean_fast=1.0, mean_slow=2.0)
        with pytest.raises(ValueError):
            HyperExp(p=0.5, mean_fast=-1.0, mean_slow=2.0)
        with pytest.raises(ValueError):
            Deterministic(value=0.0)
        with pytest.raises(ValueError):
            Exponential(mean=1.0).mean_min_of(0)


class TestClosedForms:
    def test_ps_mean_response(self):
        # E[S]/(1-rho); insensitive beyond the mean.
        assert ps_mean_response(0.5, 1.0) == pytest.approx(2.0)
        assert ps_mean_response(0.0, 3.0) == 3.0
        assert ps_mean_response(1.0, 1.0) == math.inf  # saturation
        assert ps_mean_response(2.0, 1.0) == math.inf
        with pytest.raises(ValueError):
            ps_mean_response(-1.0, 1.0)
        with pytest.raises(ValueError):
            ps_mean_response(0.5, 0.0)

    def test_group_arrival_rate_splits_poisson(self):
        assert group_arrival_rate(600.0, 6, 1) == pytest.approx(100.0)
        assert group_arrival_rate(600.0, 6, 2) == pytest.approx(200.0)
        assert group_arrival_rate(600.0, 6, 6) == pytest.approx(600.0)

    def test_clone_factor_must_divide_servers(self):
        with pytest.raises(ValueError):
            group_arrival_rate(100.0, 6, 4)
        with pytest.raises(ValueError):
            clone_mean_response(100.0, 5, 2, Exponential(mean=1e-3))

    def test_exponential_cloning_always_helps_below_saturation(self):
        # Exponential: E[S_min] = E[S]/c exactly cancels the c-times
        # arrival rate, so rho is invariant and E[T] scales as 1/c.
        d = Exponential(mean=1e-3)
        base = clone_mean_response(3000.0, 6, 1, d)
        assert clone_utilization(3000.0, 6, 2, d) == pytest.approx(
            clone_utilization(3000.0, 6, 1, d))
        assert clone_mean_response(3000.0, 6, 2, d) == pytest.approx(base / 2)
        assert clone_mean_response(3000.0, 6, 3, d) == pytest.approx(base / 3)

    def test_deterministic_cloning_always_hurts(self):
        # Constant service: min-of-c buys nothing, load triples.
        d = Deterministic(value=1e-3)
        base = clone_mean_response(1800.0, 6, 1, d)
        assert clone_mean_response(1800.0, 6, 2, d) > base
        assert clone_mean_response(1800.0, 6, 3, d) > base

    def test_saturated_clone_config_predicts_inf(self):
        d = Deterministic(value=1e-3)
        # rho(c=3) = 0.4 * 3 = 1.2 > 1.
        assert clone_mean_response(2400.0, 6, 3, d) == math.inf

    def test_best_clone_factor(self):
        det = Deterministic(value=1e-3)
        assert best_clone_factor(1800.0, 6, det) == 1
        hyp = HyperExp(p=0.9, mean_fast=0.5e-3, mean_slow=5.5e-3)
        assert best_clone_factor(1800.0, 6, hyp) > 1


class TestTolerance:
    def test_shrinks_with_samples_grows_with_load_and_scv(self):
        assert tolerance_for(0.5, 40000) < tolerance_for(0.5, 10000)
        assert tolerance_for(0.7, 10000) > tolerance_for(0.3, 10000)
        assert tolerance_for(0.5, 10000, scv=5.5) > \
            tolerance_for(0.5, 10000, scv=1.0)

    def test_degenerate_cells_get_infinite_band(self):
        assert tolerance_for(0.5, 0) == math.inf
        assert tolerance_for(1.0, 10000) == math.inf

    def test_floor_keeps_ci_honest(self):
        # Even an enormous sample keeps a 2% floor (model error budget).
        assert tolerance_for(0.1, 10 ** 9) >= 0.02


class TestCompareCells:
    def _cell(self, mean, predicted, tol, name="c"):
        return {"cell": name, "mean": mean, "predicted": predicted,
                "tolerance": tol}

    def test_within_band_passes(self):
        assert compare_cells([self._cell(1.04, 1.0, 0.05)]) == []

    def test_outside_band_diverges(self):
        out = compare_cells([self._cell(1.2, 1.0, 0.05, name="bad")])
        assert len(out) == 1
        d = out[0]
        assert isinstance(d, CloneDivergence)
        assert d.cell == "bad"
        assert d.error == pytest.approx(0.2)
        assert "bad" in str(d)

    def test_saturated_prediction_skipped(self):
        assert compare_cells([self._cell(9.9, math.inf, 0.05)]) == []
