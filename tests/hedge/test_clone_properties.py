"""Property tests for the clone path: winner uniqueness, kernel
hygiene after cancellation, and clone_to=1 transparency."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime import Proclet
from repro.units import MS

from ..conftest import make_qs


def quiet_qs():
    return make_qs(enable_local_scheduler=False,
                   enable_global_scheduler=False, enable_split_merge=False)


class Drawn(Proclet):
    """Each invocation burns the next duration from a drawn schedule."""

    def __init__(self, durations):
        super().__init__()
        self.durations = list(durations)
        self.i = 0

    def work(self, ctx):
        d = self.durations[self.i % len(self.durations)]
        self.i += 1
        yield ctx.cpu(d)
        return d


_durations = st.lists(
    st.floats(min_value=0.1 * MS, max_value=10 * MS,
              allow_nan=False, allow_infinity=False),
    min_size=1, max_size=8,
)


@settings(max_examples=30, deadline=None)
@given(durations=_durations, clone_to=st.integers(2, 4),
       hedge=st.sampled_from([None, 0.5 * MS, 2 * MS]))
def test_exactly_one_winner_for_any_schedule(durations, clone_to, hedge):
    """However the drawn service times race — ties included — a cloned
    call settles with exactly one winner and every loser reclaimed."""
    qs = quiet_qs()
    ref = qs.spawn(Drawn(durations), qs.machines[0])
    ev = ref.call("work", clone_to=clone_to, hedge_after=hedge)
    call = qs.runtime.active_clone_calls()[-1]
    result = qs.run(until_event=ev)
    assert result in durations
    assert sum(1 for a in call.attempts if a.won) == 1
    assert call.attempts[call.winner].won
    assert 1 <= len(call.attempts) <= clone_to
    qs.sim.run()  # wind down losers and drain every pending timer
    assert call.settled
    assert qs.runtime.active_clone_calls() == []
    for att in call.attempts:
        assert att.process.triggered
        assert all(not item.active for item in att.work_items)
    assert not ref.proclet._active_cpu


@settings(max_examples=20, deadline=None)
@given(durations=_durations, clone_to=st.integers(2, 4))
def test_loser_cancellation_leaks_no_tombstones(durations, clone_to):
    """Cancelling losers goes through the real timer machinery: once
    the sim drains, every tombstoned heap/wheel entry was reclaimed."""
    qs = quiet_qs()
    ref = qs.spawn(Drawn(durations), qs.machines[0])
    for _ in range(3):
        qs.run(until_event=ref.call("work", clone_to=clone_to,
                                    hedge_after=0.5 * MS))
    qs.sim.run()
    stats = qs.sim.heap_stats()
    assert stats["dead_entries"] == 0
    assert stats["queued"] == 0


@settings(max_examples=15, deadline=None)
@given(durations=_durations, calls=st.integers(1, 4))
def test_clone_to_one_is_byte_identical_to_a_plain_call(durations, calls):
    """clone_to=1 must take the exact plain-call path: same results,
    same virtual timestamps, same span trajectory (digest-pinned)."""
    from repro.obs import SpanTracer

    def run(clone_kwargs):
        qs = quiet_qs()
        tr = SpanTracer(qs.sim)
        ref = qs.spawn(Drawn(durations), qs.machines[0])
        results = [qs.run(until_event=ref.call("work", **clone_kwargs))
                   for _ in range(calls)]
        qs.sim.run()
        return results, qs.sim.now, tr.digest(), qs.sim.heap_stats()

    plain = run({})
    cloned = run({"clone_to": 1})
    assert plain == cloned
