"""Cloned/hedged proclet calls: first-response-wins, real cancellation,
retry/hedge composition, stats and span instrumentation."""

import pytest

from repro import MachineSpec
from repro.ft import RecoveryConfig, RecoveryPolicy
from repro.hedge import CloneCancelled
from repro.runtime import MachineFailed, Proclet, ProcletLost
from repro.units import GiB, MiB

from ..conftest import make_qs


def quiet_qs(machines=None):
    return make_qs(machines=machines, enable_local_scheduler=False,
                   enable_global_scheduler=False, enable_split_merge=False)


class SlowFirst(Proclet):
    """First invocation is 5x slower than the rest — clones of the same
    call land in invocation order, so the fan-out has a clear winner."""

    def __init__(self):
        super().__init__()
        self.calls = 0

    def work(self, ctx):
        self.calls += 1
        n = self.calls
        yield ctx.cpu(5e-3 if n == 1 else 1e-3)
        return n


class Steady(Proclet):
    def __init__(self):
        super().__init__()
        self.calls = 0

    def work(self, ctx):
        self.calls += 1
        n = self.calls
        yield ctx.cpu(5e-3)
        return n


class TestFanOut:
    def test_first_response_wins(self):
        qs = quiet_qs()
        ref = qs.spawn(SlowFirst(), qs.machines[0])
        ev = ref.call("work", clone_to=3)
        call = qs.runtime.active_clone_calls()[-1]
        result = qs.run(until_event=ev)
        # The slow first invocation lost to a fast sibling.
        assert result in (2, 3)
        assert call.decided
        assert sum(1 for a in call.attempts if a.won) == 1
        assert call.attempts[call.winner].won
        assert qs.runtime.clone_stats["calls"] == 1
        assert qs.runtime.clone_stats["calls_won"] == 1
        assert qs.runtime.clone_stats["clones_launched"] == 3

    def test_losers_are_cancelled_and_reclaimed(self):
        qs = quiet_qs()
        ref = qs.spawn(SlowFirst(), qs.machines[0])
        ev = ref.call("work", clone_to=3)
        call = qs.runtime.active_clone_calls()[-1]
        qs.run(until_event=ev)
        qs.run(until=qs.sim.now + 0.01)  # let interrupts deliver
        assert call.settled
        assert call not in qs.runtime.active_clone_calls()
        losers = [a for a in call.attempts if not a.won]
        assert losers and all(a.process.triggered for a in losers)
        # Every loser's CPU work came off the fluid scheduler.
        for att in losers:
            assert all(not item.active for item in att.work_items)
        assert not ref.proclet._active_cpu
        assert qs.runtime.clone_stats["losers_cancelled"] >= 1

    def test_cancellation_tombstones_drain(self):
        qs = quiet_qs()
        ref = qs.spawn(SlowFirst(), qs.machines[0])
        qs.run(until_event=ref.call("work", clone_to=3))
        qs.sim.run()  # drain every pending timer past the horizon
        assert qs.sim.heap_stats()["dead_entries"] == 0

    def test_clone_to_one_is_the_plain_path(self):
        qs = quiet_qs()
        ref = qs.spawn(SlowFirst(), qs.machines[0])
        assert qs.run(until_event=ref.call("work", clone_to=1)) == 1
        assert qs.runtime.clone_stats["calls"] == 0
        assert qs.runtime.active_clone_calls() == []


class TestHedging:
    def test_hedge_timer_staggers_the_clones(self):
        qs = quiet_qs()
        ref = qs.spawn(Steady(), qs.machines[0])
        ev = ref.call("work", clone_to=3, hedge_after=1e-3)
        call = qs.runtime.active_clone_calls()[-1]
        result = qs.run(until_event=ev)
        # Primary (5 ms) beats hedges launched at +1 ms and +2 ms.
        assert result == 1
        assert call.winner == 0
        assert call.hedges_fired == 2
        assert len(call.attempts) == 3
        launches = [a.launched_at for a in call.attempts]
        assert launches == sorted(launches)
        assert launches[1] - launches[0] == pytest.approx(1e-3)
        assert qs.runtime.clone_stats["hedges_fired"] == 2

    def test_fast_win_disarms_the_hedge(self):
        qs = quiet_qs()
        ref = qs.spawn(Steady(), qs.machines[0])
        ev = ref.call("work", clone_to=3, hedge_after=1.0)
        call = qs.runtime.active_clone_calls()[-1]
        qs.run(until_event=ev)
        assert call.hedges_fired == 0
        assert len(call.attempts) == 1
        qs.sim.run()  # the cancelled hedge timer must not leak
        assert qs.sim.heap_stats()["dead_entries"] == 0


class TestValidation:
    def test_bad_parameters_rejected(self):
        qs = quiet_qs()
        ref = qs.spawn(Steady(), qs.machines[0])
        with pytest.raises(ValueError):
            ref.call("work", clone_to=0)
        with pytest.raises(ValueError):
            ref.call("work", clone_to=2.5)
        with pytest.raises(ValueError):
            ref.call("work", clone_to=2, hedge_after=0.0)

    def test_hedged_nonretryable_fanout_rejected(self):
        # A hedge races the original, so the body may run twice —
        # incompatible with at-most-once.
        qs = quiet_qs()
        ref = qs.spawn(Steady(), qs.machines[0])
        with pytest.raises(ValueError):
            ref.call("work", clone_to=2, hedge_after=1e-3,
                     retryable=False)


class TestFailures:
    def test_all_clones_crashing_fails_the_call(self):
        qs = quiet_qs()
        m0, _ = qs.machines
        ref = qs.spawn(Steady(), m0)
        ev = ref.call("work", clone_to=2)
        qs.run(until=qs.sim.now + 1e-3)
        qs.runtime.fail_machine(m0)
        with pytest.raises(MachineFailed):
            qs.run(until_event=ev)

    def test_clones_share_one_retry_budget(self):
        """Retries and clones compose, not multiply: with the target
        unrecoverable, a clone-to-2 call burns ONE recovery retry
        budget, not one per clone."""
        qs = quiet_qs([MachineSpec(name="m0", cores=4, dram_bytes=2 * GiB),
                       MachineSpec(name="m1", cores=4, dram_bytes=2 * GiB)])
        cfg = RecoveryConfig(heartbeat_interval=1e-3, suspect_after=2,
                             confirm_after=4, retry_budget=4,
                             retry_backoff=1e-3)
        manager = qs.enable_recovery(cfg)
        ref = qs.spawn_memory(machine=qs.machines[0], name="doomed")
        qs.run(until_event=ref.call("mp_put", 0, 1 * MiB, "x"))
        manager.protect(ref, RecoveryPolicy.RESTART)
        qs.runtime.fail_machine(qs.machines[0])
        qs.runtime.fail_machine(qs.machines[1])
        ev = ref.call("mp_get", 0, clone_to=2)
        with pytest.raises(ProcletLost):
            qs.run(until_event=ev, until=2.0)
        retries = qs.metrics.counter("ft.call_retries").total
        # Shared index: both clones read the same counter, so the total
        # can overshoot by at most one — never 2x the budget.
        assert retries <= cfg.retry_budget + 1
        assert retries < 2 * cfg.retry_budget


class TestObservability:
    def test_record_clone_stats(self):
        qs = quiet_qs()
        ref = qs.spawn(SlowFirst(), qs.machines[0])
        qs.run(until_event=ref.call("work", clone_to=2))
        qs.run(until=qs.sim.now + 0.01)
        stats = qs.metrics.record_clone_stats(qs.runtime)
        assert stats["calls"] == 1
        assert stats["calls_won"] == 1
        assert stats["clones_launched"] == 2
        assert stats["unsettled_calls"] == 0
        assert qs.metrics.gauge("hedge.calls_won").level == 1

    def test_spans_cover_the_clone_lifecycle(self):
        from repro.obs import SpanTracer

        qs = quiet_qs()
        tr = SpanTracer(qs.sim)
        ref = qs.spawn(SlowFirst(), qs.machines[0])
        qs.run(until_event=ref.call("work", clone_to=3))
        spans = [s for s in tr.spans if s.category == "hedge"]
        assert spans
        call_span = next(s for s in spans if s.args.get("clones") == 3)
        assert call_span.closed
        assert call_span.args["outcome"] == "won"
        assert call_span.args["attempts"] == 3
        # The two fast siblings tie: one wins, the other completes in
        # the same instant (late completion) — only the slow primary is
        # actually cancelled.
        cancels = [s for s in spans if s.name.startswith("cancel clone")]
        assert len(cancels) == 1
        assert all(s.parent_id == call_span.sid for s in cancels)
        assert call_span.args["executions"] == 3

    def test_invariant_checker_accepts_hedged_traffic(self):
        from repro.chaos import InvariantChecker

        qs = quiet_qs()
        checker = InvariantChecker(qs.runtime).attach(qs.sim)
        ref = qs.spawn(SlowFirst(), qs.machines[0])
        for _ in range(10):
            qs.run(until_event=ref.call("work", clone_to=3,
                                        hedge_after=0.5e-3))
        qs.run(until=qs.sim.now + 0.01)
        assert checker.checks > 0
        checker.check()

    def test_clone_cancelled_is_a_runtime_fault(self):
        from repro.runtime.errors import RuntimeFault

        assert issubclass(CloneCancelled, RuntimeFault)
