"""Unit tests for the repro.obs exporters and metrics integration."""

import json

from repro.metrics import MetricsRecorder
from repro.obs import (SpanTracer, chrome_trace, flame_profile, flame_totals,
                       write_chrome_trace)
from repro.sim import Simulator


def build_trace():
    """A hand-built trace with known self-times:

    parent [0, 10] on track "t"
      child [2, 5]  (3s)
      child [6, 8]  (2s)
    root instant at 1 on track "u"
    """
    sim = Simulator()
    tracer = SpanTracer(sim, label="unit")
    parent = tracer.begin("work", "parent", track="t")
    sim.call_at(1.0, lambda: tracer.instant("mark", "m", track="u"))
    sim.call_at(2.0, lambda: None)
    sim.run(until=2.0)
    c1 = tracer.begin("sub", "c1", parent=parent, track="t")
    sim.run(until=5.0)
    tracer.end(c1)
    sim.run(until=6.0)
    c2 = tracer.begin("sub", "c2", parent=parent, track="t")
    sim.run(until=8.0)
    tracer.end(c2)
    sim.run(until=10.0)
    tracer.end(parent)
    return sim, tracer


class TestFlameProfile:
    def test_self_time_subtracts_children(self):
        _sim, tracer = build_trace()
        totals = flame_totals(tracer)
        assert totals["t"]["work"] == 5.0  # 10 - 3 - 2
        assert totals["t"]["work;sub"] == 5.0  # 3 + 2
        assert totals["u"]["mark"] == 0.0

    def test_profile_text_lists_tracks_and_paths(self):
        _sim, tracer = build_trace()
        text = flame_profile(tracer)
        assert "-- t --" in text and "-- u --" in text
        assert "work;sub" in text

    def test_top_limits_paths_per_track(self):
        _sim, tracer = build_trace()
        text = flame_profile(tracer, top=1)
        assert "work;sub" not in text.split("-- u --")[0].split("-- t --")[1]


class TestChromeTrace:
    def test_round_trips_through_json(self, tmp_path):
        _sim, tracer = build_trace()
        path = tmp_path / "trace.json"
        doc = write_chrome_trace(tracer, str(path))
        loaded = json.loads(path.read_text())
        assert loaded == json.loads(json.dumps(doc))
        assert loaded["otherData"]["clock"] == "virtual"

    def test_timestamps_are_microseconds(self):
        _sim, tracer = build_trace()
        doc = chrome_trace(tracer)
        parent = next(e for e in doc["traceEvents"]
                      if e.get("name") == "parent")
        assert parent["ts"] == 0.0
        assert parent["dur"] == 10.0 * 1e6

    def test_parent_links_exported_in_args(self):
        _sim, tracer = build_trace()
        doc = chrome_trace(tracer)
        by_name = {e["name"]: e for e in doc["traceEvents"]
                   if e["ph"] == "X"}
        assert by_name["c1"]["args"]["parent"] == \
            by_name["parent"]["args"]["sid"]

    def test_open_spans_rendered_to_now_without_mutation(self):
        sim = Simulator()
        tracer = SpanTracer(sim)
        span = tracer.begin("c", "open")
        sim.call_at(3.0, lambda: None)
        sim.run()
        doc = chrome_trace(tracer)
        event = next(e for e in doc["traceEvents"] if e["ph"] == "X")
        assert event["dur"] == 3.0 * 1e6
        assert span.end is None  # exporting didn't close it


class TestRecorderIntegration:
    def test_record_trace_stats_snapshots_counters(self):
        sim = Simulator()
        tracer = SpanTracer(sim)
        tracer.instant("alpha", "a")
        tracer.begin("beta", "b")
        rec = MetricsRecorder(sim)
        stats = rec.record_trace_stats()
        assert stats["spans"] == 2 and stats["open"] == 1
        assert stats["category.alpha"] == 1
        assert rec.gauge("obs.trace.spans").level == 2
        assert rec.gauge("obs.trace.category.beta").level == 1

    def test_record_trace_stats_noop_when_disabled(self):
        sim = Simulator()
        rec = MetricsRecorder(sim)
        assert rec.record_trace_stats() == {}
        assert not rec.has("obs.trace.spans")

    def test_detach_stops_recording(self):
        sim = Simulator()
        tracer = SpanTracer(sim)
        tracer.instant("c", "before")
        tracer.detach()
        assert sim.tracer is None
        assert tracer.open_count == 0
